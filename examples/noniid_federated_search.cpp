// Non-i.i.d. federated model search — the paper's motivating scenario.
//
// Participants hold Dirichlet(0.5)-skewed shards (some users see almost
// one class only). A fixed hand-designed model trained with FedAvg is
// compared against the model found by the RL-based federated search, both
// retrained federatedly on the same non-i.i.d. shards.
#include <cstdio>

#include "src/baselines/resnet_style.h"
#include "src/core/retrain.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"

int main() {
  using namespace fms;
  Rng rng(17);
  SynthSpec spec;
  spec.train_size = 1200;
  spec.test_size = 300;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  auto partition =
      dirichlet_partition(data.train.labels(), 10, 10, 0.5, rng);

  // Show the label skew the search has to cope with.
  std::printf("== per-participant label histograms (Dirichlet 0.5) ==\n");
  auto shards = make_shards(data.train, partition);
  for (std::size_t k = 0; k < shards.size(); ++k) {
    std::printf("participant %zu:", k);
    for (int c : shards[k].label_histogram()) std::printf(" %3d", c);
    std::printf("\n");
  }

  SearchConfig cfg = default_config();
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 6;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 16;
  cfg.telemetry.enabled = true;  // per-round progress via the console sink
  cfg.telemetry.console = true;
  cfg.telemetry.console_every = 50;

  std::printf("\n== searching on the non-i.i.d. shards ==\n");
  FederatedSearch search(cfg, data.train, partition);
  search.run_warmup(120);
  search.run_search(180, SearchOptions{});
  Genotype genotype = search.derive();
  std::printf("searched: %s\n", genotype.to_string().c_str());

  SGD::Options fl_opts{0.1F, 0.5F, 0.005F, 5.0F};  // paper's P3-FL settings
  const int rounds = 120;

  std::printf("\n== federated retraining (P3) on the same shards ==\n");
  Rng net_rng(1);
  DiscreteNet searched(genotype, cfg.supernet, net_rng);
  Rng t1(2);
  RetrainResult r_searched =
      federated_train(searched, data.train, partition, data.test, rounds, 16,
                      fl_opts, nullptr, t1, 20);

  ResNetStyleConfig rcfg;
  Rng rn_rng(3);
  ResNetStyle fixed(rcfg, rn_rng);
  Rng t2(4);
  RetrainResult r_fixed = federated_train(fixed, data.train, partition,
                                          data.test, rounds, 16, fl_opts,
                                          nullptr, t2, 20);

  std::printf("searched model: %.2fM params, test acc %.3f\n",
              searched.param_count() / 1e6, r_searched.final_test_accuracy);
  std::printf("fixed model:    %.2fM params, test acc %.3f\n",
              fixed.param_count() / 1e6, r_fixed.final_test_accuracy);
  std::printf("\nthe searched model reaches comparable-or-better accuracy "
              "at a fraction of the size — the paper's Table IV story.\n");
  return 0;
}
