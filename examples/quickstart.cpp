// Quickstart: the complete pipeline of the paper in ~60 lines.
//
//   1. build a 10-class image dataset and split it across 10 participants,
//   2. run the RL-based federated model search (warm-up P1 + search P2),
//   3. discretize the learned policy into an architecture (Genotype),
//   4. retrain the searched model from scratch (P3) and evaluate it (P4).
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "src/core/retrain.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"

int main() {
  using namespace fms;

  // 1. Data: a CIFAR10-like synthetic dataset, i.i.d. across K=10 users.
  Rng rng(42);
  SynthSpec spec;
  spec.train_size = 1200;
  spec.test_size = 300;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  auto partition = iid_partition(data.train.size(), 10, rng);

  // 2. Federated model search.
  SearchConfig cfg = default_config();
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 6;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 16;
  // Progress printing via the telemetry console sink (one line per 25
  // rounds) instead of an ad-hoc callback.
  cfg.telemetry.enabled = true;
  cfg.telemetry.console = true;
  cfg.telemetry.console_every = 25;

  FederatedSearch search(cfg, data.train, partition);
  std::printf("== P1: warm-up (theta only) ==\n");
  search.run_warmup(100);
  std::printf("== P2: search (alpha + theta) ==\n");
  search.run_search(150, SearchOptions{});

  std::printf("supernet payload %.2f KB, avg sub-model payload %.2f KB "
              "(what each participant actually downloads)\n",
              search.supernet_bytes() / 1024.0,
              search.avg_submodel_bytes() / 1024.0);

  // 3. Discretize.
  Genotype genotype = search.derive();
  std::printf("searched architecture: %s\n", genotype.to_string().c_str());

  // 4. Retrain from scratch and evaluate.
  Rng net_rng(7);
  DiscreteNet model(genotype, cfg.supernet, net_rng);
  Rng train_rng(8);
  RetrainResult result = centralized_train(
      model, data.train, data.test, /*epochs=*/5, /*batch=*/32,
      SGD::Options{0.025F, 0.9F, 3e-4F, 5.0F}, nullptr, train_rng);
  std::printf("searched model: %.2fM params, test accuracy %.3f\n",
              model.param_count() / 1e6, result.final_test_accuracy);
  return 0;
}
