// Command-line front end for the federated model search — the entry point
// a downstream user would script against.
//
// Usage:
//   fms_search_cli [--participants N] [--rounds N] [--warmup N]
//                  [--noniid] [--staleness none|severe|slight]
//                  [--policy compensate|use|throw]
//                  [--checkpoint PATH] [--genotype-out PATH] [--seed N]
//                  [--trace-jsonl PATH] [--metrics-csv PATH]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/checkpoint.h"
#include "src/core/retrain.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"
#include "src/nas/dot_export.h"
#include "src/obs/alloc.h"
#include "src/obs/health.h"
#include "src/obs/profile.h"
#include "src/obs/report.h"
#include "src/obs/roofline.h"
#include "src/obs/telemetry.h"
#include "src/obs/work.h"

namespace {

const char* kUsage =
    "usage: fms_search_cli [--participants N] [--rounds N] [--warmup N]\n"
    "                      [--noniid] [--staleness none|severe|slight]\n"
    "                      [--policy compensate|use|throw]\n"
    "                      [--checkpoint PATH] [--genotype-out PATH]\n"
    "                      [--dot-out PATH] [--seed N]\n"
    "                      [--trace-jsonl PATH] [--metrics-csv PATH]\n"
    "                      [--progress-every N] [--profile]\n"
    "                      [--fault-plan SPEC|severe] [--quorum Q]\n"
    "                      [--timeout SECONDS] [--checkpoint-every N]\n"
    "                      [--resume PATH] [--journal PATH] [--recover]\n"
    "                      [--aggregator NAME[:F]]\n"
    "                      [--winsorize-rewards K] [--baseline-mode MODE]\n"
    "                      [--adaptive-screen K] [--churn-plan SPEC]\n"
    "                      [--adaptive-timeout] [--max-degrade-mode N]\n"
    "\n"
    "fault flags:\n"
    "  --fault-plan SPEC     comma 'key=value' fault schedule (or 'severe'),\n"
    "                        e.g. crash=0.3,corrupt=0.1,divergent=0.2,link=0.1\n"
    "                        Byzantine keys: sign_flip, sign_flip_lambda,\n"
    "                        grad_scale, grad_scale_lambda, collude,\n"
    "                        collude_scale, reward_attack, reward_attack_delta\n"
    "  --quorum Q            commit a round once ceil(Q*K) updates arrive\n"
    "  --timeout SECONDS     per-round commit deadline cap (0 = none)\n"
    "  --checkpoint-every N  auto-checkpoint cadence; requires --checkpoint\n"
    "  --resume PATH         restore a checkpoint and continue the search\n"
    "\n"
    "durability flags:\n"
    "  --journal PATH        write-ahead round journal: one CRC-framed\n"
    "                        frame per committed round; makes any kill\n"
    "                        point recoverable (disk fault-plan keys:\n"
    "                        disk_eio, disk_short, disk_corrupt,\n"
    "                        disk_corrupt_bits)\n"
    "  --recover             kill-anywhere recovery: load the newest valid\n"
    "                        checkpoint (.prev fallback), truncate a torn\n"
    "                        journal tail, replay journaled rounds, then\n"
    "                        continue; requires --journal and --checkpoint\n"
    "\n"
    "observability flags:\n"
    "  --profile             enable the in-process profiler + allocation\n"
    "                        ledger; prints the merged self-time table and\n"
    "                        allocation totals after the run (adds per-zone\n"
    "                        \"profile\" events to --trace-jsonl). Off by\n"
    "                        default: results are bit-identical either way\n"
    "  --trace-chrome PATH   export the per-participant round lifecycle as\n"
    "                        Chrome trace-event JSON (sim-time ticks; load\n"
    "                        at ui.perfetto.dev). '=PATH' form also accepted\n"
    "  --health-report PATH  write the search-health monitor's machine-\n"
    "                        readable health.json at the end of the run\n"
    "  --flight-recorder N   keep the last N lifecycle events per\n"
    "                        participant; dumped to --flight-dump on crash,\n"
    "                        quorum failure, or any health CRIT transition\n"
    "  --flight-dump PATH    flight-recorder dump target\n"
    "                        (default fms_flight.jsonl)\n"
    "  --report PATH         write a self-contained HTML run report; forces\n"
    "                        --profile plus the work ledger, defaults\n"
    "                        --trace-jsonl/--metrics-csv/--health-report to\n"
    "                        PATH-derived sidecars when unset, and prints a\n"
    "                        roofline summary line (bit-identical search)\n"
    "  --peak-cache PATH     machine-peak calibration sidecar used by\n"
    "                        --report (default fms_peak.json); calibrated\n"
    "                        once and reused across runs\n"
    "\n"
    "robustness flags:\n"
    "  --aggregator SPEC     theta gradient estimator: mean (default),\n"
    "                        clipped_mean[:K], coordinate_median,\n"
    "                        trimmed_mean[:F], krum[:F], multi_krum[:F]\n"
    "  --winsorize-rewards K clamp rewards to [Q1-K*IQR, Q3+K*IQR] per round\n"
    "                        before the alpha update (0 = off; 1.5 = Tukey)\n"
    "  --baseline-mode MODE  REINFORCE baseline statistic: mean|median\n"
    "  --adaptive-screen K   tighten the screening norm bound to\n"
    "                        median + K*MAD of the round's arrivals\n"
    "\n"
    "churn flags:\n"
    "  --churn-plan SPEC     comma 'key=value' membership schedule, e.g.\n"
    "                        leave=0.06,away_min=2,away_max=6,burst=0.5,\n"
    "                        burst_round=20,burst_away=10,late_join=0.2,\n"
    "                        diurnal=0.5,diurnal_period=48,seed=N\n"
    "  --adaptive-timeout    replace the static --timeout cap with a\n"
    "                        windowed p90 of recent round times (x1.5 slack)\n"
    "                        once the estimator is warm\n"
    "  --max-degrade-mode N  arm the graceful-degradation ladder down to\n"
    "                        mode N: 1 relax deadline, 2 shrink cohort,\n"
    "                        3 partial-quorum commit (0 = off, default)\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace fms;
  int participants = 10;
  int rounds = 150;
  int warmup = 100;
  bool noniid = false;
  std::string staleness = "none";
  std::string policy_name = "compensate";
  std::string checkpoint_path;
  std::string genotype_out;
  std::string dot_out;
  std::string trace_jsonl;
  std::string metrics_csv;
  int progress_every = 25;
  bool profile = false;
  std::string trace_chrome;
  std::string health_report;
  int flight_recorder = 0;
  std::string flight_dump;
  std::string report_path;
  std::string peak_cache = "fms_peak.json";
  std::uint64_t seed = 42;
  std::string fault_plan_spec;
  double quorum = 1.0;
  double timeout_s = 0.0;
  int checkpoint_every = 0;
  std::string resume_path;
  std::string journal_path;
  bool recover = false;
  std::string aggregator_spec;
  double winsorize_k = 0.0;
  std::string baseline_mode = "mean";
  double adaptive_screen_k = 0.0;
  std::string churn_plan_spec;
  bool adaptive_timeout = false;
  int max_degrade_mode = 0;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    // "--flag=VALUE" form (the scripting-friendly spelling; the
    // space-separated form works for every flag as well).
    auto eq_value = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (!std::strncmp(argv[i], flag, n) && argv[i][n] == '=') {
        return argv[i] + n + 1;
      }
      return nullptr;
    };
    if (!std::strcmp(argv[i], "--participants")) {
      participants = std::atoi(need_value("--participants"));
    } else if (!std::strcmp(argv[i], "--rounds")) {
      rounds = std::atoi(need_value("--rounds"));
    } else if (!std::strcmp(argv[i], "--warmup")) {
      warmup = std::atoi(need_value("--warmup"));
    } else if (!std::strcmp(argv[i], "--noniid")) {
      noniid = true;
    } else if (!std::strcmp(argv[i], "--staleness")) {
      staleness = need_value("--staleness");
    } else if (!std::strcmp(argv[i], "--policy")) {
      policy_name = need_value("--policy");
    } else if (!std::strcmp(argv[i], "--checkpoint")) {
      checkpoint_path = need_value("--checkpoint");
    } else if (!std::strcmp(argv[i], "--genotype-out")) {
      genotype_out = need_value("--genotype-out");
    } else if (!std::strcmp(argv[i], "--dot-out")) {
      dot_out = need_value("--dot-out");
    } else if (!std::strcmp(argv[i], "--trace-jsonl")) {
      trace_jsonl = need_value("--trace-jsonl");
    } else if (!std::strcmp(argv[i], "--metrics-csv")) {
      metrics_csv = need_value("--metrics-csv");
    } else if (!std::strcmp(argv[i], "--progress-every")) {
      progress_every = std::atoi(need_value("--progress-every"));
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile = true;
    } else if (!std::strcmp(argv[i], "--trace-chrome")) {
      trace_chrome = need_value("--trace-chrome");
    } else if (const char* v1 = eq_value("--trace-chrome")) {
      trace_chrome = v1;
    } else if (!std::strcmp(argv[i], "--health-report")) {
      health_report = need_value("--health-report");
    } else if (const char* v2 = eq_value("--health-report")) {
      health_report = v2;
    } else if (!std::strcmp(argv[i], "--flight-recorder")) {
      flight_recorder = std::atoi(need_value("--flight-recorder"));
    } else if (const char* v3 = eq_value("--flight-recorder")) {
      flight_recorder = std::atoi(v3);
    } else if (!std::strcmp(argv[i], "--flight-dump")) {
      flight_dump = need_value("--flight-dump");
    } else if (const char* v4 = eq_value("--flight-dump")) {
      flight_dump = v4;
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = need_value("--report");
    } else if (const char* v8 = eq_value("--report")) {
      report_path = v8;
    } else if (!std::strcmp(argv[i], "--peak-cache")) {
      peak_cache = need_value("--peak-cache");
    } else if (const char* v9 = eq_value("--peak-cache")) {
      peak_cache = v9;
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = static_cast<std::uint64_t>(std::atoll(need_value("--seed")));
    } else if (!std::strcmp(argv[i], "--fault-plan")) {
      fault_plan_spec = need_value("--fault-plan");
    } else if (!std::strcmp(argv[i], "--quorum")) {
      quorum = std::atof(need_value("--quorum"));
    } else if (!std::strcmp(argv[i], "--timeout")) {
      timeout_s = std::atof(need_value("--timeout"));
    } else if (!std::strcmp(argv[i], "--checkpoint-every")) {
      checkpoint_every = std::atoi(need_value("--checkpoint-every"));
    } else if (!std::strcmp(argv[i], "--resume")) {
      resume_path = need_value("--resume");
    } else if (!std::strcmp(argv[i], "--journal")) {
      journal_path = need_value("--journal");
    } else if (const char* v7 = eq_value("--journal")) {
      journal_path = v7;
    } else if (!std::strcmp(argv[i], "--recover")) {
      recover = true;
    } else if (!std::strcmp(argv[i], "--aggregator")) {
      aggregator_spec = need_value("--aggregator");
    } else if (!std::strcmp(argv[i], "--winsorize-rewards")) {
      winsorize_k = std::atof(need_value("--winsorize-rewards"));
    } else if (!std::strcmp(argv[i], "--baseline-mode")) {
      baseline_mode = need_value("--baseline-mode");
    } else if (!std::strcmp(argv[i], "--adaptive-screen")) {
      adaptive_screen_k = std::atof(need_value("--adaptive-screen"));
    } else if (!std::strcmp(argv[i], "--churn-plan")) {
      churn_plan_spec = need_value("--churn-plan");
    } else if (const char* v5 = eq_value("--churn-plan")) {
      churn_plan_spec = v5;
    } else if (!std::strcmp(argv[i], "--adaptive-timeout")) {
      adaptive_timeout = true;
    } else if (!std::strcmp(argv[i], "--max-degrade-mode")) {
      max_degrade_mode = std::atoi(need_value("--max-degrade-mode"));
    } else if (const char* v6 = eq_value("--max-degrade-mode")) {
      max_degrade_mode = std::atoi(v6);
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      std::printf("%s", kUsage);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n%s", argv[i], kUsage);
      return 2;
    }
  }
  if (participants < 1 || rounds < 0 || warmup < 0 || quorum <= 0.0 ||
      quorum > 1.0 || timeout_s < 0.0 || checkpoint_every < 0 ||
      winsorize_k < 0.0 || adaptive_screen_k < 0.0 || flight_recorder < 0 ||
      max_degrade_mode < 0 || max_degrade_mode > 3 ||
      (baseline_mode != "mean" && baseline_mode != "median")) {
    std::fprintf(stderr, "invalid arguments\n%s", kUsage);
    return 2;
  }
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    std::fprintf(stderr, "--checkpoint-every requires --checkpoint PATH\n%s",
                 kUsage);
    return 2;
  }
  if (recover && (journal_path.empty() || checkpoint_path.empty())) {
    std::fprintf(stderr,
                 "--recover requires --journal PATH and --checkpoint PATH\n%s",
                 kUsage);
    return 2;
  }
  // --report needs the profiler + work ledger on and the run's artifacts
  // on disk; derive sidecar paths for any the user didn't name. Both
  // ledgers observe only — the search trajectory stays bit-identical.
  if (!report_path.empty()) {
    profile = true;
    if (trace_jsonl.empty()) trace_jsonl = report_path + ".trace.jsonl";
    if (metrics_csv.empty()) metrics_csv = report_path + ".metrics.csv";
    if (health_report.empty()) health_report = report_path + ".health.json";
  }

  Rng rng(seed);
  SynthSpec spec;
  spec.train_size = 1200;
  spec.test_size = 300;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  auto partition =
      noniid ? dirichlet_partition(data.train.labels(), 10, participants, 0.5,
                                   rng)
             : iid_partition(data.train.size(), participants, rng);

  SearchConfig cfg = default_config();
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 6;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 16;
  cfg.schedule.num_participants = participants;
  cfg.seed = seed;
  // Telemetry: console progress always on (replacing the old on_round
  // lambda); JSONL trace and metrics CSV snapshot when requested.
  cfg.telemetry.enabled = true;
  cfg.telemetry.console = true;
  cfg.telemetry.console_every = progress_every;
  cfg.telemetry.trace_jsonl_path = trace_jsonl;
  cfg.telemetry.metrics_csv_path = metrics_csv;
  cfg.telemetry.profile = profile;
  cfg.telemetry.work = !report_path.empty();
  cfg.telemetry.trace_chrome_path = trace_chrome;
  // The health monitor is always on in the CLI: it only observes the
  // round stream (bit-identical results) and the exit summary below is
  // the operator's first stop when a campaign misbehaves.
  cfg.telemetry.health = true;
  cfg.telemetry.health_report_path = health_report;
  cfg.telemetry.flight_recorder = flight_recorder;
  cfg.telemetry.flight_dump_path = flight_dump;

  SearchOptions opts;
  if (staleness == "severe") {
    opts.staleness = StalenessDistribution::severe();
  } else if (staleness == "slight") {
    opts.staleness = StalenessDistribution::slight();
  } else if (staleness != "none") {
    std::fprintf(stderr, "unknown staleness '%s'\n%s", staleness.c_str(),
                 kUsage);
    return 2;
  }
  if (staleness != "none") {
    if (policy_name == "compensate") {
      opts.stale_policy = StalePolicy::kCompensate;
    } else if (policy_name == "use") {
      opts.stale_policy = StalePolicy::kUseStale;
    } else if (policy_name == "throw") {
      opts.stale_policy = StalePolicy::kDrop;
    } else {
      std::fprintf(stderr, "unknown policy '%s'\n%s", policy_name.c_str(),
                   kUsage);
      return 2;
    }
  }

  if (!fault_plan_spec.empty()) {
    opts.fault_plan = fault_plan_spec == "severe"
                          ? FaultPlan::severe()
                          : FaultPlan::parse(fault_plan_spec);
  }
  if (!aggregator_spec.empty()) {
    opts.aggregator = agg::AggregatorConfig::parse(aggregator_spec);
  }
  opts.winsorize_rewards_k = winsorize_k;
  if (baseline_mode == "median") {
    opts.baseline_mode = BaselineMode::kMedianReward;
  }
  if (adaptive_screen_k > 0.0) {
    opts.adaptive_screen = true;
    opts.adaptive_screen_k = adaptive_screen_k;
  }
  if (!churn_plan_spec.empty()) {
    opts.churn_plan = ChurnPlan::parse(churn_plan_spec);
  }
  opts.adaptive_timeout.enabled = adaptive_timeout;
  opts.degrade.max_mode = max_degrade_mode;
  opts.quorum = quorum;
  opts.round_timeout_s = timeout_s;
  opts.checkpoint_every = checkpoint_every;
  if (checkpoint_every > 0) opts.checkpoint_path = checkpoint_path;

  FederatedSearch search(cfg, data.train, partition);
  FederatedSearch::RecoveryReport rrep;
  if (recover) {
    FederatedSearch::RecoverConfig rc;
    rc.checkpoint_path = checkpoint_path;
    rc.journal_path = journal_path;
    rc.warmup_rounds = warmup;
    rc.search = opts;
    rrep = search.recover(rc);
    // Credit completed rounds (checkpointed + replayed) against the
    // warm-up first, then the search — same arithmetic as --resume.
    const int done = rrep.start_round + rrep.replayed_rounds;
    const int warmup_left = std::max(0, warmup - done);
    const int search_left =
        std::max(0, warmup + rounds - std::max(done, warmup));
    std::printf(
        "recovered: checkpoint %s at round %d%s, replayed %d rounds "
        "(%llu frames, %zu torn bytes truncated) in %.1f ms\n",
        rrep.checkpoint_loaded ? "loaded" : "absent", rrep.start_round,
        rrep.used_prev_checkpoint ? " (.prev fallback)" : "",
        rrep.replayed_rounds,
        static_cast<unsigned long long>(rrep.frames_loaded), rrep.torn_bytes,
        rrep.recovery_ms);
    warmup = warmup_left;
    rounds = search_left;
  } else if (!resume_path.empty()) {
    const SearchCheckpoint ckpt = read_checkpoint_file(resume_path);
    search.restore(ckpt);
    // Credit completed rounds against the warm-up first, then the search.
    const int done = ckpt.round;
    const int warmup_left = std::max(0, warmup - done);
    const int search_left = std::max(0, warmup + rounds - std::max(done, warmup));
    std::printf("resumed from %s at round %d (%s runtime state)\n",
                resume_path.c_str(), done,
                ckpt.has_runtime_state() ? "with" : "without");
    warmup = warmup_left;
    rounds = search_left;
  }
  if (!journal_path.empty() && !recover) {
    search.enable_journal(journal_path, opts.fault_plan);
  }
  std::printf("warm-up: %d rounds, search: %d rounds, K=%d, %s, "
              "staleness=%s/%s\n",
              warmup, rounds, participants, noniid ? "non-iid" : "iid",
              staleness.c_str(),
              staleness == "none" ? "-" : policy_name.c_str());
  search.run_warmup(warmup);
  search.run_search(rounds, opts);
  if (!opts.fault_plan.empty()) {
    const FaultStats& fs = search.fault_stats();
    std::printf(
        "faults: injected %llu (crash %llu, dropout %llu, link %llu, "
        "uplink %llu, corrupt %llu, divergent %llu) = rejected %llu + "
        "dropped %llu + recovered %llu; retransmits %llu\n",
        static_cast<unsigned long long>(fs.injected_total()),
        static_cast<unsigned long long>(fs.injected_crash),
        static_cast<unsigned long long>(fs.injected_dropout),
        static_cast<unsigned long long>(fs.injected_link),
        static_cast<unsigned long long>(fs.injected_uplink),
        static_cast<unsigned long long>(fs.injected_corrupt),
        static_cast<unsigned long long>(fs.injected_divergent),
        static_cast<unsigned long long>(fs.rejected),
        static_cast<unsigned long long>(fs.dropped),
        static_cast<unsigned long long>(fs.recovered),
        static_cast<unsigned long long>(fs.retransmits));
    if (fs.injected_byzantine() > 0) {
      std::printf(
          "byzantine: %llu attacked updates (sign_flip %llu, grad_scale "
          "%llu, collude %llu, reward %llu)\n",
          static_cast<unsigned long long>(fs.injected_byzantine()),
          static_cast<unsigned long long>(fs.injected_sign_flip),
          static_cast<unsigned long long>(fs.injected_grad_scale),
          static_cast<unsigned long long>(fs.injected_collude),
          static_cast<unsigned long long>(fs.injected_reward));
    }
  }
  // Churn + degradation summary: membership totals and the ladder's path.
  if (!opts.churn_plan.empty() || max_degrade_mode > 0) {
    const ClientRegistry& reg = search.registry();
    std::printf(
        "churn: %llu rejoins, %llu leaves across %d clients; degradation "
        "transitions %d, final mode %s\n",
        static_cast<unsigned long long>(reg.total_joins()),
        static_cast<unsigned long long>(reg.total_leaves()), reg.size(),
        search.degrade_transitions(),
        degrade_mode_name(search.degrade_mode()));
  }
  // Robustness summary: what the defended channels actually removed.
  if (opts.aggregator.kind != agg::AggregatorKind::kMean ||
      opts.winsorize_rewards_k > 0.0 || opts.adaptive_screen) {
    const RobustStats& rs = search.robust_stats();
    std::printf(
        "robustness: aggregator %s; clipped %llu updates (mass %.3g), "
        "trimmed %llu values, rejected %llu updates, winsorized %llu "
        "rewards\n",
        opts.aggregator.to_string().c_str(),
        static_cast<unsigned long long>(rs.clipped_updates), rs.clipped_mass,
        static_cast<unsigned long long>(rs.trimmed_values),
        static_cast<unsigned long long>(rs.rejected_updates),
        static_cast<unsigned long long>(rs.winsorized_rewards));
  }

  // Durability summary: the journal's write ledger, plus what recovery
  // had to do when --recover ran.
  if (search.journal() != nullptr) {
    const JournalStats& js = search.journal()->stats();
    std::printf(
        "journal: %llu frames written, %llu rotations, %llu eio retries, "
        "%llu short writes (%s)\n",
        static_cast<unsigned long long>(js.frames_written),
        static_cast<unsigned long long>(js.rotations),
        static_cast<unsigned long long>(js.eio_retries),
        static_cast<unsigned long long>(js.short_writes),
        search.journal()->path().c_str());
    if (recover) {
      std::printf(
          "recovery: resumed at round %d, replayed %d rounds, %zu torn "
          "bytes truncated, %.1f ms\n",
          rrep.start_round, rrep.replayed_rounds, rrep.torn_bytes,
          rrep.recovery_ms);
    }
  }

  // Search-health summary: per-detector state, windowed value, thresholds.
  if (search.health() != nullptr) {
    std::printf("\n%s", search.health()->summary_table().c_str());
    if (!health_report.empty()) {
      search.health()->write_report(health_report);
      std::printf("health report written to %s\n", health_report.c_str());
    }
  }

  Genotype genotype = search.derive();
  std::printf("searched: %s\n", genotype.to_string().c_str());
  std::printf("payload: supernet %.1f KB vs avg sub-model %.1f KB\n",
              search.supernet_bytes() / 1024.0,
              search.avg_submodel_bytes() / 1024.0);

  if (!checkpoint_path.empty()) {
    // Full-state checkpoint: a later --resume continues bit-identically.
    write_checkpoint_file(checkpoint_path, search.checkpoint());
    std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
  }
  if (!genotype_out.empty()) {
    write_genotype_file(genotype_out, genotype);
    std::printf("genotype written to %s\n", genotype_out.c_str());
  }
  if (!dot_out.empty()) {
    write_dot_file(dot_out, genotype);
    std::printf("graphviz cell diagram written to %s\n", dot_out.c_str());
  }
  if (profile) {
    const obs::AllocStats alloc = obs::alloc_stats();
    std::printf("\n-- profile: merged self-time table --\n%s",
                obs::self_time_table(obs::collect_profile()).c_str());
    std::printf(
        "alloc: %llu tensor allocations (%.1f MB total), peak live %.1f MB, "
        "peak RSS %.1f MB\n",
        static_cast<unsigned long long>(alloc.allocs),
        static_cast<double>(alloc.total_bytes) / 1048576.0,
        static_cast<double>(alloc.peak_live_bytes) / 1048576.0,
        static_cast<double>(obs::peak_rss_bytes()) / 1048576.0);
  }
  if (!report_path.empty()) {
    // Calibrate (or load the cached) machine peak and set the roofline
    // gauges before finish() so they land in the metrics CSV snapshot.
    const obs::MachinePeak peak = obs::load_or_calibrate(peak_cache);
    obs::emit_roofline_telemetry(peak);
    const obs::WorkReport work = obs::collect_work();
    const obs::ProfileReport prof = obs::collect_profile();
    const obs::WorkRow* top = nullptr;
    for (const obs::WorkRow& row : work.rows) {
      if (top == nullptr || row.cost.flops > top->cost.flops) top = &row;
    }
    if (top != nullptr && top->cost.flops > 0) {
      std::uint64_t ns = 0;
      for (const obs::ZoneStats& z : prof.zones) {
        if (z.name == top->op) ns += z.incl_ns;
      }
      const double ai = obs::arithmetic_intensity(top->cost);
      const double gf =
          ns > 0 ? static_cast<double>(top->cost.flops) /
                       static_cast<double>(ns)
                 : 0.0;
      const double roof = obs::roofline_gflops(peak, ai);
      std::printf(
          "roofline: vector %.2f GF/s scalar %.2f GF/s stream %.2f GB/s; "
          "top %s %.3f GF/s AI %.2f (%.1f%% of roof)\n",
          peak.vector_gflops, peak.scalar_gflops, peak.stream_gbps,
          top->op.c_str(), gf, ai, roof > 0.0 ? 100.0 * gf / roof : 0.0);
    } else {
      std::printf(
          "roofline: vector %.2f GF/s scalar %.2f GF/s stream %.2f GB/s; "
          "no work recorded\n",
          peak.vector_gflops, peak.scalar_gflops, peak.stream_gbps);
    }
  }
  obs::Telemetry::instance().finish();  // flush trace, write metrics CSV
  if (!trace_jsonl.empty()) {
    std::printf("telemetry trace written to %s\n", trace_jsonl.c_str());
  }
  if (!trace_chrome.empty()) {
    std::printf("chrome trace written to %s (load at ui.perfetto.dev)\n",
                trace_chrome.c_str());
  }
  if (!metrics_csv.empty()) {
    std::printf("metrics snapshot written to %s\n", metrics_csv.c_str());
  }
  if (!report_path.empty()) {
    // The sidecars are flushed now; fuse them into the HTML report.
    obs::ReportInputs ri;
    ri.trace_jsonl_path = trace_jsonl;
    ri.metrics_csv_path = metrics_csv;
    ri.health_json_path = health_report;
    ri.peak_json_path = peak_cache;
    obs::write_report_html(ri, report_path);
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}
