// Searching over an unreliable mobile network: soft synchronization with
// delay compensation (paper §V) plus adaptive transmission (§IV).
//
// Half the participants ride buses, half ride cars (the paper's "Bus+Car"
// mix); 70% of updates arrive late or not at all. The example compares
// the three treatments of stale updates and reports per-round transmission
// latency under the adaptive and random assignment strategies. All three
// runs stream round/span events into one JSONL telemetry trace
// (fms_stale_network_trace.jsonl), labeled per variant.
#include <cstdio>

#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/obs/telemetry.h"

int main() {
  using namespace fms;
  Rng rng(23);
  SynthSpec spec;
  spec.train_size = 1200;
  spec.test_size = 300;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  auto partition = iid_partition(data.train.size(), 10, rng);

  SearchConfig cfg = default_config();
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 6;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 16;

  // One shared trace across the three variants: configure telemetry once
  // here (not via cfg.telemetry, which would reopen the file per run).
  TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.trace_jsonl_path = "fms_stale_network_trace.jsonl";
  tcfg.metrics_csv_path = "fms_stale_network_metrics.csv";
  obs::Telemetry::instance().configure(tcfg);

  struct Variant {
    const char* name;
    StalePolicy policy;
  };
  for (const Variant& v :
       {Variant{"delay-compensated (ours)", StalePolicy::kCompensate},
        Variant{"use stale directly", StalePolicy::kUseStale},
        Variant{"throw stale away", StalePolicy::kDrop}}) {
    obs::Telemetry::instance().set_label(v.name);
    FederatedSearch search(cfg, data.train, partition);
    search.run_warmup(100);
    SearchOptions opts;
    opts.stale_policy = v.policy;
    opts.staleness = StalenessDistribution::severe();  // 30/40/20/10
    opts.assign = AssignStrategy::kAdaptive;
    auto records = search.run_search(150, opts);

    int arrived = 0, dropped = 0, stale = 0, compensated = 0;
    double max_lat = 0.0;
    for (const auto& r : records) {
      arrived += r.arrived;
      dropped += r.dropped;
      stale += r.stale_arrived;
      compensated += r.compensated;
      max_lat += r.max_latency_s;
    }
    std::printf("%-26s final moving acc %.3f | updates used %4d (stale %3d, "
                "repaired %3d), lost %3d | mean per-round max latency %.3fs\n",
                v.name, records.back().moving_avg, arrived, stale, compensated,
                dropped, max_lat / records.size());
  }
  obs::Telemetry::instance().finish();
  std::printf("\nthe compensated run keeps nearly every update useful and "
              "reaches the best searching accuracy — the paper's Fig. 8.\n"
              "telemetry: fms_stale_network_trace.jsonl (round/span events), "
              "fms_stale_network_metrics.csv (metrics snapshot)\n");
  return 0;
}
