// Transferability (paper §VI-E): search once on a small 10-class dataset,
// then deploy the discovered cell on a 100-class dataset by restacking it
// with a wider/deeper configuration and a new classifier.
#include <cstdio>

#include "src/core/retrain.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"

int main() {
  using namespace fms;
  Rng rng(31);
  SynthSpec spec;
  spec.train_size = 1200;
  spec.test_size = 300;
  spec.image_size = 8;
  TrainTest c10 = make_synth_c10(spec, rng);
  auto partition = iid_partition(c10.train.size(), 10, rng);

  SearchConfig cfg = default_config();
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 6;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 16;
  cfg.telemetry.enabled = true;  // per-round progress via the console sink
  cfg.telemetry.console = true;
  cfg.telemetry.console_every = 50;

  std::printf("== searching on the 10-class dataset ==\n");
  FederatedSearch search(cfg, c10.train, partition);
  search.run_warmup(120);
  search.run_search(150, SearchOptions{});
  Genotype genotype = search.derive();
  std::printf("cell found: %s\n\n", genotype.to_string().c_str());

  // The 100-class target shares the texture family of the search dataset
  // (as CIFAR100 shares CIFAR10's domain).
  SynthSpec spec100 = spec;
  spec100.train_size = 2400;
  spec100.test_size = 500;
  Rng rng100(32);
  TrainTest c100 = make_synth_c100(spec100, rng100);

  std::printf("== transferring the cell to the 100-class dataset ==\n");
  SupernetConfig deploy = cfg.supernet;
  deploy.num_classes = 100;
  deploy.num_cells = 4;       // restack deeper for the harder task
  deploy.stem_channels = 8;   // and wider
  Rng net_rng(33);
  DiscreteNet model(genotype, deploy, net_rng);
  Rng train_rng(34);
  RetrainResult res = centralized_train(
      model, c100.train, c100.test, /*epochs=*/5, /*batch=*/32,
      SGD::Options{0.025F, 0.9F, 3e-4F, 5.0F}, nullptr, train_rng);
  std::printf("transferred model: %.2fM params, 100-class test accuracy "
              "%.3f (chance = 0.010)\n",
              model.param_count() / 1e6, res.final_test_accuracy);
  return 0;
}
