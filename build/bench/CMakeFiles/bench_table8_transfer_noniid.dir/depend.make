# Empty dependencies file for bench_table8_transfer_noniid.
# This may be replaced when dependencies are built.
