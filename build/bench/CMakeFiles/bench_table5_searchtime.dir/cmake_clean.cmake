file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_searchtime.dir/bench_table5_searchtime.cpp.o"
  "CMakeFiles/bench_table5_searchtime.dir/bench_table5_searchtime.cpp.o.d"
  "bench_table5_searchtime"
  "bench_table5_searchtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_searchtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
