# Empty dependencies file for bench_table5_searchtime.
# This may be replaced when dependencies are built.
