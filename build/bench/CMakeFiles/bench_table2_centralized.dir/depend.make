# Empty dependencies file for bench_table2_centralized.
# This may be replaced when dependencies are built.
