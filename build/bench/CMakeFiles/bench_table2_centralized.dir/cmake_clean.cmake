file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_centralized.dir/bench_table2_centralized.cpp.o"
  "CMakeFiles/bench_table2_centralized.dir/bench_table2_centralized.cpp.o.d"
  "bench_table2_centralized"
  "bench_table2_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
