# Empty compiler generated dependencies file for bench_fig5_alpha_only.
# This may be replaced when dependencies are built.
