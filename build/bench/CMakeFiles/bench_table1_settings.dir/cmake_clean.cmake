file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_settings.dir/bench_table1_settings.cpp.o"
  "CMakeFiles/bench_table1_settings.dir/bench_table1_settings.cpp.o.d"
  "bench_table1_settings"
  "bench_table1_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
