file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_participants.dir/bench_table6_participants.cpp.o"
  "CMakeFiles/bench_table6_participants.dir/bench_table6_participants.cpp.o.d"
  "bench_table6_participants"
  "bench_table6_participants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_participants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
