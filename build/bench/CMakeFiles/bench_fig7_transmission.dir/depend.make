# Empty dependencies file for bench_fig7_transmission.
# This may be replaced when dependencies are built.
