file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_transmission.dir/bench_fig7_transmission.cpp.o"
  "CMakeFiles/bench_fig7_transmission.dir/bench_fig7_transmission.cpp.o.d"
  "bench_fig7_transmission"
  "bench_fig7_transmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
