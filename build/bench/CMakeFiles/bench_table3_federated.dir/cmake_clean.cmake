file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_federated.dir/bench_table3_federated.cpp.o"
  "CMakeFiles/bench_table3_federated.dir/bench_table3_federated.cpp.o.d"
  "bench_table3_federated"
  "bench_table3_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
