# Empty dependencies file for bench_table3_federated.
# This may be replaced when dependencies are built.
