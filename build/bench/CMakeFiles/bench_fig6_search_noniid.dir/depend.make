# Empty dependencies file for bench_fig6_search_noniid.
# This may be replaced when dependencies are built.
