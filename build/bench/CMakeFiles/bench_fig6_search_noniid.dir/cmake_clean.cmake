file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_search_noniid.dir/bench_fig6_search_noniid.cpp.o"
  "CMakeFiles/bench_fig6_search_noniid.dir/bench_fig6_search_noniid.cpp.o.d"
  "bench_fig6_search_noniid"
  "bench_fig6_search_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_search_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
