file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_transfer_iid.dir/bench_table7_transfer_iid.cpp.o"
  "CMakeFiles/bench_table7_transfer_iid.dir/bench_table7_transfer_iid.cpp.o.d"
  "bench_table7_transfer_iid"
  "bench_table7_transfer_iid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_transfer_iid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
