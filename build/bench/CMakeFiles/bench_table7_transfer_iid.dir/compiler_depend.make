# Empty compiler generated dependencies file for bench_table7_transfer_iid.
# This may be replaced when dependencies are built.
