file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_softsync.dir/bench_ablation_softsync.cpp.o"
  "CMakeFiles/bench_ablation_softsync.dir/bench_ablation_softsync.cpp.o.d"
  "bench_ablation_softsync"
  "bench_ablation_softsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_softsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
