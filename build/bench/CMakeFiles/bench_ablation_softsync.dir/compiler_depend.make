# Empty compiler generated dependencies file for bench_ablation_softsync.
# This may be replaced when dependencies are built.
