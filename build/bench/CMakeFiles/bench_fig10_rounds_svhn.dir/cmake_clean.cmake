file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rounds_svhn.dir/bench_fig10_rounds_svhn.cpp.o"
  "CMakeFiles/bench_fig10_rounds_svhn.dir/bench_fig10_rounds_svhn.cpp.o.d"
  "bench_fig10_rounds_svhn"
  "bench_fig10_rounds_svhn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rounds_svhn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
