# Empty dependencies file for bench_fig10_rounds_svhn.
# This may be replaced when dependencies are built.
