# Empty compiler generated dependencies file for bench_fig9_rounds_c10.
# This may be replaced when dependencies are built.
