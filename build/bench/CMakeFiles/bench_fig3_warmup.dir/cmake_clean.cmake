file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_warmup.dir/bench_fig3_warmup.cpp.o"
  "CMakeFiles/bench_fig3_warmup.dir/bench_fig3_warmup.cpp.o.d"
  "bench_fig3_warmup"
  "bench_fig3_warmup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
