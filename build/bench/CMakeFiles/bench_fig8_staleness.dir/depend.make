# Empty dependencies file for bench_fig8_staleness.
# This may be replaced when dependencies are built.
