file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_staleness.dir/bench_fig8_staleness.cpp.o"
  "CMakeFiles/bench_fig8_staleness.dir/bench_fig8_staleness.cpp.o.d"
  "bench_fig8_staleness"
  "bench_fig8_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
