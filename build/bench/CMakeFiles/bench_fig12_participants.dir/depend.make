# Empty dependencies file for bench_fig12_participants.
# This may be replaced when dependencies are built.
