file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_participants.dir/bench_fig12_participants.cpp.o"
  "CMakeFiles/bench_fig12_participants.dir/bench_fig12_participants.cpp.o.d"
  "bench_fig12_participants"
  "bench_fig12_participants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_participants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
