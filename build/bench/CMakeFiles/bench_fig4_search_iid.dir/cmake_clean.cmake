file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_search_iid.dir/bench_fig4_search_iid.cpp.o"
  "CMakeFiles/bench_fig4_search_iid.dir/bench_fig4_search_iid.cpp.o.d"
  "bench_fig4_search_iid"
  "bench_fig4_search_iid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_search_iid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
