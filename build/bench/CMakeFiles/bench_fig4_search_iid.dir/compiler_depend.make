# Empty compiler generated dependencies file for bench_fig4_search_iid.
# This may be replaced when dependencies are built.
