# Empty dependencies file for bench_fig11_transfer_c100.
# This may be replaced when dependencies are built.
