# Empty dependencies file for fms.
# This may be replaced when dependencies are built.
