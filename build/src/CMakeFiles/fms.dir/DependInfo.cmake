
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/enas.cpp" "src/CMakeFiles/fms.dir/baselines/enas.cpp.o" "gcc" "src/CMakeFiles/fms.dir/baselines/enas.cpp.o.d"
  "/root/repo/src/baselines/evofednas.cpp" "src/CMakeFiles/fms.dir/baselines/evofednas.cpp.o" "gcc" "src/CMakeFiles/fms.dir/baselines/evofednas.cpp.o.d"
  "/root/repo/src/baselines/gradient_nas.cpp" "src/CMakeFiles/fms.dir/baselines/gradient_nas.cpp.o" "gcc" "src/CMakeFiles/fms.dir/baselines/gradient_nas.cpp.o.d"
  "/root/repo/src/baselines/resnet_style.cpp" "src/CMakeFiles/fms.dir/baselines/resnet_style.cpp.o" "gcc" "src/CMakeFiles/fms.dir/baselines/resnet_style.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/fms.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/fms.dir/common/config.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/CMakeFiles/fms.dir/core/checkpoint.cpp.o" "gcc" "src/CMakeFiles/fms.dir/core/checkpoint.cpp.o.d"
  "/root/repo/src/core/retrain.cpp" "src/CMakeFiles/fms.dir/core/retrain.cpp.o" "gcc" "src/CMakeFiles/fms.dir/core/retrain.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/CMakeFiles/fms.dir/core/search.cpp.o" "gcc" "src/CMakeFiles/fms.dir/core/search.cpp.o.d"
  "/root/repo/src/data/cifar_io.cpp" "src/CMakeFiles/fms.dir/data/cifar_io.cpp.o" "gcc" "src/CMakeFiles/fms.dir/data/cifar_io.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/fms.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/fms.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/synth.cpp" "src/CMakeFiles/fms.dir/data/synth.cpp.o" "gcc" "src/CMakeFiles/fms.dir/data/synth.cpp.o.d"
  "/root/repo/src/dc/compensation.cpp" "src/CMakeFiles/fms.dir/dc/compensation.cpp.o" "gcc" "src/CMakeFiles/fms.dir/dc/compensation.cpp.o.d"
  "/root/repo/src/fed/compression.cpp" "src/CMakeFiles/fms.dir/fed/compression.cpp.o" "gcc" "src/CMakeFiles/fms.dir/fed/compression.cpp.o.d"
  "/root/repo/src/fed/messages.cpp" "src/CMakeFiles/fms.dir/fed/messages.cpp.o" "gcc" "src/CMakeFiles/fms.dir/fed/messages.cpp.o.d"
  "/root/repo/src/fed/participant.cpp" "src/CMakeFiles/fms.dir/fed/participant.cpp.o" "gcc" "src/CMakeFiles/fms.dir/fed/participant.cpp.o.d"
  "/root/repo/src/nas/cell.cpp" "src/CMakeFiles/fms.dir/nas/cell.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nas/cell.cpp.o.d"
  "/root/repo/src/nas/discrete_net.cpp" "src/CMakeFiles/fms.dir/nas/discrete_net.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nas/discrete_net.cpp.o.d"
  "/root/repo/src/nas/dot_export.cpp" "src/CMakeFiles/fms.dir/nas/dot_export.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nas/dot_export.cpp.o.d"
  "/root/repo/src/nas/flops.cpp" "src/CMakeFiles/fms.dir/nas/flops.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nas/flops.cpp.o.d"
  "/root/repo/src/nas/genotype.cpp" "src/CMakeFiles/fms.dir/nas/genotype.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nas/genotype.cpp.o.d"
  "/root/repo/src/nas/ops.cpp" "src/CMakeFiles/fms.dir/nas/ops.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nas/ops.cpp.o.d"
  "/root/repo/src/nas/supernet.cpp" "src/CMakeFiles/fms.dir/nas/supernet.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nas/supernet.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/CMakeFiles/fms.dir/net/trace.cpp.o" "gcc" "src/CMakeFiles/fms.dir/net/trace.cpp.o.d"
  "/root/repo/src/net/transmission.cpp" "src/CMakeFiles/fms.dir/net/transmission.cpp.o" "gcc" "src/CMakeFiles/fms.dir/net/transmission.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/fms.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/fms.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/CMakeFiles/fms.dir/nn/optim.cpp.o" "gcc" "src/CMakeFiles/fms.dir/nn/optim.cpp.o.d"
  "/root/repo/src/rl/policy.cpp" "src/CMakeFiles/fms.dir/rl/policy.cpp.o" "gcc" "src/CMakeFiles/fms.dir/rl/policy.cpp.o.d"
  "/root/repo/src/sim/round_time.cpp" "src/CMakeFiles/fms.dir/sim/round_time.cpp.o" "gcc" "src/CMakeFiles/fms.dir/sim/round_time.cpp.o.d"
  "/root/repo/src/sim/staleness.cpp" "src/CMakeFiles/fms.dir/sim/staleness.cpp.o" "gcc" "src/CMakeFiles/fms.dir/sim/staleness.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/fms.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/fms.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/fms.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/fms.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
