file(REMOVE_RECURSE
  "libfms.a"
)
