# Empty dependencies file for noniid_federated_search.
# This may be replaced when dependencies are built.
