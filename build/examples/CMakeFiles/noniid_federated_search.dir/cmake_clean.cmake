file(REMOVE_RECURSE
  "CMakeFiles/noniid_federated_search.dir/noniid_federated_search.cpp.o"
  "CMakeFiles/noniid_federated_search.dir/noniid_federated_search.cpp.o.d"
  "noniid_federated_search"
  "noniid_federated_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noniid_federated_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
