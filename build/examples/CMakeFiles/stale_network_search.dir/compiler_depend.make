# Empty compiler generated dependencies file for stale_network_search.
# This may be replaced when dependencies are built.
