file(REMOVE_RECURSE
  "CMakeFiles/stale_network_search.dir/stale_network_search.cpp.o"
  "CMakeFiles/stale_network_search.dir/stale_network_search.cpp.o.d"
  "stale_network_search"
  "stale_network_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stale_network_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
