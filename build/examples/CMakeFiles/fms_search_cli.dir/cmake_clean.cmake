file(REMOVE_RECURSE
  "CMakeFiles/fms_search_cli.dir/fms_search_cli.cpp.o"
  "CMakeFiles/fms_search_cli.dir/fms_search_cli.cpp.o.d"
  "fms_search_cli"
  "fms_search_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fms_search_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
