# Empty compiler generated dependencies file for fms_search_cli.
# This may be replaced when dependencies are built.
