file(REMOVE_RECURSE
  "CMakeFiles/transfer_search.dir/transfer_search.cpp.o"
  "CMakeFiles/transfer_search.dir/transfer_search.cpp.o.d"
  "transfer_search"
  "transfer_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
