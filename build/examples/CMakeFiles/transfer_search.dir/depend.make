# Empty dependencies file for transfer_search.
# This may be replaced when dependencies are built.
