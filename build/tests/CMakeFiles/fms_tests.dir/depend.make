# Empty dependencies file for fms_tests.
# This may be replaced when dependencies are built.
