
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cifar_io.cpp" "tests/CMakeFiles/fms_tests.dir/test_cifar_io.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_cifar_io.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/fms_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compression.cpp" "tests/CMakeFiles/fms_tests.dir/test_compression.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_compression.cpp.o.d"
  "/root/repo/tests/test_core_edge.cpp" "tests/CMakeFiles/fms_tests.dir/test_core_edge.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_core_edge.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/fms_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_dot_schedule.cpp" "tests/CMakeFiles/fms_tests.dir/test_dot_schedule.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_dot_schedule.cpp.o.d"
  "/root/repo/tests/test_fed_baselines.cpp" "tests/CMakeFiles/fms_tests.dir/test_fed_baselines.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_fed_baselines.cpp.o.d"
  "/root/repo/tests/test_flops_checkpoint.cpp" "tests/CMakeFiles/fms_tests.dir/test_flops_checkpoint.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_flops_checkpoint.cpp.o.d"
  "/root/repo/tests/test_mixed_mode.cpp" "tests/CMakeFiles/fms_tests.dir/test_mixed_mode.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_mixed_mode.cpp.o.d"
  "/root/repo/tests/test_nas.cpp" "tests/CMakeFiles/fms_tests.dir/test_nas.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_nas.cpp.o.d"
  "/root/repo/tests/test_net_sim.cpp" "tests/CMakeFiles/fms_tests.dir/test_net_sim.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_net_sim.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/fms_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/fms_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rl.cpp" "tests/CMakeFiles/fms_tests.dir/test_rl.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_rl.cpp.o.d"
  "/root/repo/tests/test_search_integration.cpp" "tests/CMakeFiles/fms_tests.dir/test_search_integration.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_search_integration.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/fms_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/fms_tests.dir/test_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
