// The benchmark suite. Every benchmark is seeded and sized so that one
// repetition finishes in well under a second on a laptop core while
// still exercising the production code path (no toy stand-ins): micro
// kernels (conv/BN/linear, tensor axpy), the supernet's mask/gather/
// scatter plumbing, every aggregation estimator at m in {10, 50},
// checkpoint serialize/restore, message codecs, transmission scheduling,
// and whole warm-up / search rounds as macro benches.
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/agg/aggregator.h"
#include "src/core/checkpoint.h"
#include "src/core/journal.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/fed/messages.h"
#include "src/nas/supernet.h"
#include "src/net/transmission.h"
#include "src/nn/layers.h"
#include "src/tensor/tensor.h"
#include "tools/fms_bench/bench.h"

namespace fms::bench {
namespace {

SearchConfig bench_search_config() {
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = 1234;
  return cfg;
}

struct SearchState {
  TrainTest data;
  std::unique_ptr<FederatedSearch> search;
};

std::shared_ptr<SearchState> make_search_state(std::uint64_t seed) {
  Rng rng(seed);
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  SearchConfig cfg = bench_search_config();
  auto parts =
      iid_partition(data.train.size(), cfg.schedule.num_participants, rng);
  // The dataset must land at its final heap address before the search is
  // built: participants keep pointers into it.
  auto state =
      std::make_shared<SearchState>(SearchState{std::move(data), nullptr});
  state->search =
      std::make_unique<FederatedSearch>(cfg, state->data.train, parts);
  return state;
}

// m updates of dimension d, deterministic content.
std::vector<std::vector<float>> make_updates(std::size_t m, std::size_t d,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> u(m);
  for (auto& v : u) {
    v.resize(d);
    for (auto& x : v) x = rng.normal(0.0F, 0.1F);
  }
  return u;
}

Benchmark agg_bench(const std::string& name, const std::string& spec,
                    std::size_t m, std::size_t d, int iters) {
  return Benchmark{
      name, iters, [spec, m, d]() -> std::function<void()> {
        auto updates =
            std::make_shared<std::vector<std::vector<float>>>(
                make_updates(m, d, 0xA66 + m));
        agg::AggregatorConfig cfg = agg::AggregatorConfig::parse(spec);
        return [updates, cfg] {
          agg::AggregationOutcome out = agg::aggregate(cfg, *updates);
          (void)out;
        };
      }};
}

}  // namespace

std::vector<Benchmark> default_benchmarks() {
  std::vector<Benchmark> list;

  // --- micro: per-op kernels ---
  list.push_back({"nn.conv3x3_fwd", 40, []() -> std::function<void()> {
                    Rng rng(1);
                    auto conv = std::make_shared<Conv2d>(
                        8, 8, 3, Conv2dSpec{1, 1, 1, 1}, rng);
                    auto x = std::make_shared<Tensor>(
                        Tensor::randn({4, 8, 8, 8}, rng));
                    return [conv, x] { conv->forward(*x, /*train=*/false); };
                  }});
  list.push_back({"nn.conv3x3_fwd_bwd", 20, []() -> std::function<void()> {
                    Rng rng(2);
                    auto conv = std::make_shared<Conv2d>(
                        8, 8, 3, Conv2dSpec{1, 1, 1, 1}, rng);
                    auto x = std::make_shared<Tensor>(
                        Tensor::randn({4, 8, 8, 8}, rng));
                    auto g = std::make_shared<Tensor>(
                        Tensor::randn({4, 8, 8, 8}, rng));
                    return [conv, x, g] {
                      conv->forward(*x, /*train=*/true);
                      conv->backward(*g);
                    };
                  }});
  list.push_back({"nn.bn_fwd", 60, []() -> std::function<void()> {
                    Rng rng(3);
                    auto bn = std::make_shared<BatchNorm2d>(8);
                    auto x = std::make_shared<Tensor>(
                        Tensor::randn({4, 8, 8, 8}, rng));
                    return [bn, x] { bn->forward(*x, /*train=*/false); };
                  }});
  list.push_back({"nn.bn_fwd_bwd", 30, []() -> std::function<void()> {
                    Rng rng(4);
                    auto bn = std::make_shared<BatchNorm2d>(8);
                    auto x = std::make_shared<Tensor>(
                        Tensor::randn({4, 8, 8, 8}, rng));
                    auto g = std::make_shared<Tensor>(
                        Tensor::randn({4, 8, 8, 8}, rng));
                    return [bn, x, g] {
                      bn->forward(*x, /*train=*/true);
                      bn->backward(*g);
                    };
                  }});
  list.push_back({"nn.sep_conv_fwd", 10, []() -> std::function<void()> {
                    Rng rng(5);
                    auto op = std::shared_ptr<Module>(
                        make_sep_conv(8, 3, 1, rng));
                    auto x = std::make_shared<Tensor>(
                        Tensor::randn({4, 8, 8, 8}, rng));
                    return [op, x] { op->forward(*x, /*train=*/false); };
                  }});
  list.push_back({"tensor.axpy_64k", 200, []() -> std::function<void()> {
                    Rng rng(6);
                    auto a = std::make_shared<Tensor>(
                        Tensor::randn({65536}, rng));
                    auto b = std::make_shared<Tensor>(
                        Tensor::randn({65536}, rng));
                    return [a, b] { *a += *b; };
                  }});

  // --- micro: supernet parameter plumbing ---
  list.push_back({"nas.mask_ids", 20, []() -> std::function<void()> {
                    Rng rng(7);
                    SearchConfig cfg = bench_search_config();
                    auto net =
                        std::make_shared<Supernet>(cfg.supernet, rng);
                    auto mask = std::make_shared<Mask>(
                        random_mask(net->num_edges(), rng));
                    return [net, mask] { net->masked_param_ids(*mask); };
                  }});
  list.push_back({"nas.gather_scatter", 15, []() -> std::function<void()> {
                    Rng rng(8);
                    SearchConfig cfg = bench_search_config();
                    auto net =
                        std::make_shared<Supernet>(cfg.supernet, rng);
                    const Mask mask = random_mask(net->num_edges(), rng);
                    auto ids = std::make_shared<std::vector<std::size_t>>(
                        net->masked_param_ids(mask));
                    return [net, ids] {
                      std::vector<float> flat = net->gather_values(*ids);
                      net->scatter_add_grads(*ids, flat);
                    };
                  }});
  list.push_back({"nas.densify_presence", 10, []() -> std::function<void()> {
                    Rng rng(9);
                    SearchConfig cfg = bench_search_config();
                    auto net =
                        std::make_shared<Supernet>(cfg.supernet, rng);
                    const Mask mask = random_mask(net->num_edges(), rng);
                    auto ids = std::make_shared<std::vector<std::size_t>>(
                        net->masked_param_ids(mask));
                    auto flat = std::make_shared<std::vector<float>>(
                        net->gather_values(*ids));
                    return [net, ids, flat] {
                      net->dense_from_masked(*ids, *flat);
                      net->presence_from_masked(*ids);
                    };
                  }});

  // --- micro: aggregation estimators at m in {10, 50} ---
  list.push_back(agg_bench("agg.mean_m10", "mean", 10, 20000, 20));
  list.push_back(agg_bench("agg.clipped_mean_m50", "clipped_mean:3", 50,
                           4000, 10));
  list.push_back(
      agg_bench("agg.coordinate_median_m10", "coordinate_median", 10, 20000,
                5));
  list.push_back(
      agg_bench("agg.trimmed_mean_m50", "trimmed_mean:5", 50, 4000, 5));
  list.push_back(agg_bench("agg.krum_m10", "krum:2", 10, 4000, 5));

  // --- micro: serialization + transport ---
  list.push_back({"fed.msg_roundtrip", 20, []() -> std::function<void()> {
                    Rng rng(10);
                    auto msg = std::make_shared<UpdateMsg>();
                    msg->round = 5;
                    msg->participant = 2;
                    msg->reward = 0.4F;
                    msg->loss = 1.2F;
                    msg->grads.resize(20000);
                    for (auto& g : msg->grads) g = rng.normal(0.0F, 0.1F);
                    return [msg] {
                      UpdateMsg::deserialize(msg->serialize());
                    };
                  }});
  list.push_back({"net.transmission_m50", 50, []() -> std::function<void()> {
                    auto rng = std::make_shared<Rng>(11);
                    auto bytes =
                        std::make_shared<std::vector<std::size_t>>();
                    auto bw = std::make_shared<std::vector<double>>();
                    for (int p = 0; p < 50; ++p) {
                      bytes->push_back(
                          static_cast<std::size_t>(100000 + 997 * p));
                      bw->push_back(1e6 + 3.7e4 * p);
                    }
                    return [rng, bytes, bw] {
                      const std::vector<int> assignment = assign_models(
                          *bytes, *bw, AssignStrategy::kAdaptive, *rng);
                      transmission_latency(*bytes, *bw, assignment,
                                           /*average_size=*/false);
                    };
                  }});

  // --- macro: checkpoint serialize / restore ---
  list.push_back({"ckpt.serialize", 4, []() -> std::function<void()> {
                    auto state = make_search_state(0xC4B1);
                    state->search->run_warmup(1);
                    return [state] {
                      state->search->checkpoint().serialize();
                    };
                  }});
  list.push_back({"ckpt.restore", 4, []() -> std::function<void()> {
                    auto state = make_search_state(0xC4B2);
                    state->search->run_warmup(1);
                    auto bytes =
                        std::make_shared<std::vector<std::uint8_t>>(
                            state->search->checkpoint().serialize());
                    return [state, bytes] {
                      state->search->restore(
                          SearchCheckpoint::deserialize(*bytes));
                    };
                  }});

  list.push_back({"ckpt.journal_append", 4, []() -> std::function<void()> {
                    auto state = make_search_state(0xC4B3);
                    state->search->run_warmup(1);
                    // One representative frame, re-appended each rep; a
                    // fresh temp journal per setup keeps file growth off
                    // the cross-run comparison.
                    auto frame = std::make_shared<JournalFrame>();
                    frame->phase = 0;
                    frame->round = 0;
                    frame->rng_cursor = std::string(32, 'r');
                    frame->staleness_cursor = std::string(32, 's');
                    const std::string path =
                        (std::filesystem::temp_directory_path() /
                         "fms_bench_journal_append.wal")
                            .string();
                    std::filesystem::remove(path);
                    auto wal =
                        std::make_shared<RoundJournal>(path, FaultPlan{});
                    return [frame, wal] { wal->append(*frame); };
                  }});

  // --- macro: full federated rounds ---
  list.push_back({"fed.round_warmup", 1, []() -> std::function<void()> {
                    auto state = make_search_state(0xF00D);
                    return [state] { state->search->run_warmup(1); };
                  }});
  list.push_back({"fed.round_search", 1, []() -> std::function<void()> {
                    auto state = make_search_state(0xF00E);
                    state->search->run_warmup(2);
                    auto opts = std::make_shared<SearchOptions>();
                    opts->stale_policy = StalePolicy::kCompensate;
                    opts->staleness = StalenessDistribution::severe();
                    return [state, opts] {
                      state->search->run_search(1, *opts);
                    };
                  }});

  return list;
}

}  // namespace fms::bench
