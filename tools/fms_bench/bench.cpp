#include "tools/fms_bench/bench.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/obs/alloc.h"
#include "src/obs/profile.h"
#include "src/obs/work.h"

namespace fms::bench {
namespace {

double percentile(std::vector<double> sorted, double q) {
  FMS_CHECK(!sorted.empty());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void append_json_number(std::string* out, double v) {
  char buf[64];
  if (!std::isfinite(v)) v = 0.0;
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    // fms-lint: allow(float-eq) -- integral-value check selects the
    // integer formatting; both branches emit valid JSON either way.
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  *out += buf;
}

void append_json_string(std::string* out, const std::string& s) {
  *out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else {
      *out += c;
    }
  }
  *out += '"';
}

// --- minimal strict parser for the subset to_json emits ---

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    FMS_CHECK_MSG(pos_ < text_.size(), "bench json: unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    FMS_CHECK_MSG(peek() == c, "bench json: expected '"
                                   << c << "' at offset " << pos_ << ", got '"
                                   << text_[pos_] << "'");
    ++pos_;
  }

  bool consume_if(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      FMS_CHECK_MSG(pos_ < text_.size(), "bench json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        FMS_CHECK_MSG(pos_ < text_.size(), "bench json: bad escape");
        out += text_[pos_++];
      } else {
        out += c;
      }
    }
    return out;
  }

  double parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    FMS_CHECK_MSG(end != start, "bench json: expected number at offset "
                                    << pos_);
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  // Walks an object, invoking fn(key) positioned at each value.
  template <typename Fn>
  void parse_object(Fn&& fn) {
    expect('{');
    if (consume_if('}')) return;
    while (true) {
      const std::string key = parse_string();
      expect(':');
      fn(key);
      if (consume_if(',')) continue;
      expect('}');
      break;
    }
  }

  void skip_value() {
    const char c = peek();
    if (c == '{') {
      parse_object([this](const std::string&) { skip_value(); });
    } else if (c == '"') {
      parse_string();
    } else {
      parse_number();
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

BenchResult parse_result(JsonParser* p, const std::string& name) {
  BenchResult r;
  r.name = name;
  p->parse_object([&](const std::string& key) {
    if (key == "median_ns") {
      r.median_ns = p->parse_number();
    } else if (key == "p10_ns") {
      r.p10_ns = p->parse_number();
    } else if (key == "p90_ns") {
      r.p90_ns = p->parse_number();
    } else if (key == "bytes_alloc") {
      r.bytes_alloc = static_cast<std::uint64_t>(p->parse_number());
    } else if (key == "allocs") {
      r.allocs = static_cast<std::uint64_t>(p->parse_number());
    } else if (key == "flops") {
      r.flops = static_cast<std::uint64_t>(p->parse_number());
    } else if (key == "bytes_read") {
      r.bytes_read = static_cast<std::uint64_t>(p->parse_number());
    } else if (key == "bytes_written") {
      r.bytes_written = static_cast<std::uint64_t>(p->parse_number());
    } else if (key == "iters") {
      r.iters = static_cast<int>(p->parse_number());
    } else if (key == "repeats") {
      r.repeats = static_cast<int>(p->parse_number());
    } else if (key == "zones") {
      p->parse_object([&](const std::string& zone) {
        ZoneSummary z;
        p->parse_object([&](const std::string& field) {
          if (field == "calls") {
            z.calls = static_cast<std::uint64_t>(p->parse_number());
          } else if (field == "incl_ns") {
            z.incl_ns = static_cast<std::uint64_t>(p->parse_number());
          } else if (field == "excl_ns") {
            z.excl_ns = static_cast<std::uint64_t>(p->parse_number());
          } else {
            p->skip_value();
          }
        });
        r.zones[zone] = z;
      });
    } else {
      p->skip_value();
    }
  });
  return r;
}

}  // namespace

std::vector<BenchResult> run_benchmarks(
    const std::vector<Benchmark>& list, const RunOptions& opts,
    const std::function<void(const std::string&)>& log) {
  FMS_CHECK(opts.repeats >= 1 && opts.warmup >= 0);
  std::vector<BenchResult> results;
  for (const Benchmark& bench : list) {
    if (!opts.filter.empty() &&
        bench.name.find(opts.filter) == std::string::npos) {
      continue;
    }
    FMS_CHECK_MSG(bench.iters >= 1, "benchmark " << bench.name
                                                 << " needs iters >= 1");
    std::function<void()> iteration = bench.setup();

    for (int w = 0; w < opts.warmup; ++w) {
      for (int i = 0; i < bench.iters; ++i) iteration();
    }

    std::vector<double> per_iter_ns;
    per_iter_ns.reserve(static_cast<std::size_t>(opts.repeats));
    for (int r = 0; r < opts.repeats; ++r) {
      Stopwatch sw;
      for (int i = 0; i < bench.iters; ++i) iteration();
      per_iter_ns.push_back(sw.elapsed_seconds() * 1e9 /
                            static_cast<double>(bench.iters));
    }
    std::sort(per_iter_ns.begin(), per_iter_ns.end());

    BenchResult result;
    result.name = bench.name;
    result.iters = bench.iters;
    result.repeats = opts.repeats;
    result.median_ns = percentile(per_iter_ns, 0.5);
    result.p10_ns = percentile(per_iter_ns, 0.1);
    result.p90_ns = percentile(per_iter_ns, 0.9);

    if (opts.accounting_pass) {
      // Untimed instrumented repetition: alloc ledger + zone tree. Saved
      // and restored around the pass so the harness composes with
      // externally enabled profiling.
      const bool prof_was = obs::profiling_enabled();
      const bool alloc_was = obs::alloc_tracking_enabled();
      const bool work_was = obs::work_tracking_enabled();
      const obs::AllocStats before_stats = obs::alloc_stats();
      obs::set_profiling_enabled(true);
      obs::set_alloc_tracking_enabled(true);
      obs::set_work_tracking_enabled(true);
      obs::reset_profiler();
      obs::reset_alloc_stats();
      obs::reset_work_ledger();
      for (int i = 0; i < bench.iters; ++i) iteration();
      const obs::AllocStats after = obs::alloc_stats();
      result.bytes_alloc = after.total_bytes;
      result.allocs = after.allocs;
      const obs::WorkReport work = obs::collect_work();
      result.flops = work.total.flops;
      result.bytes_read = work.total.bytes_read;
      result.bytes_written = work.total.bytes_written;
      const obs::ProfileReport report = obs::collect_profile();
      for (const obs::ZoneStats& z : report.zones) {
        // reset_profiler keeps the merged tree's shape, so zones from
        // earlier benchmarks reappear with zeroed counters; skip them.
        if (z.calls == 0 && z.allocs == 0) continue;
        result.zones[z.path] = ZoneSummary{z.calls, z.incl_ns, z.excl_ns};
      }
      obs::set_profiling_enabled(prof_was);
      obs::set_alloc_tracking_enabled(alloc_was);
      obs::set_work_tracking_enabled(work_was);
      obs::restore_alloc_stats(before_stats);
      obs::reset_profiler();
      obs::reset_work_ledger();
    }

    if (log) {
      char line[200];
      std::snprintf(line, sizeof(line),
                    "%-28s median %12.1f ns  p10 %12.1f  p90 %12.1f  "
                    "alloc %8.1f KB  %7.3f GF/s  ai %5.2f",
                    result.name.c_str(), result.median_ns, result.p10_ns,
                    result.p90_ns,
                    static_cast<double>(result.bytes_alloc) / 1024.0,
                    achieved_gflops(result),
                    bench_arithmetic_intensity(result));
      log(line);
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::string to_json(const std::vector<BenchResult>& results,
                    long long timestamp_unix) {
  std::string out = "{\n  \"schema\": 1,\n  \"timestamp_unix\": ";
  append_json_number(&out, static_cast<double>(timestamp_unix));
  out += ",\n  \"benchmarks\": {";
  bool first = true;
  for (const BenchResult& r : results) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(&out, r.name);
    out += ": {\"median_ns\": ";
    append_json_number(&out, r.median_ns);
    out += ", \"p10_ns\": ";
    append_json_number(&out, r.p10_ns);
    out += ", \"p90_ns\": ";
    append_json_number(&out, r.p90_ns);
    out += ", \"bytes_alloc\": ";
    append_json_number(&out, static_cast<double>(r.bytes_alloc));
    out += ", \"allocs\": ";
    append_json_number(&out, static_cast<double>(r.allocs));
    out += ", \"flops\": ";
    append_json_number(&out, static_cast<double>(r.flops));
    out += ", \"bytes_read\": ";
    append_json_number(&out, static_cast<double>(r.bytes_read));
    out += ", \"bytes_written\": ";
    append_json_number(&out, static_cast<double>(r.bytes_written));
    out += ", \"iters\": ";
    append_json_number(&out, r.iters);
    out += ", \"repeats\": ";
    append_json_number(&out, r.repeats);
    out += ", \"zones\": {";
    bool zfirst = true;
    for (const auto& [path, z] : r.zones) {
      if (!zfirst) out += ", ";
      zfirst = false;
      append_json_string(&out, path);
      out += ": {\"calls\": ";
      append_json_number(&out, static_cast<double>(z.calls));
      out += ", \"incl_ns\": ";
      append_json_number(&out, static_cast<double>(z.incl_ns));
      out += ", \"excl_ns\": ";
      append_json_number(&out, static_cast<double>(z.excl_ns));
      out += "}";
    }
    out += "}}";
  }
  out += "\n  }\n}\n";
  return out;
}

BenchFile parse_bench_json(const std::string& text) {
  JsonParser p(text);
  BenchFile file;
  bool saw_benchmarks = false;
  p.parse_object([&](const std::string& key) {
    if (key == "schema") {
      file.schema = static_cast<int>(p.parse_number());
    } else if (key == "timestamp_unix") {
      file.timestamp_unix = static_cast<long long>(p.parse_number());
    } else if (key == "benchmarks") {
      saw_benchmarks = true;
      p.parse_object([&](const std::string& name) {
        file.benchmarks[name] = parse_result(&p, name);
      });
    } else {
      p.skip_value();
    }
  });
  FMS_CHECK_MSG(p.at_end(), "bench json: trailing content");
  FMS_CHECK_MSG(file.schema == 1,
                "bench json: unsupported schema " << file.schema);
  FMS_CHECK_MSG(saw_benchmarks, "bench json: missing \"benchmarks\"");
  return file;
}

BenchFile load_bench_file(const std::string& path) {
  std::ifstream f(path);
  FMS_CHECK_MSG(f.good(), "cannot open bench file " << path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_bench_json(ss.str());
}

CompareOutcome compare_bench_files(const BenchFile& oldf,
                                   const BenchFile& newf, double gate_pct) {
  FMS_CHECK_MSG(gate_pct >= 0.0, "gate percentage must be >= 0");
  CompareOutcome out;
  out.gate_pct = gate_pct;
  for (const auto& [name, old_result] : oldf.benchmarks) {
    const auto it = newf.benchmarks.find(name);
    if (it == newf.benchmarks.end()) {
      out.only_old.push_back(name);
      continue;
    }
    CompareRow row;
    row.name = name;
    row.old_median_ns = old_result.median_ns;
    row.new_median_ns = it->second.median_ns;
    row.delta_pct = old_result.median_ns > 0.0
                        ? 100.0 * (row.new_median_ns - row.old_median_ns) /
                              row.old_median_ns
                        : 0.0;
    row.regressed = row.delta_pct > gate_pct;
    if (row.regressed) out.ok = false;
    out.rows.push_back(std::move(row));
  }
  for (const auto& [name, result] : newf.benchmarks) {
    (void)result;
    if (oldf.benchmarks.find(name) == oldf.benchmarks.end()) {
      out.only_new.push_back(name);
    }
  }
  return out;
}

double achieved_gflops(const BenchResult& r) {
  if (r.flops == 0 || r.iters <= 0 || r.median_ns <= 0.0) return 0.0;
  const double flops_per_iter =
      static_cast<double>(r.flops) / static_cast<double>(r.iters);
  return flops_per_iter / r.median_ns;  // FLOPs/ns == GFLOP/s
}

double bench_arithmetic_intensity(const BenchResult& r) {
  const std::uint64_t bytes = r.bytes_read + r.bytes_written;
  if (bytes == 0) return 0.0;
  return static_cast<double>(r.flops) / static_cast<double>(bytes);
}

std::string history_row_json(const std::vector<BenchResult>& results,
                             const std::string& git_sha,
                             long long timestamp_unix) {
  std::string out = "{\"schema\": 1, \"git_sha\": ";
  append_json_string(&out, git_sha);
  out += ", \"timestamp_unix\": ";
  append_json_number(&out, static_cast<double>(timestamp_unix));
  out += ", \"benchmarks\": {";
  bool first = true;
  for (const BenchResult& r : results) {
    if (!first) out += ", ";
    first = false;
    append_json_string(&out, r.name);
    out += ": {\"median_ns\": ";
    append_json_number(&out, r.median_ns);
    out += ", \"gflops\": ";
    append_json_number(&out, achieved_gflops(r));
    out += ", \"ai\": ";
    append_json_number(&out, bench_arithmetic_intensity(r));
    out += "}";
  }
  out += "}}";
  return out;
}

void append_history_row(const std::string& path, const std::string& row) {
  std::ofstream f(path, std::ios::app);
  FMS_CHECK_MSG(f.good(), "cannot open history file " << path);
  f << row << "\n";
}

std::string format_compare(const CompareOutcome& outcome) {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof(line), "%-28s %14s %14s %9s  %s\n", "benchmark",
                "old_median_ns", "new_median_ns", "delta", "verdict");
  out += line;
  for (const CompareRow& row : outcome.rows) {
    std::snprintf(line, sizeof(line), "%-28s %14.1f %14.1f %+8.1f%%  %s\n",
                  row.name.c_str(), row.old_median_ns, row.new_median_ns,
                  row.delta_pct,
                  row.regressed ? "REGRESSED" : "ok");
    out += line;
  }
  for (const std::string& name : outcome.only_old) {
    std::snprintf(line, sizeof(line), "%-28s only in old file (removed?)\n",
                  name.c_str());
    out += line;
  }
  for (const std::string& name : outcome.only_new) {
    std::snprintf(line, sizeof(line), "%-28s only in new file (not gated)\n",
                  name.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "gate: %.1f%% -> %s\n", outcome.gate_pct,
                outcome.ok ? "PASS" : "FAIL");
  out += line;
  return out;
}

}  // namespace fms::bench
