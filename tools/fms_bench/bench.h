// fms_bench — unified micro + macro benchmark harness with a regression
// gate.
//
// Each Benchmark owns a setup closure (runs once, outside timing) that
// returns the iteration closure. A run executes `warmup` discarded
// repetitions, then `repeats` timed repetitions of `iters` iterations
// each; the per-iteration nanosecond cost of every repetition feeds the
// median / p10 / p90 summary. One extra untimed accounting repetition
// runs with the profiler and the allocation ledger enabled to report
// bytes allocated and the zone tree (so timing repetitions stay free of
// instrumentation overhead).
//
// The emitted BENCH_perf.json is the machine-readable perf trajectory:
// `fms_bench --compare old.json new.json --gate 10` exits nonzero when
// any shared benchmark's median regressed by more than the gate
// percentage.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace fms::bench {

struct Benchmark {
  std::string name;
  int iters = 1;  // iterations per repetition (amortizes clock overhead)
  // Runs once per benchmark; the returned closure is one iteration.
  std::function<std::function<void()>()> setup;
};

struct ZoneSummary {
  std::uint64_t calls = 0;
  std::uint64_t incl_ns = 0;
  std::uint64_t excl_ns = 0;  // incl minus child zones (no double count)
};

struct BenchResult {
  std::string name;
  double median_ns = 0.0;  // per iteration
  double p10_ns = 0.0;
  double p90_ns = 0.0;
  // Tensor bytes allocated across ONE full repetition (iters iterations)
  // of the accounting pass — deterministic for a fixed seed and config.
  std::uint64_t bytes_alloc = 0;
  std::uint64_t allocs = 0;
  // Work-ledger totals across ONE full repetition of the accounting
  // pass (src/obs/work conventions; exact and deterministic).
  std::uint64_t flops = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  int iters = 0;
  int repeats = 0;
  std::map<std::string, ZoneSummary> zones;  // profiler path -> summary
};

// Achieved GFLOP/s at the measured median: flops are per repetition,
// median_ns is per iteration, so (flops / iters) / median_ns is exactly
// FLOPs-per-nanosecond = GFLOP/s. 0 when the benchmark records no work.
double achieved_gflops(const BenchResult& r);
// FLOPs per byte moved (read + written); 0 when no bytes were recorded.
double bench_arithmetic_intensity(const BenchResult& r);

struct RunOptions {
  int repeats = 9;
  int warmup = 3;
  std::string filter;  // substring match on benchmark name; empty = all
  bool accounting_pass = true;  // profiler + alloc ledger repetition
};

// The full benchmark suite (micro kernels, aggregation estimators,
// checkpoint serialize/restore, whole federated rounds). Fixed seeds
// throughout — results differ only by machine and code, never by run.
std::vector<Benchmark> default_benchmarks();

// Runs `list` (after filtering) and returns one result per benchmark.
// `log`, when set, receives a one-line progress message per benchmark.
std::vector<BenchResult> run_benchmarks(
    const std::vector<Benchmark>& list, const RunOptions& opts,
    const std::function<void(const std::string&)>& log = {});

// --- BENCH_perf.json ---

struct BenchFile {
  int schema = 1;
  long long timestamp_unix = 0;
  std::map<std::string, BenchResult> benchmarks;
};

std::string to_json(const std::vector<BenchResult>& results,
                    long long timestamp_unix);

// Parses what to_json emits (strict subset of JSON: objects, strings,
// numbers). Throws fms::CheckError on malformed input.
BenchFile parse_bench_json(const std::string& text);
BenchFile load_bench_file(const std::string& path);

// --- regression gate ---

struct CompareRow {
  std::string name;
  double old_median_ns = 0.0;
  double new_median_ns = 0.0;
  double delta_pct = 0.0;  // +x% = slower
  bool regressed = false;
};

struct CompareOutcome {
  std::vector<CompareRow> rows;       // benchmarks present in both files
  std::vector<std::string> only_old;  // disappeared benchmarks
  std::vector<std::string> only_new;  // new benchmarks (not gated)
  double gate_pct = 0.0;
  bool ok = true;  // false when any row regressed past the gate
};

CompareOutcome compare_bench_files(const BenchFile& oldf,
                                   const BenchFile& newf, double gate_pct);
std::string format_compare(const CompareOutcome& outcome);

// --- BENCH_history.jsonl ---

// One appendable history row: {"schema": 1, "git_sha": ..,
// "timestamp_unix": .., "benchmarks": {name: {"median_ns": ..,
// "gflops": .., "ai": ..}, ..}} on a single line.
std::string history_row_json(const std::vector<BenchResult>& results,
                             const std::string& git_sha,
                             long long timestamp_unix);

// Appends `row` (newline-terminated) to `path`. Throws fms::CheckError
// when the file cannot be opened for append.
void append_history_row(const std::string& path, const std::string& row);

}  // namespace fms::bench
