// fms_bench CLI.
//
//   fms_bench [--out BENCH_perf.json] [--filter SUBSTR]
//             [--repeats K] [--warmup W] [--quick] [--list] [--profile]
//   fms_bench --compare OLD.json NEW.json [--gate PCT]
//
// Run mode emits the benchmark suite's BENCH_perf.json; compare mode
// diffs two such files and exits 1 when any shared benchmark's median
// regressed by more than --gate percent (default 10). Exit code 2 means
// usage or parse error.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <fstream>
#include <string>

#include "src/common/check.h"
#include "src/obs/profile.h"
#include "src/obs/roofline.h"
#include "tools/fms_bench/bench.h"

namespace {

constexpr const char* kUsage = R"(usage:
  fms_bench [options]                      run the suite
  fms_bench --compare OLD NEW [--gate PCT] gate NEW against OLD

options:
  --out PATH      output JSON path (default BENCH_perf.json)
  --filter SUBSTR run only benchmarks whose name contains SUBSTR
  --repeats K     timed repetitions per benchmark (default 9)
  --warmup W      discarded warm-up repetitions (default 3)
  --quick         repeats=3 warmup=1 (smoke-test mode)
  --profile       print the merged self-time table after the run
  --list          list benchmark names and exit
  --gate PCT      regression gate percentage for --compare (default 10)
  --history PATH  append one {sha, timestamp, per-bench medians} row
  --git-sha SHA   git sha recorded in the history row (default unknown)
  --timestamp T   unix timestamp for the outputs (default: current time)
  --peak PATH     machine-peak sidecar; calibrates + caches when absent,
                  then prints a per-benchmark %%-of-roofline table
)";

int run_compare(const std::string& old_path, const std::string& new_path,
                double gate_pct) {
  const fms::bench::BenchFile oldf = fms::bench::load_bench_file(old_path);
  const fms::bench::BenchFile newf = fms::bench::load_bench_file(new_path);
  const fms::bench::CompareOutcome outcome =
      fms::bench::compare_bench_files(oldf, newf, gate_pct);
  std::fputs(fms::bench::format_compare(outcome).c_str(), stdout);
  return outcome.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  std::string compare_old;
  std::string compare_new;
  std::string history_path;
  std::string git_sha = "unknown";
  std::string peak_path;
  long long stamp_override = -1;
  bool list_only = false;
  bool profile_table = false;
  double gate_pct = 10.0;
  fms::bench::RunOptions opts;

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      auto need_value = [&](const char* flag) -> const char* {
        FMS_CHECK_MSG(i + 1 < argc, "missing value for " << flag);
        return argv[++i];
      };
      if (std::strcmp(arg, "--out") == 0) {
        out_path = need_value("--out");
      } else if (std::strcmp(arg, "--filter") == 0) {
        opts.filter = need_value("--filter");
      } else if (std::strcmp(arg, "--repeats") == 0) {
        opts.repeats = std::stoi(need_value("--repeats"));
      } else if (std::strcmp(arg, "--warmup") == 0) {
        opts.warmup = std::stoi(need_value("--warmup"));
      } else if (std::strcmp(arg, "--quick") == 0) {
        opts.repeats = 3;
        opts.warmup = 1;
      } else if (std::strcmp(arg, "--profile") == 0) {
        profile_table = true;
      } else if (std::strcmp(arg, "--list") == 0) {
        list_only = true;
      } else if (std::strcmp(arg, "--gate") == 0) {
        gate_pct = std::stod(need_value("--gate"));
      } else if (std::strcmp(arg, "--history") == 0) {
        history_path = need_value("--history");
      } else if (std::strcmp(arg, "--git-sha") == 0) {
        git_sha = need_value("--git-sha");
      } else if (std::strcmp(arg, "--timestamp") == 0) {
        stamp_override = std::stoll(need_value("--timestamp"));
      } else if (std::strcmp(arg, "--peak") == 0) {
        peak_path = need_value("--peak");
      } else if (std::strcmp(arg, "--compare") == 0) {
        compare_old = need_value("--compare");
        FMS_CHECK_MSG(i + 1 < argc, "--compare needs OLD and NEW paths");
        compare_new = argv[++i];
      } else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
        std::fputs(kUsage, stdout);
        return 0;
      } else {
        FMS_CHECK_MSG(false, "unknown flag " << arg);
      }
    }

    if (!compare_old.empty()) {
      return run_compare(compare_old, compare_new, gate_pct);
    }

    const std::vector<fms::bench::Benchmark> suite =
        fms::bench::default_benchmarks();
    if (list_only) {
      for (const fms::bench::Benchmark& b : suite) {
        std::printf("%s\n", b.name.c_str());
      }
      return 0;
    }

    if (profile_table) {
      fms::obs::set_profiling_enabled(true);
      fms::obs::reset_profiler();
    }
    const std::vector<fms::bench::BenchResult> results =
        fms::bench::run_benchmarks(suite, opts, [](const std::string& line) {
          std::printf("%s\n", line.c_str());
        });
    FMS_CHECK_MSG(!results.empty(), "no benchmark matched the filter");
    if (profile_table) {
      std::printf("\n-- merged self-time table (timed repetitions) --\n%s",
                  fms::obs::self_time_table(fms::obs::collect_profile())
                      .c_str());
      fms::obs::set_profiling_enabled(false);
    }

    // Wall-clock stamp so archived BENCH_perf.json files order
    // themselves into a trajectory; it never influences a measurement.
    // --timestamp overrides it for reproducible artifacts (CI, tests).
    const long long stamp =
        stamp_override >= 0
            ? stamp_override
            : static_cast<long long>(std::time(nullptr));  // fms-lint: allow(wall-clock) -- metadata timestamp, not measurement
    std::ofstream f(out_path);
    FMS_CHECK_MSG(f.good(), "cannot open " << out_path);
    f << fms::bench::to_json(results, stamp);
    std::printf("wrote %s (%zu benchmarks)\n", out_path.c_str(),
                results.size());

    if (!history_path.empty()) {
      fms::bench::append_history_row(
          history_path,
          fms::bench::history_row_json(results, git_sha, stamp));
      std::printf("appended history row to %s (sha %s)\n",
                  history_path.c_str(), git_sha.c_str());
    }

    if (!peak_path.empty()) {
      const fms::obs::MachinePeak peak =
          fms::obs::load_or_calibrate(peak_path);
      std::printf(
          "\nmachine peak: vector %.2f GF/s  scalar %.2f GF/s  "
          "stream %.2f GB/s\n",
          peak.vector_gflops, peak.scalar_gflops, peak.stream_gbps);
      std::printf("%-28s %10s %8s %8s\n", "benchmark", "GF/s", "ai",
                  "%roof");
      for (const fms::bench::BenchResult& r : results) {
        const double gf = fms::bench::achieved_gflops(r);
        if (gf <= 0.0) continue;
        const double ai = fms::bench::bench_arithmetic_intensity(r);
        const double roof = fms::obs::roofline_gflops(peak, ai);
        const double pct = roof > 0.0 ? 100.0 * gf / roof : 0.0;
        std::printf("%-28s %10.3f %8.2f %7.1f%%\n", r.name.c_str(), gf,
                    ai, pct);
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fms_bench: %s\n%s", e.what(), kUsage);
    return 2;
  }
}
