// fms_bench CLI.
//
//   fms_bench [--out BENCH_perf.json] [--filter SUBSTR]
//             [--repeats K] [--warmup W] [--quick] [--list] [--profile]
//   fms_bench --compare OLD.json NEW.json [--gate PCT]
//
// Run mode emits the benchmark suite's BENCH_perf.json; compare mode
// diffs two such files and exits 1 when any shared benchmark's median
// regressed by more than --gate percent (default 10). Exit code 2 means
// usage or parse error.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <fstream>
#include <string>

#include "src/common/check.h"
#include "src/obs/profile.h"
#include "tools/fms_bench/bench.h"

namespace {

constexpr const char* kUsage = R"(usage:
  fms_bench [options]                      run the suite
  fms_bench --compare OLD NEW [--gate PCT] gate NEW against OLD

options:
  --out PATH      output JSON path (default BENCH_perf.json)
  --filter SUBSTR run only benchmarks whose name contains SUBSTR
  --repeats K     timed repetitions per benchmark (default 9)
  --warmup W      discarded warm-up repetitions (default 3)
  --quick         repeats=3 warmup=1 (smoke-test mode)
  --profile       print the merged self-time table after the run
  --list          list benchmark names and exit
  --gate PCT      regression gate percentage for --compare (default 10)
)";

int run_compare(const std::string& old_path, const std::string& new_path,
                double gate_pct) {
  const fms::bench::BenchFile oldf = fms::bench::load_bench_file(old_path);
  const fms::bench::BenchFile newf = fms::bench::load_bench_file(new_path);
  const fms::bench::CompareOutcome outcome =
      fms::bench::compare_bench_files(oldf, newf, gate_pct);
  std::fputs(fms::bench::format_compare(outcome).c_str(), stdout);
  return outcome.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_perf.json";
  std::string compare_old;
  std::string compare_new;
  bool list_only = false;
  bool profile_table = false;
  double gate_pct = 10.0;
  fms::bench::RunOptions opts;

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      auto need_value = [&](const char* flag) -> const char* {
        FMS_CHECK_MSG(i + 1 < argc, "missing value for " << flag);
        return argv[++i];
      };
      if (std::strcmp(arg, "--out") == 0) {
        out_path = need_value("--out");
      } else if (std::strcmp(arg, "--filter") == 0) {
        opts.filter = need_value("--filter");
      } else if (std::strcmp(arg, "--repeats") == 0) {
        opts.repeats = std::stoi(need_value("--repeats"));
      } else if (std::strcmp(arg, "--warmup") == 0) {
        opts.warmup = std::stoi(need_value("--warmup"));
      } else if (std::strcmp(arg, "--quick") == 0) {
        opts.repeats = 3;
        opts.warmup = 1;
      } else if (std::strcmp(arg, "--profile") == 0) {
        profile_table = true;
      } else if (std::strcmp(arg, "--list") == 0) {
        list_only = true;
      } else if (std::strcmp(arg, "--gate") == 0) {
        gate_pct = std::stod(need_value("--gate"));
      } else if (std::strcmp(arg, "--compare") == 0) {
        compare_old = need_value("--compare");
        FMS_CHECK_MSG(i + 1 < argc, "--compare needs OLD and NEW paths");
        compare_new = argv[++i];
      } else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
        std::fputs(kUsage, stdout);
        return 0;
      } else {
        FMS_CHECK_MSG(false, "unknown flag " << arg);
      }
    }

    if (!compare_old.empty()) {
      return run_compare(compare_old, compare_new, gate_pct);
    }

    const std::vector<fms::bench::Benchmark> suite =
        fms::bench::default_benchmarks();
    if (list_only) {
      for (const fms::bench::Benchmark& b : suite) {
        std::printf("%s\n", b.name.c_str());
      }
      return 0;
    }

    if (profile_table) {
      fms::obs::set_profiling_enabled(true);
      fms::obs::reset_profiler();
    }
    const std::vector<fms::bench::BenchResult> results =
        fms::bench::run_benchmarks(suite, opts, [](const std::string& line) {
          std::printf("%s\n", line.c_str());
        });
    FMS_CHECK_MSG(!results.empty(), "no benchmark matched the filter");
    if (profile_table) {
      std::printf("\n-- merged self-time table (timed repetitions) --\n%s",
                  fms::obs::self_time_table(fms::obs::collect_profile())
                      .c_str());
      fms::obs::set_profiling_enabled(false);
    }

    // Wall-clock stamp so archived BENCH_perf.json files order
    // themselves into a trajectory; it never influences a measurement.
    // fms-lint: allow(wall-clock) -- metadata timestamp, not measurement
    const long long stamp = static_cast<long long>(std::time(nullptr));
    std::ofstream f(out_path);
    FMS_CHECK_MSG(f.good(), "cannot open " << out_path);
    f << fms::bench::to_json(results, stamp);
    std::printf("wrote %s (%zu benchmarks)\n", out_path.c_str(),
                results.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fms_bench: %s\n%s", e.what(), kUsage);
    return 2;
  }
}
