// fms_analyze — second-generation cross-file semantic analysis.
//
// fms_lint (tools/fms_lint) bans per-line patterns; this pass checks the
// invariants that only emerge *across* files and functions:
//
//   * RNG salt registry — every splitmix64 salt constant (kSalt* = 0x..)
//     must be globally unique and recorded in tools/salt_registry.txt.
//     Two subsystems silently sharing a salt correlates streams the
//     paper's delay-compensation analysis assumes independent; the
//     committed registry makes adding a stream an explicit, reviewed act.
//   * Checkpoint symmetry — paired serialize/deserialize (and
//     checkpoint/restore) bodies must issue the same ordered sequence of
//     ByteWriter/ByteReader operation kinds (scalar / vector / string /
//     nested object), catching a field written but never read — or read
//     out of order — before the blob drifts.
//   * Metric & detector key audit — every `fms.*` metric name and every
//     health-detector id emitted under src/ must appear in the documented
//     tables in DESIGN.md (between the fms-analyze table markers), and
//     every documented key must still exist in code, both directions.
//
// Like the linter, the analysis is textual (comments and strings are
// handled by a scanner; no build needed) and suppressible in place:
//   // fms-analyze: allow(<check>[,<check>...])  -- reason
// on the offending line, on a comment line directly above it, or — for
// checkpoint-asymmetry — on the function's definition line to waive the
// whole pair.
//
// Check identifiers:
//   salt-collision         two salt constants share a value (in code or
//                          in the registry itself)
//   salt-unregistered      a code salt missing from the registry, or
//                          whose registered value disagrees
//   salt-stale             a registry entry with no matching constant
//   checkpoint-asymmetry   write/read op sequences of a serialize/
//                          deserialize (checkpoint/restore) pair diverge
//   metric-undocumented    an fms.* key emitted in src/ but absent from
//                          the DESIGN.md metric table
//   metric-stale           a documented key no code emits
//   detector-undocumented  a health-detector id in code but not in the
//                          DESIGN.md detector table
//   detector-stale         a documented detector id not in code
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fms::analyze {

struct CheckInfo {
  const char* id;
  const char* summary;
};

const std::vector<CheckInfo>& checks();

struct Finding {
  std::string path;
  int line = 0;  // 1-based
  std::string check;
  std::string message;
};

// In-memory entry point (fixture tests drive this directly): `files` are
// (path, contents) pairs; the registry/design texts are the committed
// artifacts, and the paths are what findings against them carry.
std::vector<Finding> analyze_sources(
    const std::vector<std::pair<std::string, std::string>>& files,
    const std::string& registry_text, const std::string& registry_path,
    const std::string& design_text, const std::string& design_path);

struct Options {
  std::string salt_registry_path;  // e.g. tools/salt_registry.txt
  std::string design_doc_path;     // e.g. DESIGN.md
};

// Reads every .h/.hpp/.cpp/.cc under `roots` (skipping lint_fixtures/,
// analyze_fixtures/, .git/ and build trees, same as fms_lint), loads the
// registry and design doc named in `opts`, and runs every check. Throws
// fms::CheckError when a root, the registry, or the doc cannot be read.
std::vector<Finding> analyze_tree(const std::vector<std::string>& roots,
                                  const Options& opts);

}  // namespace fms::analyze
