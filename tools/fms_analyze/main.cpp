// fms_analyze CLI — runs the cross-file semantic checks over the given
// files/directories and prints findings as
//   path:line: [check] message
// Exit status: 0 clean, 1 findings, 2 usage or IO error.
//
// Registered as the `analyze` ctest over src/, tests/, bench/, examples/
// and tools/, so a plain `ctest` run fails on a salt collision, an
// asymmetric checkpoint pair, or an undocumented metric key.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "tools/fms_analyze/analyze.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: fms_analyze [--list-checks]\n"
               "                   [--registry <salt_registry.txt>]\n"
               "                   [--design <DESIGN.md>]\n"
               "                   <file-or-dir>...\n"
               "       suppress a finding in place with: "
               "// fms-analyze: allow(<check>)  -- <reason>\n");
}

}  // namespace

int main(int argc, char** argv) {
  fms::analyze::Options opts;
  opts.salt_registry_path = "tools/salt_registry.txt";
  opts.design_doc_path = "DESIGN.md";
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const auto& c : fms::analyze::checks()) {
        std::printf("%-22s %s\n", c.id, c.summary);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--registry" || arg == "--design") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fms_analyze: %s needs a path\n", arg.c_str());
        usage();
        return 2;
      }
      (arg == "--registry" ? opts.salt_registry_path : opts.design_doc_path) =
          argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fms_analyze: unknown flag %s\n", arg.c_str());
      usage();
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  std::vector<fms::analyze::Finding> findings;
  try {
    findings = fms::analyze::analyze_tree(roots, opts);
  } catch (const fms::CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.check.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("fms_analyze: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
