#include "tools/fms_analyze/analyze.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace fms::analyze {
namespace {

constexpr const char* kCheckSaltCollision = "salt-collision";
constexpr const char* kCheckSaltUnregistered = "salt-unregistered";
constexpr const char* kCheckSaltStale = "salt-stale";
constexpr const char* kCheckCkptAsymmetry = "checkpoint-asymmetry";
constexpr const char* kCheckMetricUndoc = "metric-undocumented";
constexpr const char* kCheckMetricStale = "metric-stale";
constexpr const char* kCheckDetectorUndoc = "detector-undocumented";
constexpr const char* kCheckDetectorStale = "detector-stale";

bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

// ---------------------------------------------------------------------------
// Scanner. Like the fms_lint scanner it strips comments and hollows out
// string bodies from `code`, but it additionally keeps every string
// literal's contents per line (the metric audit reads them) and parses
// `fms-analyze: allow(...)` markers.

struct ScannedLine {
  std::string code;                   // literals hollowed out, comments gone
  std::vector<std::string> literals;  // string literal bodies, in order
  std::set<std::string> allowed;
};

void collect_allowances(const std::string& comment,
                        std::set<std::string>* out) {
  static const std::string kMarker = "fms-analyze: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
    const std::size_t open = pos + kMarker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string id;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!id.empty()) out->insert(id);
        id.clear();
      } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        id.push_back(c);
      }
    }
    pos = close + 1;
  }
}

std::vector<ScannedLine> scan(const std::string& contents) {
  std::vector<ScannedLine> lines;
  lines.emplace_back();

  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;
  std::string comment_buf;
  std::string literal_buf;
  int literal_line = 0;  // line index the current literal started on
  char prev_code = '\0';

  const std::size_t n = contents.size();
  std::size_t i = 0;
  auto newline = [&] {
    collect_allowances(comment_buf, &lines.back().allowed);
    comment_buf.clear();
    lines.emplace_back();
  };
  auto close_literal = [&] {
    lines[static_cast<std::size_t>(literal_line)].literals.push_back(
        literal_buf);
    literal_buf.clear();
  };
  while (i < n) {
    const char c = contents[i];
    const char next = i + 1 < n ? contents[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '\n') {
          newline();
        } else if (c == '/' && next == '/') {
          std::size_t j = i + 2;
          while (j < n && contents[j] != '\n') {
            comment_buf.push_back(contents[j]);
            ++j;
          }
          i = j;
          if (i < n) newline();
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          literal_line = static_cast<int>(lines.size()) - 1;
          if (prev_code == 'R') {
            std::string delim;
            std::size_t j = i + 1;
            while (j < n && contents[j] != '(' && delim.size() < 18) {
              delim.push_back(contents[j]);
              ++j;
            }
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            lines.back().code.push_back('"');
            i = j;
          } else {
            state = State::kString;
            lines.back().code.push_back('"');
          }
          prev_code = '"';
        } else if (c == '\'' && !is_ident_char(prev_code)) {
          state = State::kChar;
          lines.back().code.push_back('\'');
          prev_code = '\'';
        } else {
          lines.back().code.push_back(c);
          if (std::isspace(static_cast<unsigned char>(c)) == 0) prev_code = c;
        }
        break;
      case State::kBlockComment:
        if (c == '\n') {
          newline();
        } else if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_buf.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (next == '\n') {
            newline();
          } else {
            literal_buf.push_back(next);
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          lines.back().code.push_back('"');
          close_literal();
        } else if (c == '\n') {
          newline();  // unterminated; tolerate
          close_literal();
          state = State::kCode;
        } else {
          literal_buf.push_back(c);
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          lines.back().code.push_back('\'');
        } else if (c == '\n') {
          newline();
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' &&
            contents.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          lines.back().code.push_back('"');
          close_literal();
          state = State::kCode;
        } else if (c == '\n') {
          newline();
          literal_buf.push_back('\n');
        } else {
          literal_buf.push_back(c);
        }
        break;
    }
    ++i;
  }
  collect_allowances(comment_buf, &lines.back().allowed);
  return lines;
}

struct ScannedFile {
  std::string path;  // '/'-normalized
  std::vector<ScannedLine> lines;
  std::vector<std::set<std::string>> effective;  // allowances per line
};

// Same chaining semantics as fms_lint: an allow() on a comment-only line
// suppresses the next code line, chaining across consecutive comment
// lines; an allow() sharing a line with code suppresses that line.
void compute_effective_allowances(ScannedFile* file) {
  file->effective.assign(file->lines.size(), {});
  std::set<std::string> pending;
  for (std::size_t idx = 0; idx < file->lines.size(); ++idx) {
    file->effective[idx] = file->lines[idx].allowed;
    file->effective[idx].insert(pending.begin(), pending.end());
    const std::string& c = file->lines[idx].code;
    if (c.find_first_not_of(" \t") == std::string::npos) {
      pending.insert(file->lines[idx].allowed.begin(),
                     file->lines[idx].allowed.end());
    } else {
      pending.clear();
    }
  }
}

bool allowed(const ScannedFile& file, int line, const char* check) {
  const std::size_t idx = static_cast<std::size_t>(line - 1);
  return idx < file.effective.size() &&
         file.effective[idx].count(check) != 0;
}

// src/-scoped checks (metric emission, checkpoint pairs) apply to paths
// with a src/ component — the library proper, not tests or tools.
bool under_src(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

void add(std::vector<Finding>* out, const std::string& path, int line,
         const char* check, const std::string& message) {
  out->push_back(Finding{path, line, check, message});
}

std::string hex(unsigned long long v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llX", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Check 1: RNG salt registry.

struct SaltDef {
  std::string ident;
  unsigned long long value = 0;
  std::string path;
  int line = 0;
};

std::vector<SaltDef> extract_salts(const ScannedFile& file) {
  static const std::regex salt_re(
      R"((?:^|[^A-Za-z0-9_])(kSalt[A-Za-z0-9_]*)\s*=\s*(0[xX][0-9a-fA-F']+))");
  std::vector<SaltDef> out;
  for (std::size_t idx = 0; idx < file.lines.size(); ++idx) {
    const std::string& code = file.lines[idx].code;
    auto it = std::sregex_iterator(code.begin(), code.end(), salt_re);
    const auto end = std::sregex_iterator();
    for (; it != end; ++it) {
      std::string digits = (*it)[2].str().substr(2);
      digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                   digits.end());
      SaltDef def;
      def.ident = (*it)[1].str();
      def.value = std::stoull(digits, nullptr, 16);
      def.path = file.path;
      def.line = static_cast<int>(idx) + 1;
      out.push_back(std::move(def));
    }
  }
  return out;
}

struct RegistryEntry {
  unsigned long long value = 0;
  std::string ident;
  std::string file;  // informational
  int line = 0;
};

std::vector<RegistryEntry> parse_registry(const std::string& text) {
  std::vector<RegistryEntry> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line);
    std::string value_s, ident, file;
    if (!(fields >> value_s >> ident)) continue;
    fields >> file;  // optional
    RegistryEntry e;
    std::string digits = value_s;
    if (digits.rfind("0x", 0) == 0 || digits.rfind("0X", 0) == 0) {
      digits = digits.substr(2);
    }
    try {
      e.value = std::stoull(digits, nullptr, 16);
    } catch (...) {
      continue;  // malformed row: ignore rather than crash the gate
    }
    e.ident = ident;
    e.file = file;
    e.line = lineno;
    out.push_back(std::move(e));
  }
  return out;
}

void check_salts(const std::vector<ScannedFile>& files,
                 const std::string& registry_text,
                 const std::string& registry_path,
                 std::vector<Finding>* out) {
  std::vector<std::pair<SaltDef, const ScannedFile*>> salts;
  for (const ScannedFile& f : files) {
    for (SaltDef& d : extract_salts(f)) {
      salts.emplace_back(std::move(d), &f);
    }
  }
  std::sort(salts.begin(), salts.end(),
            [](const auto& a, const auto& b) {
              return std::tie(a.first.path, a.first.line) <
                     std::tie(b.first.path, b.first.line);
            });

  // Uniqueness across the codebase: value -> first definition seen.
  std::map<unsigned long long, const SaltDef*> first_by_value;
  for (const auto& [def, file] : salts) {
    auto [it, inserted] = first_by_value.emplace(def.value, &def);
    if (!inserted && it->second->ident != def.ident &&
        !allowed(*file, def.line, kCheckSaltCollision)) {
      add(out, def.path, def.line, kCheckSaltCollision,
          def.ident + " = " + hex(def.value) + " collides with " +
              it->second->ident + " (" + it->second->path + ":" +
              std::to_string(it->second->line) +
              "); every decision stream needs its own salt");
    }
  }

  const std::vector<RegistryEntry> registry = parse_registry(registry_text);
  std::map<std::string, const RegistryEntry*> reg_by_ident;
  std::map<unsigned long long, const RegistryEntry*> reg_by_value;
  for (const RegistryEntry& e : registry) {
    reg_by_ident.emplace(e.ident, &e);
    auto [it, inserted] = reg_by_value.emplace(e.value, &e);
    if (!inserted && it->second->ident != e.ident) {
      add(out, registry_path, e.line, kCheckSaltCollision,
          "registry assigns " + hex(e.value) + " to both " +
              it->second->ident + " and " + e.ident);
    }
  }

  // Code -> registry: every constant must be registered with its value.
  for (const auto& [def, file] : salts) {
    if (allowed(*file, def.line, kCheckSaltUnregistered)) continue;
    const auto it = reg_by_ident.find(def.ident);
    if (it == reg_by_ident.end()) {
      add(out, def.path, def.line, kCheckSaltUnregistered,
          def.ident + " = " + hex(def.value) + " is not in " + registry_path +
              "; add a row before introducing a new decision stream");
    } else if (it->second->value != def.value) {
      add(out, def.path, def.line, kCheckSaltUnregistered,
          def.ident + " = " + hex(def.value) + " but " + registry_path +
              ":" + std::to_string(it->second->line) + " records " +
              hex(it->second->value));
    }
  }

  // Registry -> code: rows must not outlive their constants.
  std::set<std::string> code_idents;
  for (const auto& [def, file] : salts) code_idents.insert(def.ident);
  for (const RegistryEntry& e : registry) {
    if (code_idents.count(e.ident) == 0) {
      add(out, registry_path, e.line, kCheckSaltStale,
          e.ident + " is registered but no source file defines it; "
                    "remove the row (or restore the constant)");
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: checkpoint symmetry.

struct OpRec {
  std::string kind;  // "scalar" | "vector" | "string" | "nested <obj>"
  int line = 0;
};

struct FuncDef {
  std::string qual;  // "Class::" or ""
  std::string name;
  int line = 0;  // definition line
  bool suppressed = false;
  std::vector<OpRec> write_ops;
  std::vector<OpRec> read_ops;
};

// Identifier immediately before `pos` (which points at '.'), for nested
// serialize/restore receiver names.
std::string ident_before(const std::string& code, std::size_t pos) {
  std::size_t e = pos;
  std::size_t b = e;
  while (b > 0 && is_ident_char(code[b - 1])) --b;
  return code.substr(b, e - b);
}

void extract_ops(const ScannedFile& file, int lineno, FuncDef* fn) {
  if (allowed(file, lineno, kCheckCkptAsymmetry)) return;
  const std::string& code = file.lines[static_cast<std::size_t>(lineno - 1)].code;
  struct Pat {
    const char* text;
    const char* kind;
    bool write;
    bool nested;
  };
  static const Pat kPats[] = {
      {".write_string(", "string", true, false},
      {".write_vector(", "vector", true, false},
      {".write(", "scalar", true, false},
      {".read_string(", "string", false, false},
      {".read_vector<", "vector", false, false},
      {".read<", "scalar", false, false},
      {".serialize(", "nested", true, true},
      {".deserialize(", "nested", false, true},
      {".restore(", "nested", false, true},
  };
  // Left-to-right merge of every pattern occurrence on the line.
  std::vector<std::pair<std::size_t, const Pat*>> hits;
  for (const Pat& p : kPats) {
    const std::string pat(p.text);
    std::size_t pos = code.find(pat);
    while (pos != std::string::npos) {
      hits.emplace_back(pos, &p);
      pos = code.find(pat, pos + 1);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [pos, p] : hits) {
    OpRec op;
    op.line = lineno;
    if (p->nested) {
      const std::string obj = ident_before(code, pos);
      if (obj.empty()) continue;  // ctor-style or expression; skip
      // Only `obj.serialize(w)` / `obj.restore(r)` — a single bare
      // identifier argument (the writer/reader handle) — is a nested
      // checkpoint op. `moving_.restore(vals, sum)` and `u.serialize()`
      // are ordinary member calls.
      std::size_t a = code.find('(', pos) + 1;
      std::size_t b = a;
      while (b < code.size() && is_ident_char(code[b])) ++b;
      if (b == a || b >= code.size() || code[b] != ')') continue;
      op.kind = std::string("nested ") + obj;
    } else {
      op.kind = p->kind;
    }
    if (p->write) {
      fn->write_ops.push_back(std::move(op));
    } else {
      fn->read_ops.push_back(std::move(op));
    }
  }
}

// Finds serialize/deserialize/restore/checkpoint function *definitions*
// and their body op sequences. Returns defs in file order.
std::vector<FuncDef> extract_functions(const ScannedFile& file) {
  static const std::regex def_re(
      R"(((?:[A-Za-z_][A-Za-z0-9_]*::)*)(serialize[A-Za-z0-9_]*|deserialize[A-Za-z0-9_]*|restore[A-Za-z0-9_]*|checkpoint)\s*\()");
  std::vector<FuncDef> out;
  const std::size_t n = file.lines.size();
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::string& code = file.lines[idx].code;
    auto it = std::sregex_iterator(code.begin(), code.end(), def_re);
    const auto end = std::sregex_iterator();
    for (; it != end; ++it) {
      const std::size_t match_pos = static_cast<std::size_t>(it->position(0));
      // A definition's name is not preceded by an identifier char (that
      // would be a longer name), '.', or '->' (member calls).
      if (match_pos > 0) {
        const char before = code[match_pos - 1];
        if (is_ident_char(before) || before == '.' || before == ':') continue;
        if (before == '>' && match_pos > 1 && code[match_pos - 2] == '-') {
          continue;
        }
      }
      // Walk from the opening paren across lines: balance parens, then
      // the next '{' starts a body, a ';' means declaration/call — skip.
      std::size_t l = idx;
      std::size_t c =
          match_pos + static_cast<std::size_t>(it->length(0)) - 1;
      int paren = 0;
      bool is_def = false;
      std::size_t body_line = 0, body_col = 0;
      for (std::size_t steps = 0; l < n && steps < 4000; ++steps) {
        const std::string& lc = file.lines[l].code;
        if (c >= lc.size()) {
          ++l;
          c = 0;
          continue;
        }
        const char ch = lc[c];
        if (ch == '(') {
          ++paren;
        } else if (ch == ')') {
          --paren;
        } else if (paren == 0 && ch == '{') {
          is_def = true;
          body_line = l;
          body_col = c;
          break;
        } else if (paren == 0 && (ch == ';' || ch == '=')) {
          break;
        }
        ++c;
      }
      if (!is_def) continue;

      FuncDef fn;
      fn.qual = (*it)[1].str();
      fn.name = (*it)[2].str();
      fn.line = static_cast<int>(idx) + 1;
      fn.suppressed = allowed(file, fn.line, kCheckCkptAsymmetry);

      // Body: from the '{' to its matching '}'.
      int depth = 0;
      std::size_t bl = body_line, bc = body_col;
      std::size_t end_line = n - 1;
      std::set<std::size_t> body_lines;
      bool closed = false;
      while (bl < n && !closed) {
        const std::string& lc = file.lines[bl].code;
        for (; bc < lc.size(); ++bc) {
          const char ch = lc[bc];
          if (ch == '{') {
            ++depth;
          } else if (ch == '}') {
            --depth;
            if (depth == 0) {
              end_line = bl;
              closed = true;
              break;
            }
          }
        }
        body_lines.insert(bl);
        if (!closed) {
          ++bl;
          bc = 0;
        }
      }
      for (const std::size_t b : body_lines) {
        extract_ops(file, static_cast<int>(b) + 1, &fn);
      }
      out.push_back(std::move(fn));
      // Resume scanning after the body (nested candidates inside the
      // body were already consumed as ops, not definitions).
      idx = end_line;
      break;  // re-run regex on the post-body line via outer loop
    }
  }
  return out;
}

std::string partner_name(const std::string& name, int variant) {
  if (name == "checkpoint") {
    return variant == 0 ? "restore" : "";
  }
  if (name.rfind("serialize", 0) == 0) {
    const std::string tail = name.substr(std::string("serialize").size());
    return (variant == 0 ? "deserialize" : "restore") + tail;
  }
  return "";
}

void check_checkpoints(const std::vector<ScannedFile>& files,
                       std::vector<Finding>* out) {
  for (const ScannedFile& file : files) {
    if (!under_src(file.path)) continue;
    const std::vector<FuncDef> fns = extract_functions(file);
    std::map<std::string, const FuncDef*> by_name;
    for (const FuncDef& fn : fns) by_name.emplace(fn.qual + fn.name, &fn);
    for (const FuncDef& fn : fns) {
      const FuncDef* partner = nullptr;
      for (int variant = 0; variant < 2 && partner == nullptr; ++variant) {
        const std::string pname = partner_name(fn.name, variant);
        if (pname.empty()) continue;
        const auto it = by_name.find(fn.qual + pname);
        if (it != by_name.end()) partner = it->second;
      }
      if (partner == nullptr) continue;
      if (fn.suppressed || partner->suppressed) continue;
      const std::vector<OpRec>& w = fn.write_ops;
      const std::vector<OpRec>& r = partner->read_ops;
      const std::size_t common = std::min(w.size(), r.size());
      std::size_t diverge = common;
      for (std::size_t i = 0; i < common; ++i) {
        if (w[i].kind != r[i].kind) {
          diverge = i;
          break;
        }
      }
      if (diverge < common) {
        add(out, file.path, r[diverge].line, kCheckCkptAsymmetry,
            fn.qual + fn.name + " writes op " + std::to_string(diverge + 1) +
                " as [" + w[diverge].kind + "] (line " +
                std::to_string(w[diverge].line) + ") but " + partner->qual +
                partner->name + " reads [" + r[diverge].kind + "]");
      } else if (w.size() != r.size()) {
        const bool extra_writes = w.size() > r.size();
        const OpRec& odd = extra_writes ? w[common] : r[common];
        add(out, file.path, odd.line, kCheckCkptAsymmetry,
            fn.qual + fn.name + " issues " + std::to_string(w.size()) +
                " write op(s) but " + partner->qual + partner->name +
                " issues " + std::to_string(r.size()) + " read op(s); " +
                (extra_writes ? "unread [" : "unwritten [") + odd.kind +
                "] at line " + std::to_string(odd.line));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: metric & detector key audit.

struct KeyUse {
  std::string key;  // exact key, or prefix (ends with '.') when wildcard
  bool wildcard = false;
  std::string path;
  int line = 0;
};

// A trailing-dot literal ("fms.prof." + path) emits a whole family; track
// it as a prefix wildcard.
std::vector<KeyUse> extract_metric_keys(const ScannedFile& file) {
  std::vector<KeyUse> out;
  for (std::size_t idx = 0; idx < file.lines.size(); ++idx) {
    for (const std::string& lit : file.lines[idx].literals) {
      if (lit.rfind("fms.", 0) != 0 || lit.size() <= 4) continue;
      KeyUse use;
      use.key = lit;
      use.wildcard = lit.back() == '.';
      use.path = file.path;
      use.line = static_cast<int>(idx) + 1;
      out.push_back(std::move(use));
    }
  }
  return out;
}

// Detector ids: the string literals inside a kDetectorNames array
// initializer (declaration line through the closing brace).
std::vector<KeyUse> extract_detector_ids(const ScannedFile& file) {
  std::vector<KeyUse> out;
  const std::size_t n = file.lines.size();
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::string& code = file.lines[idx].code;
    const std::size_t pos = code.find("kDetectorNames");
    if (pos == std::string::npos) continue;
    if (code.find('{', pos) == std::string::npos &&
        code.find('=', pos) == std::string::npos) {
      continue;  // a reference like kDetectorNames[i], not the definition
    }
    for (std::size_t l = idx; l < n; ++l) {
      for (const std::string& lit : file.lines[l].literals) {
        KeyUse use;
        use.key = lit;
        use.path = file.path;
        use.line = static_cast<int>(l) + 1;
        out.push_back(std::move(use));
      }
      if (file.lines[l].code.find('}') != std::string::npos) break;
    }
    break;
  }
  return out;
}

struct DocKeys {
  std::vector<KeyUse> metrics;    // wildcard when the row had a <var>
  std::vector<KeyUse> detectors;  // exact ids
};

// Documented keys live between explicit markers so the audit never
// guesses at prose:
//   <!-- fms-analyze: metric-table-begin -->  ...  metric-table-end -->
//   <!-- fms-analyze: detector-table-begin -->  ...  detector-table-end -->
// Inside a metric table every `fms.*` backtick token is a key (a <var>
// segment makes it a prefix wildcard); inside a detector table the first
// backtick token of each line is a detector id.
DocKeys parse_design_doc(const std::string& text, const std::string& path) {
  DocKeys out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  enum class Table { kNone, kMetric, kDetector };
  Table table = Table::kNone;
  static const std::regex tick_re("`([^`]+)`");
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find("fms-analyze: metric-table-begin") != std::string::npos) {
      table = Table::kMetric;
      continue;
    }
    if (line.find("fms-analyze: detector-table-begin") != std::string::npos) {
      table = Table::kDetector;
      continue;
    }
    if (line.find("fms-analyze: metric-table-end") != std::string::npos ||
        line.find("fms-analyze: detector-table-end") != std::string::npos) {
      table = Table::kNone;
      continue;
    }
    if (table == Table::kNone) continue;
    auto it = std::sregex_iterator(line.begin(), line.end(), tick_re);
    const auto end = std::sregex_iterator();
    for (; it != end; ++it) {
      const std::string token = (*it)[1].str();
      if (table == Table::kMetric) {
        if (token.rfind("fms.", 0) != 0) continue;
        KeyUse use;
        const std::size_t var = token.find('<');
        use.wildcard = var != std::string::npos;
        use.key = use.wildcard ? token.substr(0, var) : token;
        use.path = path;
        use.line = lineno;
        out.metrics.push_back(std::move(use));
      } else {
        KeyUse use;
        use.key = token;
        use.path = path;
        use.line = lineno;
        out.detectors.push_back(std::move(use));
        break;  // first token per row is the id; the rest is prose
      }
    }
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// A code key matches a documented key when they are equal, or when either
// side's prefix wildcard covers the other.
bool keys_match(const KeyUse& code, const KeyUse& doc) {
  if (!code.wildcard && !doc.wildcard) return code.key == doc.key;
  if (code.wildcard && !doc.wildcard) return starts_with(doc.key, code.key);
  if (!code.wildcard && doc.wildcard) return starts_with(code.key, doc.key);
  return starts_with(code.key, doc.key) || starts_with(doc.key, code.key);
}

void check_metrics(const std::vector<ScannedFile>& files,
                   const std::string& design_text,
                   const std::string& design_path,
                   std::vector<Finding>* out) {
  std::vector<std::pair<KeyUse, const ScannedFile*>> code_keys;
  std::vector<std::pair<KeyUse, const ScannedFile*>> code_detectors;
  for (const ScannedFile& f : files) {
    if (!under_src(f.path)) continue;
    for (KeyUse& k : extract_metric_keys(f)) code_keys.emplace_back(k, &f);
    for (KeyUse& d : extract_detector_ids(f)) {
      code_detectors.emplace_back(d, &f);
    }
  }
  const DocKeys doc = parse_design_doc(design_text, design_path);

  // Code -> doc, first emission site per distinct key only.
  std::set<std::string> reported;
  for (const auto& [use, file] : code_keys) {
    const std::string id = (use.wildcard ? "*" : "=") + use.key;
    if (reported.count(id) != 0) continue;
    reported.insert(id);
    if (allowed(*file, use.line, kCheckMetricUndoc)) continue;
    bool documented = false;
    for (const KeyUse& d : doc.metrics) {
      if (keys_match(use, d)) {
        documented = true;
        break;
      }
    }
    if (!documented) {
      add(out, use.path, use.line, kCheckMetricUndoc,
          "metric key " + use.key + (use.wildcard ? "* " : " ") +
              "is not in the " + design_path +
              " metric table; document it (or drop the emission)");
    }
  }

  // Doc -> code.
  for (const KeyUse& d : doc.metrics) {
    bool emitted = false;
    for (const auto& [use, file] : code_keys) {
      if (keys_match(use, d)) {
        emitted = true;
        break;
      }
    }
    if (!emitted) {
      add(out, d.path, d.line, kCheckMetricStale,
          "documented metric key " + d.key + (d.wildcard ? "<...>" : "") +
              " is emitted nowhere under src/; remove the row (or restore "
              "the emission)");
    }
  }

  // Detectors, both directions.
  std::set<std::string> doc_ids;
  for (const KeyUse& d : doc.detectors) doc_ids.insert(d.key);
  std::set<std::string> code_ids;
  for (const auto& [use, file] : code_detectors) {
    code_ids.insert(use.key);
    if (doc_ids.count(use.key) == 0 &&
        !allowed(*file, use.line, kCheckDetectorUndoc)) {
      add(out, use.path, use.line, kCheckDetectorUndoc,
          "health detector '" + use.key + "' is not in the " + design_path +
              " detector table");
    }
  }
  for (const KeyUse& d : doc.detectors) {
    if (code_ids.count(d.key) == 0) {
      add(out, d.path, d.line, kCheckDetectorStale,
          "documented detector '" + d.key +
              "' does not appear in any kDetectorNames array");
    }
  }
}

}  // namespace

const std::vector<CheckInfo>& checks() {
  static const std::vector<CheckInfo> kChecks = {
      {kCheckSaltCollision,
       "two splitmix64 salt constants share a value (code or registry)"},
      {kCheckSaltUnregistered,
       "salt constant missing from tools/salt_registry.txt or value "
       "disagrees"},
      {kCheckSaltStale,
       "salt registry row whose constant no longer exists in code"},
      {kCheckCkptAsymmetry,
       "serialize/deserialize (checkpoint/restore) pair with mismatched "
       "write/read op sequences"},
      {kCheckMetricUndoc,
       "fms.* metric key emitted in src/ but absent from the DESIGN.md "
       "metric table"},
      {kCheckMetricStale,
       "documented metric key that no code emits"},
      {kCheckDetectorUndoc,
       "health detector id in code but not in the DESIGN.md detector "
       "table"},
      {kCheckDetectorStale,
       "documented detector id that no kDetectorNames array defines"},
  };
  return kChecks;
}

std::vector<Finding> analyze_sources(
    const std::vector<std::pair<std::string, std::string>>& files,
    const std::string& registry_text, const std::string& registry_path,
    const std::string& design_text, const std::string& design_path) {
  std::vector<ScannedFile> scanned;
  scanned.reserve(files.size());
  for (const auto& [path, contents] : files) {
    ScannedFile sf;
    sf.path = path;
    std::replace(sf.path.begin(), sf.path.end(), '\\', '/');
    sf.lines = scan(contents);
    compute_effective_allowances(&sf);
    scanned.push_back(std::move(sf));
  }
  std::vector<Finding> out;
  check_salts(scanned, registry_text, registry_path, &out);
  check_checkpoints(scanned, &out);
  check_metrics(scanned, design_text, design_path, &out);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.check, a.message) <
           std::tie(b.path, b.line, b.check, b.message);
  });
  return out;
}

std::vector<Finding> analyze_tree(const std::vector<std::string>& roots,
                                  const Options& opts) {
  namespace fs = std::filesystem;
  auto skip = [](const fs::path& p) {
    for (const auto& part : p) {
      const std::string s = part.string();
      if (s == "lint_fixtures" || s == "analyze_fixtures" || s == ".git" ||
          s == "build" || s.rfind("build-", 0) == 0) {
        return true;
      }
    }
    return false;
  };
  auto analyzable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
  };
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    const fs::path rp(root);
    FMS_CHECK_MSG(fs::exists(rp), "fms_analyze: no such path: " << root);
    if (fs::is_directory(rp)) {
      for (const auto& entry : fs::recursive_directory_iterator(rp)) {
        if (entry.is_regular_file() && analyzable(entry.path()) &&
            !skip(entry.path())) {
          paths.push_back(entry.path().string());
        }
      }
    } else {
      paths.push_back(rp.string());
    }
  }
  std::sort(paths.begin(), paths.end());

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    FMS_CHECK_MSG(in.good(), "fms_analyze: cannot open " << path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::vector<std::pair<std::string, std::string>> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) files.emplace_back(p, slurp(p));
  return analyze_sources(files, slurp(opts.salt_registry_path),
                         opts.salt_registry_path,
                         slurp(opts.design_doc_path), opts.design_doc_path);
}

}  // namespace fms::analyze
