#!/usr/bin/env bash
# Random-kill-point durability stress: repeatedly SIGKILL a journaled
# search CLI at a random moment, recover with --recover, and require the
# final genotype to be byte-identical to an uninterrupted reference run.
#
#   tools/durability_stress.sh <path-to-fms_search_cli> [iterations]
#
# Exits non-zero on the first mismatch. RANDOM is seeded so a failure is
# reproducible by rerunning the script.
set -u

CLI="${1:?usage: durability_stress.sh <fms_search_cli> [iterations]}"
ITERS="${2:-20}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

COMMON_ARGS=(--participants 4 --seed 7 --warmup 3 --rounds 24 --quorum 0.75
  --fault-plan "crash=0.25,crash_round=4,corrupt=0.1,divergent=0.25,disk_short=0.2,disk_eio=0.2,seed=13"
  --churn-plan "leave=0.1,away_min=1,away_max=3,seed=14")

echo "== reference run (uninterrupted) =="
REF_DIR="$WORK/ref"
mkdir -p "$REF_DIR"
"$CLI" "${COMMON_ARGS[@]}" --genotype-out "$REF_DIR/g.bin" \
  > "$REF_DIR/log" 2>&1
if [[ ! -f "$REF_DIR/g.bin" ]]; then
  echo "FATAL: reference run produced no genotype"; tail "$REF_DIR/log"
  exit 1
fi

RANDOM=4242
fail=0
for i in $(seq 1 "$ITERS"); do
  DIR="$WORK/iter$i"
  mkdir -p "$DIR"
  ARGS=("${COMMON_ARGS[@]}"
    --journal "$DIR/wal.bin"
    --checkpoint "$DIR/ck.bin" --checkpoint-every 4
    --genotype-out "$DIR/g.bin")

  # Launch, then kill at a random offset inside the expected runtime.
  "$CLI" "${ARGS[@]}" > "$DIR/log.0" 2>&1 &
  pid=$!
  # 0.05s .. 1.55s in 50ms steps — spans warmup, search, and completion.
  sleep "$(awk -v r="$RANDOM" 'BEGIN { printf "%.2f", 0.05 + (r % 31) * 0.05 }')"
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  killed="yes"
  [[ -f "$DIR/g.bin" ]] && killed="no (finished first)"

  # Recover until the run completes; a kill can land mid-recovery too,
  # so allow a few attempts before requiring success.
  attempt=0
  until [[ -f "$DIR/g.bin" ]]; do
    attempt=$((attempt + 1))
    if (( attempt > 5 )); then
      echo "iter $i: FAIL — no genotype after $((attempt - 1)) recoveries"
      tail -5 "$DIR/log.$((attempt - 1))"
      fail=1
      break
    fi
    "$CLI" "${ARGS[@]}" --recover > "$DIR/log.$attempt" 2>&1
  done
  [[ $fail -ne 0 ]] && break

  if cmp -s "$REF_DIR/g.bin" "$DIR/g.bin"; then
    echo "iter $i: OK (killed: $killed, recoveries: $attempt)"
  else
    echo "iter $i: FAIL — genotype differs from reference"
    fail=1
    break
  fi
done

if (( fail )); then
  echo "== durability stress FAILED (work dir kept: $WORK) =="
  trap - EXIT
  exit 1
fi
echo "== durability stress passed ($ITERS iterations) =="
