// fms_report CLI.
//
//   fms_report --out report.html [--title T] [--trace RUN.trace.jsonl]
//              [--metrics RUN.metrics.csv] [--health RUN.health.json]
//              [--bench BENCH_perf.json] [--history BENCH_history.jsonl]
//              [--peak fms_peak.json]
//   fms_report --compare TRACE_A TRACE_B [--out diff.html]
//
// Report mode fuses one run's observability artifacts into a single
// self-contained HTML file; every input is optional and missing ones
// degrade to placeholder sections. Compare mode diffs two trace JSONL
// files round-by-round, prints the first diverging round/field, writes
// an optional diff HTML, and exits 1 on divergence. Exit code 2 means
// usage error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "src/common/check.h"
#include "src/obs/report.h"

namespace {

constexpr const char* kUsage = R"(usage:
  fms_report --out report.html [inputs]      generate a run report
  fms_report --compare A B [--out diff.html] diff two trace JSONL files

inputs (all optional; missing files become "no data" sections):
  --title T       report title (default "fms run report")
  --trace PATH    trace JSONL (rounds, profile zones, work ledger)
  --metrics PATH  metrics CSV snapshot
  --health PATH   health.json from the search-health monitor
  --bench PATH    BENCH_perf.json
  --history PATH  BENCH_history.jsonl
  --peak PATH     machine-peak sidecar (roofline ceilings)
)";

}  // namespace

int main(int argc, char** argv) {
  fms::obs::ReportInputs inputs;
  std::string out_path;
  std::string compare_a;
  std::string compare_b;

  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      auto need_value = [&](const char* flag) -> const char* {
        FMS_CHECK_MSG(i + 1 < argc, "missing value for " << flag);
        return argv[++i];
      };
      if (std::strcmp(arg, "--out") == 0) {
        out_path = need_value("--out");
      } else if (std::strcmp(arg, "--title") == 0) {
        inputs.title = need_value("--title");
      } else if (std::strcmp(arg, "--trace") == 0) {
        inputs.trace_jsonl_path = need_value("--trace");
      } else if (std::strcmp(arg, "--metrics") == 0) {
        inputs.metrics_csv_path = need_value("--metrics");
      } else if (std::strcmp(arg, "--health") == 0) {
        inputs.health_json_path = need_value("--health");
      } else if (std::strcmp(arg, "--bench") == 0) {
        inputs.bench_json_path = need_value("--bench");
      } else if (std::strcmp(arg, "--history") == 0) {
        inputs.history_jsonl_path = need_value("--history");
      } else if (std::strcmp(arg, "--peak") == 0) {
        inputs.peak_json_path = need_value("--peak");
      } else if (std::strcmp(arg, "--compare") == 0) {
        compare_a = need_value("--compare");
        FMS_CHECK_MSG(i + 1 < argc, "--compare needs two trace paths");
        compare_b = argv[++i];
      } else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
        std::fputs(kUsage, stdout);
        return 0;
      } else {
        FMS_CHECK_MSG(false, "unknown flag " << arg);
      }
    }

    if (!compare_a.empty()) {
      const fms::obs::RunDiff diff =
          fms::obs::diff_runs(compare_a, compare_b);
      std::fputs(fms::obs::diff_summary(diff).c_str(), stdout);
      if (!out_path.empty()) {
        std::ofstream f(out_path);
        FMS_CHECK_MSG(f.good(), "cannot open " << out_path);
        f << fms::obs::generate_diff_html(diff, compare_a, compare_b);
        std::printf("report written to %s\n", out_path.c_str());
      }
      return diff.identical ? 0 : 1;
    }

    FMS_CHECK_MSG(!out_path.empty(), "--out is required in report mode");
    fms::obs::write_report_html(inputs, out_path);
    std::printf("report written to %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fms_report: %s\n%s", e.what(), kUsage);
    return 2;
  }
}
