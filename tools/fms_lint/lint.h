// fms_lint — repo-specific determinism and convention linter.
//
// The two guarantees this repo stakes its results on — bit-identical
// kill-and-resume and data-race-free concurrent metrics recording — die
// by a thousand innocuous-looking cuts: one std::random_device in a new
// baseline, one wall-clock read in an aggregation path, one iteration
// over an unordered container during serialization. Compiler warnings
// and clang-tidy do not know these project rules, so this linter encodes
// them and runs as a tier-1 ctest (`ctest -L lint`).
//
// The scanner is deliberately textual (comments and string literals are
// stripped first, so prose mentioning rand() never fires). It trades
// type-awareness for zero build-time cost and total predictability;
// genuine exceptions are annotated in place with
//   // fms-lint: allow(<rule>[,<rule>...])  -- reason
// either on the offending line or on a comment-only line directly above
// it (the annotation chains across consecutive comment lines).
#pragma once

#include <string>
#include <vector>

namespace fms::lint {

// Stable rule identifiers (used in findings and allow() annotations):
//   unseeded-rng         std::random_device / rand() / srand() outside
//                        src/common/rng.h — breaks seeded reproducibility.
//   wall-clock           std::chrono::system_clock / time() / gettimeofday
//                        outside src/common/stopwatch.h — results must not
//                        depend on wall-clock time.
//   unordered-container  std::unordered_{map,set} in aggregation or
//                        serialization code (src/core, src/fed, src/dc,
//                        src/fault, src/obs, *serialize*, *checkpoint*) —
//                        iteration order varies across libstdc++ versions
//                        and hash seeds, which breaks bit-identical resume.
//   float-eq             ==/!= against a floating-point literal — exact
//                        comparison is almost always a tolerance bug.
//   pragma-once          header missing #pragma once.
//   bare-throw           throw std::runtime_error / std::logic_error where
//                        FMS_CHECK / fms::CheckError is the convention.
//   narrowing-accum      float/int narrowing inside an accumulation loop in
//                        src/agg or src/tensor hot paths (+=/-= whose RHS
//                        narrows via static_cast<float>/static_cast<int>,
//                        a float accumulator fed a static_cast<double>
//                        expression, or an int accumulator fed a floating
//                        literal) — narrowing per-element inside the loop
//                        loses precision the paper's aggregation bounds
//                        assume; accumulate wide and narrow once outside.
struct RuleInfo {
  const char* id;
  const char* summary;
};

const std::vector<RuleInfo>& rules();

struct Finding {
  std::string path;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// Lints one translation unit given its contents. `path` drives the
// sanctioned-file exemptions and the aggregation-context check; it is
// matched with '/' separators regardless of platform.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& contents);

// Reads `path` from disk and lints it. Throws fms::CheckError on IO error.
std::vector<Finding> lint_file(const std::string& path);

// Recursively lints every .h/.hpp/.cpp/.cc under `roots`. During
// directory recursion, paths containing a "lint_fixtures" or "build"
// component are skipped — the fixtures are known-bad by design and build
// trees hold generated code. A root naming a file directly is always
// linted.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots);

}  // namespace fms::lint
