// fms_lint CLI — scans the given files/directories and prints findings as
//   path:line: [rule] message
// Exit status: 0 clean, 1 findings, 2 usage or IO error.
//
// Registered as the `lint` ctest over src/, tests/, bench/ and examples/,
// so a plain `ctest` run fails on any new determinism hazard.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "tools/fms_lint/lint.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: fms_lint [--list-rules] <file-or-dir>...\n"
               "       suppress a finding in place with: "
               "// fms-lint: allow(<rule>)  -- <reason>\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : fms::lint::rules()) {
        std::printf("%-20s %s\n", r.id, r.summary);
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fms_lint: unknown flag %s\n", arg.c_str());
      usage();
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    usage();
    return 2;
  }

  std::vector<fms::lint::Finding> findings;
  try {
    findings = fms::lint::lint_tree(roots);
  } catch (const fms::CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("fms_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
