#include "tools/fms_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace fms::lint {
namespace {

constexpr const char* kRuleRng = "unseeded-rng";
constexpr const char* kRuleWallClock = "wall-clock";
constexpr const char* kRuleUnordered = "unordered-container";
constexpr const char* kRuleFloatEq = "float-eq";
constexpr const char* kRulePragmaOnce = "pragma-once";
constexpr const char* kRuleBareThrow = "bare-throw";
constexpr const char* kRuleNarrowingAccum = "narrowing-accum";

bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

// One source line after comment/string stripping, plus the rules any
// comment on that line explicitly allows.
struct ScannedLine {
  std::string code;            // literals hollowed out, comments removed
  std::string raw;             // original text (pragma-once looks here)
  std::set<std::string> allowed;
};

// Parses every `fms-lint: allow(a,b)` marker inside a comment chunk.
void collect_allowances(const std::string& comment, std::set<std::string>* out) {
  static const std::string kMarker = "fms-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
    const std::size_t open = pos + kMarker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string id;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!id.empty()) out->insert(id);
        id.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        id.push_back(c);
      }
    }
    pos = close + 1;
  }
}

// Splits `contents` into lines with comments removed and string/char
// literal bodies hollowed out (delimiters stay, so `""` still reads as an
// expression). Line numbering is preserved across multi-line constructs.
std::vector<ScannedLine> scan(const std::string& contents) {
  std::vector<ScannedLine> lines;
  lines.emplace_back();

  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;       // raw-string closing delimiter, ")<delim>\""
  std::string comment_buf;     // accumulates comment text for allow()
  char prev_code = '\0';       // last significant code char (digit seps)

  const std::size_t n = contents.size();
  std::size_t i = 0;
  auto newline = [&] {
    collect_allowances(comment_buf, &lines.back().allowed);
    comment_buf.clear();
    lines.emplace_back();
  };
  while (i < n) {
    const char c = contents[i];
    const char next = i + 1 < n ? contents[i + 1] : '\0';
    if (c != '\n') lines.back().raw.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '\n') {
          newline();
        } else if (c == '/' && next == '/') {
          // Line comment: swallow to end of line, keep text for allow().
          std::size_t j = i + 2;
          while (j < n && contents[j] != '\n') {
            comment_buf.push_back(contents[j]);
            lines.back().raw.push_back(contents[j]);
            ++j;
          }
          i = j;
          if (i < n) newline();  // consume the '\n'
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          lines.back().raw.push_back(next);
          ++i;
        } else if (c == '"') {
          if (prev_code == 'R') {
            // Raw string: R"delim( ... )delim"
            std::string delim;
            std::size_t j = i + 1;
            while (j < n && contents[j] != '(' && delim.size() < 18) {
              delim.push_back(contents[j]);
              ++j;
            }
            raw_delim = ")" + delim + "\"";
            state = State::kRawString;
            lines.back().code.push_back('"');
            // skip the delimiter + '(' without copying it into code
            for (std::size_t k = i + 1; k <= j && k < n; ++k) {
              lines.back().raw.push_back(contents[k]);
            }
            i = j;
          } else {
            state = State::kString;
            lines.back().code.push_back('"');
          }
          prev_code = '"';
        } else if (c == '\'' && !is_ident_char(prev_code)) {
          state = State::kChar;
          lines.back().code.push_back('\'');
          prev_code = '\'';
        } else {
          lines.back().code.push_back(c);
          if (std::isspace(static_cast<unsigned char>(c)) == 0) prev_code = c;
        }
        break;
      case State::kBlockComment:
        if (c == '\n') {
          newline();
        } else if (c == '*' && next == '/') {
          state = State::kCode;
          lines.back().raw.push_back(next);
          ++i;
        } else {
          comment_buf.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (next == '\n') {
            newline();
          } else {
            lines.back().raw.push_back(next);
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          lines.back().code.push_back('"');
        } else if (c == '\n') {
          newline();  // unterminated; tolerate
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (next != '\n' && next != '\0') lines.back().raw.push_back(next);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          lines.back().code.push_back('\'');
        } else if (c == '\n') {
          newline();
        }
        break;
      case State::kRawString:
        if (c == '\n') {
          newline();
        } else if (c == ')' && contents.compare(i, raw_delim.size(),
                                                raw_delim) == 0) {
          for (std::size_t k = 1; k < raw_delim.size() && i + k < n; ++k) {
            lines.back().raw.push_back(contents[i + k]);
          }
          i += raw_delim.size() - 1;
          lines.back().code.push_back('"');
          state = State::kCode;
        }
        break;
    }
    ++i;
  }
  collect_allowances(comment_buf, &lines.back().allowed);
  return lines;
}

// True when `token` occurs in `code` as a whole identifier; when
// `call_form` is set, the token must additionally be followed by '('
// (so `#include <ctime>` or `steady_clock` never trip call-only rules).
bool has_token(const std::string& code, const std::string& token,
               bool call_form) {
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool lhs_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    std::size_t after = pos + token.size();
    const bool rhs_ok = after >= code.size() || !is_ident_char(code[after]);
    if (lhs_ok && rhs_ok) {
      if (!call_form) return true;
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after])) != 0) {
        ++after;
      }
      if (after < code.size() && code[after] == '(') return true;
    }
    pos += token.size();
  }
  return false;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Aggregation / serialization context: the code whose container iteration
// order feeds checkpoints, payloads, or metrics output.
bool ordering_sensitive(const std::string& path) {
  for (const char* dir :
       {"/core/", "/fed/", "/dc/", "/fault/", "/obs/", "/agg/"}) {
    if (path.find(dir) != std::string::npos) return true;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return base.find("serialize") != std::string::npos ||
         base.find("checkpoint") != std::string::npos;
}

// ==/!= where either operand is a floating-point literal. Pure textual
// heuristic: identifier-vs-identifier comparisons pass (types unknown),
// which keeps the rule quiet outside the obviously wrong cases.
bool float_equality(const std::string& code) {
  static const std::regex rhs_literal(
      R"((?:^|[^<>!=&|+\-*/%^])[!=]=\s*([+-]?(?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)(?:[eE][+-]?[0-9]+)?[fFlL]*)(?:$|[^=A-Za-z0-9_.]))");
  static const std::regex lhs_literal(
      R"((?:^|[^A-Za-z0-9_.])((?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)(?:[eE][+-]?[0-9]+)?[fFlL]*)\s*[!=]=(?:$|[^=]))");
  std::smatch m;
  // The captured literal must actually be floating-point — integer
  // comparisons like `count() == 0` stay legal.
  auto is_floaty = [](const std::string& lit) {
    return lit.find('.') != std::string::npos ||
           lit.find('e') != std::string::npos ||
           lit.find('E') != std::string::npos ||
           lit.find('f') != std::string::npos ||
           lit.find('F') != std::string::npos;
  };
  auto search = [&](const std::regex& re) {
    std::string::const_iterator it = code.cbegin();
    while (std::regex_search(it, code.cend(), m, re)) {
      if (is_floaty(m[1].str())) return true;
      it = m[0].second;
    }
    return false;
  };
  return search(rhs_literal) || search(lhs_literal);
}

void add(std::vector<Finding>* out, const std::string& path, int line,
         const char* rule, const std::string& message) {
  out->push_back(Finding{path, line, rule, message});
}

// Accumulation-loop context for narrowing-accum: src/agg and src/tensor
// hold the hot reduction kernels whose per-element precision the
// aggregation bounds depend on.
bool accumulation_hot_path(const std::string& path) {
  return path.find("/agg/") != std::string::npos ||
         path.find("/tensor/") != std::string::npos;
}

bool rhs_has_floating_literal(const std::string& rhs) {
  static const std::regex float_lit(
      R"((?:^|[^A-Za-z0-9_.])(?:[0-9]+\.[0-9]*|\.[0-9]+)(?:[eE][+-]?[0-9]+)?)");
  return std::regex_search(rhs, float_lit);
}

// True when `code` contains a +=/-= whose value is narrowed per element:
// an explicit static_cast<float>/static_cast<int> on the RHS, a float
// accumulator fed a static_cast<double> expression (the widened product
// is rounded back every iteration), or an int accumulator fed a floating
// literal. `decl_type` maps identifiers to their textually declared type
// within this file.
bool narrowing_accumulation(const std::string& code,
                            const std::map<std::string, std::string>& decl_type) {
  for (const char* op : {"+=", "-="}) {
    std::size_t pos = code.find(op);
    while (pos != std::string::npos) {
      std::size_t e = pos;
      while (e > 0 &&
             std::isspace(static_cast<unsigned char>(code[e - 1])) != 0) {
        --e;
      }
      std::size_t b = e;
      while (b > 0 && is_ident_char(code[b - 1])) --b;
      const std::string lhs = code.substr(b, e - b);
      const std::string rhs = code.substr(pos + 2);
      if (rhs.find("static_cast<float>(") != std::string::npos ||
          rhs.find("static_cast<int>(") != std::string::npos) {
        return true;
      }
      const auto it = decl_type.find(lhs);
      if (it != decl_type.end()) {
        if (it->second == "float" &&
            rhs.find("static_cast<double>(") != std::string::npos) {
          return true;
        }
        if (it->second == "int" && rhs_has_floating_literal(rhs)) {
          return true;
        }
      }
      pos = code.find(op, pos + 2);
    }
  }
  return false;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kRuleRng,
       "std::random_device / rand() / srand() outside src/common/rng.h "
       "(breaks seeded reproducibility)"},
      {kRuleWallClock,
       "std::chrono::system_clock / time() / gettimeofday() outside "
       "src/common/stopwatch.h (results must not depend on wall-clock)"},
      {kRuleUnordered,
       "std::unordered_{map,set} in aggregation/serialization code "
       "(iteration order breaks bit-identical resume)"},
      {kRuleFloatEq,
       "==/!= against a floating-point literal (use a tolerance)"},
      {kRulePragmaOnce, "header missing #pragma once"},
      {kRuleBareThrow,
       "throw std::runtime_error/logic_error (use FMS_CHECK / "
       "fms::CheckError)"},
      {kRuleNarrowingAccum,
       "float/int narrowing inside an accumulation loop in src/agg or "
       "src/tensor (accumulate wide, narrow once outside the loop)"},
  };
  return kRules;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& contents) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');

  const bool is_header = path_ends_with(p, ".h") || path_ends_with(p, ".hpp");
  const bool rng_sanctioned = path_ends_with(p, "src/common/rng.h");
  const bool clock_sanctioned = path_ends_with(p, "src/common/stopwatch.h");
  const bool check_sanctioned = path_ends_with(p, "src/common/check.h");
  const bool unordered_applies = ordering_sensitive(p);
  const bool narrowing_applies = accumulation_hot_path(p);

  const std::vector<ScannedLine> lines = scan(contents);
  std::vector<Finding> out;

  // Textual declaration map for narrowing-accum: the declared type of
  // every `float x = ...` / `int x = ...` style local in the file.
  std::map<std::string, std::string> decl_type;
  if (narrowing_applies) {
    static const std::regex decl_re(
        R"((?:^|[^A-Za-z0-9_:<])(float|double|int)\s+([A-Za-z_][A-Za-z0-9_]*)\s*(?:=|\{|;))");
    for (const ScannedLine& ln : lines) {
      auto it = std::sregex_iterator(ln.code.begin(), ln.code.end(), decl_re);
      const auto end = std::sregex_iterator();
      for (; it != end; ++it) {
        decl_type.emplace((*it)[2].str(), (*it)[1].str());
      }
    }
  }

  bool saw_pragma_once = false;
  bool pragma_once_allowed = false;
  for (const ScannedLine& ln : lines) {
    std::string trimmed = ln.raw;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (trimmed.rfind("#pragma once", 0) == 0) saw_pragma_once = true;
    if (ln.allowed.count(kRulePragmaOnce) != 0) pragma_once_allowed = true;
  }

  // An allow() on a comment-only line suppresses the next code line (the
  // NOLINTNEXTLINE style), chaining across consecutive comment lines; an
  // allow() sharing a line with code suppresses that line.
  std::vector<std::set<std::string>> effective(lines.size());
  {
    std::set<std::string> pending;
    for (std::size_t idx = 0; idx < lines.size(); ++idx) {
      effective[idx] = lines[idx].allowed;
      effective[idx].insert(pending.begin(), pending.end());
      const std::string& c = lines[idx].code;
      if (c.find_first_not_of(" \t") == std::string::npos) {
        pending.insert(lines[idx].allowed.begin(), lines[idx].allowed.end());
      } else {
        pending.clear();
      }
    }
  }

  // Loop-body tracking for narrowing-accum: a stack of the brace depths
  // at which for/while bodies opened, plus a pending flag between a loop
  // header and its '{' (or its single-statement body).
  int brace_depth = 0;
  int paren_depth = 0;
  bool loop_pending = false;
  std::vector<int> loop_open_depth;

  for (std::size_t idx = 0; idx < lines.size(); ++idx) {
    const ScannedLine& ln = lines[idx];
    const std::string& code = ln.code;
    const int lineno = static_cast<int>(idx) + 1;
    if (code.empty()) continue;
    auto allowed = [&](const char* rule) {
      return effective[idx].count(rule) != 0;
    };

    if (!rng_sanctioned && !allowed(kRuleRng)) {
      if (has_token(code, "random_device", /*call_form=*/false)) {
        add(&out, p, lineno, kRuleRng,
            "std::random_device is non-deterministic; take an fms::Rng& "
            "(src/common/rng.h) instead");
      } else if (has_token(code, "rand", true) ||
                 has_token(code, "srand", true) ||
                 has_token(code, "rand_r", true)) {
        add(&out, p, lineno, kRuleRng,
            "C rand()/srand() uses hidden global state; take an fms::Rng& "
            "(src/common/rng.h) instead");
      }
    }
    if (!clock_sanctioned && !allowed(kRuleWallClock)) {
      if (has_token(code, "system_clock", false)) {
        add(&out, p, lineno, kRuleWallClock,
            "system_clock is wall-clock; use fms::Stopwatch "
            "(src/common/stopwatch.h) or simulated time");
      } else if (has_token(code, "time", true) ||
                 has_token(code, "gettimeofday", true) ||
                 has_token(code, "localtime", true) ||
                 has_token(code, "gmtime", true) ||
                 has_token(code, "ctime", true)) {
        add(&out, p, lineno, kRuleWallClock,
            "C time API reads wall-clock; use fms::Stopwatch "
            "(src/common/stopwatch.h) or simulated time");
      }
    }
    if (unordered_applies && !allowed(kRuleUnordered)) {
      if (has_token(code, "unordered_map", false) ||
          has_token(code, "unordered_set", false) ||
          has_token(code, "unordered_multimap", false) ||
          has_token(code, "unordered_multiset", false)) {
        add(&out, p, lineno, kRuleUnordered,
            "unordered container in aggregation/serialization code: "
            "iteration order is implementation-defined and breaks "
            "bit-identical resume; use std::map or a sorted vector");
      }
    }
    if (!allowed(kRuleFloatEq) && float_equality(code)) {
      add(&out, p, lineno, kRuleFloatEq,
          "exact floating-point comparison; compare against a tolerance "
          "(or annotate an intentional exact-zero/sentinel check)");
    }
    if (!check_sanctioned && !allowed(kRuleBareThrow)) {
      if (has_token(code, "throw", false) &&
          (code.find("std::runtime_error") != std::string::npos ||
           code.find("std::logic_error") != std::string::npos)) {
        add(&out, p, lineno, kRuleBareThrow,
            "bare throw of a std exception; use FMS_CHECK/FMS_CHECK_MSG or "
            "throw fms::CheckError so tests and callers can match on it");
      }
    }
    if (narrowing_applies) {
      const bool opens_loop = has_token(code, "for", /*call_form=*/true) ||
                              has_token(code, "while", /*call_form=*/true);
      const bool in_loop =
          !loop_open_depth.empty() || loop_pending || opens_loop;
      if (in_loop && !allowed(kRuleNarrowingAccum) &&
          narrowing_accumulation(code, decl_type)) {
        add(&out, p, lineno, kRuleNarrowingAccum,
            "float/int narrowing inside an accumulation loop: accumulate "
            "in double (or keep the element type wide) and narrow once "
            "after the loop");
      }
      if (opens_loop) loop_pending = true;
      for (const char ch : code) {
        if (ch == '(') {
          ++paren_depth;
        } else if (ch == ')') {
          if (paren_depth > 0) --paren_depth;
        } else if (ch == '{') {
          ++brace_depth;
          if (loop_pending) {
            loop_open_depth.push_back(brace_depth);
            loop_pending = false;
          }
        } else if (ch == '}') {
          if (!loop_open_depth.empty() &&
              loop_open_depth.back() == brace_depth) {
            loop_open_depth.pop_back();
          }
          if (brace_depth > 0) --brace_depth;
        } else if (ch == ';' && paren_depth == 0) {
          // End of a braceless single-statement loop body.
          loop_pending = false;
        }
      }
    }
  }

  if (is_header && !saw_pragma_once && !pragma_once_allowed) {
    add(&out, p, 1, kRulePragmaOnce, "header is missing #pragma once");
  }
  return out;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FMS_CHECK_MSG(in.good(), "fms_lint: cannot open " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_source(path, ss.str());
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  auto skip = [](const fs::path& p) {
    for (const auto& part : p) {
      const std::string s = part.string();
      if (s == "lint_fixtures" || s == "analyze_fixtures" || s == ".git" ||
          s == "build" || s.rfind("build-", 0) == 0) {
        return true;
      }
    }
    return false;
  };
  auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
  };
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path rp(root);
    FMS_CHECK_MSG(fs::exists(rp), "fms_lint: no such path: " << root);
    if (fs::is_directory(rp)) {
      for (const auto& entry : fs::recursive_directory_iterator(rp)) {
        if (entry.is_regular_file() && lintable(entry.path()) &&
            !skip(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else {
      // Explicitly named files are always linted — the exclusion list
      // only guards directory recursion (fixtures are known-bad by
      // design, but asking for one by name is deliberate).
      files.push_back(rp.string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> out;
  for (const std::string& f : files) {
    std::vector<Finding> fs_ = lint_file(f);
    out.insert(out.end(), fs_.begin(), fs_.end());
  }
  return out;
}

}  // namespace fms::lint
