// Deterministic client-churn model for the federated search substrate.
//
// The paper's protocol assumes a fixed participant set; a real fleet does
// not hold still: clients leave and rejoin at a steady background rate,
// whole cohorts vanish in bursts (network partitions, app updates), and
// load follows diurnal phases. This module *schedules* that membership —
// the server loop (src/core/search.cpp) reacts to it via the persistent
// ClientRegistry (src/fed/registry.h) and the degradation controller
// (src/fault/degrade.h).
//
// Like the fault injector, every membership decision is a pure function of
// (plan seed, participant, round): the model carries no evolving RNG
// state, so churn schedules are reproducible byte-for-byte, independent of
// query order, and a resumed search re-derives the exact same membership
// without checkpointing model state.
#pragma once

#include <cstdint>
#include <string>

namespace fms {

// Declarative churn schedule. An all-zero plan keeps every client live
// every round and the search takes its churn-free fast path.
struct ChurnPlan {
  // Steady-state churn: each live round a client starts an away period
  // with probability leave_p; the away duration is drawn uniformly from
  // [away_min, away_max] rounds. In equilibrium the absent fraction is
  // roughly leave_p * mean_away / (1 + leave_p * mean_away).
  double leave_p = 0.0;
  int away_min = 2;
  int away_max = 6;
  // Late joiners: this fraction of the fleet is absent from round 0 and
  // first appears at a round drawn from [1, join_spread].
  double late_join_fraction = 0.0;
  int join_spread = 10;
  // Burst mass-leave: this fraction of the fleet leaves together at
  // burst_round and stays away for burst_away rounds.
  double burst_fraction = 0.0;
  int burst_round = 0;
  int burst_away = 8;
  // Diurnal load phases: the steady leave rate is modulated by a triangle
  // wave of this amplitude over diurnal_period rounds (peak churn mid-
  // period, trough at the boundaries). Deterministic simulated phases —
  // no wall clock anywhere.
  double diurnal_amplitude = 0.0;
  int diurnal_period = 48;
  std::uint64_t seed = 0xC4DA;

  bool empty() const;

  // Parses "key=value" pairs separated by commas, e.g.
  //   "leave=0.06,away_min=2,away_max=6,burst=0.5,burst_round=20"
  // Keys: leave, away_min, away_max, late_join, join_spread, burst,
  // burst_round, burst_away, diurnal, diurnal_period, seed. Throws
  // CheckError on unknown keys or bad values.
  static ChurnPlan parse(const std::string& spec);
  std::string to_string() const;
};

class ChurnModel {
 public:
  ChurnModel(const ChurnPlan& plan, int num_participants);

  const ChurnPlan& plan() const { return plan_; }
  bool active() const { return !plan_.empty(); }

  // First round this client exists (0 unless selected as a late joiner).
  int join_round(int participant) const;
  // Membership at `round`: false while absent (not yet joined, in a burst
  // away window, or inside a steady-state away period). Pure function of
  // (seed, participant, round) — overlapping away periods simply merge.
  bool is_live(int participant, int round) const;
  // Diurnally-modulated steady leave rate in effect at `round`.
  double leave_rate(int round) const;

 private:
  bool in_burst(int participant, int round) const;
  double u01(std::uint64_t salt, std::uint64_t a, std::uint64_t b) const;

  ChurnPlan plan_;
  int num_participants_;
};

}  // namespace fms
