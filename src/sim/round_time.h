// Event-driven round-time simulation: how long does a communication round
// take under hard vs soft synchronization?
//
// The paper motivates soft synchronization with stragglers ("the search
// process would be blocked forever if a participant loses connection")
// but reports no timing figure; this module quantifies the design choice
// (DESIGN.md §5) and also *derives* the staleness distribution a given
// soft-sync deadline induces, linking the network model to the
// delay-compensation experiments.
//
// Per participant k in round t:
//   completion_k = download(bytes_k / bw_k) + compute(flops_k / speed_k)
//                + upload(grad_bytes_k / bw_k)
// Hard sync ends the round at max_k completion_k; soft sync ends it at the
// ceil(wait_fraction * K)-th completion. Late participants deliver their
// update in the first later round whose end time exceeds their completion.
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/net/trace.h"
#include "src/sim/devices.h"

namespace fms {

struct RoundTimeConfig {
  int participants = 10;
  int rounds = 200;
  double wait_fraction = 0.8;  // soft sync waits for this share of updates
  // Heterogeneous compute: each participant's speed is the device's
  // throughput scaled by a lognormal factor (mobile devices vary widely).
  DeviceProfile device = jetson_tx2();
  double speed_jitter_sigma = 0.5;
  // Straggler injection: with this probability a participant's round
  // slows down by slow_factor (backgrounded app, thermal throttling...).
  double straggler_p = 0.1;
  double slow_factor = 8.0;
  double flops_per_step = 5e9;     // sub-model training step
  double payload_bytes = 280000;   // sub-model download size
  double grad_bytes = 280000;      // gradient upload size
};

struct RoundTimeResult {
  double hard_total_seconds = 0.0;
  double soft_total_seconds = 0.0;
  // Histogram of delays (in rounds) that the soft-sync deadline induces;
  // index 0 = fresh, last bucket = dropped (delay > max tracked).
  std::vector<double> induced_staleness;
  double mean_hard_round = 0.0;
  double mean_soft_round = 0.0;
};

RoundTimeResult simulate_round_time(const RoundTimeConfig& cfg,
                                    const std::vector<NetEnvironment>& envs,
                                    Rng& rng);

}  // namespace fms
