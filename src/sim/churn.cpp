#include "src/sim/churn.h"

#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace fms {
namespace {

// Decision-stream salts: each churn process draws from its own hash stream
// so tuning one rate never reshuffles another process's schedule.
constexpr std::uint64_t kSaltJoinSelect = 0x30;
constexpr std::uint64_t kSaltJoinRound = 0x31;
constexpr std::uint64_t kSaltBurstSelect = 0x32;
constexpr std::uint64_t kSaltLeave = 0x33;
constexpr std::uint64_t kSaltAwayDur = 0x34;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                  std::uint64_t b) {
  std::uint64_t h = splitmix64(seed ^ salt);
  h = splitmix64(h ^ a);
  h = splitmix64(h ^ b);
  return h;
}

double to_u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    FMS_CHECK_MSG(used == value.size() && std::isfinite(v),
                  "bad churn-plan value for " << key << ": '" << value << "'");
    return v;
  } catch (const CheckError&) {
    throw;
  } catch (...) {
    throw CheckError("bad churn-plan value for " + key + ": '" + value + "'");
  }
}

double parse_prob(const std::string& key, const std::string& value) {
  const double v = parse_double(key, value);
  FMS_CHECK_MSG(v >= 0.0 && v <= 1.0,
                "churn-plan " << key << " must be in [0, 1], got " << v);
  return v;
}

}  // namespace

bool ChurnPlan::empty() const {
  return leave_p <= 0.0 && late_join_fraction <= 0.0 && burst_fraction <= 0.0;
}

ChurnPlan ChurnPlan::parse(const std::string& spec) {
  ChurnPlan plan;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    FMS_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "churn-plan entry '" << item << "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "leave") {
      plan.leave_p = parse_prob(key, value);
    } else if (key == "away_min") {
      plan.away_min = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.away_min >= 1, "away_min must be >= 1");
    } else if (key == "away_max") {
      plan.away_max = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.away_max >= 1, "away_max must be >= 1");
    } else if (key == "late_join") {
      plan.late_join_fraction = parse_prob(key, value);
    } else if (key == "join_spread") {
      plan.join_spread = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.join_spread >= 1, "join_spread must be >= 1");
    } else if (key == "burst") {
      plan.burst_fraction = parse_prob(key, value);
    } else if (key == "burst_round") {
      plan.burst_round = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.burst_round >= 0, "burst_round must be >= 0");
    } else if (key == "burst_away") {
      plan.burst_away = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.burst_away >= 1, "burst_away must be >= 1");
    } else if (key == "diurnal") {
      plan.diurnal_amplitude = parse_double(key, value);
      FMS_CHECK_MSG(plan.diurnal_amplitude >= 0.0, "diurnal must be >= 0");
    } else if (key == "diurnal_period") {
      plan.diurnal_period = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.diurnal_period >= 2, "diurnal_period must be >= 2");
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_double(key, value));
    } else {
      throw CheckError("unknown churn-plan key '" + key + "'");
    }
  }
  FMS_CHECK_MSG(plan.away_max >= plan.away_min,
                "churn-plan away_max must be >= away_min");
  return plan;
}

std::string ChurnPlan::to_string() const {
  std::ostringstream os;
  os << "leave=" << leave_p << ",away_min=" << away_min
     << ",away_max=" << away_max << ",late_join=" << late_join_fraction
     << ",join_spread=" << join_spread << ",burst=" << burst_fraction
     << ",burst_round=" << burst_round << ",burst_away=" << burst_away
     << ",diurnal=" << diurnal_amplitude
     << ",diurnal_period=" << diurnal_period << ",seed=" << seed;
  return os.str();
}

ChurnModel::ChurnModel(const ChurnPlan& plan, int num_participants)
    : plan_(plan), num_participants_(num_participants) {
  FMS_CHECK_MSG(num_participants > 0, "churn model needs participants");
  FMS_CHECK_MSG(plan_.away_max >= plan_.away_min && plan_.away_min >= 1,
                "churn plan needs 1 <= away_min <= away_max");
}

double ChurnModel::u01(std::uint64_t salt, std::uint64_t a,
                       std::uint64_t b) const {
  return to_u01(mix(plan_.seed, salt, a, b));
}

int ChurnModel::join_round(int participant) const {
  if (plan_.late_join_fraction <= 0.0) return 0;
  const auto p = static_cast<std::uint64_t>(participant);
  if (u01(kSaltJoinSelect, p, 0) >= plan_.late_join_fraction) return 0;
  return 1 + static_cast<int>(u01(kSaltJoinRound, p, 0) *
                              static_cast<double>(plan_.join_spread));
}

double ChurnModel::leave_rate(int round) const {
  if (plan_.leave_p <= 0.0) return 0.0;
  double rate = plan_.leave_p;
  if (plan_.diurnal_amplitude > 0.0 && plan_.diurnal_period >= 2) {
    // Triangle wave in [-1, 1]: trough at the period boundaries, peak
    // mid-period. Trig-free so the modulation is exactly reproducible.
    const int phase_i = round % plan_.diurnal_period;
    const double phase =
        static_cast<double>(phase_i) / static_cast<double>(plan_.diurnal_period);
    const double wave = 1.0 - 4.0 * std::abs(phase - 0.5);
    rate *= 1.0 + plan_.diurnal_amplitude * wave;
  }
  return std::min(1.0, std::max(0.0, rate));
}

bool ChurnModel::in_burst(int participant, int round) const {
  if (plan_.burst_fraction <= 0.0) return false;
  if (round < plan_.burst_round ||
      round >= plan_.burst_round + plan_.burst_away) {
    return false;
  }
  return u01(kSaltBurstSelect, static_cast<std::uint64_t>(participant), 0) <
         plan_.burst_fraction;
}

bool ChurnModel::is_live(int participant, int round) const {
  if (!active()) return true;
  const int joined = join_round(participant);
  if (round < joined) return false;
  if (in_burst(participant, round)) return false;
  if (plan_.leave_p > 0.0) {
    const auto p = static_cast<std::uint64_t>(participant);
    // A leave event at round r keeps the client away for rounds
    // [r, r + dur); scanning the last away_max rounds covers every event
    // that could still hold at `round`.
    for (int r = round - plan_.away_max + 1; r <= round; ++r) {
      if (r < joined) continue;
      if (u01(kSaltLeave, p, static_cast<std::uint64_t>(r)) >= leave_rate(r)) {
        continue;
      }
      const int dur =
          plan_.away_min +
          static_cast<int>(
              u01(kSaltAwayDur, p, static_cast<std::uint64_t>(r)) *
              static_cast<double>(plan_.away_max - plan_.away_min + 1));
      if (round < r + dur) return false;
    }
  }
  return true;
}

}  // namespace fms
