#include "src/sim/staleness.h"

#include <cmath>

#include "src/common/check.h"
#include "src/obs/trace_ctx.h"

namespace fms {

StalenessDistribution::StalenessDistribution(std::vector<double> p_tau)
    : p_tau_(std::move(p_tau)) {
  // Validate up front with precise messages: a NaN/Inf entry, a negative
  // mass, or a total above 1 would make sample() return garbage delays
  // that silently corrupt the soft-sync experiments. An *empty* vector is
  // legal and means "every update exceeds the threshold" (total loss).
  double sum = 0.0;
  for (std::size_t t = 0; t < p_tau_.size(); ++t) {
    const double p = p_tau_[t];
    FMS_CHECK_MSG(std::isfinite(p),
                  "staleness probability p_tau[" << t << "] is not finite");
    FMS_CHECK_MSG(p >= 0.0, "staleness probability p_tau[" << t << "] = " << p
                                << " is negative");
    sum += p;
  }
  FMS_CHECK_MSG(sum <= 1.0 + 1e-9,
                "staleness probabilities sum to " << sum << " > 1");
  drop_p_ = std::max(0.0, 1.0 - sum);
}

int StalenessDistribution::sample(Rng& rng) const {
  double u = rng.uniform(0.0F, 1.0F);
  for (std::size_t t = 0; t < p_tau_.size(); ++t) {
    if (u < p_tau_[t]) return static_cast<int>(t);
    u -= p_tau_[t];
  }
  return kExceedsThreshold;
}

int StalenessDistribution::sample_traced(Rng& rng, int participant) const {
  const int tau = sample(rng);
  if (obs::tracing_enabled()) {
    obs::TraceContext::instance().record(
        participant, obs::Stage::kStale, 0.0, 0.0, static_cast<double>(tau),
        tau == kExceedsThreshold ? "overflow" : "");
  }
  return tau;
}

StalenessDistribution StalenessDistribution::none() {
  return StalenessDistribution({1.0});
}

StalenessDistribution StalenessDistribution::severe() {
  return StalenessDistribution({0.3, 0.4, 0.2});
}

StalenessDistribution StalenessDistribution::slight() {
  return StalenessDistribution({0.9, 0.09, 0.009});
}

}  // namespace fms
