#include "src/sim/staleness.h"

#include "src/common/check.h"

namespace fms {

StalenessDistribution::StalenessDistribution(std::vector<double> p_tau)
    : p_tau_(std::move(p_tau)) {
  double sum = 0.0;
  for (double p : p_tau_) {
    FMS_CHECK_MSG(p >= 0.0, "negative probability");
    sum += p;
  }
  FMS_CHECK_MSG(sum <= 1.0 + 1e-9, "staleness probabilities exceed 1");
  drop_p_ = std::max(0.0, 1.0 - sum);
}

int StalenessDistribution::sample(Rng& rng) const {
  double u = rng.uniform(0.0F, 1.0F);
  for (std::size_t t = 0; t < p_tau_.size(); ++t) {
    if (u < p_tau_[t]) return static_cast<int>(t);
    u -= p_tau_[t];
  }
  return kExceedsThreshold;
}

StalenessDistribution StalenessDistribution::none() {
  return StalenessDistribution({1.0});
}

StalenessDistribution StalenessDistribution::severe() {
  return StalenessDistribution({0.3, 0.4, 0.2});
}

StalenessDistribution StalenessDistribution::slight() {
  return StalenessDistribution({0.9, 0.09, 0.009});
}

}  // namespace fms
