// Staleness models for the soft-synchronization experiments (paper §VI-C).
//
// The paper specifies staleness as a distribution over update delays: e.g.
// the "severe" setting has 30% fresh updates, 40% stale by one round, 20%
// stale by two, and 10% beyond the staleness threshold (discarded). A
// sampled delay of kExceedsThreshold means the update never counts.
#pragma once

#include <vector>

#include "src/common/rng.h"

namespace fms {

inline constexpr int kExceedsThreshold = -1;

class StalenessDistribution {
 public:
  // p_tau[t] = probability an update is delayed by t rounds; the remaining
  // mass (1 - sum) exceeds the staleness threshold.
  explicit StalenessDistribution(std::vector<double> p_tau);

  // Returns a delay in rounds, or kExceedsThreshold.
  int sample(Rng& rng) const;

  // Same draw (identical RNG consumption), but records the outcome as a
  // "stale" lifecycle event on the causal trace (src/obs/trace_ctx) when
  // tracing is enabled — value = tau, detail "overflow" when the delay
  // exceeds the threshold.
  int sample_traced(Rng& rng, int participant) const;

  int max_delay() const { return static_cast<int>(p_tau_.size()) - 1; }
  double drop_probability() const { return drop_p_; }
  double fresh_fraction() const { return p_tau_.empty() ? 0.0 : p_tau_[0]; }

  // Paper's two reference settings.
  static StalenessDistribution none();    // hard synchronization (all fresh)
  static StalenessDistribution severe();  // 30/40/20/10 ("70% staleness")
  static StalenessDistribution slight();  // 90/9/0.9/0.1 ("10% staleness")

 private:
  std::vector<double> p_tau_;
  double drop_p_;
};

}  // namespace fms
