// Device compute profiles for the search-time experiment (Table V).
//
// The paper measures wall-clock search time with GTX 1080 Ti GPUs and a
// Jetson TX2 as participants; neither is available here, so we model
// participant compute time with calibrated relative throughputs (the TX2's
// effective training throughput is roughly 4-5x below a 1080 Ti for small
// CNNs) applied to a FLOP estimate of the trained sub-model. Table V
// compares *relative* times across methods and devices, which this
// cost model preserves.
#pragma once

#include <cstddef>
#include <string>

namespace fms {

struct DeviceProfile {
  std::string name;
  double flops_per_second;  // sustained training throughput
};

inline DeviceProfile gtx_1080ti() { return {"GTX 1080 Ti", 2.2e12}; }
inline DeviceProfile jetson_tx2() { return {"Jetson TX2", 5.0e11}; }

// Rough FLOP count for one training step (forward + backward ~ 3x forward)
// of a model with `params` parameters on a batch of `batch` images with
// `pixels` spatial positions. Standard parameter-reuse estimate for CNNs.
inline double training_step_flops(std::size_t params, int batch, int pixels) {
  return 3.0 * 2.0 * static_cast<double>(params) * batch * pixels;
}

inline double compute_seconds(const DeviceProfile& dev, double flops) {
  return flops / dev.flops_per_second;
}

}  // namespace fms
