#include "src/sim/round_time.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/obs/span.h"

namespace fms {

RoundTimeResult simulate_round_time(const RoundTimeConfig& cfg,
                                    const std::vector<NetEnvironment>& envs,
                                    Rng& rng) {
  FMS_SPAN("sim.round_time");
  const int k = cfg.participants;
  FMS_CHECK(static_cast<int>(envs.size()) == k && k > 0);
  FMS_CHECK(cfg.wait_fraction > 0.0 && cfg.wait_fraction <= 1.0);

  std::vector<BandwidthTrace> traces;
  std::vector<double> speed(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    traces.emplace_back(envs[static_cast<std::size_t>(p)], rng.fork());
    // Lognormal heterogeneity around the device's nominal throughput.
    speed[static_cast<std::size_t>(p)] =
        cfg.device.flops_per_second *
        std::exp(rng.normal(0.0F, static_cast<float>(cfg.speed_jitter_sigma)));
  }

  const int wait_for =
      std::max(1, static_cast<int>(std::ceil(cfg.wait_fraction * k)));
  constexpr int kMaxTrackedDelay = 4;

  RoundTimeResult res;
  res.induced_staleness.assign(kMaxTrackedDelay + 2, 0.0);
  double total_updates = 0.0;

  // Soft-sync bookkeeping: completion offsets of in-flight stragglers
  // relative to the current soft clock.
  std::vector<double> soft_round_ends;
  std::vector<double> pending_completions;  // absolute soft-clock times
  double soft_clock = 0.0;

  for (int t = 0; t < cfg.rounds; ++t) {
    std::vector<double> completion(static_cast<std::size_t>(k));
    for (int p = 0; p < k; ++p) {
      const double bw = traces[static_cast<std::size_t>(p)].next_bps();
      double compute = cfg.flops_per_step / speed[static_cast<std::size_t>(p)];
      if (rng.bernoulli(cfg.straggler_p)) compute *= cfg.slow_factor;
      completion[static_cast<std::size_t>(p)] =
          transfer_seconds(static_cast<std::size_t>(cfg.payload_bytes), bw) +
          compute +
          transfer_seconds(static_cast<std::size_t>(cfg.grad_bytes), bw);
    }
    std::vector<double> sorted = completion;
    std::sort(sorted.begin(), sorted.end());

    // Hard sync waits for everyone.
    res.hard_total_seconds += sorted.back();

    // Soft sync ends when `wait_for` participants have finished.
    const double soft_round = sorted[static_cast<std::size_t>(wait_for - 1)];
    const double round_start = soft_clock;
    soft_clock += soft_round;
    res.soft_total_seconds += soft_round;
    soft_round_ends.push_back(soft_clock);

    // Record per-update staleness: fresh if within this round, else the
    // number of later rounds that pass before the update lands.
    for (double c : completion) {
      pending_completions.push_back(round_start + c);
    }
    total_updates += k;
  }
  // Assign every update the soft-sync round in which it arrived.
  {
    std::size_t idx = 0;
    for (int t = 0; t < cfg.rounds; ++t) {
      for (int p = 0; p < k; ++p, ++idx) {
        const double done = pending_completions[idx];
        // Delay = number of round boundaries strictly before `done`,
        // counted from the sending round's end.
        int delay = 0;
        for (int r = t; r < static_cast<int>(soft_round_ends.size()); ++r) {
          if (done <= soft_round_ends[static_cast<std::size_t>(r)] + 1e-12) {
            delay = r - t;
            break;
          }
          delay = r - t + 1;
        }
        const int bucket = std::min(delay, static_cast<int>(kMaxTrackedDelay) + 1);
        res.induced_staleness[static_cast<std::size_t>(bucket)] += 1.0;
      }
    }
  }
  for (double& v : res.induced_staleness) v /= total_updates;
  res.mean_hard_round = res.hard_total_seconds / cfg.rounds;
  res.mean_soft_round = res.soft_total_seconds / cfg.rounds;
  if (obs::telemetry_enabled()) {
    auto& reg = obs::Telemetry::instance().registry();
    reg.histogram("fms.sim.hard_round_s").observe(res.mean_hard_round);
    reg.histogram("fms.sim.soft_round_s").observe(res.mean_soft_round);
  }
  return res;
}

}  // namespace fms
