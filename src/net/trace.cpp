#include "src/net/trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fms {

const char* net_environment_name(NetEnvironment env) {
  switch (env) {
    case NetEnvironment::kFoot: return "Foot";
    case NetEnvironment::kBicycle: return "Bicycle";
    case NetEnvironment::kBus: return "Bus";
    case NetEnvironment::kTram: return "Tram";
    case NetEnvironment::kTrain: return "Train";
    case NetEnvironment::kCar: return "Car";
  }
  return "Unknown";
}

TraceParams trace_params(NetEnvironment env) {
  // Calibrated to the per-environment statistics reported for the
  // van der Hooft et al. 4G/LTE measurement campaign: pedestrian traces
  // average tens of Mbps with mild variation; vehicular traces are slower
  // on average and substantially burstier (train worst, due to handovers
  // and cuttings).
  switch (env) {
    case NetEnvironment::kFoot:    return {28.0, 6.0, 0.80, 2.0};
    case NetEnvironment::kBicycle: return {24.0, 8.0, 0.80, 1.5};
    case NetEnvironment::kBus:     return {18.0, 10.0, 0.85, 0.8};
    case NetEnvironment::kTram:    return {20.0, 9.0, 0.85, 0.8};
    case NetEnvironment::kTrain:   return {11.0, 9.0, 0.90, 0.3};
    case NetEnvironment::kCar:     return {15.0, 10.0, 0.88, 0.5};
  }
  FMS_CHECK_MSG(false, "unknown environment");
  return {};
}

BandwidthTrace::BandwidthTrace(NetEnvironment env, Rng rng)
    : env_(env), params_(trace_params(env)), rng_(rng),
      state_mbps_(params_.mean_mbps) {
  // Start from the stationary distribution.
  state_mbps_ = std::max(
      params_.floor_mbps,
      params_.mean_mbps + rng_.normal(0.0F, static_cast<float>(params_.stddev_mbps)));
}

double BandwidthTrace::next_bps() {
  // AR(1) with stationary variance stddev^2: innovations scaled by
  // sqrt(1 - rho^2).
  const double innovation_std =
      params_.stddev_mbps * std::sqrt(1.0 - params_.rho * params_.rho);
  state_mbps_ = params_.mean_mbps +
                params_.rho * (state_mbps_ - params_.mean_mbps) +
                rng_.normal(0.0F, static_cast<float>(innovation_std));
  state_mbps_ = std::max(state_mbps_, params_.floor_mbps);
  return state_mbps_ * 1e6;
}

}  // namespace fms
