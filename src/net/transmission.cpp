#include "src/net/transmission.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/check.h"
#include "src/net/trace.h"
#include "src/obs/profile.h"
#include "src/obs/span.h"
#include "src/obs/trace_ctx.h"
#include "src/obs/work.h"

namespace fms {

const char* assign_strategy_name(AssignStrategy s) {
  switch (s) {
    case AssignStrategy::kAdaptive: return "adaptive";
    case AssignStrategy::kAverageSize: return "average";
    case AssignStrategy::kRandom: return "random";
  }
  return "unknown";
}

std::vector<int> assign_models(const std::vector<std::size_t>& model_bytes,
                               const std::vector<double>& bandwidth_bps,
                               AssignStrategy strategy, Rng& rng) {
  FMS_SPAN("net.assign");
  const std::size_t k = bandwidth_bps.size();
  FMS_CHECK(model_bytes.size() == k && k > 0);
  std::vector<int> assignment(k);
  switch (strategy) {
    case AssignStrategy::kAverageSize:
      // Size is equalized downstream; identity pairing.
      std::iota(assignment.begin(), assignment.end(), 0);
      break;
    case AssignStrategy::kRandom: {
      std::iota(assignment.begin(), assignment.end(), 0);
      rng.shuffle(assignment);
      break;
    }
    case AssignStrategy::kAdaptive: {
      // Largest model -> fastest link.
      std::vector<int> models(k), parts(k);
      std::iota(models.begin(), models.end(), 0);
      std::iota(parts.begin(), parts.end(), 0);
      std::sort(models.begin(), models.end(), [&](int a, int b) {
        return model_bytes[static_cast<std::size_t>(a)] >
               model_bytes[static_cast<std::size_t>(b)];
      });
      std::sort(parts.begin(), parts.end(), [&](int a, int b) {
        return bandwidth_bps[static_cast<std::size_t>(a)] >
               bandwidth_bps[static_cast<std::size_t>(b)];
      });
      for (std::size_t i = 0; i < k; ++i) {
        assignment[static_cast<std::size_t>(parts[i])] = models[i];
      }
      break;
    }
  }
  return assignment;
}

LatencyStats transmission_latency(const std::vector<std::size_t>& model_bytes,
                                  const std::vector<double>& bandwidth_bps,
                                  const std::vector<int>& assignment,
                                  bool average_size) {
  FMS_PROFILE_ZONE("net.latency");
  const std::size_t k = bandwidth_bps.size();
  FMS_CHECK(assignment.size() == k && model_bytes.size() == k);
  FMS_WORK("net.transmission", [&] {
    std::uint64_t wire = 0;
    for (const std::size_t b : model_bytes) wire += b;
    return obs::net_transmission_cost(k, wire);
  }());
  double avg_bytes = 0.0;
  for (std::size_t b : model_bytes) avg_bytes += static_cast<double>(b);
  avg_bytes /= static_cast<double>(k);

  LatencyStats stats;
  stats.per_participant.reserve(k);
  for (std::size_t p = 0; p < k; ++p) {
    if (bandwidth_bps[p] <= 0.0) {  // dead link: never divide by it
      stats.per_participant.push_back(
          std::numeric_limits<double>::infinity());
      ++stats.failed_links;
      if (obs::tracing_enabled()) {
        obs::TraceContext::instance().record(static_cast<int>(p),
                                             obs::Stage::kDrop, 0.0, 0.0, 0.0,
                                             "dead_link");
      }
      continue;
    }
    const double bytes =
        average_size
            ? avg_bytes
            : static_cast<double>(
                  model_bytes[static_cast<std::size_t>(assignment[p])]);
    const double lat = bytes * 8.0 / bandwidth_bps[p];
    stats.per_participant.push_back(lat);
    stats.max_seconds = std::max(stats.max_seconds, lat);
    stats.mean_seconds += lat;
    if (obs::tracing_enabled()) {
      // The modeled download occupies [round_base, round_base + lat) on
      // this participant's track; value carries the payload bytes.
      obs::TraceContext::instance().record(static_cast<int>(p),
                                           obs::Stage::kTransmit, 0.0, lat,
                                           bytes);
    }
  }
  const std::size_t working = k - static_cast<std::size_t>(stats.failed_links);
  if (working > 0) stats.mean_seconds /= static_cast<double>(working);
  return stats;
}

}  // namespace fms
