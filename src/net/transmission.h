// Adaptive transmission (paper §IV "Adaptive transmission", Fig. 7).
//
// Sampled sub-models differ in size; participants differ in measured
// bandwidth. The adaptive strategy sorts sub-models by size and
// participants by data rate and pairs the largest model with the fastest
// link, minimizing the round's maximum download latency. Baselines:
// sending average-sized models to everyone (what FedNAS/EvoFedNAS-style
// schemes do) and assigning sampled models at random.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace fms {

enum class AssignStrategy { kAdaptive, kAverageSize, kRandom };

const char* assign_strategy_name(AssignStrategy s);

// assignment[k] = index of the model sent to participant k.
std::vector<int> assign_models(const std::vector<std::size_t>& model_bytes,
                               const std::vector<double>& bandwidth_bps,
                               AssignStrategy strategy, Rng& rng);

struct LatencyStats {
  double max_seconds = 0.0;   // over working links only
  double mean_seconds = 0.0;  // over working links only
  // Per-participant download latency; infinity marks a failed link
  // (zero/negative bandwidth) so callers can treat it as a fault instead
  // of silently folding inf/NaN into the round statistics.
  std::vector<double> per_participant;
  int failed_links = 0;
};

// Download latencies implied by an assignment. For kAverageSize the actual
// model sizes are replaced by their mean (all participants receive
// equal-size payloads). A participant with zero or negative bandwidth is a
// failed link: its latency is infinite and it is excluded from the
// max/mean aggregates, which stay finite.
LatencyStats transmission_latency(const std::vector<std::size_t>& model_bytes,
                                  const std::vector<double>& bandwidth_bps,
                                  const std::vector<int>& assignment,
                                  bool average_size);

}  // namespace fms
