// Synthetic 4G/LTE bandwidth traces.
//
// The paper drives its adaptive-transmission experiment (Fig. 7) with the
// 4G/LTE Bandwidth Logs of van der Hooft et al. (real-world measurements
// collected on foot, bicycle, bus, tram, train, and car). Those logs are
// not available offline, so this module generates AR(1) traces whose
// per-environment mean, variance and burstiness are calibrated to the
// published characteristics of that dataset: pedestrian links are steady
// and relatively fast, vehicular links (train especially) are slower and
// far burstier due to handovers.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace fms {

enum class NetEnvironment { kFoot, kBicycle, kBus, kTram, kTrain, kCar };

inline constexpr int kNumNetEnvironments = 6;

const char* net_environment_name(NetEnvironment env);

struct TraceParams {
  double mean_mbps;   // long-run mean throughput
  double stddev_mbps; // stationary standard deviation
  double rho;         // AR(1) autocorrelation ("burst length")
  double floor_mbps;  // minimum usable bandwidth
};

TraceParams trace_params(NetEnvironment env);

// A per-participant bandwidth process; one sample per communication round.
class BandwidthTrace {
 public:
  BandwidthTrace(NetEnvironment env, Rng rng);

  NetEnvironment environment() const { return env_; }

  // Bandwidth for the next round, in bits per second.
  double next_bps();

  // AR(1) process state snapshot/restore for crash-recovery.
  double state_mbps() const { return state_mbps_; }
  void set_state_mbps(double mbps) { state_mbps_ = mbps; }
  std::string rng_state() const { return rng_.save_state(); }
  void set_rng_state(const std::string& state) { rng_.load_state(state); }

 private:
  NetEnvironment env_;
  TraceParams params_;
  Rng rng_;
  double state_mbps_;
};

// Transfer latency in seconds for `bytes` over `bps`.
inline double transfer_seconds(std::size_t bytes, double bps) {
  return static_cast<double>(bytes) * 8.0 / bps;
}

}  // namespace fms
