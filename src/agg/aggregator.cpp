#include "src/agg/aggregator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/obs/profile.h"
#include "src/obs/work.h"

namespace fms::agg {
namespace {

// Linear-interpolation quantile (type-7) over a sorted vector.
double sorted_quantile(const std::vector<double>& sorted, double p) {
  FMS_CHECK(!sorted.empty());
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double l2_norm(const std::vector<float>& v) {
  double sq = 0.0;
  for (const float x : v) sq += static_cast<double>(x) * x;
  return std::sqrt(sq);
}

// f clamped to what n arrivals can support: trimming needs 2f < n and the
// Krum score needs n - f - 2 >= 1 neighbours (f <= n - 3).
int clamp_trim(int f, std::size_t n) {
  const int max_f = (static_cast<int>(n) - 1) / 2;
  return std::max(0, std::min(f, max_f));
}

int clamp_krum(int f, std::size_t n) {
  return std::max(0, std::min(f, static_cast<int>(n) - 3));
}

AggregationOutcome aggregate_mean(const std::vector<std::vector<float>>& u) {
  FMS_PROFILE_ZONE("agg.mean");
  AggregationOutcome out;
  const std::size_t dim = u.front().size();
  FMS_WORK("agg.mean", obs::agg_mean_cost(u.size(), dim));
  const double inv_n = 1.0 / static_cast<double>(u.size());
  out.grad.assign(dim, 0.0F);
  for (std::size_t c = 0; c < dim; ++c) {
    double s = 0.0;
    for (const auto& g : u) s += g[c];
    out.grad[c] = static_cast<float>(s * inv_n);
  }
  return out;
}

AggregationOutcome aggregate_clipped_mean(
    const std::vector<std::vector<float>>& u, float k) {
  FMS_PROFILE_ZONE("agg.clipped_mean");
  AggregationOutcome out;
  const std::size_t dim = u.front().size();
  FMS_WORK("agg.clipped_mean", obs::agg_clipped_mean_cost(u.size(), dim));
  std::vector<double> norms;
  norms.reserve(u.size());
  for (const auto& g : u) norms.push_back(l2_norm(g));
  const double bound = median_of(norms) * static_cast<double>(k);
  std::vector<double> scale(u.size(), 1.0);
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (bound > 0.0 && norms[i] > bound) {
      scale[i] = bound / norms[i];
      ++out.clipped_updates;
      out.clipped_mass += norms[i] - bound;
    }
  }
  const double inv_n = 1.0 / static_cast<double>(u.size());
  out.grad.assign(dim, 0.0F);
  for (std::size_t c = 0; c < dim; ++c) {
    double s = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) s += scale[i] * u[i][c];
    out.grad[c] = static_cast<float>(s * inv_n);
  }
  return out;
}

// Values of coordinate c from the updates that carry it (all of them
// when `presence` is empty — the fully-dense case).
void present_column(const std::vector<std::vector<float>>& u,
                    const std::vector<std::vector<std::uint8_t>>& presence,
                    std::size_t c, std::vector<float>& col) {
  col.clear();
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (presence.empty() || presence[i][c] != 0) col.push_back(u[i][c]);
  }
}

// The n_j/m participation rescale that keeps the per-coordinate
// estimators mean-equivalent: the plain average implicitly down-weights
// a coordinate by how few arrivals carry it, and the robust location of
// the carriers must do the same or rarely-sampled ops would take steps
// m/n_j times too large.
double participation_scale(std::size_t n_j, std::size_t m) {
  return static_cast<double>(n_j) / static_cast<double>(m);
}

AggregationOutcome aggregate_coordinate_median(
    const std::vector<std::vector<float>>& u,
    const std::vector<std::vector<std::uint8_t>>& presence) {
  FMS_PROFILE_ZONE("agg.coordinate_median");
  AggregationOutcome out;
  const std::size_t dim = u.front().size();
  FMS_WORK("agg.coordinate_median",
           obs::agg_coordinate_median_cost(u.size(), dim));
  out.grad.assign(dim, 0.0F);
  std::vector<float> col;
  col.reserve(u.size());
  for (std::size_t c = 0; c < dim; ++c) {
    present_column(u, presence, c, col);
    if (col.empty()) continue;  // no carrier: no gradient, like the mean
    std::sort(col.begin(), col.end());
    const std::size_t mid = col.size() / 2;
    const double med =
        col.size() % 2 == 1
            ? static_cast<double>(col[mid])
            : (static_cast<double>(col[mid - 1]) + col[mid]) / 2.0;
    out.grad[c] =
        static_cast<float>(med * participation_scale(col.size(), u.size()));
  }
  return out;
}

AggregationOutcome aggregate_trimmed_mean(
    const std::vector<std::vector<float>>& u,
    const std::vector<std::vector<std::uint8_t>>& presence, int f) {
  FMS_PROFILE_ZONE("agg.trimmed_mean");
  AggregationOutcome out;
  const std::size_t dim = u.front().size();
  FMS_WORK("agg.trimmed_mean", obs::agg_trimmed_mean_cost(u.size(), dim));
  out.grad.assign(dim, 0.0F);
  std::vector<float> col;
  col.reserve(u.size());
  for (std::size_t c = 0; c < dim; ++c) {
    present_column(u, presence, c, col);
    if (col.empty()) continue;
    // The trim clamps to what this coordinate's carrier count supports:
    // a coordinate carried by one or two updates is passed through as
    // their mean (nothing to trim against).
    const auto uf = static_cast<std::size_t>(clamp_trim(f, col.size()));
    std::sort(col.begin(), col.end());
    double s = 0.0;
    for (std::size_t i = uf; i < col.size() - uf; ++i) s += col[i];
    const double kept_mean = s / static_cast<double>(col.size() - 2 * uf);
    out.grad[c] = static_cast<float>(
        kept_mean * participation_scale(col.size(), u.size()));
    out.trimmed_values += static_cast<long>(2 * uf);
  }
  return out;
}

// Krum scores: for each update, the sum of its n-f-2 smallest squared
// distances to the other updates (Blanchard et al., NeurIPS 2017).
std::vector<double> krum_scores(const std::vector<std::vector<float>>& u,
                                int f_eff) {
  const std::size_t n = u.size();
  std::vector<double> dist2(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double sq = 0.0;
      const auto& a = u[i];
      const auto& b = u[j];
      for (std::size_t c = 0; c < a.size(); ++c) {
        const double d = static_cast<double>(a[c]) - b[c];
        sq += d * d;
      }
      dist2[i * n + j] = sq;
      dist2[j * n + i] = sq;
    }
  }
  const std::size_t neighbours = static_cast<std::size_t>(std::max(
      1, static_cast<int>(n) - f_eff - 2));
  std::vector<double> scores(n, 0.0);
  std::vector<double> row;
  row.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    row.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(dist2[i * n + j]);
    }
    std::sort(row.begin(), row.end());
    const std::size_t take = std::min(neighbours, row.size());
    for (std::size_t t = 0; t < take; ++t) scores[i] += row[t];
  }
  return scores;
}

AggregationOutcome aggregate_krum(const std::vector<std::vector<float>>& u,
                                  int f, bool multi) {
  FMS_PROFILE_ZONE("agg.krum");
  AggregationOutcome out;
  const std::size_t n = u.size();
  FMS_WORK("agg.krum", obs::agg_krum_cost(n, u.front().size()));
  if (n == 1) {
    out.grad = u.front();
    out.selected = {0};
    return out;
  }
  const int f_eff = clamp_krum(f, n);
  const std::vector<double> scores = krum_scores(u, f_eff);
  // Rank by score; ties break by lexicographic gradient content so the
  // ranking is permutation-invariant (score ties are real: colluding
  // clones tie by construction, and symmetric geometries tie honestly).
  // Only identical updates fall back to the index, where either choice
  // commits the same gradient.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] < scores[b];
    if (u[a] != u[b]) {
      return std::lexicographical_compare(u[a].begin(), u[a].end(),
                                          u[b].begin(), u[b].end());
    }
    return a < b;
  });
  const std::size_t keep =
      multi ? n - static_cast<std::size_t>(f_eff) : std::size_t{1};
  out.selected.assign(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(keep));
  std::sort(out.selected.begin(), out.selected.end());
  out.rejected_updates = static_cast<int>(n - keep);
  const std::size_t dim = u.front().size();
  out.grad.assign(dim, 0.0F);
  const double inv_keep = 1.0 / static_cast<double>(keep);
  for (std::size_t c = 0; c < dim; ++c) {
    double s = 0.0;
    for (const int i : out.selected) s += u[static_cast<std::size_t>(i)][c];
    out.grad[c] = static_cast<float>(s * inv_keep);
  }
  return out;
}

}  // namespace

const char* aggregator_name(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kMean: return "mean";
    case AggregatorKind::kClippedMean: return "clipped_mean";
    case AggregatorKind::kCoordinateMedian: return "coordinate_median";
    case AggregatorKind::kTrimmedMean: return "trimmed_mean";
    case AggregatorKind::kKrum: return "krum";
    case AggregatorKind::kMultiKrum: return "multi_krum";
  }
  return "unknown";
}

AggregatorConfig AggregatorConfig::parse(const std::string& spec) {
  AggregatorConfig cfg;
  std::string name = spec;
  std::string suffix;
  const std::size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    suffix = spec.substr(colon + 1);
  }
  if (name == "mean") {
    cfg.kind = AggregatorKind::kMean;
  } else if (name == "clipped_mean") {
    cfg.kind = AggregatorKind::kClippedMean;
  } else if (name == "coordinate_median") {
    cfg.kind = AggregatorKind::kCoordinateMedian;
  } else if (name == "trimmed_mean") {
    cfg.kind = AggregatorKind::kTrimmedMean;
  } else if (name == "krum") {
    cfg.kind = AggregatorKind::kKrum;
  } else if (name == "multi_krum") {
    cfg.kind = AggregatorKind::kMultiKrum;
  } else {
    throw CheckError("unknown aggregator '" + name + "'");
  }
  if (suffix.empty()) return cfg;
  try {
    std::size_t used = 0;
    if (cfg.kind == AggregatorKind::kClippedMean) {
      const double k = std::stod(suffix, &used);
      FMS_CHECK_MSG(used == suffix.size() && std::isfinite(k) && k > 0.0,
                    "bad clipped_mean multiplier '" << suffix << "'");
      cfg.clip_multiplier = static_cast<float>(k);
    } else {
      const long f = std::stol(suffix, &used);
      FMS_CHECK_MSG(used == suffix.size() && f >= 0,
                    "bad aggregator f '" << suffix << "'");
      FMS_CHECK_MSG(cfg.kind != AggregatorKind::kMean &&
                        cfg.kind != AggregatorKind::kCoordinateMedian,
                    "aggregator '" << name << "' takes no parameter");
      cfg.f = static_cast<int>(f);
    }
  } catch (const CheckError&) {
    throw;
  } catch (...) {
    throw CheckError("bad aggregator suffix '" + suffix + "'");
  }
  return cfg;
}

std::string AggregatorConfig::to_string() const {
  std::string s = aggregator_name(kind);
  if (kind == AggregatorKind::kTrimmedMean || kind == AggregatorKind::kKrum ||
      kind == AggregatorKind::kMultiKrum) {
    s += ':';
    s += std::to_string(f);
  }
  return s;
}

AggregationOutcome aggregate(const AggregatorConfig& cfg,
                             const std::vector<std::vector<float>>& updates) {
  return aggregate(cfg, updates, {});
}

AggregationOutcome aggregate(
    const AggregatorConfig& cfg, const std::vector<std::vector<float>>& updates,
    const std::vector<std::vector<std::uint8_t>>& presence) {
  FMS_PROFILE_ZONE("agg.estimate");
  FMS_CHECK_MSG(!updates.empty(), "aggregate needs at least one update");
  const std::size_t dim = updates.front().size();
  FMS_PROFILE_BYTES(updates.size() * dim * sizeof(float));
  for (const auto& u : updates) {
    FMS_CHECK_MSG(u.size() == dim, "aggregate dimension mismatch");
  }
  if (!presence.empty()) {
    FMS_CHECK_MSG(presence.size() == updates.size(),
                  "presence/update count mismatch");
    for (const auto& p : presence) {
      FMS_CHECK_MSG(p.size() == dim, "presence dimension mismatch");
    }
  }
  switch (cfg.kind) {
    case AggregatorKind::kMean:
      // Absent coordinates are exact zeros, so the masked mean IS the
      // dense mean — presence changes nothing algebraically.
      return aggregate_mean(updates);
    case AggregatorKind::kClippedMean:
      // Per-update norms and the weighted sum are untouched by exact
      // zeros; clipping scales whole updates, so presence is moot too.
      return aggregate_clipped_mean(updates, cfg.clip_multiplier);
    case AggregatorKind::kCoordinateMedian:
      return aggregate_coordinate_median(updates, presence);
    case AggregatorKind::kTrimmedMean:
      return aggregate_trimmed_mean(updates, presence, cfg.f);
    case AggregatorKind::kKrum:
      return aggregate_krum(updates, cfg.f, /*multi=*/false);
    case AggregatorKind::kMultiKrum:
      return aggregate_krum(updates, cfg.f, /*multi=*/true);
  }
  return aggregate_mean(updates);
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  return values.size() % 2 == 1 ? values[mid]
                                : (values[mid - 1] + values[mid]) / 2.0;
}

double mad_of(const std::vector<double>& values, double center) {
  std::vector<double> dev;
  dev.reserve(values.size());
  for (const double v : values) dev.push_back(std::abs(v - center));
  return median_of(std::move(dev));
}

double adaptive_norm_bound(const std::vector<double>& norms, double k,
                           int min_count, double fallback) {
  if (static_cast<int>(norms.size()) < min_count) return fallback;
  const double med = median_of(norms);
  // A zero-width band (identical norms) would reject everything a hair
  // above the median; floor the spread at 5% of the median.
  const double spread = std::max(mad_of(norms, med), 0.05 * med);
  const double bound = med + k * spread;
  return fallback > 0.0 ? std::min(bound, fallback) : bound;
}

WinsorBounds winsor_bounds(std::vector<double> rewards, double k) {
  WinsorBounds wb;
  if (rewards.empty()) return wb;
  std::sort(rewards.begin(), rewards.end());
  if (rewards.size() < 4) {
    // Too few samples for quartiles to mean anything: clamp nothing.
    wb.lo = rewards.front();
    wb.hi = rewards.back();
    return wb;
  }
  const double q1 = sorted_quantile(rewards, 0.25);
  const double q3 = sorted_quantile(rewards, 0.75);
  const double iqr = q3 - q1;
  wb.lo = q1 - k * iqr;
  wb.hi = q3 + k * iqr;
  return wb;
}

}  // namespace fms::agg
