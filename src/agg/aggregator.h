// Byzantine-robust gradient aggregation for the server update.
//
// The paper's Eq. 13 averages client gradients — a linear estimator a
// single lying participant can steer arbitrarily (one gradient scaled by
// lambda moves the mean by lambda/m). Update screening (src/fault) is a
// *pre-filter*: it rejects updates that are individually implausible
// (non-finite, absurd norms) but is blind to coordinated, in-range lies.
// The aggregators here are *estimators*: they bound the influence any f
// of n participants can exert on the committed gradient, at the price of
// statistical efficiency on clean rounds.
//
//   mean               Eq. 13 exactly (the default; zero robustness)
//   clipped_mean       per-update L2 clip to median(norms) * k, then mean
//   coordinate_median  per-coordinate median (breakdown point 1/2)
//   trimmed_mean(f)    drop the f lowest and f highest values per
//                      coordinate, average the rest (tolerates f of n)
//   krum(f)            select the single update with the smallest sum of
//                      squared distances to its n-f-2 nearest neighbours
//   multi_krum(f)      average the n-f best-scored updates
//
// Aggregation happens in the dense supernet coordinate space: an update
// only carries gradients for the parameters its mask selected, and every
// other coordinate contributes an exact zero — the same "unsampled ops
// receive no gradient" semantics the plain average has. All aggregators
// return a mean-equivalent gradient (drop-in for (1/m) * sum).
//
// Masks make naive per-coordinate robust statistics useless: a given op's
// parameters appear in only the few updates whose sampled arch includes
// that op, so the "zero" most updates report for it is missing data, not
// a vote. Sorting those zeros into the order statistics trims away the
// real signal (the estimator converges on "no gradient" for every rarely
// sampled op). The per-coordinate estimators therefore accept an optional
// presence mask and compute their statistic over only the updates that
// carry the coordinate, rescaled by n_j/m (n_j carriers of m arrivals) so
// the result stays mean-equivalent — with the mean estimator this is an
// algebraic identity, and with every carrier present it reduces to the
// textbook formula. The trim count clamps to what n_j supports. Krum
// stays update-level (distances in the dense space) and ignores presence.
//
// Everything here is deterministic: Krum score ties break by
// lexicographic gradient content (permutation-invariant even for
// colluding clones, which tie by construction), per-coordinate sorts are
// over plain vectors, and no iteration order depends on hashing (the
// fms_lint unordered-container rule covers this directory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fms::agg {

enum class AggregatorKind {
  kMean,
  kClippedMean,
  kCoordinateMedian,
  kTrimmedMean,
  kKrum,
  kMultiKrum,
};

const char* aggregator_name(AggregatorKind kind);

struct AggregatorConfig {
  AggregatorKind kind = AggregatorKind::kMean;
  // Assumed number of malicious updates (trimmed_mean / krum / multi_krum).
  // Clamped per round to what the arrival count can support.
  int f = 1;
  // clipped_mean bound multiplier: per-update norms above
  // median(norms) * clip_multiplier are scaled down to the bound.
  float clip_multiplier = 3.0F;

  // Parses "name" or "name:f" (e.g. "trimmed_mean:2", "krum:3"); for
  // clipped_mean the suffix is the multiplier k ("clipped_mean:2.5").
  // Throws CheckError on unknown names or bad suffixes.
  static AggregatorConfig parse(const std::string& spec);
  std::string to_string() const;
};

// Per-round robustness telemetry alongside the aggregated gradient.
struct AggregationOutcome {
  std::vector<float> grad;      // dense, mean-equivalent
  int clipped_updates = 0;      // updates norm-clipped (clipped_mean)
  double clipped_mass = 0.0;    // total L2 norm removed by clipping
  long trimmed_values = 0;      // coordinate values trimmed (trimmed_mean)
  int rejected_updates = 0;     // updates excluded outright (krum family)
  std::vector<int> selected;    // surviving update indices (krum family)
};

// Aggregates n dense same-length gradient vectors. Requires at least one
// update; every update must have the same dimension. This overload treats
// every coordinate as present in every update (fully-dense updates).
AggregationOutcome aggregate(const AggregatorConfig& cfg,
                             const std::vector<std::vector<float>>& updates);

// Mask-aware overload: presence[u][c] != 0 iff update u's sampled arch
// carries coordinate c (see the header comment on participation-aware
// estimation). `presence` must match `updates` in shape; an empty vector
// means fully dense. Absent coordinates must be exact zeros in `updates`.
AggregationOutcome aggregate(
    const AggregatorConfig& cfg, const std::vector<std::vector<float>>& updates,
    const std::vector<std::vector<std::uint8_t>>& presence);

// --- robust scalar statistics (shared by screening and the reward channel) ---

// Median with even-count averaging. Empty input returns 0.
double median_of(std::vector<double> values);

// Median absolute deviation around `center`.
double mad_of(const std::vector<double>& values, double center);

// Adaptive screening bound: median + k * MAD over the round's update
// norms. Returns `fallback` (the fixed cap) when fewer than min_count
// norms are available — robust statistics need a quorum of their own.
double adaptive_norm_bound(const std::vector<double>& norms, double k,
                           int min_count, double fallback);

// Winsorization band [Q1 - k*IQR, Q3 + k*IQR] of the round's rewards
// (quartiles by linear interpolation). With fewer than 4 samples the
// band is degenerate-safe: it spans the observed min/max, clamping
// nothing.
struct WinsorBounds {
  double lo = 0.0;
  double hi = 0.0;
};
WinsorBounds winsor_bounds(std::vector<double> rewards, double k);

}  // namespace fms::agg
