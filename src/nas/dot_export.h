// Graphviz (DOT) export of searched architectures.
//
// `dot genotype.dot -Tpng -o cell.png` renders the normal and reduction
// cells of a Genotype — the standard way NAS papers visualize results and
// the quickest sanity check that a search found something structured.
#pragma once

#include <string>

#include "src/nas/genotype.h"

namespace fms {

// Returns a complete DOT document with two clusters (normal + reduction
// cell). State nodes are c_{k-2}, c_{k-1}, intermediate nodes 0..B-1, and
// the concatenated output; edges are labeled with their operation.
std::string genotype_to_dot(const Genotype& genotype);

void write_dot_file(const std::string& path, const Genotype& genotype);

}  // namespace fms
