#include "src/nas/supernet.h"

#include "src/obs/profile.h"
#include "src/tensor/ops.h"

namespace fms {
namespace {

void accumulate(Tensor& dst, const Tensor& src) {
  if (dst.empty()) {
    dst = src;
  } else {
    dst += src;
  }
}

}  // namespace

Supernet::Supernet(const SupernetConfig& cfg, Rng& rng) : cfg_(cfg) {
  FMS_CHECK(cfg.num_cells >= 1 && cfg.num_nodes >= 1);
  // Stem: 3x3 conv + BN to stem_channels.
  auto stem = std::make_unique<Sequential>();
  stem->add(std::make_unique<Conv2d>(cfg.image_channels, cfg.stem_channels, 3,
                                     Conv2dSpec{1, 1, 1, 1}, rng));
  stem->add(std::make_unique<BatchNorm2d>(cfg.stem_channels));
  stem_ = std::move(stem);

  int c_prev_prev = cfg.stem_channels;
  int c_prev = cfg.stem_channels;
  int c_curr = cfg.stem_channels;
  bool reduction_prev = false;
  for (int i = 0; i < cfg.num_cells; ++i) {
    const bool reduction =
        cfg.num_cells >= 3 &&
        (i == cfg.num_cells / 3 || i == 2 * cfg.num_cells / 3);
    if (reduction) c_curr *= 2;
    CellSpec spec;
    spec.nodes = cfg.num_nodes;
    spec.c_prev_prev = c_prev_prev;
    spec.c_prev = c_prev;
    spec.c = c_curr;
    spec.reduction = reduction;
    spec.reduction_prev = reduction_prev;
    cells_.push_back(std::make_unique<Cell>(spec, rng));
    cell_is_reduction_.push_back(reduction);
    reduction_prev = reduction;
    c_prev_prev = c_prev;
    c_prev = cells_.back()->out_channels();
  }
  gap_ = std::make_unique<GlobalAvgPool>();
  classifier_ = std::make_unique<Linear>(c_prev, cfg.num_classes, rng);
  build_param_index();
}

void Supernet::build_param_index() {
  params_.clear();
  tags_.clear();
  auto add_shared = [&](std::vector<Param*>&& ps) {
    for (Param* p : ps) {
      params_.push_back(p);
      tags_.push_back(ParamTag{});
    }
  };
  {
    std::vector<Param*> ps;
    stem_->collect_params(ps);
    add_shared(std::move(ps));
  }
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    {
      std::vector<Param*> ps;
      cells_[ci]->collect_shared_params(ps);
      add_shared(std::move(ps));
    }
    for (int e = 0; e < cells_[ci]->num_edges(); ++e) {
      for (int op = 0; op < kNumOps; ++op) {
        std::vector<Param*> ps;
        cells_[ci]->collect_op_params(e, op, ps);
        for (Param* p : ps) {
          params_.push_back(p);
          tags_.push_back(ParamTag{false, cell_is_reduction_[ci], e, op});
        }
      }
    }
  }
  {
    std::vector<Param*> ps;
    classifier_->collect_params(ps);
    add_shared(std::move(ps));
  }
}

Tensor Supernet::forward(const Tensor& x, const Mask& mask, bool train) {
  FMS_PROFILE_ZONE("nas.forward");
  FMS_CHECK(static_cast<int>(mask.normal.size()) == num_edges());
  FMS_CHECK(static_cast<int>(mask.reduce.size()) == num_edges());
  mixed_mode_ = false;
  cached_batch_ = x.dim(0);
  Tensor stem_out = stem_->forward(x, train);
  Tensor s_pp = stem_out, s_p = stem_out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto& m = cell_is_reduction_[i] ? mask.reduce : mask.normal;
    Tensor out = cells_[i]->forward(s_pp, s_p, m, train);
    s_pp = std::move(s_p);
    s_p = std::move(out);
  }
  Tensor pooled = gap_->forward(s_p, train);
  has_cache_ = train;
  return classifier_->forward(pooled, train);
}

void Supernet::backward(const Tensor& grad_logits) {
  FMS_PROFILE_ZONE("nas.backward");
  FMS_CHECK_MSG(has_cache_ && !mixed_mode_,
                "Supernet::backward without masked train forward");
  Tensor g = classifier_->backward(grad_logits);
  g = gap_->backward(g);
  std::vector<Tensor> gstate(cells_.size() + 2);
  accumulate(gstate[cells_.size() + 1], g);
  for (int i = static_cast<int>(cells_.size()) - 1; i >= 0; --i) {
    auto [g0, g1] =
        cells_[static_cast<std::size_t>(i)]->backward(
            gstate[static_cast<std::size_t>(i) + 2]);
    accumulate(gstate[static_cast<std::size_t>(i)], g0);
    accumulate(gstate[static_cast<std::size_t>(i) + 1], g1);
  }
  Tensor stem_grad = gstate[0];
  stem_grad += gstate[1];
  stem_->backward(stem_grad);
  has_cache_ = false;
}

Tensor Supernet::forward_mixed(const Tensor& x, const EdgeWeights& w_normal,
                               const EdgeWeights& w_reduce, bool train) {
  mixed_mode_ = true;
  cached_batch_ = x.dim(0);
  Tensor stem_out = stem_->forward(x, train);
  Tensor s_pp = stem_out, s_p = stem_out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto& w = cell_is_reduction_[i] ? w_reduce : w_normal;
    Tensor out = cells_[i]->forward_mixed(s_pp, s_p, w, train);
    s_pp = std::move(s_p);
    s_p = std::move(out);
  }
  Tensor pooled = gap_->forward(s_p, train);
  has_cache_ = train;
  return classifier_->forward(pooled, train);
}

void Supernet::backward_mixed(const Tensor& grad_logits,
                              EdgeWeights& gw_normal, EdgeWeights& gw_reduce) {
  FMS_CHECK_MSG(has_cache_ && mixed_mode_,
                "Supernet::backward_mixed without mixed train forward");
  Tensor g = classifier_->backward(grad_logits);
  g = gap_->backward(g);
  std::vector<Tensor> gstate(cells_.size() + 2);
  accumulate(gstate[cells_.size() + 1], g);
  for (int i = static_cast<int>(cells_.size()) - 1; i >= 0; --i) {
    auto& gw = cell_is_reduction_[static_cast<std::size_t>(i)] ? gw_reduce
                                                               : gw_normal;
    auto [g0, g1] = cells_[static_cast<std::size_t>(i)]->backward_mixed(
        gstate[static_cast<std::size_t>(i) + 2], gw);
    accumulate(gstate[static_cast<std::size_t>(i)], g0);
    accumulate(gstate[static_cast<std::size_t>(i) + 1], g1);
  }
  Tensor stem_grad = gstate[0];
  stem_grad += gstate[1];
  stem_->backward(stem_grad);
  has_cache_ = false;
}

const std::vector<Param*>& Supernet::params() { return params_; }

void Supernet::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

std::vector<std::size_t> Supernet::masked_param_ids(const Mask& mask) {
  FMS_PROFILE_ZONE("nas.mask_ids");
  FMS_CHECK(static_cast<int>(mask.normal.size()) == num_edges());
  FMS_CHECK(static_cast<int>(mask.reduce.size()) == num_edges());
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    const ParamTag& t = tags_[i];
    if (t.shared) {
      ids.push_back(i);
      continue;
    }
    const auto& m = t.reduction ? mask.reduce : mask.normal;
    if (m[static_cast<std::size_t>(t.edge)] == t.op) ids.push_back(i);
  }
  return ids;
}

std::vector<float> Supernet::gather_values(
    const std::vector<std::size_t>& ids) {
  FMS_PROFILE_ZONE("nas.gather");
  std::vector<float> flat;
  for (std::size_t id : ids) {
    const auto& v = params_[id]->value.vec();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

std::vector<float> Supernet::gather_grads(const std::vector<std::size_t>& ids) {
  FMS_PROFILE_ZONE("nas.gather");
  std::vector<float> flat;
  for (std::size_t id : ids) {
    const auto& g = params_[id]->grad.vec();
    flat.insert(flat.end(), g.begin(), g.end());
  }
  return flat;
}

void Supernet::scatter_values(const std::vector<std::size_t>& ids,
                              const std::vector<float>& flat) {
  FMS_PROFILE_ZONE("nas.scatter");
  FMS_PROFILE_BYTES(flat.size() * sizeof(float));
  std::size_t pos = 0;
  for (std::size_t id : ids) {
    auto& v = params_[id]->value.vec();
    FMS_CHECK(pos + v.size() <= flat.size());
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + v.size()),
              v.begin());
    pos += v.size();
  }
  FMS_CHECK_MSG(pos == flat.size(), "scatter size mismatch");
}

void Supernet::scatter_add_grads(const std::vector<std::size_t>& ids,
                                 const std::vector<float>& flat) {
  FMS_PROFILE_ZONE("nas.scatter");
  FMS_PROFILE_BYTES(flat.size() * sizeof(float));
  std::size_t pos = 0;
  for (std::size_t id : ids) {
    auto& g = params_[id]->grad.vec();
    FMS_CHECK(pos + g.size() <= flat.size());
    for (std::size_t i = 0; i < g.size(); ++i) g[i] += flat[pos + i];
    pos += g.size();
  }
  FMS_CHECK_MSG(pos == flat.size(), "scatter size mismatch");
}

std::vector<float> Supernet::gather_from_flat(
    const std::vector<float>& flat, const std::vector<std::size_t>& ids) {
  FMS_PROFILE_ZONE("nas.gather");
  if (offsets_.empty()) {
    offsets_.reserve(params_.size());
    std::size_t pos = 0;
    for (Param* p : params_) {
      offsets_.push_back(pos);
      pos += p->numel();
    }
  }
  FMS_CHECK(flat.size() == param_count());
  std::vector<float> out;
  for (std::size_t id : ids) {
    const std::size_t off = offsets_[id];
    const std::size_t n = params_[id]->numel();
    out.insert(out.end(), flat.begin() + static_cast<std::ptrdiff_t>(off),
               flat.begin() + static_cast<std::ptrdiff_t>(off + n));
  }
  return out;
}

std::vector<float> Supernet::dense_from_masked(
    const std::vector<std::size_t>& ids, const std::vector<float>& flat) {
  FMS_PROFILE_ZONE("nas.densify");
  FMS_PROFILE_BYTES(flat.size() * sizeof(float));
  if (offsets_.empty()) {
    offsets_.reserve(params_.size());
    std::size_t pos = 0;
    for (Param* p : params_) {
      offsets_.push_back(pos);
      pos += p->numel();
    }
  }
  std::vector<float> dense(param_count(), 0.0F);
  std::size_t pos = 0;
  for (std::size_t id : ids) {
    const std::size_t off = offsets_[id];
    const std::size_t n = params_[id]->numel();
    FMS_CHECK(pos + n <= flat.size());
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + n),
              dense.begin() + static_cast<std::ptrdiff_t>(off));
    pos += n;
  }
  FMS_CHECK_MSG(pos == flat.size(), "dense scatter size mismatch");
  return dense;
}

std::vector<std::uint8_t> Supernet::presence_from_masked(
    const std::vector<std::size_t>& ids) {
  FMS_PROFILE_ZONE("nas.presence");
  if (offsets_.empty()) {
    offsets_.reserve(params_.size());
    std::size_t pos = 0;
    for (Param* p : params_) {
      offsets_.push_back(pos);
      pos += p->numel();
    }
  }
  std::vector<std::uint8_t> present(param_count(), 0);
  for (std::size_t id : ids) {
    const std::size_t off = offsets_[id];
    const std::size_t n = params_[id]->numel();
    std::fill(present.begin() + static_cast<std::ptrdiff_t>(off),
              present.begin() + static_cast<std::ptrdiff_t>(off + n),
              std::uint8_t{1});
  }
  return present;
}

void Supernet::add_flat_grads(const std::vector<float>& flat) {
  FMS_PROFILE_ZONE("nas.scatter");
  FMS_PROFILE_BYTES(flat.size() * sizeof(float));
  std::size_t pos = 0;
  for (Param* p : params_) {
    auto& g = p->grad.vec();
    FMS_CHECK(pos + g.size() <= flat.size());
    for (std::size_t i = 0; i < g.size(); ++i) g[i] += flat[pos + i];
    pos += g.size();
  }
  FMS_CHECK_MSG(pos == flat.size(), "flat grad size mismatch");
}

std::vector<float> Supernet::flat_values() {
  FMS_PROFILE_ZONE("nas.gather");
  std::vector<float> flat;
  flat.reserve(param_count());
  for (Param* p : params_) {
    flat.insert(flat.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return flat;
}

void Supernet::set_flat_values(const std::vector<float>& flat) {
  FMS_PROFILE_ZONE("nas.scatter");
  FMS_PROFILE_BYTES(flat.size() * sizeof(float));
  std::size_t pos = 0;
  for (Param* p : params_) {
    auto& v = p->value.vec();
    FMS_CHECK(pos + v.size() <= flat.size());
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + v.size()),
              v.begin());
    pos += v.size();
  }
  FMS_CHECK_MSG(pos == flat.size(), "flat size mismatch");
}

std::size_t Supernet::param_count() {
  std::size_t n = 0;
  for (Param* p : params_) n += p->numel();
  return n;
}

std::size_t Supernet::param_count_masked(const Mask& mask) {
  std::size_t n = 0;
  for (std::size_t id : masked_param_ids(mask)) n += params_[id]->numel();
  return n;
}

std::size_t Supernet::supernet_bytes() {
  // float32 values plus a small fixed header.
  return 16 + 4 * param_count();
}

std::size_t Supernet::submodel_bytes(const Mask& mask) {
  // float32 values + one byte per edge per cell template for the mask.
  return 16 + mask.normal.size() + mask.reduce.size() +
         4 * param_count_masked(mask);
}

Mask random_mask(int num_edges, Rng& rng) {
  Mask m;
  m.normal.resize(static_cast<std::size_t>(num_edges));
  m.reduce.resize(static_cast<std::size_t>(num_edges));
  for (auto& v : m.normal) v = rng.randint(0, kNumOps - 1);
  for (auto& v : m.reduce) v = rng.randint(0, kNumOps - 1);
  return m;
}

}  // namespace fms
