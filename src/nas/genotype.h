// Discretized architecture description (the output of the search phase).
//
// Following DARTS, each intermediate node keeps its two strongest incoming
// edges, each carrying its argmax non-zero operation; "strength" is the
// softmax probability of the edge's best non-zero op under alpha.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/nas/ops.h"

namespace fms {

struct GenotypeEdge {
  int input = 0;                      // state index feeding this edge
  OpType op = OpType::kIdentity;
};

struct Genotype {
  int nodes = 0;
  // 2 entries per node, node-major.
  std::vector<GenotypeEdge> normal;
  std::vector<GenotypeEdge> reduce;

  std::string to_string() const;
};

// Raw (pre-softmax) alpha rows per edge.
using AlphaTable = std::vector<std::array<float, kNumOps>>;

// Softmax over one alpha row (Eq. 4 of the paper).
std::array<float, kNumOps> alpha_softmax(const std::array<float, kNumOps>& row);

Genotype discretize(const AlphaTable& alpha_normal,
                    const AlphaTable& alpha_reduce, int nodes);

}  // namespace fms
