// A DARTS cell: a DAG with two input nodes (outputs of the two preceding
// cells), `nodes` intermediate nodes, and an output that concatenates all
// intermediate nodes. Every (node, earlier-state) pair is an edge holding
// all 8 candidate operations; which one runs is chosen per call:
//
//  * forward(..., mask)   — one op per edge (sampled sub-model; this is the
//    only mode the paper's method ever ships to a participant), or
//  * forward_mixed(...)   — probability-weighted sum over ops (used by the
//    DARTS / FedNAS baselines, which pay the full supernet cost).
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "src/nas/ops.h"

namespace fms {

struct CellSpec {
  int nodes = 3;         // intermediate nodes
  int c_prev_prev = 8;   // channels of cell k-2 output
  int c_prev = 8;        // channels of cell k-1 output
  int c = 8;             // operating channels of this cell
  bool reduction = false;
  bool reduction_prev = false;
};

using EdgeWeights = std::vector<std::array<float, kNumOps>>;

class Cell {
 public:
  Cell(const CellSpec& spec, Rng& rng);

  // Edges for `nodes` intermediate nodes: node i has (2 + i) inputs.
  static int num_edges(int nodes) {
    return nodes * (nodes + 3) / 2;  // sum_{i=0}^{nodes-1} (2 + i)
  }
  int num_edges() const { return num_edges(spec_.nodes); }
  int out_channels() const { return spec_.nodes * spec_.c; }
  const CellSpec& spec() const { return spec_; }

  // Returns the flat edge index of (node i, input state j).
  int edge_index(int node, int input) const;

  // --- sub-model mode ---
  Tensor forward(const Tensor& s0, const Tensor& s1,
                 const std::vector<int>& mask, bool train);
  // Gradients w.r.t. (s0, s1) of the last masked forward.
  std::pair<Tensor, Tensor> backward(const Tensor& grad_out);

  // --- mixed (continuous relaxation) mode ---
  Tensor forward_mixed(const Tensor& s0, const Tensor& s1,
                       const EdgeWeights& weights, bool train);
  // Also accumulates dLoss/dWeight into grad_weights.
  std::pair<Tensor, Tensor> backward_mixed(const Tensor& grad_out,
                                           EdgeWeights& grad_weights);

  // All parameters: pre0, pre1, then ops in edge-major, op-minor order.
  void collect_params(std::vector<Param*>& out);
  // Parameters of the preprocessing layers only (always part of a
  // sub-model).
  void collect_shared_params(std::vector<Param*>& out);
  // Parameters of a single candidate op.
  void collect_op_params(int edge, int op, std::vector<Param*>& out);

 private:
  Tensor run_nodes(bool train);
  std::pair<Tensor, Tensor> finish_backward(std::vector<Tensor>&& grad_states);

  CellSpec spec_;
  std::unique_ptr<Module> pre0_;
  std::unique_ptr<Module> pre1_;
  // ops_[edge][op]
  std::vector<std::array<std::unique_ptr<Module>, kNumOps>> ops_;

  // Caches for backward.
  std::vector<Tensor> states_;
  std::vector<int> cached_mask_;
  EdgeWeights cached_weights_;
  // Mixed mode: per-edge per-op outputs and per-node grads need the op
  // outputs to compute dL/dweight.
  std::vector<std::array<Tensor, kNumOps>> mixed_outputs_;
  bool mixed_mode_ = false;
  bool has_cache_ = false;
};

}  // namespace fms
