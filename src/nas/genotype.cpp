#include "src/nas/genotype.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace fms {

std::array<float, kNumOps> alpha_softmax(
    const std::array<float, kNumOps>& row) {
  std::array<float, kNumOps> p{};
  float mx = row[0];
  for (float v : row) mx = std::max(mx, v);
  float z = 0.0F;
  for (int i = 0; i < kNumOps; ++i) {
    p[static_cast<std::size_t>(i)] =
        std::exp(row[static_cast<std::size_t>(i)] - mx);
    z += p[static_cast<std::size_t>(i)];
  }
  for (auto& v : p) v /= z;
  return p;
}

namespace {

std::vector<GenotypeEdge> discretize_one(const AlphaTable& alpha, int nodes) {
  FMS_CHECK(static_cast<int>(alpha.size()) == nodes * (nodes + 3) / 2);
  std::vector<GenotypeEdge> out;
  int base = 0;
  for (int node = 0; node < nodes; ++node) {
    const int num_inputs = 2 + node;
    // For each incoming edge, find the best non-zero op and its prob.
    struct Scored {
      int input;
      OpType op;
      float score;
    };
    std::vector<Scored> scored;
    for (int input = 0; input < num_inputs; ++input) {
      const auto p = alpha_softmax(alpha[static_cast<std::size_t>(base + input)]);
      int best_op = static_cast<int>(OpType::kIdentity);
      float best = -1.0F;
      for (int op = 0; op < kNumOps; ++op) {
        if (op == static_cast<int>(OpType::kZero)) continue;
        if (p[static_cast<std::size_t>(op)] > best) {
          best = p[static_cast<std::size_t>(op)];
          best_op = op;
        }
      }
      scored.push_back({input, static_cast<OpType>(best_op), best});
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.score > b.score;
                     });
    const int keep = std::min<int>(2, static_cast<int>(scored.size()));
    // Keep input order deterministic within the node.
    std::vector<Scored> top(scored.begin(), scored.begin() + keep);
    std::sort(top.begin(), top.end(), [](const Scored& a, const Scored& b) {
      return a.input < b.input;
    });
    for (const auto& s : top) out.push_back({s.input, s.op});
    base += num_inputs;
  }
  return out;
}

}  // namespace

Genotype discretize(const AlphaTable& alpha_normal,
                    const AlphaTable& alpha_reduce, int nodes) {
  Genotype g;
  g.nodes = nodes;
  g.normal = discretize_one(alpha_normal, nodes);
  g.reduce = discretize_one(alpha_reduce, nodes);
  return g;
}

std::string Genotype::to_string() const {
  std::ostringstream os;
  auto dump = [&](const char* name, const std::vector<GenotypeEdge>& edges) {
    os << name << ": [";
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i) os << ", ";
      os << "(" << op_name(edges[i].op) << ", s" << edges[i].input << ")";
    }
    os << "]";
  };
  dump("normal", normal);
  os << " ";
  dump("reduce", reduce);
  return os.str();
}

}  // namespace fms
