#include "src/nas/ops.h"

namespace fms {

const char* op_name(OpType op) {
  switch (op) {
    case OpType::kZero: return "none";
    case OpType::kIdentity: return "skip_connect";
    case OpType::kMaxPool3: return "max_pool_3x3";
    case OpType::kAvgPool3: return "avg_pool_3x3";
    case OpType::kSepConv3: return "sep_conv_3x3";
    case OpType::kSepConv5: return "sep_conv_5x5";
    case OpType::kDilConv3: return "dil_conv_3x3";
    case OpType::kDilConv5: return "dil_conv_5x5";
  }
  return "unknown";
}

Tensor ZeroOp::forward(const Tensor& x, bool train) {
  if (train) cached_in_shape_ = x.shape();
  if (stride_ == 1) return Tensor(x.shape());
  return Tensor({x.dim(0), x.dim(1), x.dim(2) / stride_, x.dim(3) / stride_});
}

Tensor ZeroOp::backward(const Tensor& grad_out) {
  (void)grad_out;
  FMS_CHECK_MSG(!cached_in_shape_.empty(),
                "ZeroOp::backward without train forward");
  return Tensor(cached_in_shape_);
}

std::unique_ptr<Module> make_candidate_op(OpType op, int channels, int stride,
                                          Rng& rng) {
  switch (op) {
    case OpType::kZero:
      return std::make_unique<ZeroOp>(stride);
    case OpType::kIdentity:
      if (stride == 1) return std::make_unique<Identity>();
      return make_factorized_reduce(channels, channels, rng);
    case OpType::kMaxPool3: {
      auto seq = std::make_unique<Sequential>();
      seq->add(std::make_unique<MaxPool2d>(3, stride, 1));
      seq->add(std::make_unique<BatchNorm2d>(channels));
      return seq;
    }
    case OpType::kAvgPool3: {
      auto seq = std::make_unique<Sequential>();
      seq->add(std::make_unique<AvgPool2d>(3, stride, 1));
      seq->add(std::make_unique<BatchNorm2d>(channels));
      return seq;
    }
    case OpType::kSepConv3:
      return make_sep_conv(channels, 3, stride, rng);
    case OpType::kSepConv5:
      return make_sep_conv(channels, 5, stride, rng);
    case OpType::kDilConv3:
      return make_dil_conv(channels, 3, stride, rng);
    case OpType::kDilConv5:
      return make_dil_conv(channels, 5, stride, rng);
  }
  FMS_CHECK_MSG(false, "unknown op type");
  return nullptr;
}

}  // namespace fms
