// The supernet: stem -> stacked cells (reduction at 1/3 and 2/3 depth)
// -> global average pool -> linear classifier. Holds the weights theta of
// *all* candidate operations; sub-models select one op per edge via a Mask.
//
// The class also provides the flat-parameter plumbing the federated layer
// needs: a deterministic enumeration of all parameters, the index subset a
// given mask selects (= what is actually shipped to a participant), and
// serialized payload sizes in bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/config.h"
#include "src/nas/cell.h"

namespace fms {

// One-hot op choice per edge, for the normal and the reduction cell
// template (alpha — and hence the mask — is shared across cells of the
// same type, as in DARTS/ENAS).
struct Mask {
  std::vector<int> normal;
  std::vector<int> reduce;
};

class Supernet {
 public:
  Supernet(const SupernetConfig& cfg, Rng& rng);

  Supernet(const Supernet&) = delete;
  Supernet& operator=(const Supernet&) = delete;

  const SupernetConfig& config() const { return cfg_; }
  int num_edges() const { return Cell::num_edges(cfg_.num_nodes); }
  int num_cells() const { return static_cast<int>(cells_.size()); }

  // --- sub-model (masked) mode: what participants actually run ---
  Tensor forward(const Tensor& x, const Mask& mask, bool train);
  // Backpropagates from dLoss/dLogits; parameter grads accumulate in place.
  void backward(const Tensor& grad_logits);

  // --- mixed mode: continuous relaxation for DARTS/FedNAS baselines ---
  Tensor forward_mixed(const Tensor& x, const EdgeWeights& w_normal,
                       const EdgeWeights& w_reduce, bool train);
  void backward_mixed(const Tensor& grad_logits, EdgeWeights& gw_normal,
                      EdgeWeights& gw_reduce);

  // --- parameter plumbing ---
  const std::vector<Param*>& params();
  void zero_grad();

  // Indices (into params()) of the parameters a mask selects: stem, cell
  // preprocessors, classifier, and exactly one op per edge per cell.
  std::vector<std::size_t> masked_param_ids(const Mask& mask);

  // Flat copies across the masked subset (ids from masked_param_ids).
  std::vector<float> gather_values(const std::vector<std::size_t>& ids);
  std::vector<float> gather_grads(const std::vector<std::size_t>& ids);
  void scatter_values(const std::vector<std::size_t>& ids,
                      const std::vector<float>& flat);
  // Adds `flat` into the .grad of the selected params.
  void scatter_add_grads(const std::vector<std::size_t>& ids,
                         const std::vector<float>& flat);

  // Whole-net flat snapshot (used by the staleness memory pool).
  std::vector<float> flat_values();
  void set_flat_values(const std::vector<float>& flat);
  // Gathers the masked subset out of a whole-net flat snapshot — lets the
  // delay-compensated update read stale sub-model weights out of the
  // memory pool without materializing a stale supernet.
  std::vector<float> gather_from_flat(const std::vector<float>& flat,
                                      const std::vector<std::size_t>& ids);
  // Inverse of gather_from_flat for gradients: scatters a masked flat
  // vector into a dense whole-net vector, exact zero elsewhere — the
  // coordinate space the robust aggregators (src/agg) estimate in, with
  // unsampled ops contributing zero exactly as the plain average does.
  std::vector<float> dense_from_masked(const std::vector<std::size_t>& ids,
                                       const std::vector<float>& flat);
  // Companion presence mask: 1 over the coordinates `ids` select, 0
  // elsewhere — tells the participation-aware estimators which zeros in
  // the dense vector are real gradients and which are unsampled ops.
  std::vector<std::uint8_t> presence_from_masked(
      const std::vector<std::size_t>& ids);
  // Adds a dense whole-net flat vector into every param's .grad (the
  // aggregated-gradient commit path).
  void add_flat_grads(const std::vector<float>& flat);

  std::size_t param_count();
  std::size_t param_count_masked(const Mask& mask);
  // Serialized payload sizes (float32 values + mask bookkeeping).
  std::size_t supernet_bytes();
  std::size_t submodel_bytes(const Mask& mask);

 private:
  struct ParamTag {
    bool shared = true;  // stem / preprocessing / classifier
    bool reduction = false;
    int edge = -1;
    int op = -1;
  };

  void build_param_index();

  SupernetConfig cfg_;
  std::unique_ptr<Module> stem_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<bool> cell_is_reduction_;
  std::unique_ptr<GlobalAvgPool> gap_;
  std::unique_ptr<Linear> classifier_;

  std::vector<Param*> params_;
  std::vector<ParamTag> tags_;
  std::vector<std::size_t> offsets_;  // offset of each param in flat layout

  // Backward caches.
  int cached_batch_ = 0;
  bool has_cache_ = false;
  bool mixed_mode_ = false;
};

// Samples a uniformly random mask (used for warm-up and tests).
Mask random_mask(int num_edges, Rng& rng);

}  // namespace fms
