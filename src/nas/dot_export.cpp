#include "src/nas/dot_export.h"

#include <fstream>
#include <sstream>

#include "src/common/check.h"

namespace fms {
namespace {

void emit_cell(std::ostream& os, const char* name,
               const std::vector<GenotypeEdge>& edges, int nodes) {
  os << "  subgraph cluster_" << name << " {\n"
     << "    label=\"" << name << " cell\";\n"
     << "    style=rounded;\n";
  auto state = [&](int s) {
    std::ostringstream id;
    id << name << "_s" << s;
    return id.str();
  };
  os << "    " << state(0) << " [label=\"c_{k-2}\", shape=box];\n";
  os << "    " << state(1) << " [label=\"c_{k-1}\", shape=box];\n";
  for (int n = 0; n < nodes; ++n) {
    os << "    " << state(2 + n) << " [label=\"" << n << "\"];\n";
  }
  os << "    " << name << "_out [label=\"concat\", shape=box];\n";
  for (int n = 0; n < nodes; ++n) {
    for (int k = 0; k < 2; ++k) {
      const GenotypeEdge& e = edges[static_cast<std::size_t>(2 * n + k)];
      os << "    " << state(e.input) << " -> " << state(2 + n) << " [label=\""
         << op_name(e.op) << "\"];\n";
    }
    os << "    " << state(2 + n) << " -> " << name << "_out;\n";
  }
  os << "  }\n";
}

}  // namespace

std::string genotype_to_dot(const Genotype& genotype) {
  FMS_CHECK(genotype.nodes > 0 &&
            genotype.normal.size() ==
                static_cast<std::size_t>(2 * genotype.nodes) &&
            genotype.reduce.size() == genotype.normal.size());
  std::ostringstream os;
  os << "digraph genotype {\n  rankdir=LR;\n  node [fontsize=10];\n";
  emit_cell(os, "normal", genotype.normal, genotype.nodes);
  emit_cell(os, "reduce", genotype.reduce, genotype.nodes);
  os << "}\n";
  return os.str();
}

void write_dot_file(const std::string& path, const Genotype& genotype) {
  std::ofstream f(path);
  FMS_CHECK_MSG(f.good(), "cannot open " << path);
  f << genotype_to_dot(genotype);
}

}  // namespace fms
