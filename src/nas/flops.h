// Analytic multiply-accumulate (MAC) counting for candidate operations,
// sub-models, and genotypes.
//
// The federated scheduler and the Table V cost model need per-model
// compute estimates *without running the model* — the server must reason
// about a sub-model's cost before dispatching it. Counts follow the
// standard conv MAC formula (Cout * Cin/g * k^2 * Hout * Wout) and include
// the stem, cell preprocessing, and classifier.
#pragma once

#include <cstdint>

#include "src/common/config.h"
#include "src/nas/genotype.h"
#include "src/nas/supernet.h"

namespace fms {

// MACs of one candidate op instance on a (channels, hw, hw) feature map
// with the given stride.
std::uint64_t op_macs(OpType op, int channels, int hw, int stride);

// MACs of one forward pass (batch size 1) of a sub-model selected by
// `mask` from a supernet with configuration `cfg`.
std::uint64_t submodel_macs(const SupernetConfig& cfg, const Mask& mask);

// MACs of one forward pass (batch size 1) of a discretized genotype
// stacked per `cfg`.
std::uint64_t genotype_macs(const SupernetConfig& cfg, const Genotype& g);

// MACs of one *mixed-mode* forward pass (every candidate op on every edge
// runs and is weighted) — what FedNAS/DARTS-style methods pay per batch.
std::uint64_t supernet_mixed_macs(const SupernetConfig& cfg);

// Training-step FLOPs (forward + backward ~= 3x forward, 2 FLOPs per MAC).
inline double training_flops(std::uint64_t macs, int batch) {
  return 6.0 * static_cast<double>(macs) * batch;
}

}  // namespace fms
