// A standalone trainable network instantiated from a Genotype — what phase
// P3 retrains from scratch after the search. Unlike the supernet, it only
// materializes the chosen operations, so its parameter count is the
// "Param(M)" a deployment would actually carry.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "src/common/config.h"
#include "src/nas/cell.h"
#include "src/nas/genotype.h"
#include "src/nn/layers.h"
#include "src/nn/net.h"

namespace fms {

class DiscreteCell {
 public:
  DiscreteCell(const Genotype& genotype, const CellSpec& spec, Rng& rng);

  int out_channels() const { return spec_.nodes * spec_.c; }

  Tensor forward(const Tensor& s0, const Tensor& s1, bool train);
  std::pair<Tensor, Tensor> backward(const Tensor& grad_out);

  void collect_params(std::vector<Param*>& out);

 private:
  struct Edge {
    int input;
    std::unique_ptr<Module> op;
  };

  CellSpec spec_;
  std::unique_ptr<Module> pre0_;
  std::unique_ptr<Module> pre1_;
  std::vector<std::vector<Edge>> node_edges_;  // per node
  std::vector<Tensor> states_;
  bool has_cache_ = false;
};

class DiscreteNet : public TrainableNet {
 public:
  DiscreteNet(const Genotype& genotype, const SupernetConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  void backward(const Tensor& grad_logits) override;

  const std::vector<Param*>& params() override { return params_; }
  void zero_grad() override;
  std::size_t param_count() const override { return param_count_; }
  std::size_t model_bytes() const { return 16 + 4 * param_count_; }
  const Genotype& genotype() const { return genotype_; }

 private:
  Genotype genotype_;
  std::unique_ptr<Module> stem_;
  std::vector<std::unique_ptr<DiscreteCell>> cells_;
  std::unique_ptr<GlobalAvgPool> gap_;
  std::unique_ptr<Linear> classifier_;
  std::vector<Param*> params_;
  std::size_t param_count_ = 0;
  bool has_cache_ = false;
};

}  // namespace fms
