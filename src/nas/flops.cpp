#include "src/nas/flops.h"

namespace fms {
namespace {

// MACs of a conv layer: cout * cin/groups * k^2 * out_hw^2.
std::uint64_t conv_macs(int cin, int cout, int k, int out_hw, int groups) {
  return static_cast<std::uint64_t>(cout) *
         static_cast<std::uint64_t>(cin / groups) *
         static_cast<std::uint64_t>(k) * k * out_hw * out_hw;
}

// BN and ReLU are counted as one MAC-equivalent per output element.
std::uint64_t elementwise_macs(int channels, int hw) {
  return static_cast<std::uint64_t>(channels) * hw * hw;
}

struct CellShape {
  int c_prev_prev, c_prev, c;
  int hw_in, hw_out;
  bool reduction, reduction_prev;
};

std::uint64_t preprocess_macs(const CellShape& s) {
  std::uint64_t macs = 0;
  // pre0: factorized reduce (1x1 stride 2) or 1x1 conv; both land on
  // (c, hw_pre0) where hw matches pre1's output.
  const int hw0 = s.reduction_prev ? s.hw_in : s.hw_in;
  macs += conv_macs(s.c_prev_prev, s.c, 1, s.reduction_prev ? hw0 / 1 : hw0, 1);
  macs += elementwise_macs(s.c, hw0);
  // pre1: 1x1 conv.
  macs += conv_macs(s.c_prev, s.c, 1, s.hw_in, 1);
  macs += elementwise_macs(s.c, s.hw_in);
  return macs;
}

// Walks the stacked-cell structure exactly as Supernet/DiscreteNet build
// it and sums op MACs via `edge_cost(reduction, edge_index, stride, shape)`.
template <typename EdgeCost>
std::uint64_t stacked_macs(const SupernetConfig& cfg, EdgeCost edge_cost) {
  std::uint64_t macs = 0;
  int hw = cfg.image_size;
  // Stem conv 3x3 + BN.
  macs += conv_macs(cfg.image_channels, cfg.stem_channels, 3, hw, 1);
  macs += elementwise_macs(cfg.stem_channels, hw);

  int c_prev_prev = cfg.stem_channels;
  int c_prev = cfg.stem_channels;
  int c_curr = cfg.stem_channels;
  bool reduction_prev = false;
  for (int i = 0; i < cfg.num_cells; ++i) {
    const bool reduction =
        cfg.num_cells >= 3 &&
        (i == cfg.num_cells / 3 || i == 2 * cfg.num_cells / 3);
    if (reduction) c_curr *= 2;
    CellShape shape{c_prev_prev, c_prev, c_curr, hw,
                    reduction ? hw / 2 : hw, reduction, reduction_prev};
    macs += preprocess_macs(shape);
    for (int node = 0; node < cfg.num_nodes; ++node) {
      for (int input = 0; input < 2 + node; ++input) {
        const int e = node * (node + 3) / 2 + input;
        const int stride = (reduction && input < 2) ? 2 : 1;
        macs += edge_cost(reduction, e, c_curr,
                          stride == 2 ? shape.hw_in : shape.hw_out, stride);
      }
    }
    hw = shape.hw_out;
    reduction_prev = reduction;
    c_prev_prev = c_prev;
    c_prev = cfg.num_nodes * c_curr;
  }
  // Classifier: global average pool + linear.
  macs += static_cast<std::uint64_t>(c_prev) * hw * hw;
  macs += static_cast<std::uint64_t>(c_prev) * cfg.num_classes;
  return macs;
}

}  // namespace

std::uint64_t op_macs(OpType op, int channels, int hw, int stride) {
  const int out_hw = hw / stride;
  switch (op) {
    case OpType::kZero:
      return 0;
    case OpType::kIdentity:
      if (stride == 1) return 0;
      // Factorized reduce: 1x1 conv stride 2 + BN.
      return conv_macs(channels, channels, 1, out_hw, 1) +
             elementwise_macs(channels, out_hw);
    case OpType::kMaxPool3:
    case OpType::kAvgPool3:
      // 3x3 window comparisons/adds per output + BN.
      return 9ULL * elementwise_macs(channels, out_hw) +
             elementwise_macs(channels, out_hw);
    case OpType::kSepConv3:
    case OpType::kSepConv5: {
      const int k = op == OpType::kSepConv3 ? 3 : 5;
      // Applied twice: (dw kxk + pw 1x1 + BN) with stride, then stride 1.
      std::uint64_t macs = 0;
      macs += conv_macs(channels, channels, k, out_hw, channels);
      macs += conv_macs(channels, channels, 1, out_hw, 1);
      macs += elementwise_macs(channels, out_hw);
      macs += conv_macs(channels, channels, k, out_hw, channels);
      macs += conv_macs(channels, channels, 1, out_hw, 1);
      macs += elementwise_macs(channels, out_hw);
      return macs;
    }
    case OpType::kDilConv3:
    case OpType::kDilConv5: {
      const int k = op == OpType::kDilConv3 ? 3 : 5;
      return conv_macs(channels, channels, k, out_hw, channels) +
             conv_macs(channels, channels, 1, out_hw, 1) +
             elementwise_macs(channels, out_hw);
    }
  }
  return 0;
}

std::uint64_t submodel_macs(const SupernetConfig& cfg, const Mask& mask) {
  FMS_CHECK(static_cast<int>(mask.normal.size()) ==
            Cell::num_edges(cfg.num_nodes));
  return stacked_macs(cfg, [&](bool reduction, int e, int channels, int hw,
                               int stride) {
    const auto& m = reduction ? mask.reduce : mask.normal;
    return op_macs(static_cast<OpType>(m[static_cast<std::size_t>(e)]),
                   channels, hw, stride);
  });
}

std::uint64_t supernet_mixed_macs(const SupernetConfig& cfg) {
  return stacked_macs(cfg, [&](bool /*reduction*/, int /*e*/, int channels,
                               int hw, int stride) {
    std::uint64_t macs = 0;
    for (int op = 0; op < kNumOps; ++op) {
      macs += op_macs(static_cast<OpType>(op), channels, hw, stride);
    }
    return macs;
  });
}

std::uint64_t genotype_macs(const SupernetConfig& cfg, const Genotype& g) {
  FMS_CHECK(g.nodes == cfg.num_nodes);
  return stacked_macs(cfg, [&](bool reduction, int e, int channels, int hw,
                               int stride) -> std::uint64_t {
    // Genotype keeps 2 edges per node; map flat edge index back to
    // (node, input) and charge only selected edges.
    int node = 0, base = 0;
    while (base + 2 + node <= e) {
      base += 2 + node;
      ++node;
    }
    const int input = e - base;
    const auto& edges = reduction ? g.reduce : g.normal;
    std::uint64_t macs = 0;
    for (int k = 0; k < 2; ++k) {
      const GenotypeEdge& ge = edges[static_cast<std::size_t>(2 * node + k)];
      if (ge.input == input) {
        macs += op_macs(ge.op, channels, hw, stride);
      }
    }
    return macs;
  });
}

}  // namespace fms
