#include "src/nas/discrete_net.h"

#include "src/tensor/ops.h"

namespace fms {
namespace {

void accumulate(Tensor& dst, const Tensor& src) {
  if (dst.empty()) {
    dst = src;
  } else {
    dst += src;
  }
}

}  // namespace

DiscreteCell::DiscreteCell(const Genotype& genotype, const CellSpec& spec,
                           Rng& rng)
    : spec_(spec) {
  FMS_CHECK(spec.nodes == genotype.nodes);
  pre0_ = spec.reduction_prev
              ? make_factorized_reduce(spec.c_prev_prev, spec.c, rng)
              : make_relu_conv_bn(spec.c_prev_prev, spec.c, 1, 1, 0, rng);
  pre1_ = make_relu_conv_bn(spec.c_prev, spec.c, 1, 1, 0, rng);
  const auto& edges = spec.reduction ? genotype.reduce : genotype.normal;
  FMS_CHECK(edges.size() == static_cast<std::size_t>(2 * spec.nodes));
  node_edges_.resize(static_cast<std::size_t>(spec.nodes));
  for (int node = 0; node < spec.nodes; ++node) {
    for (int k = 0; k < 2; ++k) {
      const GenotypeEdge& ge = edges[static_cast<std::size_t>(2 * node + k)];
      FMS_CHECK(ge.input >= 0 && ge.input < 2 + node);
      const int stride = (spec.reduction && ge.input < 2) ? 2 : 1;
      node_edges_[static_cast<std::size_t>(node)].push_back(
          {ge.input, make_candidate_op(ge.op, spec.c, stride, rng)});
    }
  }
}

Tensor DiscreteCell::forward(const Tensor& s0, const Tensor& s1, bool train) {
  states_.clear();
  states_.push_back(pre0_->forward(s0, train));
  states_.push_back(pre1_->forward(s1, train));
  for (auto& edges : node_edges_) {
    Tensor acc;
    for (auto& e : edges) {
      Tensor y = e.op->forward(states_[static_cast<std::size_t>(e.input)], train);
      accumulate(acc, y);
    }
    states_.push_back(std::move(acc));
  }
  has_cache_ = train;
  std::vector<Tensor> outs(states_.begin() + 2, states_.end());
  return concat_channels(outs);
}

std::pair<Tensor, Tensor> DiscreteCell::backward(const Tensor& grad_out) {
  FMS_CHECK_MSG(has_cache_, "DiscreteCell::backward without train forward");
  std::vector<Tensor> node_grads = split_channels(grad_out, spec_.nodes);
  std::vector<Tensor> grad_states(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    grad_states[i] = Tensor(states_[i].shape());
  }
  for (int node = 0; node < spec_.nodes; ++node) {
    grad_states[static_cast<std::size_t>(2 + node)] +=
        node_grads[static_cast<std::size_t>(node)];
  }
  for (int node = spec_.nodes - 1; node >= 0; --node) {
    const Tensor& g = grad_states[static_cast<std::size_t>(2 + node)];
    for (auto& e : node_edges_[static_cast<std::size_t>(node)]) {
      Tensor gin = e.op->backward(g);
      grad_states[static_cast<std::size_t>(e.input)] += gin;
    }
  }
  Tensor g0 = pre0_->backward(grad_states[0]);
  Tensor g1 = pre1_->backward(grad_states[1]);
  has_cache_ = false;
  return {std::move(g0), std::move(g1)};
}

void DiscreteCell::collect_params(std::vector<Param*>& out) {
  pre0_->collect_params(out);
  pre1_->collect_params(out);
  for (auto& edges : node_edges_) {
    for (auto& e : edges) e.op->collect_params(out);
  }
}

DiscreteNet::DiscreteNet(const Genotype& genotype, const SupernetConfig& cfg,
                         Rng& rng)
    : genotype_(genotype) {
  auto stem = std::make_unique<Sequential>();
  stem->add(std::make_unique<Conv2d>(cfg.image_channels, cfg.stem_channels, 3,
                                     Conv2dSpec{1, 1, 1, 1}, rng));
  stem->add(std::make_unique<BatchNorm2d>(cfg.stem_channels));
  stem_ = std::move(stem);

  int c_prev_prev = cfg.stem_channels;
  int c_prev = cfg.stem_channels;
  int c_curr = cfg.stem_channels;
  bool reduction_prev = false;
  for (int i = 0; i < cfg.num_cells; ++i) {
    const bool reduction =
        cfg.num_cells >= 3 &&
        (i == cfg.num_cells / 3 || i == 2 * cfg.num_cells / 3);
    if (reduction) c_curr *= 2;
    CellSpec spec;
    spec.nodes = cfg.num_nodes;
    spec.c_prev_prev = c_prev_prev;
    spec.c_prev = c_prev;
    spec.c = c_curr;
    spec.reduction = reduction;
    spec.reduction_prev = reduction_prev;
    cells_.push_back(std::make_unique<DiscreteCell>(genotype, spec, rng));
    reduction_prev = reduction;
    c_prev_prev = c_prev;
    c_prev = cells_.back()->out_channels();
  }
  gap_ = std::make_unique<GlobalAvgPool>();
  classifier_ = std::make_unique<Linear>(c_prev, cfg.num_classes, rng);

  stem_->collect_params(params_);
  for (auto& c : cells_) c->collect_params(params_);
  classifier_->collect_params(params_);
  for (Param* p : params_) param_count_ += p->numel();
}

Tensor DiscreteNet::forward(const Tensor& x, bool train) {
  Tensor stem_out = stem_->forward(x, train);
  Tensor s_pp = stem_out, s_p = stem_out;
  for (auto& cell : cells_) {
    Tensor out = cell->forward(s_pp, s_p, train);
    s_pp = std::move(s_p);
    s_p = std::move(out);
  }
  Tensor pooled = gap_->forward(s_p, train);
  has_cache_ = train;
  return classifier_->forward(pooled, train);
}

void DiscreteNet::backward(const Tensor& grad_logits) {
  FMS_CHECK_MSG(has_cache_, "DiscreteNet::backward without train forward");
  Tensor g = classifier_->backward(grad_logits);
  g = gap_->backward(g);
  std::vector<Tensor> gstate(cells_.size() + 2);
  accumulate(gstate[cells_.size() + 1], g);
  for (int i = static_cast<int>(cells_.size()) - 1; i >= 0; --i) {
    auto [g0, g1] = cells_[static_cast<std::size_t>(i)]->backward(
        gstate[static_cast<std::size_t>(i) + 2]);
    accumulate(gstate[static_cast<std::size_t>(i)], g0);
    accumulate(gstate[static_cast<std::size_t>(i) + 1], g1);
  }
  Tensor stem_grad = gstate[0];
  stem_grad += gstate[1];
  stem_->backward(stem_grad);
  has_cache_ = false;
}

void DiscreteNet::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

}  // namespace fms
