// The N = 8 candidate operations of the DARTS search space (paper Fig. 1).
// An edge of a sampled sub-model carries exactly one of these.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "src/nn/layers.h"

namespace fms {

enum class OpType : int {
  kZero = 0,       // "none"
  kIdentity = 1,   // skip-connect (FactorizedReduce when stride 2)
  kMaxPool3 = 2,   // 3x3 max pool (+BN, DARTS convention)
  kAvgPool3 = 3,   // 3x3 avg pool (+BN)
  kSepConv3 = 4,   // 3x3 separable conv (applied twice)
  kSepConv5 = 5,   // 5x5 separable conv (applied twice)
  kDilConv3 = 6,   // 3x3 dilated separable conv
  kDilConv5 = 7,   // 5x5 dilated separable conv
};

inline constexpr int kNumOps = 8;

const char* op_name(OpType op);

// Zero operation: emits zeros of the post-stride shape; gradients vanish.
class ZeroOp : public Module {
 public:
  explicit ZeroOp(int stride) : stride_(stride) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<ZeroOp>(stride_);
  }

 private:
  int stride_;
  std::vector<int> cached_in_shape_;
};

// Builds candidate op `op` operating on `channels` channels with the given
// stride (2 only on reduction-cell edges fed by cell inputs).
std::unique_ptr<Module> make_candidate_op(OpType op, int channels, int stride,
                                          Rng& rng);

}  // namespace fms
