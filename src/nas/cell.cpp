#include "src/nas/cell.h"

#include "src/tensor/ops.h"

namespace fms {

Cell::Cell(const CellSpec& spec, Rng& rng) : spec_(spec) {
  pre0_ = spec.reduction_prev
              ? make_factorized_reduce(spec.c_prev_prev, spec.c, rng)
              : make_relu_conv_bn(spec.c_prev_prev, spec.c, 1, 1, 0, rng);
  pre1_ = make_relu_conv_bn(spec.c_prev, spec.c, 1, 1, 0, rng);
  ops_.resize(static_cast<std::size_t>(num_edges()));
  for (int node = 0; node < spec.nodes; ++node) {
    for (int input = 0; input < 2 + node; ++input) {
      const int e = edge_index(node, input);
      // Reduction cells stride only the edges fed by the cell inputs.
      const int stride = (spec.reduction && input < 2) ? 2 : 1;
      for (int op = 0; op < kNumOps; ++op) {
        ops_[static_cast<std::size_t>(e)][static_cast<std::size_t>(op)] =
            make_candidate_op(static_cast<OpType>(op), spec.c, stride, rng);
      }
    }
  }
}

int Cell::edge_index(int node, int input) const {
  FMS_CHECK(node >= 0 && node < spec_.nodes && input >= 0 && input < 2 + node);
  // Edges of nodes 0..node-1 occupy sum_{i<node}(2+i) slots.
  return node * (node + 3) / 2 + input;
}

Tensor Cell::forward(const Tensor& s0, const Tensor& s1,
                     const std::vector<int>& mask, bool train) {
  FMS_CHECK(static_cast<int>(mask.size()) == num_edges());
  cached_mask_ = mask;
  mixed_mode_ = false;
  states_.clear();
  states_.push_back(pre0_->forward(s0, train));
  states_.push_back(pre1_->forward(s1, train));
  for (int node = 0; node < spec_.nodes; ++node) {
    Tensor acc;
    for (int input = 0; input < 2 + node; ++input) {
      const int e = edge_index(node, input);
      const int op = mask[static_cast<std::size_t>(e)];
      FMS_CHECK(op >= 0 && op < kNumOps);
      Tensor y = ops_[static_cast<std::size_t>(e)][static_cast<std::size_t>(op)]
                     ->forward(states_[static_cast<std::size_t>(input)], train);
      if (acc.empty()) {
        acc = std::move(y);
      } else {
        acc += y;
      }
    }
    states_.push_back(std::move(acc));
  }
  has_cache_ = train;
  std::vector<Tensor> outs(states_.begin() + 2, states_.end());
  return concat_channels(outs);
}

std::pair<Tensor, Tensor> Cell::backward(const Tensor& grad_out) {
  FMS_CHECK_MSG(has_cache_ && !mixed_mode_,
                "Cell::backward without masked train forward");
  std::vector<Tensor> node_grads = split_channels(grad_out, spec_.nodes);
  std::vector<Tensor> grad_states(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    grad_states[i] = Tensor(states_[i].shape());
  }
  for (int node = 0; node < spec_.nodes; ++node) {
    grad_states[static_cast<std::size_t>(2 + node)] +=
        node_grads[static_cast<std::size_t>(node)];
  }
  for (int node = spec_.nodes - 1; node >= 0; --node) {
    const Tensor& g = grad_states[static_cast<std::size_t>(2 + node)];
    for (int input = 0; input < 2 + node; ++input) {
      const int e = edge_index(node, input);
      const int op = cached_mask_[static_cast<std::size_t>(e)];
      Tensor gin =
          ops_[static_cast<std::size_t>(e)][static_cast<std::size_t>(op)]
              ->backward(g);
      grad_states[static_cast<std::size_t>(input)] += gin;
    }
  }
  return finish_backward(std::move(grad_states));
}

Tensor Cell::forward_mixed(const Tensor& s0, const Tensor& s1,
                           const EdgeWeights& weights, bool train) {
  FMS_CHECK(static_cast<int>(weights.size()) == num_edges());
  cached_weights_ = weights;
  mixed_mode_ = true;
  states_.clear();
  mixed_outputs_.assign(static_cast<std::size_t>(num_edges()), {});
  states_.push_back(pre0_->forward(s0, train));
  states_.push_back(pre1_->forward(s1, train));
  for (int node = 0; node < spec_.nodes; ++node) {
    Tensor acc;
    for (int input = 0; input < 2 + node; ++input) {
      const int e = edge_index(node, input);
      for (int op = 0; op < kNumOps; ++op) {
        Tensor y =
            ops_[static_cast<std::size_t>(e)][static_cast<std::size_t>(op)]
                ->forward(states_[static_cast<std::size_t>(input)], train);
        const float w = weights[static_cast<std::size_t>(e)]
                               [static_cast<std::size_t>(op)];
        if (acc.empty()) acc = Tensor(y.shape());
        Tensor scaled = y;
        scaled *= w;
        acc += scaled;
        if (train) {
          mixed_outputs_[static_cast<std::size_t>(e)]
                        [static_cast<std::size_t>(op)] = std::move(y);
        }
      }
    }
    states_.push_back(std::move(acc));
  }
  has_cache_ = train;
  std::vector<Tensor> outs(states_.begin() + 2, states_.end());
  return concat_channels(outs);
}

std::pair<Tensor, Tensor> Cell::backward_mixed(const Tensor& grad_out,
                                               EdgeWeights& grad_weights) {
  FMS_CHECK_MSG(has_cache_ && mixed_mode_,
                "Cell::backward_mixed without mixed train forward");
  FMS_CHECK(static_cast<int>(grad_weights.size()) == num_edges());
  std::vector<Tensor> node_grads = split_channels(grad_out, spec_.nodes);
  std::vector<Tensor> grad_states(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    grad_states[i] = Tensor(states_[i].shape());
  }
  for (int node = 0; node < spec_.nodes; ++node) {
    grad_states[static_cast<std::size_t>(2 + node)] +=
        node_grads[static_cast<std::size_t>(node)];
  }
  for (int node = spec_.nodes - 1; node >= 0; --node) {
    const Tensor& g = grad_states[static_cast<std::size_t>(2 + node)];
    for (int input = 0; input < 2 + node; ++input) {
      const int e = edge_index(node, input);
      for (int op = 0; op < kNumOps; ++op) {
        const Tensor& y = mixed_outputs_[static_cast<std::size_t>(e)]
                                        [static_cast<std::size_t>(op)];
        // dL/dw_e,o = <grad_node, op_output>
        double dot = 0.0;
        for (std::size_t i = 0; i < y.numel(); ++i) dot += g[i] * y[i];
        grad_weights[static_cast<std::size_t>(e)][static_cast<std::size_t>(op)] +=
            static_cast<float>(dot);
        Tensor g_op = g;
        g_op *= cached_weights_[static_cast<std::size_t>(e)]
                               [static_cast<std::size_t>(op)];
        Tensor gin =
            ops_[static_cast<std::size_t>(e)][static_cast<std::size_t>(op)]
                ->backward(g_op);
        grad_states[static_cast<std::size_t>(input)] += gin;
      }
    }
  }
  return finish_backward(std::move(grad_states));
}

std::pair<Tensor, Tensor> Cell::finish_backward(
    std::vector<Tensor>&& grad_states) {
  Tensor g0 = pre0_->backward(grad_states[0]);
  Tensor g1 = pre1_->backward(grad_states[1]);
  has_cache_ = false;
  return {std::move(g0), std::move(g1)};
}

void Cell::collect_params(std::vector<Param*>& out) {
  pre0_->collect_params(out);
  pre1_->collect_params(out);
  for (auto& edge : ops_) {
    for (auto& op : edge) op->collect_params(out);
  }
}

void Cell::collect_shared_params(std::vector<Param*>& out) {
  pre0_->collect_params(out);
  pre1_->collect_params(out);
}

void Cell::collect_op_params(int edge, int op, std::vector<Param*>& out) {
  FMS_CHECK(edge >= 0 && edge < num_edges() && op >= 0 && op < kNumOps);
  ops_[static_cast<std::size_t>(edge)][static_cast<std::size_t>(op)]
      ->collect_params(out);
}

}  // namespace fms
