// Gradient-based NAS baselines sharing the supernet's mixed
// (continuous-relaxation) mode:
//
//  * FedNAS  (He et al.)  — federated: the *entire supernet* plus alpha is
//    broadcast to every participant each round; participants return full
//    theta gradients and d loss / d alpha; the server averages and steps
//    both. Communication per participant per round is therefore the
//    supernet size — the cost the paper's method avoids.
//  * DARTS   (Liu et al.) — centralized, 1st-order (alpha gradient on a
//    validation batch at the current weights) and 2nd-order (unrolled
//    virtual step with the finite-difference Hessian-vector product).
#pragma once

#include <vector>

#include "src/common/config.h"
#include "src/data/dataset.h"
#include "src/nas/supernet.h"
#include "src/nn/optim.h"
#include "src/rl/policy.h"

namespace fms {

// Chain rule through the per-edge softmax: converts d loss / d edge-weight
// into d loss / d alpha (dp_o/da_j = p_j (delta_oj - p_o)).
AlphaPair alpha_grad_from_edge_grads(const AlphaPair& alpha,
                                     const EdgeWeights& gw_normal,
                                     const EdgeWeights& gw_reduce);

EdgeWeights edge_weights_from_alpha(const AlphaTable& alpha);

struct GradNasResult {
  Genotype genotype;
  std::vector<double> round_train_acc;
  std::size_t bytes_down_per_participant_round = 0;  // FedNAS only
  std::size_t supernet_param_count = 0;
};

class FedNasSearch {
 public:
  FedNasSearch(const SupernetConfig& cfg, const Dataset& train,
               const std::vector<std::vector<int>>& partition,
               const SearchConfig& hyper);

  GradNasResult run(int rounds, int batch_size);

 private:
  SupernetConfig cfg_;
  SearchConfig hyper_;
  Rng rng_;
  std::unique_ptr<Supernet> supernet_;
  AlphaPair alpha_;
  SGD theta_opt_;
  std::vector<Shard> shards_;
};

class DartsSearch {
 public:
  struct Options {
    bool second_order = false;
    float xi = 0.025F;   // virtual-step learning rate (2nd order)
  };

  DartsSearch(const SupernetConfig& cfg, const Dataset& train,
              const Dataset& valid, const SearchConfig& hyper, Options opts);

  GradNasResult run(int steps, int batch_size);

 private:
  AlphaPair alpha_grad_on_batch(const Dataset::Batch& batch);
  std::vector<float> theta_grad_on_batch(const Dataset::Batch& batch,
                                         double* acc_out);

  SupernetConfig cfg_;
  SearchConfig hyper_;
  Options opts_;
  Rng rng_;
  std::unique_ptr<Supernet> supernet_;
  AlphaPair alpha_;
  SGD theta_opt_;
  Shard train_shard_;
  Shard valid_shard_;
};

}  // namespace fms
