#include "src/baselines/resnet_style.h"

#include "src/tensor/ops.h"

namespace fms {

ResidualBlock::ResidualBlock(int in_channels, int out_channels, int stride,
                             Rng& rng) {
  auto main = std::make_unique<Sequential>();
  main->add(std::make_unique<Conv2d>(in_channels, out_channels, 3,
                                     Conv2dSpec{stride, 1, 1, 1}, rng));
  main->add(std::make_unique<BatchNorm2d>(out_channels));
  main->add(std::make_unique<ReLU>());
  main->add(std::make_unique<Conv2d>(out_channels, out_channels, 3,
                                     Conv2dSpec{1, 1, 1, 1}, rng));
  main->add(std::make_unique<BatchNorm2d>(out_channels));
  main_ = std::move(main);
  if (stride != 1 || in_channels != out_channels) {
    auto skip = std::make_unique<Sequential>();
    skip->add(std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                       Conv2dSpec{stride, 0, 1, 1}, rng));
    skip->add(std::make_unique<BatchNorm2d>(out_channels));
    skip_ = std::move(skip);
  }
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor main_out = main_->forward(x, train);
  Tensor skip_out = skip_ ? skip_->forward(x, train) : x;
  Tensor sum = main_out + skip_out;
  if (train) {
    cached_sum_ = sum;
    has_cache_ = true;
  } else {
    has_cache_ = false;
  }
  return relu_forward(sum);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  FMS_CHECK_MSG(has_cache_, "ResidualBlock::backward without train forward");
  Tensor g = relu_backward(cached_sum_, grad_out);
  Tensor gx = main_->backward(g);
  if (skip_) {
    gx += skip_->backward(g);
  } else {
    gx += g;
  }
  has_cache_ = false;
  return gx;
}

void ResidualBlock::collect_params(std::vector<Param*>& out) {
  main_->collect_params(out);
  if (skip_) skip_->collect_params(out);
}

std::unique_ptr<Module> ResidualBlock::clone() const {
  // NOLINTNEXTLINE(modernize-make-unique): the default ctor is private
  auto copy = std::unique_ptr<ResidualBlock>(new ResidualBlock());
  copy->main_ = main_->clone();
  copy->skip_ = skip_ ? skip_->clone() : nullptr;
  return copy;
}

ResNetStyle::ResNetStyle(const ResNetStyleConfig& cfg, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->add(std::make_unique<Conv2d>(cfg.image_channels, cfg.base_channels, 3,
                                     Conv2dSpec{1, 1, 1, 1}, rng));
  body->add(std::make_unique<BatchNorm2d>(cfg.base_channels));
  body->add(std::make_unique<ReLU>());
  int channels = cfg.base_channels;
  for (std::size_t stage = 0; stage < cfg.stage_blocks.size(); ++stage) {
    const int out_channels = stage == 0 ? channels : channels * 2;
    for (int b = 0; b < cfg.stage_blocks[stage]; ++b) {
      const int stride = (stage > 0 && b == 0) ? 2 : 1;
      body->add(std::make_unique<ResidualBlock>(
          b == 0 ? channels : out_channels, out_channels, stride, rng));
    }
    channels = out_channels;
  }
  body_ = std::move(body);
  gap_ = std::make_unique<GlobalAvgPool>();
  classifier_ = std::make_unique<Linear>(channels, cfg.num_classes, rng);

  body_->collect_params(params_);
  classifier_->collect_params(params_);
  for (Param* p : params_) param_count_ += p->numel();
}

Tensor ResNetStyle::forward(const Tensor& x, bool train) {
  Tensor h = body_->forward(x, train);
  h = gap_->forward(h, train);
  has_cache_ = train;
  return classifier_->forward(h, train);
}

void ResNetStyle::backward(const Tensor& grad_logits) {
  FMS_CHECK_MSG(has_cache_, "ResNetStyle::backward without train forward");
  Tensor g = classifier_->backward(grad_logits);
  g = gap_->backward(g);
  body_->backward(g);
  has_cache_ = false;
}

void ResNetStyle::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

}  // namespace fms
