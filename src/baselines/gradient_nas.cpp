#include "src/baselines/gradient_nas.h"

#include <numeric>

#include "src/tensor/ops.h"

namespace fms {

EdgeWeights edge_weights_from_alpha(const AlphaTable& alpha) {
  EdgeWeights w(alpha.size());
  for (std::size_t e = 0; e < alpha.size(); ++e) w[e] = alpha_softmax(alpha[e]);
  return w;
}

AlphaPair alpha_grad_from_edge_grads(const AlphaPair& alpha,
                                     const EdgeWeights& gw_normal,
                                     const EdgeWeights& gw_reduce) {
  AlphaPair out = AlphaPair::zeros(static_cast<int>(alpha.normal.size()));
  auto apply = [](const AlphaTable& a, const EdgeWeights& gw, AlphaTable& g) {
    for (std::size_t e = 0; e < a.size(); ++e) {
      const auto p = alpha_softmax(a[e]);
      float dot = 0.0F;  // sum_o gw_o * p_o
      for (int o = 0; o < kNumOps; ++o) {
        dot += gw[e][static_cast<std::size_t>(o)] *
               p[static_cast<std::size_t>(o)];
      }
      for (int j = 0; j < kNumOps; ++j) {
        const std::size_t ji = static_cast<std::size_t>(j);
        g[e][ji] = p[ji] * (gw[e][ji] - dot);
      }
    }
  };
  apply(alpha.normal, gw_normal, out.normal);
  apply(alpha.reduce, gw_reduce, out.reduce);
  return out;
}

// ---------------------------------------------------------------- FedNAS --

FedNasSearch::FedNasSearch(const SupernetConfig& cfg, const Dataset& train,
                           const std::vector<std::vector<int>>& partition,
                           const SearchConfig& hyper)
    : cfg_(cfg),
      hyper_(hyper),
      rng_(hyper.seed ^ 0xfed9a5),
      alpha_(AlphaPair::zeros(Cell::num_edges(cfg.num_nodes))),
      theta_opt_(SGD::Options{hyper.theta.learning_rate, hyper.theta.momentum,
                              hyper.theta.weight_decay,
                              hyper.theta.gradient_clip}) {
  Rng net_rng = rng_.fork();
  supernet_ = std::make_unique<Supernet>(cfg, net_rng);
  for (const auto& p : partition) shards_.emplace_back(&train, p);
}

GradNasResult FedNasSearch::run(int rounds, int batch_size) {
  GradNasResult result;
  result.supernet_param_count = supernet_->param_count();
  // FedNAS ships the whole supernet plus alpha to every participant.
  result.bytes_down_per_participant_round =
      supernet_->supernet_bytes() + alpha_.flatten().size() * 4;
  const int k = static_cast<int>(shards_.size());
  const int num_edges = Cell::num_edges(cfg_.num_nodes);
  for (int round = 0; round < rounds; ++round) {
    supernet_->zero_grad();
    EdgeWeights gw_n(static_cast<std::size_t>(num_edges));
    EdgeWeights gw_r(static_cast<std::size_t>(num_edges));
    for (auto& row : gw_n) row.fill(0.0F);
    for (auto& row : gw_r) row.fill(0.0F);
    const EdgeWeights w_n = edge_weights_from_alpha(alpha_.normal);
    const EdgeWeights w_r = edge_weights_from_alpha(alpha_.reduce);
    double acc = 0.0;
    for (int p = 0; p < k; ++p) {
      Dataset::Batch batch = shards_[static_cast<std::size_t>(p)].next_batch(
          batch_size, nullptr, rng_);
      Tensor logits = supernet_->forward_mixed(batch.x, w_n, w_r, true);
      CrossEntropyResult ce = cross_entropy(logits, batch.y);
      supernet_->backward_mixed(ce.grad_logits, gw_n, gw_r);
      acc += ce.accuracy;
    }
    result.round_train_acc.push_back(acc / k);
    // Average across participants and step theta.
    const float inv_k = 1.0F / static_cast<float>(k);
    for (Param* p : supernet_->params()) {
      for (float& g : p->grad.vec()) g *= inv_k;
    }
    theta_opt_.step(supernet_->params());
    // Alpha step (plain SGD on the averaged alpha gradient).
    for (auto& row : gw_n)
      for (auto& v : row) v *= inv_k;
    for (auto& row : gw_r)
      for (auto& v : row) v *= inv_k;
    AlphaPair ga = alpha_grad_from_edge_grads(alpha_, gw_n, gw_r);
    ga.add_scaled(alpha_, hyper_.alpha.weight_decay);
    ga.clip(hyper_.alpha.gradient_clip);
    alpha_.add_scaled(ga, -hyper_.alpha.learning_rate);  // descent on loss
  }
  result.genotype = discretize(alpha_.normal, alpha_.reduce, cfg_.num_nodes);
  return result;
}

// ----------------------------------------------------------------- DARTS --

DartsSearch::DartsSearch(const SupernetConfig& cfg, const Dataset& train,
                         const Dataset& valid, const SearchConfig& hyper,
                         Options opts)
    : cfg_(cfg),
      hyper_(hyper),
      opts_(opts),
      rng_(hyper.seed ^ 0xda125),
      alpha_(AlphaPair::zeros(Cell::num_edges(cfg.num_nodes))),
      theta_opt_(SGD::Options{hyper.theta.learning_rate, hyper.theta.momentum,
                              hyper.theta.weight_decay,
                              hyper.theta.gradient_clip}) {
  Rng net_rng = rng_.fork();
  supernet_ = std::make_unique<Supernet>(cfg, net_rng);
  std::vector<int> train_idx(static_cast<std::size_t>(train.size()));
  std::iota(train_idx.begin(), train_idx.end(), 0);
  std::vector<int> valid_idx(static_cast<std::size_t>(valid.size()));
  std::iota(valid_idx.begin(), valid_idx.end(), 0);
  train_shard_ = Shard(&train, train_idx);
  valid_shard_ = Shard(&valid, valid_idx);
}

AlphaPair DartsSearch::alpha_grad_on_batch(const Dataset::Batch& batch) {
  const int num_edges = Cell::num_edges(cfg_.num_nodes);
  EdgeWeights gw_n(static_cast<std::size_t>(num_edges));
  EdgeWeights gw_r(static_cast<std::size_t>(num_edges));
  for (auto& row : gw_n) row.fill(0.0F);
  for (auto& row : gw_r) row.fill(0.0F);
  supernet_->zero_grad();
  Tensor logits = supernet_->forward_mixed(
      batch.x, edge_weights_from_alpha(alpha_.normal),
      edge_weights_from_alpha(alpha_.reduce), true);
  CrossEntropyResult ce = cross_entropy(logits, batch.y);
  supernet_->backward_mixed(ce.grad_logits, gw_n, gw_r);
  return alpha_grad_from_edge_grads(alpha_, gw_n, gw_r);
}

std::vector<float> DartsSearch::theta_grad_on_batch(const Dataset::Batch& batch,
                                                    double* acc_out) {
  const int num_edges = Cell::num_edges(cfg_.num_nodes);
  EdgeWeights gw_n(static_cast<std::size_t>(num_edges));
  EdgeWeights gw_r(static_cast<std::size_t>(num_edges));
  for (auto& row : gw_n) row.fill(0.0F);
  for (auto& row : gw_r) row.fill(0.0F);
  supernet_->zero_grad();
  Tensor logits = supernet_->forward_mixed(
      batch.x, edge_weights_from_alpha(alpha_.normal),
      edge_weights_from_alpha(alpha_.reduce), true);
  CrossEntropyResult ce = cross_entropy(logits, batch.y);
  supernet_->backward_mixed(ce.grad_logits, gw_n, gw_r);
  if (acc_out != nullptr) *acc_out = ce.accuracy;
  std::vector<float> flat;
  for (Param* p : supernet_->params()) {
    flat.insert(flat.end(), p->grad.vec().begin(), p->grad.vec().end());
  }
  return flat;
}

GradNasResult DartsSearch::run(int steps, int batch_size) {
  GradNasResult result;
  result.supernet_param_count = supernet_->param_count();
  for (int step = 0; step < steps; ++step) {
    Dataset::Batch val_batch = valid_shard_.next_batch(batch_size, nullptr, rng_);
    AlphaPair ga;
    if (!opts_.second_order) {
      ga = alpha_grad_on_batch(val_batch);
    } else {
      // Unrolled step: w' = w - xi * dL_train/dw.
      Dataset::Batch tr_batch = train_shard_.next_batch(batch_size, nullptr, rng_);
      std::vector<float> w0 = supernet_->flat_values();
      std::vector<float> gt = theta_grad_on_batch(tr_batch, nullptr);
      std::vector<float> w1 = w0;
      for (std::size_t i = 0; i < w1.size(); ++i) w1[i] -= opts_.xi * gt[i];
      supernet_->set_flat_values(w1);
      AlphaPair term1 = alpha_grad_on_batch(val_batch);
      std::vector<float> gv = theta_grad_on_batch(val_batch, nullptr);
      // Finite-difference Hessian-vector product
      // d/dalpha [ dL_train/dw . gv ] ~ (dLtr/da|w+ - dLtr/da|w-) / 2eps.
      double gv_norm = 0.0;
      for (float g : gv) gv_norm += static_cast<double>(g) * g;
      gv_norm = std::sqrt(gv_norm);
      const float eps = gv_norm > 1e-8 ? static_cast<float>(0.01 / gv_norm)
                                       : 0.0F;
      AlphaPair hvp = AlphaPair::zeros(Cell::num_edges(cfg_.num_nodes));
      if (eps > 0.0F) {
        std::vector<float> wp = w0, wm = w0;
        for (std::size_t i = 0; i < w0.size(); ++i) {
          wp[i] += eps * gv[i];
          wm[i] -= eps * gv[i];
        }
        supernet_->set_flat_values(wp);
        AlphaPair gp = alpha_grad_on_batch(tr_batch);
        supernet_->set_flat_values(wm);
        AlphaPair gm = alpha_grad_on_batch(tr_batch);
        gp.add_scaled(gm, -1.0F);
        gp.scale(1.0F / (2.0F * eps));
        hvp = gp;
      }
      term1.add_scaled(hvp, -opts_.xi);
      ga = term1;
      supernet_->set_flat_values(w0);
    }
    ga.add_scaled(alpha_, hyper_.alpha.weight_decay);
    ga.clip(hyper_.alpha.gradient_clip);
    alpha_.add_scaled(ga, -hyper_.alpha.learning_rate);

    // Theta step on a training batch at the new alpha.
    Dataset::Batch tr_batch = train_shard_.next_batch(batch_size, nullptr, rng_);
    double acc = 0.0;
    theta_grad_on_batch(tr_batch, &acc);  // grads now live in params
    theta_opt_.step(supernet_->params());
    result.round_train_acc.push_back(acc);
  }
  result.genotype = discretize(alpha_.normal, alpha_.reduce, cfg_.num_nodes);
  return result;
}

}  // namespace fms
