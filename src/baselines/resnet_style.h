// Hand-designed residual network — the "pre-defined model" baseline
// (paper Tables III/IV use ResNet152 with 58.2 M parameters; here the
// configuration is scaled so it stays much larger than the searched
// models on this substrate, preserving its role of "big fixed model that
// overfits non-i.i.d. data").
#pragma once

#include <memory>

#include "src/common/config.h"
#include "src/nn/layers.h"
#include "src/nn/net.h"

namespace fms {

// Standard pre-activation-free residual block:
// out = ReLU(BN(conv(ReLU(BN(conv(x))))) + skip(x)).
class ResidualBlock : public Module {
 public:
  ResidualBlock(int in_channels, int out_channels, int stride, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  std::unique_ptr<Module> clone() const override;

 private:
  ResidualBlock() = default;

  std::unique_ptr<Module> main_;
  std::unique_ptr<Module> skip_;  // nullptr => identity
  Tensor cached_sum_;             // pre-ReLU sum, for the output ReLU
  bool has_cache_ = false;
};

struct ResNetStyleConfig {
  int image_channels = 3;
  int num_classes = 10;
  int base_channels = 24;
  std::vector<int> stage_blocks{2, 2, 2};  // blocks per stage (stride-2 between)
};

class ResNetStyle : public TrainableNet {
 public:
  ResNetStyle(const ResNetStyleConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  void backward(const Tensor& grad_logits) override;
  const std::vector<Param*>& params() override { return params_; }
  void zero_grad() override;
  std::size_t param_count() const override { return param_count_; }

 private:
  std::unique_ptr<Sequential> body_;
  std::unique_ptr<GlobalAvgPool> gap_;
  std::unique_ptr<Linear> classifier_;
  std::vector<Param*> params_;
  std::size_t param_count_ = 0;
  bool has_cache_ = false;
};

}  // namespace fms
