// Evolutionary federated NAS baseline (Zhu & Jin style).
//
// A population of candidate architectures is kept on the server; each
// round every individual is dispatched to a participant, trained on one
// local batch (its *whole model* travels, unlike our sub-model scheme) and
// scored by training accuracy. Periodically the worst half of the
// population is replaced by mutated copies of the best half. The "big"
// variant searches the full cell space; the "small" variant restricts the
// cell to fewer nodes, mirroring the paper's two EvoFedNAS rows.
#pragma once

#include <memory>
#include <vector>

#include "src/common/config.h"
#include "src/data/dataset.h"
#include "src/nas/discrete_net.h"
#include "src/nn/optim.h"

namespace fms {

Genotype random_genotype(int nodes, Rng& rng);
Genotype mutate_genotype(const Genotype& parent, Rng& rng);

class EvoFedNasSearch {
 public:
  struct Options {
    int population = 8;
    int evolve_every = 10;  // rounds between evolution steps
    int nodes = 3;          // "small" variant uses fewer nodes
  };

  EvoFedNasSearch(const SupernetConfig& cfg, const Dataset& train,
                  const std::vector<std::vector<int>>& partition,
                  const SearchConfig& hyper, Options opts);

  struct Result {
    Genotype best;
    std::vector<double> round_train_acc;
    double avg_model_bytes = 0.0;  // whole-model payload per dispatch
    std::size_t best_param_count = 0;
  };

  Result run(int rounds, int batch_size);

 private:
  struct Individual {
    Genotype genotype;
    std::unique_ptr<DiscreteNet> net;
    std::unique_ptr<SGD> opt;
    double fitness = 0.0;
    int evaluations = 0;
  };

  Individual make_individual(const Genotype& g);

  SupernetConfig cfg_;
  SearchConfig hyper_;
  Options opts_;
  Rng rng_;
  std::vector<Shard> shards_;
  std::vector<Individual> population_;
};

}  // namespace fms
