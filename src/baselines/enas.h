// Centralized ENAS-style baseline (Pham et al.): RL controller + shared
// supernet weights on a single (centralized) dataset. Uses the same
// ArchPolicy / masked-supernet machinery as the federated method, minus
// the federation — the Table II reference point for "RL-based NAS without
// the FL setting".
#pragma once

#include <memory>
#include <vector>

#include "src/common/config.h"
#include "src/data/dataset.h"
#include "src/nn/optim.h"
#include "src/rl/policy.h"

namespace fms {

class EnasSearch {
 public:
  EnasSearch(const SupernetConfig& cfg, const Dataset& train,
             const SearchConfig& hyper);

  struct Result {
    Genotype genotype;
    std::vector<double> step_train_acc;
  };

  // Each step samples `models_per_step` sub-models, trains each on one
  // batch (shared-weight updates), and applies one REINFORCE update.
  Result run(int steps, int batch_size, int models_per_step = 4);

 private:
  SupernetConfig cfg_;
  Rng rng_;
  std::unique_ptr<Supernet> supernet_;
  ArchPolicy policy_;
  SGD theta_opt_;
  Shard data_;
};

}  // namespace fms
