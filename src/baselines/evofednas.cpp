#include "src/baselines/evofednas.h"

#include <algorithm>

#include "src/tensor/ops.h"

namespace fms {

Genotype random_genotype(int nodes, Rng& rng) {
  Genotype g;
  g.nodes = nodes;
  auto fill = [&](std::vector<GenotypeEdge>& edges) {
    for (int node = 0; node < nodes; ++node) {
      const int num_inputs = 2 + node;
      int a = rng.randint(0, num_inputs - 1);
      int b = rng.randint(0, num_inputs - 1);
      if (num_inputs > 1) {
        while (b == a) b = rng.randint(0, num_inputs - 1);
      }
      if (a > b) std::swap(a, b);
      for (int input : {a, b}) {
        // Non-zero ops only (a zero edge would be a dead connection).
        const int op = rng.randint(1, kNumOps - 1);
        edges.push_back({input, static_cast<OpType>(op)});
      }
    }
  };
  fill(g.normal);
  fill(g.reduce);
  return g;
}

Genotype mutate_genotype(const Genotype& parent, Rng& rng) {
  Genotype child = parent;
  auto& edges = rng.bernoulli(0.5) ? child.normal : child.reduce;
  const int i = rng.randint(0, static_cast<int>(edges.size()) - 1);
  if (rng.bernoulli(0.5)) {
    edges[static_cast<std::size_t>(i)].op =
        static_cast<OpType>(rng.randint(1, kNumOps - 1));
  } else {
    const int node = i / 2;
    edges[static_cast<std::size_t>(i)].input = rng.randint(0, 1 + node);
  }
  return child;
}

EvoFedNasSearch::EvoFedNasSearch(const SupernetConfig& cfg,
                                 const Dataset& train,
                                 const std::vector<std::vector<int>>& partition,
                                 const SearchConfig& hyper, Options opts)
    : cfg_(cfg), hyper_(hyper), opts_(opts), rng_(hyper.seed ^ 0xe40) {
  cfg_.num_nodes = opts.nodes;
  for (const auto& p : partition) shards_.emplace_back(&train, p);
  for (int i = 0; i < opts_.population; ++i) {
    population_.push_back(make_individual(random_genotype(opts_.nodes, rng_)));
  }
}

EvoFedNasSearch::Individual EvoFedNasSearch::make_individual(
    const Genotype& g) {
  Individual ind;
  ind.genotype = g;
  Rng net_rng = rng_.fork();
  ind.net = std::make_unique<DiscreteNet>(g, cfg_, net_rng);
  ind.opt = std::make_unique<SGD>(
      SGD::Options{hyper_.theta.learning_rate, hyper_.theta.momentum,
                   hyper_.theta.weight_decay, hyper_.theta.gradient_clip});
  return ind;
}

EvoFedNasSearch::Result EvoFedNasSearch::run(int rounds, int batch_size) {
  Result result;
  const int k = static_cast<int>(shards_.size());
  double bytes_sum = 0.0;
  std::size_t dispatches = 0;
  for (int round = 0; round < rounds; ++round) {
    double acc_sum = 0.0;
    for (std::size_t i = 0; i < population_.size(); ++i) {
      Individual& ind = population_[i];
      // Whole candidate model travels to its participant each round.
      bytes_sum += static_cast<double>(ind.net->model_bytes());
      ++dispatches;
      Shard& shard =
          shards_[(i + static_cast<std::size_t>(round)) % static_cast<std::size_t>(k)];
      Dataset::Batch batch = shard.next_batch(batch_size, nullptr, rng_);
      ind.net->zero_grad();
      Tensor logits = ind.net->forward(batch.x, true);
      CrossEntropyResult ce = cross_entropy(logits, batch.y);
      ind.net->backward(ce.grad_logits);
      ind.opt->step(ind.net->params());
      // Fitness: running mean of observed training accuracy.
      ind.fitness = (ind.fitness * ind.evaluations + ce.accuracy) /
                    (ind.evaluations + 1);
      ++ind.evaluations;
      acc_sum += ce.accuracy;
    }
    result.round_train_acc.push_back(acc_sum /
                                     static_cast<double>(population_.size()));

    if ((round + 1) % opts_.evolve_every == 0) {
      std::sort(population_.begin(), population_.end(),
                [](const Individual& a, const Individual& b) {
                  return a.fitness > b.fitness;
                });
      const std::size_t half = population_.size() / 2;
      for (std::size_t i = half; i < population_.size(); ++i) {
        const Individual& parent = population_[i - half];
        population_[i] = make_individual(mutate_genotype(parent.genotype, rng_));
      }
    }
  }
  auto best = std::max_element(population_.begin(), population_.end(),
                               [](const Individual& a, const Individual& b) {
                                 return a.fitness < b.fitness;
                               });
  result.best = best->genotype;
  result.best_param_count = best->net->param_count();
  result.avg_model_bytes =
      dispatches == 0 ? 0.0 : bytes_sum / static_cast<double>(dispatches);
  return result;
}

}  // namespace fms
