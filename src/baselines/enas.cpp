#include "src/baselines/enas.h"

#include <numeric>

#include "src/tensor/ops.h"

namespace fms {

EnasSearch::EnasSearch(const SupernetConfig& cfg, const Dataset& train,
                       const SearchConfig& hyper)
    : cfg_(cfg),
      rng_(hyper.seed ^ 0xe9a5),
      policy_(Cell::num_edges(cfg.num_nodes), hyper.alpha),
      theta_opt_(SGD::Options{hyper.theta.learning_rate, hyper.theta.momentum,
                              hyper.theta.weight_decay,
                              hyper.theta.gradient_clip}) {
  Rng net_rng = rng_.fork();
  supernet_ = std::make_unique<Supernet>(cfg, net_rng);
  std::vector<int> idx(static_cast<std::size_t>(train.size()));
  std::iota(idx.begin(), idx.end(), 0);
  data_ = Shard(&train, idx);
}

EnasSearch::Result EnasSearch::run(int steps, int batch_size,
                                   int models_per_step) {
  Result result;
  for (int step = 0; step < steps; ++step) {
    supernet_->zero_grad();
    double acc_sum = 0.0;
    std::vector<std::pair<double, Mask>> sampled;
    for (int m = 0; m < models_per_step; ++m) {
      Mask mask = policy_.sample(rng_);
      Dataset::Batch batch = data_.next_batch(batch_size, nullptr, rng_);
      Tensor logits = supernet_->forward(batch.x, mask, true);
      CrossEntropyResult ce = cross_entropy(logits, batch.y);
      supernet_->backward(ce.grad_logits);
      acc_sum += ce.accuracy;
      sampled.emplace_back(ce.accuracy, std::move(mask));
    }
    const double mean_acc = acc_sum / models_per_step;
    result.step_train_acc.push_back(mean_acc);

    // Shared-weight update: average over the sampled sub-models.
    const float inv_m = 1.0F / static_cast<float>(models_per_step);
    for (Param* p : supernet_->params()) {
      for (float& g : p->grad.vec()) g *= inv_m;
    }
    theta_opt_.step(supernet_->params());

    // REINFORCE with the moving-average baseline.
    const double b = policy_.update_baseline(mean_acc);
    AlphaPair grad_j = AlphaPair::zeros(policy_.num_edges());
    for (const auto& [acc, mask] : sampled) {
      grad_j.add_scaled(policy_.log_prob_grad(mask),
                        static_cast<float>(acc - b) /
                            static_cast<float>(models_per_step));
    }
    policy_.apply_gradient(grad_j);
  }
  result.genotype = policy_.derive_genotype(cfg_.num_nodes);
  return result;
}

}  // namespace fms
