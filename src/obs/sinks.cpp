#include "src/obs/sinks.h"

#include <cmath>
#include <cstdio>

#include "src/common/check.h"
#include "src/obs/metrics.h"

namespace fms::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// JSON has no NaN/Inf literals; clamp to null-safe zero.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  // %.9g round-trips the values we care about and keeps integers clean.
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

JsonlTraceWriter::JsonlTraceWriter(const std::string& path) : out_(path) {
  FMS_CHECK_MSG(out_.good(), "cannot open trace file " << path);
}

void JsonlTraceWriter::write(const TraceEvent& event) {
  std::string line;
  line.reserve(96 + event.fields.size() * 24);
  line += "{\"type\":\"";
  line += json_escape(event.type);
  line += "\",\"name\":\"";
  line += json_escape(event.name);
  line += "\"";
  if (event.round >= 0) {
    line += ",\"round\":";
    append_number(line, event.round);
  }
  if (!event.label.empty()) {
    line += ",\"label\":\"";
    line += json_escape(event.label);
    line += "\"";
  }
  for (const auto& [key, value] : event.fields) {
    line += ",\"";
    line += json_escape(key);
    line += "\":";
    append_number(line, value);
  }
  line += "}\n";
  fms::MutexLock lock(mu_);
  out_ << line;
  ++events_;
}

void JsonlTraceWriter::flush() {
  fms::MutexLock lock(mu_);
  out_.flush();
}

std::size_t JsonlTraceWriter::events_written() const {
  fms::MutexLock lock(mu_);
  return events_;
}

ConsoleRoundSink::ConsoleRoundSink(int every_n, std::FILE* out)
    : every_(every_n > 0 ? every_n : 1), out_(out) {}

void ConsoleRoundSink::write(const TraceEvent& event) {
  if (event.type == "span" && event.name == "round") {
    // Smoothing factor 0.1: ~the last 10 rounds dominate, so the column
    // settles fast after warm-up yet absorbs per-round jitter.
    for (const auto& [key, value] : event.fields) {
      if (key == "dur_s" && value > 0.0) {
        ema_round_s_ =
            have_ema_ ? 0.1 * value + 0.9 * ema_round_s_ : value;
        have_ema_ = true;
      }
    }
    return;
  }
  if (event.type != "round" || event.round % every_ != 0) return;
  double reward = 0.0, moving = 0.0, arrived = 0.0, dropped = 0.0;
  for (const auto& [key, value] : event.fields) {
    if (key == "mean_reward") reward = value;
    else if (key == "moving_avg") moving = value;
    else if (key == "arrived") arrived = value;
    else if (key == "dropped") dropped = value;
  }
  if (have_ema_) {
    std::fprintf(out_,
                 "round %4d  acc %.3f (moving %.3f)  arrived %d dropped %d"
                 "  %.1f r/s  ema %.1f ms\n",
                 event.round, reward, moving, static_cast<int>(arrived),
                 static_cast<int>(dropped), 1.0 / ema_round_s_,
                 ema_round_s_ * 1e3);
  } else {
    // The round record lands before its enclosing span closes, so the
    // first printed line has no duration sample yet.
    std::fprintf(out_,
                 "round %4d  acc %.3f (moving %.3f)  arrived %d dropped %d\n",
                 event.round, reward, moving, static_cast<int>(arrived),
                 static_cast<int>(dropped));
  }
}

void ConsoleRoundSink::flush() { std::fflush(out_); }

void ConsoleRoundSink::write_summary(const MetricsRegistry& registry) {
  // Both the explicit finish() call and the owning search's destructor
  // reach here; the table is for humans, so print it once.
  if (summary_written_) return;
  summary_written_ = true;
  const std::vector<MetricSample> samples = registry.snapshot();
  bool header = false;
  for (const MetricSample& s : samples) {
    if (s.type != "histogram" || s.count == 0) continue;
    if (!header) {
      std::fprintf(out_, "%-32s %10s %12s %12s %12s %12s\n", "histogram",
                   "count", "mean", "p50", "p95", "p99");
      header = true;
    }
    std::fprintf(out_, "%-32s %10llu %12.6g %12.6g %12.6g %12.6g\n",
                 s.name.c_str(), static_cast<unsigned long long>(s.count),
                 s.value, s.p50, s.p95, s.p99);
  }
}

}  // namespace fms::obs
