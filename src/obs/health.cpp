#include "src/obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "src/common/check.h"
#include "src/core/search.h"
#include "src/obs/metrics.h"
#include "src/obs/sinks.h"
#include "src/obs/telemetry.h"

namespace fms::obs {
namespace {

// Detector slots, fixed order (reports and tests index by name, but the
// summary table prints in this order).
enum DetectorIdx : std::size_t {
  kEntropy = 0,
  kReward = 1,
  kStaleness = 2,
  kQuorum = 3,
  kScreening = 4,
  kAllocGrowth = 5,
  kChurn = 6,
  kNumDetectors = 7,
};

const char* kDetectorNames[kNumDetectors] = {
    "alpha_entropy", "reward",    "staleness",    "quorum",
    "screening",     "alloc_growth", "churn",
};

void push_window(std::vector<double>& w, double v, int window) {
  w.push_back(v);
  if (w.size() > static_cast<std::size_t>(window)) {
    w.erase(w.begin());
  }
}

double window_mean(const std::vector<double>& w) {
  if (w.empty()) return 0.0;
  return std::accumulate(w.begin(), w.end(), 0.0) /
         static_cast<double>(w.size());
}

double window_sum(const std::vector<double>& w) {
  return std::accumulate(w.begin(), w.end(), 0.0);
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kOk: return "OK";
    case HealthState::kWarn: return "WARN";
    case HealthState::kCrit: return "CRIT";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig cfg) : cfg_(cfg) {
  FMS_CHECK_MSG(cfg_.window > 0, "health window must be positive");
  status_.resize(kNumDetectors);
  const double warns[kNumDetectors] = {
      cfg_.entropy_warn,  cfg_.reward_drop_warn, cfg_.staleness_warn,
      cfg_.quorum_warn,   cfg_.screen_warn,      cfg_.alloc_warn_bytes_per_round,
      cfg_.churn_warn,
  };
  const double crits[kNumDetectors] = {
      cfg_.entropy_crit,  cfg_.reward_drop_crit, cfg_.staleness_crit,
      cfg_.quorum_crit,   cfg_.screen_crit,      cfg_.alloc_crit_bytes_per_round,
      cfg_.churn_crit,
  };
  for (std::size_t i = 0; i < kNumDetectors; ++i) {
    status_[i].name = kDetectorNames[i];
    status_[i].warn = warns[i];
    status_[i].crit = crits[i];
  }
}

void HealthMonitor::set_state(std::size_t idx, HealthState s, double value) {
  DetectorStatus& d = status_[idx];
  d.value = value;
  const HealthState prev = d.state;
  d.state = s;
  if (s >= HealthState::kWarn) {
    if (d.first_warn_round < 0) d.first_warn_round = rounds_;
    ++d.warn_rounds;
  }
  if (s == HealthState::kCrit) {
    if (d.first_crit_round < 0) d.first_crit_round = rounds_;
    ++d.crit_rounds;
    if (prev != HealthState::kCrit) {
      crit_transition_ = true;
      last_crit_.push_back(d.name);
    }
  }
}

HealthState HealthMonitor::observe(const RoundRecord& rec,
                                   const HealthSignal& sig) {
  crit_transition_ = false;
  last_crit_.clear();

  const int k = sig.participants > 0 ? sig.participants : 1;

  push_window(entropy_w_, rec.alpha_entropy, cfg_.window);
  push_window(moving_w_, rec.moving_avg, cfg_.window);
  push_window(tau_w_, rec.mean_tau, cfg_.window);
  const double erosion =
      rec.partial_quorum
          ? 1.0
          : static_cast<double>(rec.offline) / static_cast<double>(k);
  push_window(erosion_w_, erosion, cfg_.window);
  const double removed =
      static_cast<double>(rec.rejected + rec.agg_rejected);
  push_window(rejected_w_, removed, cfg_.window);
  push_window(processed_w_, static_cast<double>(rec.arrived) + removed,
              cfg_.window);
  push_window(winsorized_w_, static_cast<double>(rec.winsorized), cfg_.window);
  push_window(arrived_w_, static_cast<double>(rec.arrived), cfg_.window);
  if (sig.live_alloc_bytes >= 0) {
    push_window(live_bytes_w_, static_cast<double>(sig.live_alloc_bytes),
                cfg_.window);
  }
  if (sig.live >= 0) {
    push_window(churn_rate_w_,
                static_cast<double>(sig.joined + sig.left) /
                    static_cast<double>(k),
                cfg_.window);
    push_window(absent_frac_w_,
                1.0 - static_cast<double>(sig.live) / static_cast<double>(k),
                cfg_.window);
  }

  const bool armed = rounds_ >= cfg_.grace_rounds;

  // alpha-entropy collapse: a sharpened policy is the goal of the search,
  // but a window-mean below a fraction of a nat this early means every
  // edge is pinned and exploration is over.
  {
    const double v = window_mean(entropy_w_);
    HealthState s = HealthState::kOk;
    if (armed && v <= cfg_.entropy_crit) s = HealthState::kCrit;
    else if (armed && v <= cfg_.entropy_warn) s = HealthState::kWarn;
    set_state(kEntropy, s, v);
  }

  // reward stall / divergence. Non-finite anywhere in the reward chain is
  // CRIT immediately (no grace: NaN never self-heals); otherwise trip on
  // a sustained drop of the moving average below its best-so-far, or on a
  // winsorized fraction that says the robust channel is clamping a
  // significant share of arrivals.
  {
    HealthState s = HealthState::kOk;
    double v = 0.0;
    const bool nonfinite = !std::isfinite(rec.mean_reward) ||
                           !std::isfinite(rec.moving_avg) ||
                           !std::isfinite(rec.baseline);
    if (nonfinite) {
      s = HealthState::kCrit;
      v = 1.0;
    } else {
      const double moving = window_mean(moving_w_);
      if (!best_moving_set_ || moving > best_moving_) {
        best_moving_ = moving;
        best_moving_set_ = true;
      }
      const double drop = best_moving_ > 1e-9
                              ? (best_moving_ - moving) / best_moving_
                              : 0.0;
      const double arrived_sum = window_sum(arrived_w_);
      const double wfrac =
          arrived_sum > 0.0 ? window_sum(winsorized_w_) / arrived_sum : 0.0;
      v = std::max(drop, wfrac);
      if (armed) {
        if (drop >= cfg_.reward_drop_crit || wfrac >= cfg_.winsorized_crit) {
          s = HealthState::kCrit;
        } else if (drop >= cfg_.reward_drop_warn ||
                   wfrac >= cfg_.winsorized_warn) {
          s = HealthState::kWarn;
        }
      }
    }
    set_state(kReward, s, v);
  }

  // staleness inflation.
  {
    const double v = window_mean(tau_w_);
    HealthState s = HealthState::kOk;
    if (armed && v >= cfg_.staleness_crit) s = HealthState::kCrit;
    else if (armed && v >= cfg_.staleness_warn) s = HealthState::kWarn;
    set_state(kStaleness, s, v);
  }

  // quorum erosion.
  {
    const double v = window_mean(erosion_w_);
    HealthState s = HealthState::kOk;
    if (armed && v >= cfg_.quorum_crit) s = HealthState::kCrit;
    else if (armed && v >= cfg_.quorum_warn) s = HealthState::kWarn;
    set_state(kQuorum, s, v);
  }

  // screen-rejection spike.
  {
    const double processed = window_sum(processed_w_);
    const double v = processed > 0.0 ? window_sum(rejected_w_) / processed : 0.0;
    HealthState s = HealthState::kOk;
    if (armed && v >= cfg_.screen_crit) s = HealthState::kCrit;
    else if (armed && v >= cfg_.screen_warn) s = HealthState::kWarn;
    set_state(kScreening, s, v);
  }

  // allocation-ledger growth: only trips when the ledger grew every round
  // of a *full* window (monotone drift = leak; bursty growth = caches).
  {
    double v = 0.0;
    HealthState s = HealthState::kOk;
    if (live_bytes_w_.size() >= static_cast<std::size_t>(cfg_.window) &&
        cfg_.window >= 2) {
      bool monotone = true;
      for (std::size_t i = 1; i < live_bytes_w_.size(); ++i) {
        if (live_bytes_w_[i] <= live_bytes_w_[i - 1]) {
          monotone = false;
          break;
        }
      }
      if (monotone) {
        v = (live_bytes_w_.back() - live_bytes_w_.front()) /
            static_cast<double>(live_bytes_w_.size() - 1);
        if (armed && v >= cfg_.alloc_crit_bytes_per_round) {
          s = HealthState::kCrit;
        } else if (armed && v >= cfg_.alloc_warn_bytes_per_round) {
          s = HealthState::kWarn;
        }
      }
    }
    set_state(kAllocGrowth, s, v);
  }

  // churn-rate spike / live-population collapse: either a membership-
  // change storm (clients cycling in and out faster than the search can
  // absorb staleness) or a collapsed live population (a mass-leave has
  // taken a sustained bite out of the fleet). Idle until the round loop
  // reports membership.
  {
    double v = 0.0;
    HealthState s = HealthState::kOk;
    if (!churn_rate_w_.empty()) {
      v = std::max(window_mean(churn_rate_w_), window_mean(absent_frac_w_));
      if (armed && v >= cfg_.churn_crit) s = HealthState::kCrit;
      else if (armed && v >= cfg_.churn_warn) s = HealthState::kWarn;
    }
    set_state(kChurn, s, v);
  }

  HealthState round_worst = HealthState::kOk;
  for (const DetectorStatus& d : status_) {
    round_worst = std::max(round_worst, d.state);
  }
  worst_ = std::max(worst_, round_worst);
  ++rounds_;

  if (telemetry_enabled()) {
    MetricsRegistry& reg = Telemetry::instance().registry();
    reg.gauge("fms.health.state").set(static_cast<double>(round_worst));
    for (const DetectorStatus& d : status_) {
      reg.gauge("fms.health." + d.name).set(d.value);
      reg.gauge("fms.health." + d.name + ".state")
          .set(static_cast<double>(d.state));
    }
    if (round_worst >= HealthState::kWarn) {
      reg.counter("fms.health.warn_rounds").add(1);
    }
    if (round_worst == HealthState::kCrit) {
      reg.counter("fms.health.crit_rounds").add(1);
    }
  }
  return round_worst;
}

const DetectorStatus* HealthMonitor::find(const std::string& name) const {
  for (const DetectorStatus& d : status_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

std::string HealthMonitor::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"worst\": \"";
  out += health_state_name(worst_);
  out += "\",\n  \"rounds\": ";
  append_double(out, rounds_);
  out += ",\n  \"window\": ";
  append_double(out, cfg_.window);
  out += ",\n  \"grace_rounds\": ";
  append_double(out, cfg_.grace_rounds);
  out += ",\n  \"detectors\": [\n";
  for (std::size_t i = 0; i < status_.size(); ++i) {
    const DetectorStatus& d = status_[i];
    out += "    {\"name\": \"";
    out += json_escape(d.name);
    out += "\", \"state\": \"";
    out += health_state_name(d.state);
    out += "\", \"value\": ";
    append_double(out, d.value);
    out += ", \"warn\": ";
    append_double(out, d.warn);
    out += ", \"crit\": ";
    append_double(out, d.crit);
    out += ", \"first_warn_round\": ";
    append_double(out, d.first_warn_round);
    out += ", \"first_crit_round\": ";
    append_double(out, d.first_crit_round);
    out += ", \"warn_rounds\": ";
    append_double(out, d.warn_rounds);
    out += ", \"crit_rounds\": ";
    append_double(out, d.crit_rounds);
    out += "}";
    if (i + 1 < status_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void HealthMonitor::write_report(const std::string& path) const {
  std::ofstream out(path);
  FMS_CHECK_MSG(out.good(), "cannot open health report file " << path);
  out << to_json();
}

std::string HealthMonitor::summary_table() const {
  std::string out;
  out += "health: worst ";
  out += health_state_name(worst_);
  out += " over ";
  out += std::to_string(rounds_);
  out += " rounds\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-14s %-5s %12s %12s %12s %6s\n",
                "detector", "state", "value", "warn", "crit", "trips");
  out += line;
  for (const DetectorStatus& d : status_) {
    std::snprintf(line, sizeof(line),
                  "  %-14s %-5s %12.4g %12.4g %12.4g %6d\n", d.name.c_str(),
                  health_state_name(d.state), d.value, d.warn, d.crit,
                  d.warn_rounds);
    out += line;
  }
  return out;
}

}  // namespace fms::obs
