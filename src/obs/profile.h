// In-process scoped profiler: a tree of named zones with inclusive /
// exclusive CPU time, call counts, bytes-touched attribution, and the
// tensor-allocation ledger (src/obs/alloc.h) attributed per zone.
//
// FMS_PROFILE_ZONE("nn.conv_fwd") opens a zone for the enclosing scope;
// nesting builds a per-thread tree (zones entered on ThreadPool workers
// grow their own trees, merged deterministically at collection time).
// Time is per-thread CPU time (CLOCK_THREAD_CPUTIME_ID), so a zone's
// cost is what *it* burned, not what it waited on.
//
// When profiling is disabled the zone constructor reads one relaxed
// atomic and does nothing else — search results are bit-identical to an
// uninstrumented build (the profiler only ever observes; it never
// touches RNG streams, float accumulation order, or iteration order).
//
// Zone names must be string literals (or otherwise outlive the
// profiler): nodes store the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fms::obs {

namespace detail {
inline std::atomic<bool>& profiling_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

// Out-of-line slow paths (profile.cpp); called only when profiling is on.
void zone_enter(const char* name);
void zone_exit();
void zone_add_bytes(std::uint64_t bytes);
}  // namespace detail

inline bool profiling_enabled() {
  return detail::profiling_flag().load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on);

// Zeroes every zone's counters (tree structure and any active zone stack
// are preserved, so it is safe to call between benchmark repetitions even
// if an outer zone is open; the open zones restart their clocks).
void reset_profiler();

// One merged zone across all threads, identified by its path from the
// root ("round/aggregate/agg.estimate").
struct ZoneStats {
  std::string path;
  std::string name;  // last path segment
  int depth = 0;     // 0 for top-level zones
  std::uint64_t calls = 0;
  std::uint64_t incl_ns = 0;  // CPU ns inside the zone, children included
  std::uint64_t excl_ns = 0;  // incl_ns minus child zones' inclusive time
  std::uint64_t bytes = 0;    // bytes-touched, via FMS_PROFILE_BYTES
  std::uint64_t alloc_bytes = 0;  // tensor bytes allocated inside the zone
  std::uint64_t allocs = 0;       // tensor allocations inside the zone
};

struct ProfileReport {
  // Depth-first over the merged tree, children in lexicographic name
  // order — deterministic regardless of thread scheduling.
  std::vector<ZoneStats> zones;
};

// Merges every thread's tree into one deterministic report. Open zones
// contribute their finished calls only.
ProfileReport collect_profile();

// Human-readable table sorted by exclusive (self) time, one row per
// zone, for fms_search_cli --profile and fms_bench --profile.
std::string self_time_table(const ProfileReport& report,
                            std::size_t max_rows = 40);

// Emits the report into the active Telemetry context: one "profile"
// trace event per zone, fms.prof.<path>.* gauges, the fms.alloc.*
// ledger, and the fms.rss.peak_bytes gauge. No-op when telemetry is
// disabled.
void emit_profile_telemetry(const ProfileReport& report);

// Process peak resident set size in bytes (0 when unavailable).
std::int64_t peak_rss_bytes();

// RAII zone handle. `name` must outlive the profiler (string literal).
class ScopedZone {
 public:
  explicit ScopedZone(const char* name) : active_(profiling_enabled()) {
    if (active_) detail::zone_enter(name);
  }

  ScopedZone(const ScopedZone&) = delete;
  ScopedZone& operator=(const ScopedZone&) = delete;

  ~ScopedZone() {
    if (active_) detail::zone_exit();
  }

 private:
  bool active_;
};

// Attributes `bytes` of touched data (payload moved, coordinates
// scanned) to the innermost open zone on this thread.
inline void profile_add_bytes(std::uint64_t bytes) {
  if (profiling_enabled()) detail::zone_add_bytes(bytes);
}

}  // namespace fms::obs

#define FMS_PROFILE_CONCAT_INNER(a, b) a##b
#define FMS_PROFILE_CONCAT(a, b) FMS_PROFILE_CONCAT_INNER(a, b)
#define FMS_PROFILE_ZONE(name)                                     \
  ::fms::obs::ScopedZone FMS_PROFILE_CONCAT(fms_scoped_zone_,      \
                                            __LINE__)(name)
#define FMS_PROFILE_BYTES(n) \
  ::fms::obs::profile_add_bytes(static_cast<std::uint64_t>(n))
