#include "src/obs/flight.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <exception>

#include "src/common/check.h"
#include "src/obs/sinks.h"
#include "src/obs/telemetry.h"

namespace fms::obs {
namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

std::string event_json(const LifecycleEvent& ev) {
  std::string line;
  line.reserve(160);
  line += "{\"type\":\"flight\",\"stage\":\"";
  line += stage_name(ev.stage);
  line += "\",\"round\":";
  append_number(line, ev.round);
  line += ",\"origin_round\":";
  append_number(line, ev.origin_round);
  line += ",\"participant\":";
  append_number(line, ev.participant);
  line += ",\"ts_s\":";
  append_number(line, ev.ts_s);
  line += ",\"dur_s\":";
  append_number(line, ev.dur_s);
  line += ",\"value\":";
  append_number(line, ev.value);
  if (!ev.detail.empty()) {
    line += ",\"detail\":\"";
    line += json_escape(ev.detail);
    line += "\"";
  }
  char idbuf[24];
  std::snprintf(idbuf, sizeof(idbuf), "0x%016llx",
                static_cast<unsigned long long>(ev.trace_id));
  line += ",\"trace_id\":\"";
  line += idbuf;
  std::snprintf(idbuf, sizeof(idbuf), "0x%016llx",
                static_cast<unsigned long long>(ev.span_id));
  line += "\",\"span_id\":\"";
  line += idbuf;
  line += "\"}\n";
  return line;
}

}  // namespace

FlightRecorder::FlightRecorder(int capacity_per_participant)
    : capacity_(capacity_per_participant) {
  FMS_CHECK_MSG(capacity_ > 0, "flight recorder capacity must be positive");
}

void FlightRecorder::record(const LifecycleEvent& ev) {
  fms::MutexLock lock(mu_);
  Ring& ring = rings_[ev.participant];
  if (ring.slots.empty()) {
    ring.slots.resize(static_cast<std::size_t>(capacity_));
  }
  ring.slots[ring.next] = ev;
  ring.next = (ring.next + 1) % ring.slots.size();
  if (ring.count < ring.slots.size()) ++ring.count;
}

void FlightRecorder::dump(const std::string& path,
                          const std::string& reason) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return;  // postmortem best effort: never throw here
  dump_stream(out, reason);
  std::fclose(out);
}

void FlightRecorder::dump_stream(std::FILE* out,
                                 const std::string& reason) const {
  fms::MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& [p, ring] : rings_) {
    (void)p;
    total += ring.count;
  }
  std::string header;
  header += "{\"type\":\"flight_header\",\"reason\":\"";
  header += json_escape(reason);
  header += "\",\"capacity\":";
  append_number(header, capacity_);
  header += ",\"events\":";
  append_number(header, static_cast<double>(total));
  header += "}\n";
  std::fputs(header.c_str(), out);
  for (const auto& [p, ring] : rings_) {
    (void)p;
    const std::size_t n = ring.slots.size();
    for (std::size_t i = 0; i < ring.count; ++i) {
      // Oldest first: when full, the insertion cursor is the oldest slot.
      const std::size_t idx =
          ring.count < n ? i : (ring.next + i) % n;
      std::fputs(event_json(ring.slots[idx]).c_str(), out);
    }
  }
  std::fflush(out);
  ++dumps_;
}

std::size_t FlightRecorder::num_dumps() const {
  fms::MutexLock lock(mu_);
  return dumps_;
}

std::vector<LifecycleEvent> FlightRecorder::events_for(int participant) const {
  fms::MutexLock lock(mu_);
  std::vector<LifecycleEvent> out;
  const auto it = rings_.find(participant);
  if (it == rings_.end()) return out;
  const Ring& ring = it->second;
  const std::size_t n = ring.slots.size();
  out.reserve(ring.count);
  for (std::size_t i = 0; i < ring.count; ++i) {
    const std::size_t idx = ring.count < n ? i : (ring.next + i) % n;
    out.push_back(ring.slots[idx]);
  }
  return out;
}

namespace {

std::terminate_handler g_previous_terminate = nullptr;

// The terminate path must not allocate exotically or throw: dump what we
// can, flush what we can, then chain to the previous handler (abort).
[[noreturn]] void fms_terminate_handler() {
  std::fputs("fms: terminating — dumping flight recorder and flushing "
             "telemetry sinks\n",
             stderr);
  TraceContext::instance().dump_flight("crash");
  Telemetry::instance().flush();
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

void fms_atexit_flush() {
  // Scope-exit flush: sinks buffered in ofstreams would otherwise lose
  // their tail on exit paths that bypass Telemetry::finish().
  Telemetry::instance().flush();
}

}  // namespace

void install_crash_handlers() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  g_previous_terminate = std::set_terminate(fms_terminate_handler);
  std::atexit(fms_atexit_flush);
}

}  // namespace fms::obs
