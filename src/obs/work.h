// Per-op compute work ledger: exact FLOPs, bytes moved, and element
// counts for every hot-path operator, recorded alongside the profiler's
// time attribution so "where did the nanoseconds go" and "how much math
// was that" line up call-for-call.
//
// The ledger is *deterministic by construction*: costs are pure
// functions of operand shapes (never data content), recorded as integer
// counters, and merged across threads by op name — so two runs of the
// same seeded search produce identical ledgers, and a run with the
// ledger enabled is bit-identical to one without (the ledger only
// observes; it never touches RNG streams or float accumulation order).
//
// Conventions (the contract pinned by tests and DESIGN §6.3):
//   - FLOP: every floating add/sub/mul/div/sqrt/max/compare-select
//     counts 1. Costs are the dense algorithmic work implied by the
//     operand shapes.
//   - bytes_read / bytes_written: 4 bytes per float element, each
//     distinct operand array counted ONCE per invocation (compulsory
//     traffic, not cache-level traffic); read-modify-write arrays count
//     on both sides.
//   - elements: output element count (payload bytes for codecs).
//
// Op names must be string literals (or otherwise outlive the ledger):
// rows store the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fms::obs {

// One invocation's cost. Additive: recording twice doubles everything.
struct OpCost {
  std::uint64_t flops = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t elements = 0;
};

namespace detail {
inline std::atomic<bool>& work_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

// Out-of-line slow path (work.cpp); called only when the ledger is on.
void work_record_slow(const char* op, const OpCost& cost);
}  // namespace detail

inline bool work_tracking_enabled() {
  return detail::work_flag().load(std::memory_order_relaxed);
}

void set_work_tracking_enabled(bool on);

// Zeroes every op's counters on every thread.
void reset_work_ledger();

// One merged row across all threads.
struct WorkRow {
  std::string op;
  std::uint64_t calls = 0;
  OpCost cost;
};

struct WorkReport {
  // Rows in lexicographic op-name order — deterministic regardless of
  // thread scheduling (per-op sums are commutative).
  std::vector<WorkRow> rows;
  std::uint64_t total_calls = 0;
  OpCost total;
};

// Merges every thread's ledger into one deterministic report.
WorkReport collect_work();

// FLOPs per byte moved (read + written); 0 when no bytes moved.
double arithmetic_intensity(const OpCost& cost);

// Human-readable table sorted by FLOPs desc (op name tie-break), for
// fms_search_cli --report and fms_bench.
std::string work_table(const WorkReport& report, std::size_t max_rows = 40);

// Emits the report into the active Telemetry context: one "work" trace
// event per op plus fms.work.<op>.{flops,bytes_read,bytes_written,
// elements,calls} gauges. No-op when telemetry is disabled.
void emit_work_telemetry(const WorkReport& report);

// -----------------------------------------------------------------------
// Cost models: pure shape->cost functions, shared by the recording sites
// and the tests that pin them. All dims are element counts.

// Dense conv2d, groups=g: out = n*cout*ho*wo, macs = out*(cin/g)*kh*kw.
OpCost conv2d_fwd_cost(std::size_t n, std::size_t cin, std::size_t h,
                       std::size_t w, std::size_t cout, std::size_t kh,
                       std::size_t kw, std::size_t ho, std::size_t wo,
                       std::size_t groups);
OpCost conv2d_bwd_cost(std::size_t n, std::size_t cin, std::size_t h,
                       std::size_t w, std::size_t cout, std::size_t kh,
                       std::size_t kw, std::size_t ho, std::size_t wo,
                       std::size_t groups);

// BatchNorm2d over [n, c, h, w].
OpCost batchnorm_fwd_cost(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w, bool train);
OpCost batchnorm_bwd_cost(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w);

OpCost relu_fwd_cost(std::size_t numel);
OpCost relu_bwd_cost(std::size_t numel);

// Pooling over [n, c, h, w] -> out output elements, k x k window.
OpCost maxpool_fwd_cost(std::size_t numel_in, std::size_t out, std::size_t k);
OpCost maxpool_bwd_cost(std::size_t numel_in, std::size_t out);
OpCost avgpool_fwd_cost(std::size_t numel_in, std::size_t out, std::size_t k);
OpCost avgpool_bwd_cost(std::size_t numel_in, std::size_t out, std::size_t k);
OpCost global_avgpool_fwd_cost(std::size_t n, std::size_t c, std::size_t h,
                               std::size_t w);
OpCost global_avgpool_bwd_cost(std::size_t n, std::size_t c, std::size_t h,
                               std::size_t w);

// C[m,n] = A[m,k] * B[k,n] (any transpose flavor — same algebra).
OpCost matmul_cost(std::size_t m, std::size_t k, std::size_t n);

// Linear y[n_batch, out] = x[n_batch, in] * W^T + b.
OpCost linear_fwd_cost(std::size_t n_batch, std::size_t in, std::size_t out);
OpCost linear_bwd_cost(std::size_t n_batch, std::size_t in, std::size_t out);

// y += x over numel elements (y is read-modify-write).
OpCost axpy_cost(std::size_t numel);

// Aggregation estimators over m updates of dimension d. Costs are the
// dense shape-based work (presence masks ignored — the point is a
// stable, comparable number per estimator call).
OpCost agg_mean_cost(std::size_t m, std::size_t d);
OpCost agg_clipped_mean_cost(std::size_t m, std::size_t d);
OpCost agg_coordinate_median_cost(std::size_t m, std::size_t d);
OpCost agg_trimmed_mean_cost(std::size_t m, std::size_t d);
OpCost agg_krum_cost(std::size_t m, std::size_t d);

// Delay compensation: out[i] = h + lambda*h*h*(fresh[i] - stale[i]).
OpCost dc_compensate_cost(std::size_t dim);

// Message encode/decode: pure data movement, flops = 0.
OpCost codec_cost(std::size_t payload_bytes);

// Transmission scheduling over k links: bytes_written is the simulated
// wire traffic (the sum of scheduled model bytes), elements = k links.
OpCost net_transmission_cost(std::size_t k, std::uint64_t wire_bytes);

// ceil(log2(n)) for n >= 1; the sort-cost exponent in the agg models.
std::size_t ceil_log2(std::size_t n);

}  // namespace fms::obs

// Records `cost` under `op` when the ledger is enabled. The cost
// expression is evaluated only when tracking is on, so recording sites
// are free in the disabled (default) state.
#define FMS_WORK(op, cost)                                   \
  do {                                                       \
    if (::fms::obs::work_tracking_enabled()) {               \
      ::fms::obs::detail::work_record_slow((op), (cost));    \
    }                                                        \
  } while (false)
