#include "src/obs/roofline.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/obs/telemetry.h"

namespace fms::obs {
namespace {

// Sink the result of a kernel so the optimizer cannot delete the loop.
volatile float g_sink = 0.0F;

// Peak scalar rate: four independent dependent-multiply-add chains. The
// serial dependence within each chain defeats vectorization; four chains
// keep the FMA pipes busy without becoming a SIMD candidate.
// fms-lint: allow(wall-clock) -- calibration measures the host machine
double measure_scalar_gflops() {
  const int iters = 2'000'000;
  float x0 = 1.0F, x1 = 1.1F, x2 = 1.2F, x3 = 1.3F;
  const float a = 0.999999F, b = 1e-7F;
  const Stopwatch sw;
  for (int i = 0; i < iters; ++i) {
    x0 = x0 * a + b;
    x1 = x1 * a + b;
    x2 = x2 * a + b;
    x3 = x3 * a + b;
  }
  const double secs = sw.elapsed_seconds();
  g_sink = x0 + x1 + x2 + x3;
  const double flops = 2.0 * 4.0 * static_cast<double>(iters);
  return secs > 0.0 ? flops / secs / 1e9 : 0.0;
}

// Peak vector rate: an a[i] = a[i]*s + b[i] sweep over an L1/L2-resident
// array — the compiler auto-vectorizes it, so this approximates SIMD FMA
// throughput at cache bandwidth.
double measure_vector_gflops() {
  const std::size_t n = 16 * 1024;
  const int sweeps = 2'000;
  std::vector<float> a(n, 1.0F), b(n, 1e-7F);
  const float s = 0.999999F;
  const Stopwatch sw;
  for (int it = 0; it < sweeps; ++it) {
    float* pa = a.data();
    const float* pb = b.data();
    for (std::size_t i = 0; i < n; ++i) pa[i] = pa[i] * s + pb[i];
  }
  const double secs = sw.elapsed_seconds();
  g_sink = a[0] + a[n / 2];
  const double flops = 2.0 * static_cast<double>(n) * sweeps;
  return secs > 0.0 ? flops / secs / 1e9 : 0.0;
}

// Streaming bandwidth: the classic triad a[i] = b[i] + s*c[i] over
// arrays far larger than LLC; 3 arrays x 4 bytes move per element.
double measure_stream_gbps() {
  const std::size_t n = 8 * 1024 * 1024;
  const int sweeps = 3;
  std::vector<float> a(n, 0.0F), b(n, 1.0F), c(n, 2.0F);
  const float s = 3.0F;
  const Stopwatch sw;
  for (int it = 0; it < sweeps; ++it) {
    float* pa = a.data();
    const float* pb = b.data();
    const float* pc = c.data();
    for (std::size_t i = 0; i < n; ++i) pa[i] = pb[i] + s * pc[i];
  }
  const double secs = sw.elapsed_seconds();
  g_sink = a[0] + a[n - 1];
  const double bytes = 3.0 * 4.0 * static_cast<double>(n) * sweeps;
  return secs > 0.0 ? bytes / secs / 1e9 : 0.0;
}

template <typename F>
double best_of(int reps, F measure) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) best = std::max(best, measure());
  return best;
}

// Minimal scan for `"key": <number>` inside a flat JSON object.
bool scan_number(const std::string& json, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < json.size() &&
         (json[pos] == ' ' || json[pos] == '\t' || json[pos] == '\n')) {
    ++pos;
  }
  char* end = nullptr;
  const double v = std::strtod(json.c_str() + pos, &end);
  if (end == json.c_str() + pos) return false;
  *out = v;
  return true;
}

}  // namespace

MachinePeak calibrate_machine_peak() {
  MachinePeak peak;
  const Stopwatch sw;  // fms-lint: allow(wall-clock) -- calibration timing
  peak.scalar_gflops = best_of(3, measure_scalar_gflops);
  peak.vector_gflops = best_of(3, measure_vector_gflops);
  peak.stream_gbps = best_of(3, measure_stream_gbps);
  // A machine can't stream math slower than it computes serially; keep
  // the ordering sane even under noisy schedulers.
  peak.vector_gflops = std::max(peak.vector_gflops, peak.scalar_gflops);
  peak.calibrated_ms = sw.elapsed_seconds() * 1e3;
  return peak;
}

std::string peak_to_json(const MachinePeak& peak) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\": 1, \"scalar_gflops\": %.17g, "
                "\"vector_gflops\": %.17g, \"stream_gbps\": %.17g, "
                "\"calibrated_ms\": %.17g}\n",
                peak.scalar_gflops, peak.vector_gflops, peak.stream_gbps,
                peak.calibrated_ms);
  return buf;
}

bool parse_machine_peak(const std::string& json, MachinePeak* out) {
  MachinePeak peak;
  double schema = 0.0;
  if (!scan_number(json, "schema", &schema) || schema != 1.0) return false;  // fms-lint: allow(float-eq) -- schema tag is an exact integer
  if (!scan_number(json, "scalar_gflops", &peak.scalar_gflops)) return false;
  if (!scan_number(json, "vector_gflops", &peak.vector_gflops)) return false;
  if (!scan_number(json, "stream_gbps", &peak.stream_gbps)) return false;
  scan_number(json, "calibrated_ms", &peak.calibrated_ms);  // optional
  if (!peak.valid()) return false;
  *out = peak;
  return true;
}

MachinePeak load_or_calibrate(const std::string& path) {
  if (!path.empty()) {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      MachinePeak peak;
      if (parse_machine_peak(ss.str(), &peak)) return peak;
    }
  }
  const MachinePeak peak = calibrate_machine_peak();
  if (!path.empty()) {
    std::ofstream out(path);  // best effort: calibration stands either way
    if (out) out << peak_to_json(peak);
  }
  return peak;
}

double roofline_gflops(const MachinePeak& peak, double ai) {
  if (!peak.valid() || ai <= 0.0) return 0.0;
  return std::min(peak.vector_gflops, ai * peak.stream_gbps);
}

void emit_roofline_telemetry(const MachinePeak& peak) {
  if (!telemetry_enabled()) return;
  MetricsRegistry& registry = Telemetry::instance().registry();
  registry.gauge("fms.roofline.scalar_gflops").set(peak.scalar_gflops);
  registry.gauge("fms.roofline.vector_gflops").set(peak.vector_gflops);
  registry.gauge("fms.roofline.stream_gbps").set(peak.stream_gbps);
}

}  // namespace fms::obs
