// RAII scoped-span timers: FMS_SPAN("phase") measures the enclosing scope
// and records it twice — into the `span.<phase>` histogram (p50/p95/p99
// per phase across the run) and, when a trace sink is attached, as a JSONL
// span event tagged with the current round.
//
// When telemetry is disabled the constructor reads one relaxed atomic and
// skips the clock entirely, so instrumented hot paths cost nothing
// measurable (acceptance: bench_table5_searchtime within noise of seed).
#pragma once

#include <chrono>
#include <string>

#include "src/obs/profile.h"
#include "src/obs/telemetry.h"

namespace fms::obs {

class ScopedSpan {
 public:
  // The embedded ScopedZone mirrors every span into the profiler tree
  // (round -> sample/transmit/.../aggregate), so the --profile self-time
  // table shows the same phase skeleton the span histograms use. It
  // checks its own enable flag: spans and profiling toggle separately.
  explicit ScopedSpan(const char* phase)
      : phase_(phase), zone_(phase), active_(telemetry_enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!active_) return;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    Telemetry& telemetry = Telemetry::instance();
    telemetry.registry()
        .histogram(std::string("span.") + phase_, default_span_buckets())
        .observe(seconds);
    TraceEvent event;
    event.type = "span";
    event.name = phase_;
    event.round = telemetry.round();
    event.fields.emplace_back("dur_s", seconds);
    telemetry.emit(std::move(event));
  }

 private:
  const char* phase_;
  ScopedZone zone_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fms::obs

#define FMS_SPAN_CONCAT_INNER(a, b) a##b
#define FMS_SPAN_CONCAT(a, b) FMS_SPAN_CONCAT_INNER(a, b)
#define FMS_SPAN(phase) \
  ::fms::obs::ScopedSpan FMS_SPAN_CONCAT(fms_scoped_span_, __LINE__)(phase)
