// Machine-peak calibration for roofline analysis: a one-shot micro-bench
// measuring peak scalar FLOP rate, peak vectorized FLOP rate, and
// streaming memory bandwidth, cached to a JSON sidecar so repeated
// `fms_bench` / `--report` runs pay the ~tens-of-milliseconds cost once
// per machine.
//
// The numbers are *measurements of the host*, never inputs to the
// search: calibration touches no RNG stream and no search state, so
// trajectories stay bit-identical whether or not a peak file exists.
#pragma once

#include <string>

#include "src/obs/work.h"

namespace fms::obs {

struct MachinePeak {
  double scalar_gflops = 0.0;  // dependent-chain FMA throughput
  double vector_gflops = 0.0;  // cache-resident vectorizable sweep
  double stream_gbps = 0.0;    // triad bandwidth, GB/s
  double calibrated_ms = 0.0;  // how long calibration took

  bool valid() const {
    return scalar_gflops > 0.0 && vector_gflops > 0.0 && stream_gbps > 0.0;
  }
};

// Runs the micro-bench (best-of-3 per component, ~10-50 ms total).
MachinePeak calibrate_machine_peak();

// JSON sidecar round-trip. %.17g formatting, so parse(to_json(p)) == p.
std::string peak_to_json(const MachinePeak& peak);
bool parse_machine_peak(const std::string& json, MachinePeak* out);

// Reads `path` if it holds a valid peak file; otherwise calibrates and
// best-effort writes the result there (failure to write is not fatal —
// the calibration is still returned).
MachinePeak load_or_calibrate(const std::string& path);

// Attainable GFLOP/s at arithmetic intensity `ai` (FLOPs/byte) under the
// classic roofline: min(peak compute, ai * peak bandwidth).
double roofline_gflops(const MachinePeak& peak, double ai);

// Sets the fms.roofline.scalar_gflops / fms.roofline.vector_gflops /
// fms.roofline.stream_gbps gauges. No-op when telemetry is disabled.
void emit_roofline_telemetry(const MachinePeak& peak);

}  // namespace fms::obs
