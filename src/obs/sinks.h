// Structured telemetry sinks.
//
// Producers (spans, the search loop, benches) describe what happened as a
// TraceEvent; sinks decide where it goes. Two structured formats:
//   * JSONL — one self-contained JSON object per line, one line per event,
//     for offline analysis of round/phase timing traces;
//   * console — the per-round progress one-liner the examples print.
// Metrics snapshots go to CSV via MetricsRegistry::write_csv.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"

namespace fms::obs {

class MetricsRegistry;  // src/obs/metrics.h

// One observable occurrence: a finished span, a completed round, or a
// run-level annotation. Numeric payload only — everything the paper's
// curves need is a number.
struct TraceEvent {
  std::string type;   // "span" | "round" | "meta"
  std::string name;   // span phase (e.g. "local_train") or event name
  int round = -1;     // -1 when not tied to a round
  std::string label;  // run/variant label (stamped by Telemetry if empty)
  std::vector<std::pair<std::string, double>> fields;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void flush() {}
  // End-of-run hook, handed the final metrics snapshot by
  // Telemetry::finish(). File sinks ignore it (the CSV snapshot already
  // carries the registry); the console sink prints its quantile table.
  virtual void write_summary(const MetricsRegistry& registry) { (void)registry; }
};

// One JSON object per event, one event per line:
//   {"type":"span","name":"local_train","round":12,"dur_s":0.0031}
// Writes are mutex-serialized so ThreadPool workers can emit concurrently.
class JsonlTraceWriter : public TraceSink {
 public:
  explicit JsonlTraceWriter(const std::string& path);

  void write(const TraceEvent& event) override;
  void flush() override;

  std::size_t events_written() const;

 private:
  mutable fms::Mutex mu_;
  std::ofstream out_ FMS_GUARDED_BY(mu_);
  std::size_t events_ FMS_GUARDED_BY(mu_) = 0;
};

// Per-round progress one-liner (the examples' former on_round lambdas):
//   round  25  acc 0.412 (moving 0.398)  arrived 10 dropped 0  3.1 r/s  ema 322.6 ms
// Throughput columns come from the "round" span the search loop already
// emits: the sink keeps an exponential moving average of round wall time
// and prints it (plus its reciprocal, rounds/sec) once a sample exists.
class ConsoleRoundSink : public TraceSink {
 public:
  explicit ConsoleRoundSink(int every_n = 25, std::FILE* out = stdout);

  void write(const TraceEvent& event) override;
  void flush() override;
  // End-of-run latency table: one row per histogram with count, mean and
  // the interpolated p50/p95/p99 the quantile buckets already track.
  void write_summary(const MetricsRegistry& registry) override;

 private:
  int every_;
  std::FILE* out_;
  double ema_round_s_ = 0.0;  // EMA of "round" span durations
  bool have_ema_ = false;
  bool summary_written_ = false;  // finish() may run twice (caller + dtor)
};

// Escapes a string for embedding in a JSON literal (quotes, backslashes,
// control characters).
std::string json_escape(const std::string& s);

}  // namespace fms::obs
