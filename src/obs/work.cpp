#include "src/obs/work.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <utility>

#include "src/common/thread_annotations.h"
#include "src/obs/telemetry.h"

namespace fms::obs {
namespace {

struct Slot {
  const char* op = nullptr;
  std::uint64_t calls = 0;
  OpCost cost;
};

// One flat ledger per thread. The mutex is uncontended on the hot path
// (only the owning thread records); collect/reset from another thread
// take it briefly. Mirrors the profiler's ThreadProfile exactly.
struct ThreadLedger {
  fms::Mutex mu;
  std::vector<Slot> slots FMS_GUARDED_BY(mu);
};

struct LedgerRegistry {
  fms::Mutex mu;
  // Owned here, never erased: a worker thread may exit while its data is
  // still wanted for the round report.
  std::vector<std::unique_ptr<ThreadLedger>> ledgers FMS_GUARDED_BY(mu);
};

LedgerRegistry& ledger_registry() {
  static LedgerRegistry* reg = new LedgerRegistry();  // leaked: outlives
                                                      // worker threads
  return *reg;
}

ThreadLedger& thread_ledger() {
  thread_local ThreadLedger* tl = [] {
    auto owned = std::make_unique<ThreadLedger>();
    ThreadLedger* raw = owned.get();
    LedgerRegistry& reg = ledger_registry();
    const fms::MutexLock lock(reg.mu);
    reg.ledgers.push_back(std::move(owned));
    return raw;
  }();
  return *tl;
}

// Slot lookup by op pointer first (string literals are usually merged per
// call site), strcmp as the fallback; insertion-ordered — determinism
// comes from the name-keyed merge at collection.
Slot& find_slot(ThreadLedger& tl, const char* op) FMS_REQUIRES(tl.mu) {
  for (Slot& slot : tl.slots) {
    if (slot.op == op || std::strcmp(slot.op, op) == 0) return slot;
  }
  Slot slot;
  slot.op = op;
  tl.slots.push_back(slot);
  return tl.slots.back();
}

}  // namespace

namespace detail {

void work_record_slow(const char* op, const OpCost& cost) {
  ThreadLedger& tl = thread_ledger();
  const fms::MutexLock lock(tl.mu);
  Slot& slot = find_slot(tl, op);
  slot.calls += 1;
  slot.cost.flops += cost.flops;
  slot.cost.bytes_read += cost.bytes_read;
  slot.cost.bytes_written += cost.bytes_written;
  slot.cost.elements += cost.elements;
}

}  // namespace detail

void set_work_tracking_enabled(bool on) {
  detail::work_flag().store(on, std::memory_order_relaxed);
}

void reset_work_ledger() {
  LedgerRegistry& reg = ledger_registry();
  const fms::MutexLock reg_lock(reg.mu);
  for (auto& tl : reg.ledgers) {
    const fms::MutexLock lock(tl->mu);
    for (Slot& slot : tl->slots) {
      slot.calls = 0;
      slot.cost = OpCost{};
    }
  }
}

WorkReport collect_work() {
  // Per-op sums are commutative, so a name-keyed map makes the merge
  // independent of thread registration order.
  std::map<std::string, WorkRow> merged;
  {
    LedgerRegistry& reg = ledger_registry();
    const fms::MutexLock reg_lock(reg.mu);
    for (auto& tl : reg.ledgers) {
      const fms::MutexLock lock(tl->mu);
      for (const Slot& slot : tl->slots) {
        if (slot.calls == 0) continue;  // reset husk
        WorkRow& row = merged[slot.op];
        row.op = slot.op;
        row.calls += slot.calls;
        row.cost.flops += slot.cost.flops;
        row.cost.bytes_read += slot.cost.bytes_read;
        row.cost.bytes_written += slot.cost.bytes_written;
        row.cost.elements += slot.cost.elements;
      }
    }
  }
  WorkReport report;
  report.rows.reserve(merged.size());
  for (auto& [op, row] : merged) {
    report.total_calls += row.calls;
    report.total.flops += row.cost.flops;
    report.total.bytes_read += row.cost.bytes_read;
    report.total.bytes_written += row.cost.bytes_written;
    report.total.elements += row.cost.elements;
    report.rows.push_back(std::move(row));
  }
  return report;
}

double arithmetic_intensity(const OpCost& cost) {
  const std::uint64_t bytes = cost.bytes_read + cost.bytes_written;
  if (bytes == 0) return 0.0;
  return static_cast<double>(cost.flops) / static_cast<double>(bytes);
}

std::string work_table(const WorkReport& report, std::size_t max_rows) {
  std::vector<const WorkRow*> rows;
  rows.reserve(report.rows.size());
  for (const WorkRow& row : report.rows) rows.push_back(&row);
  std::sort(rows.begin(), rows.end(), [](const WorkRow* a, const WorkRow* b) {
    if (a->cost.flops != b->cost.flops) return a->cost.flops > b->cost.flops;
    return a->op < b->op;  // deterministic tie-break
  });
  if (rows.size() > max_rows) rows.resize(max_rows);

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%14s %10s %12s %12s %6s  %s\n",
                "mflops", "calls", "read_kb", "write_kb", "ai", "op");
  out += line;
  for (const WorkRow* row : rows) {
    std::snprintf(line, sizeof(line),
                  "%14.3f %10llu %12.1f %12.1f %6.2f  %s\n",
                  static_cast<double>(row->cost.flops) / 1e6,
                  static_cast<unsigned long long>(row->calls),
                  static_cast<double>(row->cost.bytes_read) / 1024.0,
                  static_cast<double>(row->cost.bytes_written) / 1024.0,
                  arithmetic_intensity(row->cost), row->op.c_str());
    out += line;
  }
  return out;
}

void emit_work_telemetry(const WorkReport& report) {
  if (!telemetry_enabled()) return;
  Telemetry& telemetry = Telemetry::instance();
  MetricsRegistry& registry = telemetry.registry();
  for (const WorkRow& row : report.rows) {
    TraceEvent event;
    event.type = "work";
    event.name = row.op;
    event.round = telemetry.round();
    event.fields.emplace_back("calls", static_cast<double>(row.calls));
    event.fields.emplace_back("flops", static_cast<double>(row.cost.flops));
    event.fields.emplace_back("bytes_read",
                              static_cast<double>(row.cost.bytes_read));
    event.fields.emplace_back("bytes_written",
                              static_cast<double>(row.cost.bytes_written));
    event.fields.emplace_back("elements",
                              static_cast<double>(row.cost.elements));
    telemetry.emit(std::move(event));

    registry.gauge("fms.work." + row.op + ".flops")
        .set(static_cast<double>(row.cost.flops));
    registry.gauge("fms.work." + row.op + ".bytes_read")
        .set(static_cast<double>(row.cost.bytes_read));
    registry.gauge("fms.work." + row.op + ".bytes_written")
        .set(static_cast<double>(row.cost.bytes_written));
    registry.gauge("fms.work." + row.op + ".elements")
        .set(static_cast<double>(row.cost.elements));
    registry.gauge("fms.work." + row.op + ".calls")
        .set(static_cast<double>(row.calls));
  }
}

// -----------------------------------------------------------------------
// Cost models. All counts follow the header's FLOP / compulsory-bytes
// conventions; every formula here is pinned by tests/test_work.cpp.

namespace {
constexpr std::uint64_t kF = 4;  // bytes per float element
}  // namespace

std::size_t ceil_log2(std::size_t n) {
  std::size_t bits = 0;
  std::size_t pow2 = 1;
  while (pow2 < n) {
    pow2 *= 2;
    ++bits;
  }
  return bits;
}

OpCost conv2d_fwd_cost(std::size_t n, std::size_t cin, std::size_t h,
                       std::size_t w, std::size_t cout, std::size_t kh,
                       std::size_t kw, std::size_t ho, std::size_t wo,
                       std::size_t groups) {
  const std::uint64_t out =
      static_cast<std::uint64_t>(n) * cout * ho * wo;
  const std::uint64_t cin_g = cin / (groups == 0 ? 1 : groups);
  const std::uint64_t macs = out * cin_g * kh * kw;
  const std::uint64_t xnumel = static_cast<std::uint64_t>(n) * cin * h * w;
  const std::uint64_t wnumel =
      static_cast<std::uint64_t>(cout) * cin_g * kh * kw;
  OpCost cost;
  cost.flops = 2 * macs;  // multiply + accumulate
  cost.bytes_read = kF * (xnumel + wnumel);
  cost.bytes_written = kF * out;
  cost.elements = out;
  return cost;
}

OpCost conv2d_bwd_cost(std::size_t n, std::size_t cin, std::size_t h,
                       std::size_t w, std::size_t cout, std::size_t kh,
                       std::size_t kw, std::size_t ho, std::size_t wo,
                       std::size_t groups) {
  const std::uint64_t out =
      static_cast<std::uint64_t>(n) * cout * ho * wo;
  const std::uint64_t cin_g = cin / (groups == 0 ? 1 : groups);
  const std::uint64_t macs = out * cin_g * kh * kw;
  const std::uint64_t xnumel = static_cast<std::uint64_t>(n) * cin * h * w;
  const std::uint64_t wnumel =
      static_cast<std::uint64_t>(cout) * cin_g * kh * kw;
  OpCost cost;
  cost.flops = 4 * macs;  // grad_x and grad_w are each a macs-sized GEMM
  cost.bytes_read = kF * (out + xnumel + wnumel);
  cost.bytes_written = kF * (xnumel + wnumel);
  cost.elements = xnumel + wnumel;
  return cost;
}

OpCost batchnorm_fwd_cost(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w, bool train) {
  const std::uint64_t numel = static_cast<std::uint64_t>(n) * c * h * w;
  const std::uint64_t ch = c;
  OpCost cost;
  if (train) {
    // mean pass (1/elem) + var pass (3/elem) + normalize (4/elem) and
    // per-channel: mean/var finalize, inv_std (div+sqrt+add), running
    // stats update (2 * (mul+mul+add)) ~= 10/channel.
    cost.flops = 8 * numel + 10 * ch;
    cost.bytes_read = kF * (numel + 4 * ch);  // x + gamma/beta/running*2
    cost.bytes_written = kF * (2 * numel + 2 * ch);  // y, xhat, running*2
  } else {
    // normalize with running stats: (x - mean) * inv_std * g + b, with
    // inv_std derived per channel (div+sqrt+add).
    cost.flops = 4 * numel + 3 * ch;
    cost.bytes_read = kF * (numel + 4 * ch);
    cost.bytes_written = kF * numel;
  }
  cost.elements = numel;
  return cost;
}

OpCost batchnorm_bwd_cost(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) {
  const std::uint64_t numel = static_cast<std::uint64_t>(n) * c * h * w;
  OpCost cost;
  // pass 1: sum_gy + sum_gy_xhat (3/elem); pass 2: the gx formula
  // (5/elem); per channel: two means + two param-grad accumulates.
  cost.flops = 8 * numel + 4 * static_cast<std::uint64_t>(c);
  cost.bytes_read = kF * (2 * numel + 4 * static_cast<std::uint64_t>(c));
  cost.bytes_written = kF * (numel + 2 * static_cast<std::uint64_t>(c));
  cost.elements = numel;
  return cost;
}

OpCost relu_fwd_cost(std::size_t numel) {
  OpCost cost;
  cost.flops = numel;  // one compare-select per element
  cost.bytes_read = kF * static_cast<std::uint64_t>(numel);
  cost.bytes_written = kF * static_cast<std::uint64_t>(numel);
  cost.elements = numel;
  return cost;
}

OpCost relu_bwd_cost(std::size_t numel) {
  OpCost cost;
  cost.flops = numel;  // one select per element
  cost.bytes_read = 2 * kF * static_cast<std::uint64_t>(numel);  // gy + x
  cost.bytes_written = kF * static_cast<std::uint64_t>(numel);
  cost.elements = numel;
  return cost;
}

OpCost maxpool_fwd_cost(std::size_t numel_in, std::size_t out,
                        std::size_t k) {
  OpCost cost;
  cost.flops = static_cast<std::uint64_t>(out) * k * k;  // window compares
  cost.bytes_read = kF * static_cast<std::uint64_t>(numel_in);
  // y (4B floats) + argmax indices (8B each).
  cost.bytes_written = (kF + 8) * static_cast<std::uint64_t>(out);
  cost.elements = out;
  return cost;
}

OpCost maxpool_bwd_cost(std::size_t numel_in, std::size_t out) {
  OpCost cost;
  cost.flops = out;  // one scatter-add per output grad
  cost.bytes_read = (kF + 8) * static_cast<std::uint64_t>(out);
  cost.bytes_written = kF * static_cast<std::uint64_t>(numel_in);
  cost.elements = numel_in;
  return cost;
}

OpCost avgpool_fwd_cost(std::size_t numel_in, std::size_t out,
                        std::size_t k) {
  OpCost cost;
  cost.flops = static_cast<std::uint64_t>(out) * (k * k + 1);  // sum + div
  cost.bytes_read = kF * static_cast<std::uint64_t>(numel_in);
  cost.bytes_written = kF * static_cast<std::uint64_t>(out);
  cost.elements = out;
  return cost;
}

OpCost avgpool_bwd_cost(std::size_t numel_in, std::size_t out,
                        std::size_t k) {
  OpCost cost;
  cost.flops = static_cast<std::uint64_t>(out) * (k * k + 1);
  cost.bytes_read = kF * static_cast<std::uint64_t>(out);
  cost.bytes_written = kF * static_cast<std::uint64_t>(numel_in);
  cost.elements = numel_in;
  return cost;
}

OpCost global_avgpool_fwd_cost(std::size_t n, std::size_t c, std::size_t h,
                               std::size_t w) {
  const std::uint64_t numel = static_cast<std::uint64_t>(n) * c * h * w;
  const std::uint64_t nc = static_cast<std::uint64_t>(n) * c;
  OpCost cost;
  cost.flops = numel + nc;  // sum everything + one div per channel
  cost.bytes_read = kF * numel;
  cost.bytes_written = kF * nc;
  cost.elements = nc;
  return cost;
}

OpCost global_avgpool_bwd_cost(std::size_t n, std::size_t c, std::size_t h,
                               std::size_t w) {
  const std::uint64_t numel = static_cast<std::uint64_t>(n) * c * h * w;
  const std::uint64_t nc = static_cast<std::uint64_t>(n) * c;
  OpCost cost;
  cost.flops = nc;  // one scale per channel, broadcast
  cost.bytes_read = kF * nc;
  cost.bytes_written = kF * numel;
  cost.elements = numel;
  return cost;
}

OpCost matmul_cost(std::size_t m, std::size_t k, std::size_t n) {
  OpCost cost;
  cost.flops = 2ull * m * k * n;
  cost.bytes_read = kF * (static_cast<std::uint64_t>(m) * k +
                          static_cast<std::uint64_t>(k) * n);
  cost.bytes_written = kF * static_cast<std::uint64_t>(m) * n;
  cost.elements = static_cast<std::uint64_t>(m) * n;
  return cost;
}

OpCost linear_fwd_cost(std::size_t n_batch, std::size_t in,
                       std::size_t out) {
  OpCost cost;
  // GEMM + bias add.
  cost.flops = 2ull * n_batch * in * out + static_cast<std::uint64_t>(n_batch) * out;
  cost.bytes_read = kF * (static_cast<std::uint64_t>(n_batch) * in +
                          static_cast<std::uint64_t>(out) * in + out);
  cost.bytes_written = kF * static_cast<std::uint64_t>(n_batch) * out;
  cost.elements = static_cast<std::uint64_t>(n_batch) * out;
  return cost;
}

OpCost linear_bwd_cost(std::size_t n_batch, std::size_t in,
                       std::size_t out) {
  const std::uint64_t nio = static_cast<std::uint64_t>(n_batch) * in * out;
  const std::uint64_t wsz = static_cast<std::uint64_t>(out) * in;
  OpCost cost;
  // grad_w GEMM + grad_x GEMM + bias-grad reduce.
  cost.flops = 4 * nio + static_cast<std::uint64_t>(n_batch) * out;
  // gy + x + w, plus grad_w / grad_b read-modify-write.
  cost.bytes_read = kF * (static_cast<std::uint64_t>(n_batch) * out +
                          static_cast<std::uint64_t>(n_batch) * in + wsz +
                          wsz + out);
  cost.bytes_written =
      kF * (static_cast<std::uint64_t>(n_batch) * in + wsz + out);
  cost.elements = static_cast<std::uint64_t>(n_batch) * in + wsz + out;
  return cost;
}

OpCost axpy_cost(std::size_t numel) {
  OpCost cost;
  cost.flops = numel;
  cost.bytes_read = 2 * kF * static_cast<std::uint64_t>(numel);  // y rmw + x
  cost.bytes_written = kF * static_cast<std::uint64_t>(numel);
  cost.elements = numel;
  return cost;
}

namespace {
OpCost agg_base_cost(std::size_t m, std::size_t d) {
  OpCost cost;
  cost.bytes_read = kF * static_cast<std::uint64_t>(m) * d;
  cost.bytes_written = kF * static_cast<std::uint64_t>(d);
  cost.elements = d;
  return cost;
}
}  // namespace

OpCost agg_mean_cost(std::size_t m, std::size_t d) {
  OpCost cost = agg_base_cost(m, d);
  // per-coordinate sum + final scale.
  cost.flops = static_cast<std::uint64_t>(m) * d + d;
  return cost;
}

OpCost agg_clipped_mean_cost(std::size_t m, std::size_t d) {
  OpCost cost = agg_base_cost(m, d);
  // norm pass (2/elem: mul+add) + scaled sum (2/elem) + final scale.
  cost.flops = 4ull * m * d + d;
  return cost;
}

OpCost agg_coordinate_median_cost(std::size_t m, std::size_t d) {
  OpCost cost = agg_base_cost(m, d);
  // per-coordinate sort (m log m compares) + participation scale.
  cost.flops =
      static_cast<std::uint64_t>(d) * (m * ceil_log2(m) + 1);
  return cost;
}

OpCost agg_trimmed_mean_cost(std::size_t m, std::size_t d) {
  OpCost cost = agg_base_cost(m, d);
  // per-coordinate sort + trimmed sum + final scale.
  cost.flops =
      static_cast<std::uint64_t>(d) * (m * ceil_log2(m) + m + 1);
  return cost;
}

OpCost agg_krum_cost(std::size_t m, std::size_t d) {
  OpCost cost = agg_base_cost(m, d);
  // m(m-1)/2 pairwise squared distances (3/elem: sub, mul, add) + mean
  // of the keep set (bounded by m*d) + final scale.
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(m) * (m > 0 ? m - 1 : 0) / 2;
  cost.flops = 3 * pairs * d + static_cast<std::uint64_t>(m) * d + d;
  return cost;
}

OpCost dc_compensate_cost(std::size_t dim) {
  OpCost cost;
  // h*h, lambda*, (fresh-stale), *, + per element.
  cost.flops = 5ull * dim;
  cost.bytes_read = 3 * kF * static_cast<std::uint64_t>(dim);
  cost.bytes_written = kF * static_cast<std::uint64_t>(dim);
  cost.elements = dim;
  return cost;
}

OpCost codec_cost(std::size_t payload_bytes) {
  OpCost cost;
  cost.bytes_read = payload_bytes;
  cost.bytes_written = payload_bytes;
  cost.elements = payload_bytes;
  return cost;
}

OpCost net_transmission_cost(std::size_t k, std::uint64_t wire_bytes) {
  OpCost cost;
  // avg + per-link divide + max + sum over k links.
  cost.flops = 4ull * k;
  cost.bytes_written = wire_bytes;
  cost.elements = k;
  return cost;
}

}  // namespace fms::obs
