// Tensor allocation accounting.
//
// The paper's round-time and memory claims need to know where tensor
// bytes go: how many allocations a round performs, how much storage is
// live at once, and whether rounds leak. The hooks below are called from
// Tensor's special members (src/tensor/tensor.h) — the only tensor
// storage in the codebase — and cost one relaxed atomic load when
// tracking is disabled.
//
// This header is deliberately dependency-free (atomics only) so the
// tensor header can include it without pulling the rest of src/obs into
// every translation unit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fms::obs {

namespace detail {
inline std::atomic<bool>& alloc_tracking_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

struct AllocCounters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> total_bytes{0};
  // live_bytes is signed: tracking may be switched on while tensors
  // allocated earlier are still alive, so frees can transiently outrun
  // tracked allocations.
  std::atomic<std::int64_t> live_bytes{0};
  std::atomic<std::int64_t> peak_live_bytes{0};
};

inline AllocCounters& alloc_counters() {
  static AllocCounters counters;
  return counters;
}
}  // namespace detail

inline bool alloc_tracking_enabled() {
  return detail::alloc_tracking_flag().load(std::memory_order_relaxed);
}

inline void set_alloc_tracking_enabled(bool on) {
  detail::alloc_tracking_flag().store(on, std::memory_order_relaxed);
}

// Point-in-time snapshot of the tensor allocation ledger.
struct AllocStats {
  std::uint64_t allocs = 0;       // tensor buffers allocated
  std::uint64_t frees = 0;        // tensor buffers released
  std::uint64_t total_bytes = 0;  // cumulative bytes ever allocated
  std::int64_t live_bytes = 0;    // currently live tensor bytes
  std::int64_t peak_live_bytes = 0;
};

// Forward declaration; defined in src/obs/profile.h. Attributes tensor
// allocations to the innermost active profiler zone, if any.
void profile_note_alloc(std::size_t bytes);

inline void track_alloc(std::size_t bytes) {
  if (bytes == 0 || !alloc_tracking_enabled()) return;
  detail::AllocCounters& c = detail::alloc_counters();
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  c.total_bytes.fetch_add(bytes, std::memory_order_relaxed);
  const std::int64_t live =
      c.live_bytes.fetch_add(static_cast<std::int64_t>(bytes),
                             std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  std::int64_t peak = c.peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !c.peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  profile_note_alloc(bytes);
}

inline void track_free(std::size_t bytes) {
  if (bytes == 0 || !alloc_tracking_enabled()) return;
  detail::AllocCounters& c = detail::alloc_counters();
  c.frees.fetch_add(1, std::memory_order_relaxed);
  c.live_bytes.fetch_sub(static_cast<std::int64_t>(bytes),
                         std::memory_order_relaxed);
}

inline AllocStats alloc_stats() {
  const detail::AllocCounters& c = detail::alloc_counters();
  AllocStats s;
  s.allocs = c.allocs.load(std::memory_order_relaxed);
  s.frees = c.frees.load(std::memory_order_relaxed);
  s.total_bytes = c.total_bytes.load(std::memory_order_relaxed);
  s.live_bytes = c.live_bytes.load(std::memory_order_relaxed);
  s.peak_live_bytes = c.peak_live_bytes.load(std::memory_order_relaxed);
  return s;
}

// Overwrites the ledger with `s` — lets a nested measurement window
// (the bench harness's accounting pass) restore the outer window's
// counts after a destructive reset.
inline void restore_alloc_stats(const AllocStats& s) {
  detail::AllocCounters& c = detail::alloc_counters();
  c.allocs.store(s.allocs, std::memory_order_relaxed);
  c.frees.store(s.frees, std::memory_order_relaxed);
  c.total_bytes.store(s.total_bytes, std::memory_order_relaxed);
  c.live_bytes.store(s.live_bytes, std::memory_order_relaxed);
  c.peak_live_bytes.store(s.peak_live_bytes, std::memory_order_relaxed);
}

inline void reset_alloc_stats() { restore_alloc_stats(AllocStats{}); }

}  // namespace fms::obs
