#include "src/obs/telemetry.h"

#include "src/obs/alloc.h"
#include "src/obs/flight.h"
#include "src/obs/profile.h"
#include "src/obs/trace_ctx.h"
#include "src/obs/work.h"

namespace fms::obs {

Telemetry& Telemetry::instance() {
  static Telemetry telemetry;
  return telemetry;
}

void Telemetry::add_sink(std::shared_ptr<TraceSink> sink) {
  fms::MutexLock lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Telemetry::clear_sinks() {
  fms::MutexLock lock(mu_);
  sinks_.clear();
}

std::size_t Telemetry::num_sinks() const {
  fms::MutexLock lock(mu_);
  return sinks_.size();
}

void Telemetry::emit(TraceEvent event) {
  if (!telemetry_enabled()) return;
  fms::MutexLock lock(mu_);
  if (event.label.empty()) event.label = label_;
  for (const auto& sink : sinks_) sink->write(event);
}

void Telemetry::flush() {
  fms::MutexLock lock(mu_);
  for (const auto& sink : sinks_) sink->flush();
}

void Telemetry::set_label(std::string label) {
  fms::MutexLock lock(mu_);
  label_ = std::move(label);
}

void Telemetry::configure(const TelemetryConfig& cfg, std::uint64_t seed) {
  set_telemetry_enabled(cfg.enabled);
  set_profiling_enabled(cfg.profile);
  set_alloc_tracking_enabled(cfg.profile);
  set_work_tracking_enabled(cfg.work);
  // Causal tracing rides the same config: the trace context is live when
  // either a Chrome export or a flight recorder was asked for. The flight
  // dump needs a destination even when only the default was configured —
  // a postmortem artifact with no path would silently vanish.
  const bool tracing =
      cfg.enabled && (!cfg.trace_chrome_path.empty() || cfg.flight_recorder > 0);
  std::string flight_dump = cfg.flight_dump_path;
  if (cfg.flight_recorder > 0 && flight_dump.empty()) {
    flight_dump = "fms_flight.jsonl";
  }
  TraceContext::instance().configure(tracing, seed, cfg.trace_chrome_path,
                                     cfg.enabled ? cfg.flight_recorder : 0,
                                     flight_dump);
  if (cfg.enabled) install_crash_handlers();
  fms::MutexLock lock(mu_);
  sinks_.clear();
  metrics_csv_path_ = cfg.metrics_csv_path;
  if (!cfg.enabled) return;
  if (!cfg.trace_jsonl_path.empty()) {
    sinks_.push_back(std::make_shared<JsonlTraceWriter>(cfg.trace_jsonl_path));
  }
  if (cfg.console) {
    sinks_.push_back(std::make_shared<ConsoleRoundSink>(cfg.console_every));
  }
}

void Telemetry::finish() {
  std::string csv_path;
  {
    fms::MutexLock lock(mu_);
    for (const auto& sink : sinks_) {
      sink->write_summary(registry_);
      sink->flush();
    }
    csv_path = metrics_csv_path_;
  }
  if (!csv_path.empty()) registry_.write_csv(csv_path);
  TraceContext::instance().export_chrome();
}

}  // namespace fms::obs
