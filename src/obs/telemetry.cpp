#include "src/obs/telemetry.h"

#include "src/obs/alloc.h"
#include "src/obs/profile.h"

namespace fms::obs {

Telemetry& Telemetry::instance() {
  static Telemetry telemetry;
  return telemetry;
}

void Telemetry::add_sink(std::shared_ptr<TraceSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Telemetry::clear_sinks() {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.clear();
}

std::size_t Telemetry::num_sinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sinks_.size();
}

void Telemetry::emit(TraceEvent event) {
  if (!telemetry_enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (event.label.empty()) event.label = label_;
  for (const auto& sink : sinks_) sink->write(event);
}

void Telemetry::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sink : sinks_) sink->flush();
}

void Telemetry::set_label(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  label_ = std::move(label);
}

void Telemetry::configure(const TelemetryConfig& cfg) {
  set_telemetry_enabled(cfg.enabled);
  set_profiling_enabled(cfg.profile);
  set_alloc_tracking_enabled(cfg.profile);
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.clear();
  metrics_csv_path_ = cfg.metrics_csv_path;
  if (!cfg.enabled) return;
  if (!cfg.trace_jsonl_path.empty()) {
    sinks_.push_back(std::make_shared<JsonlTraceWriter>(cfg.trace_jsonl_path));
  }
  if (cfg.console) {
    sinks_.push_back(std::make_shared<ConsoleRoundSink>(cfg.console_every));
  }
}

void Telemetry::finish() {
  std::string csv_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& sink : sinks_) sink->flush();
    csv_path = metrics_csv_path_;
  }
  if (!csv_path.empty()) registry_.write_csv(csv_path);
}

}  // namespace fms::obs
