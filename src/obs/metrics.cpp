#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace fms::obs {

std::vector<double> default_time_buckets() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 200.0; decade *= 10.0) {
    for (double step : {1.0, 2.0, 5.0}) {
      const double b = decade * step;
      if (b <= 100.0) bounds.push_back(b);
    }
  }
  return bounds;
}

std::vector<double> default_span_buckets() {
  std::vector<double> bounds;
  // 12 buckets per decade over [1e-7, 100]: 9 decades, 109 edges. The
  // edge values are computed by repeated multiplication, which is exact
  // enough (drift ~1e-13 relative over the whole range) and cheap.
  const double ratio = std::pow(10.0, 1.0 / 12.0);
  double edge = 1e-7;
  while (edge <= 100.0 * 1.0000001) {
    bounds.push_back(edge);
    edge *= ratio;
  }
  return bounds;
}

std::vector<double> linear_buckets(int n) {
  FMS_CHECK(n >= 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) bounds.push_back(static_cast<double>(i));
  return bounds;
}

double Histogram::quantile(double q) const {
  FMS_CHECK(q >= 0.0 && q <= 1.0);
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double lo_clamp = min_.load(std::memory_order_relaxed);
  const double hi_clamp = max_.load(std::memory_order_relaxed);
  // Rank of the target observation (1-based, midpoint convention).
  const double rank = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i].load(std::memory_order_relaxed));
    // fms-lint: allow(float-eq) -- exact-zero skip of an integer-valued count
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      // Interpolate inside bucket i between its lower and upper edge.
      double lower = i == 0 ? lo_clamp : bounds_[i - 1];
      double upper = i < bounds_.size() ? bounds_[i] : hi_clamp;
      lower = std::max(lower, lo_clamp);
      upper = std::min(upper, hi_clamp);
      if (upper < lower) upper = lower;
      // fms-lint: allow(float-eq) -- exact-zero guard against 0/0
      const double frac = c == 0.0 ? 0.0 : (rank - cum) / c;
      return std::clamp(lower + frac * (upper - lower), lo_clamp, hi_clamp);
    }
    cum += c;
  }
  return hi_clamp;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  fms::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  fms::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  fms::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = default_time_buckets();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  fms::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  fms::MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.type = "counter";
    s.count = c->value();
    s.value = static_cast<double>(c->value());
    s.sum = s.value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.type = "gauge";
    s.value = g->value();
    s.sum = s.value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.type = "histogram";
    s.count = h->count();
    s.sum = h->sum();
    s.value = h->mean();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream f(path);
  FMS_CHECK_MSG(f.good(), "cannot open " << path);
  f << "metric,type,value,count,sum,min,max,p50,p95,p99\n";
  for (const MetricSample& s : snapshot()) {
    f << s.name << "," << s.type << "," << s.value << "," << s.count << ","
      << s.sum << "," << s.min << "," << s.max << "," << s.p50 << ","
      << s.p95 << "," << s.p99 << "\n";
  }
}

void MetricsRegistry::reset() {
  fms::MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace fms::obs
