// Run-report generator: fuses one run's observability artifacts — JSONL
// trace, metrics CSV, health.json, BENCH_perf.json, BENCH_history.jsonl,
// and the machine-peak sidecar — into a single self-contained HTML file
// (inline CSS + SVG, no external references, no scripts).
//
// The generator is deterministic: the same input files produce the same
// bytes (no timestamps, no absolute paths, no environment leakage), so
// report HTML can be golden-file tested. Missing inputs degrade to "no
// data" placeholders rather than errors — a report over a partial run is
// still a report.
//
// Diff mode compares two runs' traces round-by-round and pinpoints the
// first diverging round and field, the primitive behind `fms_report
// --compare A B`.
#pragma once

#include <string>
#include <vector>

namespace fms::obs {

struct ReportInputs {
  std::string title = "fms run report";
  std::string trace_jsonl_path;
  std::string metrics_csv_path;
  std::string health_json_path;
  std::string bench_json_path;
  std::string history_jsonl_path;
  std::string peak_json_path;
};

// Renders the report. Unreadable/absent inputs yield placeholder
// sections; the call itself never throws on missing files.
std::string generate_report_html(const ReportInputs& inputs);

// generate + write. Throws fms::CheckError when out_path can't be opened.
void write_report_html(const ReportInputs& inputs,
                       const std::string& out_path);

struct RunDiff {
  bool identical = true;
  int rounds_a = 0;
  int rounds_b = 0;
  int first_diverging_round = -1;   // -1 when identical
  std::string first_diverging_field;
  double value_a = 0.0;
  double value_b = 0.0;
  std::vector<std::string> notes;  // structural mismatches (round counts…)
};

// Compares the "round" events of two trace JSONL files in order,
// field-by-field (exact values: two bit-identical runs diff clean).
RunDiff diff_runs(const std::string& trace_a_path,
                  const std::string& trace_b_path);

// One-paragraph human-readable verdict.
std::string diff_summary(const RunDiff& diff);

// Self-contained diff HTML (same determinism contract as the report).
std::string generate_diff_html(const RunDiff& diff, const std::string& name_a,
                               const std::string& name_b);

}  // namespace fms::obs
