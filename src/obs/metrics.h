// Telemetry instruments: counters, gauges, and fixed-bucket histograms
// collected in a named registry.
//
// The paper's systems claims (per-round transmission latency, staleness
// behavior, search-time accounting) need a breakdown of where round time
// and bytes actually go. Instruments are lock-free after creation (plain
// atomics) so ThreadPool workers can record into them concurrently; the
// registry itself takes a mutex only on name lookup.
//
// A process-wide enable flag (telemetry_enabled) gates every producer:
// when it is off, spans skip the clock reads and sinks receive nothing,
// so the search hot path pays only a relaxed atomic load per check.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/thread_annotations.h"

namespace fms::obs {

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

// Lock-free add for atomic<double> (fetch_add on double is C++20 but not
// universally lock-free; the CAS loop is portable and contention is low).
inline void atomic_add(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (x < cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& a, double x) {
  double cur = a.load(std::memory_order_relaxed);
  while (x > cur &&
         !a.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

inline bool telemetry_enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_telemetry_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

// Monotonically increasing event count (arrived updates, bytes shipped).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-value instrument (policy baseline, alpha entropy).
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double x) { detail::atomic_add(v_, x); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram with interpolated quantiles.
//
// `upper_bounds` are the ascending inclusive upper edges of the buckets;
// one implicit overflow bucket catches everything beyond the last bound.
// quantile(q) walks the cumulative counts and interpolates linearly inside
// the bucket holding the q-th observation, clamped to the observed
// [min, max] so estimates never leave the data range.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)),
        counts_(bounds_.size() + 1),
        min_(std::numeric_limits<double>::infinity()),
        max_(-std::numeric_limits<double>::infinity()) {
    FMS_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      FMS_CHECK_MSG(bounds_[i] > bounds_[i - 1],
                    "histogram bounds must be strictly ascending");
    }
  }

  void observe(double x) {
    counts_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sum_, x);
    detail::atomic_min(min_, x);
    detail::atomic_max(max_, x);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed); }
  double max() const { return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      out[i] = counts_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
  }

 private:
  std::size_t bucket_index(double x) const {
    // Branchless-enough binary search over a handful of bounds.
    std::size_t lo = 0, hi = bounds_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (x <= bounds_[mid]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;  // == bounds_.size() => overflow bucket
  }

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Log-spaced 1-2-5 time buckets from 1us to 100s — the default for span
// durations (sub-model transfers and local training both land well inside).
std::vector<double> default_time_buckets();

// Denser log-spaced buckets (12 per decade, 100ns..100s) used by
// FMS_SPAN timers: the 1-2-5 grid is so coarse that every observation of
// a sub-millisecond zone lands in one or two buckets and interpolated
// p99 collapses toward the bucket edge. At ratio 10^(1/12) (~1.21x per
// bucket) linear interpolation inside a bucket is off by at most ~10%
// of the true value.
std::vector<double> default_span_buckets();

// Linear buckets {0, 1, ..., n} for integer-valued metrics (staleness tau).
std::vector<double> linear_buckets(int n);

// One row of a registry snapshot (what the CSV writer emits).
struct MetricSample {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;  // counter/gauge value; histogram mean
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Named instrument registry. Lookup creates on first use; returned
// references stay valid for the registry's lifetime (instruments are
// heap-allocated and never removed except by reset()).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `bounds` is only consulted on first creation; empty selects the
  // default time buckets.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  // Lookup without creation; nullptr when the name was never registered.
  const Histogram* find_histogram(const std::string& name) const;

  std::vector<MetricSample> snapshot() const;
  // CSV snapshot compatible with the fms_*.csv bench outputs (header row
  // plus one row per instrument).
  void write_csv(const std::string& path) const;

  // Drops every instrument. Invalidates previously returned references —
  // intended for tests and between independent experiment runs only.
  void reset();

 private:
  mutable fms::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FMS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ FMS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      FMS_GUARDED_BY(mu_);
};

}  // namespace fms::obs
