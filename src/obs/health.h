// Online search-health monitor: windowed detectors over the per-round
// telemetry stream, each reporting OK / WARN / CRIT.
//
// A federated search can waste its whole budget failing quietly: alpha
// entropy collapses to a degenerate architecture, the reward signal
// stalls or diverges, staleness inflates until DC compensation dominates,
// the quorum erodes under churn, screening starts rejecting a flood of
// updates, or a leak grows the allocation ledger round over round. Each
// detector watches one of those failure modes over a sliding window of
// completed rounds and trips deterministically — the statistics are pure
// functions of the (seeded) round stream, so a given run always produces
// the same health trajectory.
//
// Validation contract (tests/test_health.cpp): every fault class the
// PR 2 / PR 4 injector can schedule trips its matching detector under an
// appropriate defense config, and a clean seeded run reports zero
// WARN/CRIT. The monitor only observes — results are bit-identical with
// monitoring on or off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fms {
struct RoundRecord;  // src/core/search.h
}

namespace fms::obs {

enum class HealthState { kOk = 0, kWarn = 1, kCrit = 2 };

const char* health_state_name(HealthState s);

// Detector thresholds. Defaults are documented in README ("Tracing &
// health monitoring" — detector threshold table) and chosen so that the
// repo's clean reference runs stay OK end to end.
struct HealthConfig {
  int window = 16;        // rounds per sliding window
  int grace_rounds = 12;  // rounds before any detector may trip

  // alpha-entropy collapse: windowed mean of the per-edge policy entropy
  // (nats). A healthy search sharpens gradually; a collapsed policy
  // pins every edge long before the budget is spent.
  double entropy_warn = 0.25;
  double entropy_crit = 0.10;

  // reward stall / divergence: CRIT outright on a non-finite reward or
  // moving average; WARN/CRIT when the moving average falls this far
  // below its best-so-far (a healthy curve is monotone-ish); WARN/CRIT
  // when this fraction of a window's arrived rewards was winsorized
  // (the robust reward channel is actively fighting lies).
  double reward_drop_warn = 0.15;
  double reward_drop_crit = 0.30;
  double winsorized_warn = 0.15;
  double winsorized_crit = 0.35;

  // staleness inflation: windowed mean of the round's mean tau (rounds).
  double staleness_warn = 1.0;
  double staleness_crit = 2.0;

  // quorum erosion: windowed mean of the per-round erosion sample
  // (1.0 for a partial-quorum commit, else offline fraction).
  double quorum_warn = 0.20;
  double quorum_crit = 0.50;

  // screen-rejection spike: windowed fraction of processed updates the
  // defenses removed — screening rejections plus estimator exclusions
  // (krum family), over everything that reached the server.
  double screen_warn = 0.08;
  double screen_crit = 0.25;

  // allocation-ledger growth: sustained live-byte drift per round over a
  // full window in which *every* round grew (cache warm-up grows in
  // bursts with flat rounds in between; a leak grows every round).
  double alloc_warn_bytes_per_round = 4096.0;
  double alloc_crit_bytes_per_round = 65536.0;

  // churn-rate spike / live-population collapse: max of the windowed mean
  // membership-change rate ((joined + left) / fleet) and the windowed
  // mean absent fraction (1 - live / fleet). Idle unless the round loop
  // reports membership (HealthSignal.live >= 0).
  double churn_warn = 0.25;
  double churn_crit = 0.45;
};

// Per-round inputs that live outside RoundRecord.
struct HealthSignal {
  // Live tensor bytes from the allocation ledger; < 0 when tracking is
  // off (the alloc detector then stays idle).
  std::int64_t live_alloc_bytes = -1;
  int participants = 0;
  // Churn membership of the round; live < 0 (the default) keeps the churn
  // detector idle for callers that predate the churn layer.
  int live = -1;
  int joined = 0;
  int left = 0;
};

struct DetectorStatus {
  std::string name;
  HealthState state = HealthState::kOk;
  double value = 0.0;  // current windowed statistic
  double warn = 0.0;   // thresholds in effect (for reports)
  double crit = 0.0;
  int first_warn_round = -1;
  int first_crit_round = -1;
  int warn_rounds = 0;  // rounds spent at WARN or worse
  int crit_rounds = 0;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg = {});

  // Feeds one completed round; returns the worst state across detectors.
  // Also emits fms.health.* gauges/counters when telemetry is enabled.
  HealthState observe(const RoundRecord& rec, const HealthSignal& sig);

  const std::vector<DetectorStatus>& detectors() const { return status_; }
  const DetectorStatus* find(const std::string& name) const;
  HealthState worst() const { return worst_; }
  // True when the last observe() upgraded some detector to CRIT (the
  // flight-recorder trigger); names_of_last_crit lists them.
  bool crit_transition() const { return crit_transition_; }
  const std::vector<std::string>& last_crit_detectors() const {
    return last_crit_;
  }
  int rounds_observed() const { return rounds_; }

  // Machine-readable report (health.json).
  std::string to_json() const;
  void write_report(const std::string& path) const;
  // Human-readable block for the CLI exit summary.
  std::string summary_table() const;

  const HealthConfig& config() const { return cfg_; }

 private:
  void set_state(std::size_t idx, HealthState s, double value);

  HealthConfig cfg_;
  std::vector<DetectorStatus> status_;
  HealthState worst_ = HealthState::kOk;
  bool crit_transition_ = false;
  std::vector<std::string> last_crit_;
  int rounds_ = 0;

  // Sliding-window state (plain deque-free rings: window <= a few dozen).
  std::vector<double> entropy_w_;
  std::vector<double> moving_w_;
  std::vector<double> tau_w_;
  std::vector<double> erosion_w_;
  std::vector<double> rejected_w_;   // rejected + agg_rejected per round
  std::vector<double> processed_w_;  // arrived + rejected + agg_rejected
  std::vector<double> winsorized_w_;
  std::vector<double> arrived_w_;
  std::vector<double> live_bytes_w_;
  std::vector<double> churn_rate_w_;    // (joined + left) / fleet per round
  std::vector<double> absent_frac_w_;   // 1 - live / fleet per round
  double best_moving_ = 0.0;
  bool best_moving_set_ = false;
};

}  // namespace fms::obs
