// Process-wide telemetry context: the metrics registry plus the active
// trace sinks, with the current-round tag that spans stamp onto their
// events.
//
// A single global context (rather than one per FederatedSearch) lets
// free functions deep in the stack — assign_models, the delay-compensation
// kernels, participant train steps — record spans without threading a
// handle through every call signature, mirroring how production metrics
// libraries work. Everything is inert until telemetry_enabled() is set,
// either directly or via configure(SearchConfig::telemetry).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/common/config.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/obs/sinks.h"

namespace fms::obs {

class Telemetry {
 public:
  static Telemetry& instance();

  MetricsRegistry& registry() { return registry_; }

  void add_sink(std::shared_ptr<TraceSink> sink);
  void clear_sinks();
  std::size_t num_sinks() const;

  // Fans the event out to every sink; no-op while telemetry is disabled.
  // Stamps the current run label onto events that carry none.
  void emit(TraceEvent event);
  void flush();

  // Round tag for span events (set by FederatedSearch::run_round).
  void set_round(int round) { round_.store(round, std::memory_order_relaxed); }
  int round() const { return round_.load(std::memory_order_relaxed); }

  // Run/variant label stamped onto emitted events (benches comparing
  // several configurations into one trace file).
  void set_label(std::string label);

  // Applies a TelemetryConfig: toggles the global enable flag and replaces
  // the sink set. The metrics CSV path is remembered and written by
  // finish(). `seed` keys the deterministic trace ids of the causal trace
  // context (src/obs/trace_ctx) when tracing is configured.
  void configure(const TelemetryConfig& cfg, std::uint64_t seed = 0);

  // Flushes sinks, writes the metrics CSV snapshot when configured,
  // exports the Chrome trace when configured, and hands each sink a final
  // registry snapshot (ConsoleRoundSink prints its quantile table here).
  void finish();

 private:
  Telemetry() = default;

  MetricsRegistry registry_;  // self-locking
  mutable fms::Mutex mu_;
  std::vector<std::shared_ptr<TraceSink>> sinks_ FMS_GUARDED_BY(mu_);
  std::string label_ FMS_GUARDED_BY(mu_);
  std::string metrics_csv_path_ FMS_GUARDED_BY(mu_);
  std::atomic<int> round_{-1};
};

}  // namespace fms::obs
