// Causal round tracing: deterministic trace/span identifiers attached to
// every per-participant round lifecycle, timestamped in *simulated* time.
//
// The asynchronous soft-sync protocol means a round's outcome is shaped
// by per-participant causal chains — dispatch -> transmit -> local train
// -> arrive (possibly rounds later, stale) -> screen -> aggregate — that
// the aggregate per-phase telemetry (src/obs/span.h) cannot reconstruct.
// This module records that chain as structured lifecycle events:
//
//   * trace_id is a pure function of (run seed, dispatch round), so the
//     events of one round's cohort share a trace across their whole
//     lifetime, even when a stale update lands several rounds later;
//   * span_id is a pure function of (trace_id, participant, stage);
//   * timestamps are sim-time ticks derived from the transmission /
//     quorum model — never wall clock, so traces are bit-reproducible
//     and the `wall-clock` lint rule stays green.
//
// The exporter writes Chrome trace-event JSON (load it at ui.perfetto.dev
// or chrome://tracing): participants become tracks (tid), rounds become
// nested duration events, and every event's args carry the causal ids.
//
// Everything is inert until tracing_enabled() is set: every hook reads
// one relaxed atomic and returns, so the search hot path is unaffected
// and results are bit-identical on/off (pinned by test, like the
// profiler).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace fms::obs {

namespace detail {
inline std::atomic<bool>& tracing_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

inline bool tracing_enabled() {
  return detail::tracing_flag().load(std::memory_order_relaxed);
}

inline void set_tracing_enabled(bool on) {
  detail::tracing_flag().store(on, std::memory_order_relaxed);
}

// Stages of the per-participant round lifecycle, in causal order.
enum class Stage {
  kDispatch = 0,   // server samples a mask and ships the sub-model
  kTransmit = 1,   // simulated download (dur = link latency)
  kLocalTrain = 2, // participant trains and emits its update
  kFault = 3,      // injected fault touched this update (detail = kind)
  kArrive = 4,     // update reached the server (value = staleness tau)
  kStale = 5,      // staleness draw / DC compensation applied
  kScreen = 6,     // update screening verdict (detail = violation)
  kAggregate = 7,  // folded into (or rejected by) the theta estimator
  kDrop = 8,       // update lost (offline, dead link, overflow, late)
  kQuorum = 9,     // round commit event (value = commit latency)
};

const char* stage_name(Stage s);

// Deterministic 64-bit ids (splitmix64 mixing; no RNG stream is touched).
std::uint64_t make_trace_id(std::uint64_t seed, int round);
std::uint64_t make_span_id(std::uint64_t trace_id, int participant,
                           Stage stage);

// One lifecycle occurrence. participant == -1 marks a server-wide event.
struct LifecycleEvent {
  int round = -1;        // round whose processing recorded the event
  int origin_round = -1; // dispatch round of the traced update (trace key)
  int participant = -1;
  Stage stage = Stage::kDispatch;
  double ts_s = 0.0;     // sim-time seconds since the start of the run
  double dur_s = 0.0;    // simulated duration; 0 = instant event
  double value = 0.0;    // numeric payload (latency s, tau, norm, ...)
  std::string detail;    // outcome tag ("ok", "rejected:grad_norm", ...)
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

class FlightRecorder;  // src/obs/flight.h

// Process-wide trace context, mirroring obs::Telemetry: free functions
// deep in the stack (transmission_latency, screen_update, the staleness
// draw) record lifecycle events without threading a handle through every
// signature. The context owns the sim clock: each round occupies the
// window [round_base, round_base + round duration) and the base advances
// by the committed round duration, so Perfetto renders rounds end to end.
class TraceContext {
 public:
  static TraceContext& instance();

  // Applies the tracing slice of a TelemetryConfig. `seed` keys every
  // trace id; `chrome_path` buffers events for export_chrome (empty =
  // don't buffer); `flight_capacity` > 0 attaches a FlightRecorder.
  void configure(bool enabled, std::uint64_t seed, std::string chrome_path,
                 int flight_capacity, std::string flight_dump_path);

  // Round lifecycle (called by FederatedSearch::run_round).
  void begin_round(int round);
  // Advances the sim clock past the finished round.
  void end_round(double round_sim_duration_s);
  int round() const { return round_.load(std::memory_order_relaxed); }
  double round_base_s() const;

  // Records one event. `offset_s` is relative to the current round's
  // base; `origin_round` keys the trace id (-1 = the current round).
  // No-op while tracing is disabled.
  void record(int participant, Stage stage, double offset_s, double dur_s,
              double value = 0.0, std::string detail = {},
              int origin_round = -1);

  // Chrome trace-event export of everything buffered so far. Called by
  // Telemetry::finish(); path comes from configure. No-op when no path
  // was configured or nothing was recorded.
  void export_chrome() const;
  std::string chrome_path() const;

  std::shared_ptr<FlightRecorder> flight() const;
  std::string flight_dump_path() const;
  // Dumps the flight recorder (if attached) with the given reason tag.
  void dump_flight(const std::string& reason) const;

  std::size_t num_events() const;
  std::vector<LifecycleEvent> events_snapshot() const;

  // Drops buffered events, resets the sim clock and detaches the flight
  // recorder. Tests and between independent runs only.
  void reset();

 private:
  TraceContext() = default;

  mutable fms::Mutex mu_;
  std::vector<LifecycleEvent> events_ FMS_GUARDED_BY(mu_);
  std::shared_ptr<FlightRecorder> flight_ FMS_GUARDED_BY(mu_);
  std::string chrome_path_ FMS_GUARDED_BY(mu_);
  std::string flight_dump_path_ FMS_GUARDED_BY(mu_);
  std::uint64_t seed_ FMS_GUARDED_BY(mu_) = 0;
  std::atomic<int> round_{-1};
  double base_s_ FMS_GUARDED_BY(mu_) = 0.0;
};

// Serializes lifecycle events as a Chrome trace-event JSON document
// (stable field order, sim-time microsecond ticks) — the unit the golden
// file test pins. Separate from TraceContext so tests can feed a
// hand-built event list.
std::string chrome_trace_json(const std::vector<LifecycleEvent>& events);

}  // namespace fms::obs
