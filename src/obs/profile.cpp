#include "src/obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <utility>

#include "src/common/thread_annotations.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "src/obs/alloc.h"
#include "src/obs/telemetry.h"

namespace fms::obs {
namespace {

// Per-thread CPU time. Scheduling noise (preemption, other threads) does
// not inflate a zone this way, which keeps repeated profile runs far
// tighter than wall-clock would be.
std::uint64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
#if defined(CLOCK_MONOTONIC)
  timespec mono{};
  if (clock_gettime(CLOCK_MONOTONIC, &mono) == 0) {
    return static_cast<std::uint64_t>(mono.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(mono.tv_nsec);
  }
#endif
  return 0;
}

struct Node {
  const char* name = nullptr;
  int parent = 0;
  // Child lookup by name pointer first (string literals are usually
  // merged per call site), strcmp as the fallback; kept as an insertion-
  // ordered vector — determinism comes from sorting at collection.
  std::vector<std::pair<const char*, int>> children;
  std::uint64_t calls = 0;
  std::uint64_t incl_ns = 0;
  std::uint64_t child_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
};

struct Frame {
  int node = 0;
  std::uint64_t start_ns = 0;
};

// One tree per thread. The mutex is uncontended on the hot path (only
// the owning thread enters/exits zones); collect/reset from another
// thread take it briefly.
struct ThreadProfile {
  fms::Mutex mu;
  // nodes[0] is the root sentinel.
  std::vector<Node> nodes FMS_GUARDED_BY(mu);
  std::vector<Frame> stack FMS_GUARDED_BY(mu);

  ThreadProfile() {
    Node root;
    root.name = "";
    root.parent = -1;
    nodes.push_back(root);
  }
};

struct ProfileRegistry {
  fms::Mutex mu;
  // Owned here, never erased: a worker thread may exit while its data is
  // still wanted for the round report.
  std::vector<std::unique_ptr<ThreadProfile>> profiles FMS_GUARDED_BY(mu);
};

ProfileRegistry& profile_registry() {
  static ProfileRegistry* reg = new ProfileRegistry();  // leaked: outlives
                                                        // worker threads
  return *reg;
}

ThreadProfile& thread_profile() {
  thread_local ThreadProfile* tp = [] {
    auto owned = std::make_unique<ThreadProfile>();
    ThreadProfile* raw = owned.get();
    ProfileRegistry& reg = profile_registry();
    const fms::MutexLock lock(reg.mu);
    reg.profiles.push_back(std::move(owned));
    return raw;
  }();
  return *tp;
}

int child_index(ThreadProfile& tp, int parent, const char* name)
    FMS_REQUIRES(tp.mu) {
  for (const auto& [child_name, child_idx] : tp.nodes[parent].children) {
    if (child_name == name || std::strcmp(child_name, name) == 0) {
      return child_idx;
    }
  }
  const int idx = static_cast<int>(tp.nodes.size());
  Node node;
  node.name = name;
  node.parent = parent;
  tp.nodes.push_back(node);
  tp.nodes[parent].children.emplace_back(name, idx);
  return idx;
}

// Merged (cross-thread) tree used by collect_profile. std::map keys give
// the lexicographic child order the report promises.
struct MergedNode {
  std::uint64_t calls = 0;
  std::uint64_t incl_ns = 0;
  std::uint64_t child_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t allocs = 0;
  std::map<std::string, MergedNode> children;
};

void merge_thread_tree(const ThreadProfile& tp, int idx, MergedNode* into)
    FMS_REQUIRES(tp.mu) {
  const Node& node = tp.nodes[static_cast<std::size_t>(idx)];
  into->calls += node.calls;
  into->incl_ns += node.incl_ns;
  into->child_ns += node.child_ns;
  into->bytes += node.bytes;
  into->alloc_bytes += node.alloc_bytes;
  into->allocs += node.allocs;
  for (const auto& [child_name, child_idx] : node.children) {
    merge_thread_tree(tp, child_idx, &into->children[child_name]);
  }
}

// reset_profiler zeroes counters but keeps each thread's tree shape (so
// open frames stay valid), which leaves husks of earlier measurement
// windows behind. Drop subtrees that saw no activity since the reset.
bool merged_node_is_empty(const MergedNode& node) {
  if (node.calls != 0 || node.bytes != 0 || node.alloc_bytes != 0 ||
      node.allocs != 0) {
    return false;
  }
  for (const auto& [child_name, child] : node.children) {
    if (!merged_node_is_empty(child)) return false;
  }
  return true;
}

void flatten_merged(const MergedNode& node, const std::string& path,
                    const std::string& name, int depth,
                    std::vector<ZoneStats>* out) {
  if (depth >= 0) {
    ZoneStats z;
    z.path = path;
    z.name = name;
    z.depth = depth;
    z.calls = node.calls;
    z.incl_ns = node.incl_ns;
    z.excl_ns = node.incl_ns > node.child_ns ? node.incl_ns - node.child_ns
                                             : 0;
    z.bytes = node.bytes;
    z.alloc_bytes = node.alloc_bytes;
    z.allocs = node.allocs;
    out->push_back(std::move(z));
  }
  for (const auto& [child_name, child] : node.children) {
    if (merged_node_is_empty(child)) continue;
    const std::string child_path =
        depth >= 0 ? path + "/" + child_name : child_name;
    flatten_merged(child, child_path, child_name, depth + 1, out);
  }
}

}  // namespace

namespace detail {

void zone_enter(const char* name) {
  ThreadProfile& tp = thread_profile();
  const fms::MutexLock lock(tp.mu);
  const int parent = tp.stack.empty() ? 0 : tp.stack.back().node;
  const int idx = child_index(tp, parent, name);
  tp.nodes[static_cast<std::size_t>(idx)].calls += 1;
  // Clock read last: zone time excludes the bookkeeping above.
  tp.stack.push_back(Frame{idx, thread_cpu_ns()});
}

void zone_exit() {
  // Clock read first, symmetric with zone_enter.
  const std::uint64_t now = thread_cpu_ns();
  ThreadProfile& tp = thread_profile();
  const fms::MutexLock lock(tp.mu);
  if (tp.stack.empty()) return;  // reset_profiler raced an exit; drop it
  const Frame frame = tp.stack.back();
  tp.stack.pop_back();
  const std::uint64_t dur = now > frame.start_ns ? now - frame.start_ns : 0;
  Node& node = tp.nodes[static_cast<std::size_t>(frame.node)];
  node.incl_ns += dur;
  tp.nodes[static_cast<std::size_t>(node.parent)].child_ns += dur;
}

void zone_add_bytes(std::uint64_t bytes) {
  ThreadProfile& tp = thread_profile();
  const fms::MutexLock lock(tp.mu);
  const int idx = tp.stack.empty() ? 0 : tp.stack.back().node;
  tp.nodes[static_cast<std::size_t>(idx)].bytes += bytes;
}

}  // namespace detail

void profile_note_alloc(std::size_t bytes) {
  if (!profiling_enabled()) return;
  ThreadProfile& tp = thread_profile();
  const fms::MutexLock lock(tp.mu);
  const int idx = tp.stack.empty() ? 0 : tp.stack.back().node;
  Node& node = tp.nodes[static_cast<std::size_t>(idx)];
  node.alloc_bytes += bytes;
  node.allocs += 1;
}

void set_profiling_enabled(bool on) {
  detail::profiling_flag().store(on, std::memory_order_relaxed);
}

void reset_profiler() {
  ProfileRegistry& reg = profile_registry();
  const fms::MutexLock reg_lock(reg.mu);
  for (auto& tp : reg.profiles) {
    const fms::MutexLock lock(tp->mu);
    for (Node& node : tp->nodes) {
      node.calls = 0;
      node.incl_ns = 0;
      node.child_ns = 0;
      node.bytes = 0;
      node.alloc_bytes = 0;
      node.allocs = 0;
    }
    // Open zones restart from now so their partial time is discarded;
    // re-count them as in-flight calls.
    const std::uint64_t now = thread_cpu_ns();
    for (Frame& frame : tp->stack) {
      frame.start_ns = now;
      tp->nodes[static_cast<std::size_t>(frame.node)].calls += 1;
    }
  }
}

ProfileReport collect_profile() {
  MergedNode root;
  {
    ProfileRegistry& reg = profile_registry();
    const fms::MutexLock reg_lock(reg.mu);
    for (auto& tp : reg.profiles) {
      const fms::MutexLock lock(tp->mu);
      merge_thread_tree(*tp, 0, &root);
    }
  }
  ProfileReport report;
  flatten_merged(root, "", "", -1, &report.zones);
  // Allocations that happened outside any zone live on the root; surface
  // them so the ledger in the report always sums to the global one.
  if (root.allocs > 0 || root.bytes > 0) {
    ZoneStats unzoned;
    unzoned.path = "(unzoned)";
    unzoned.name = "(unzoned)";
    unzoned.depth = 0;
    unzoned.bytes = root.bytes;
    unzoned.alloc_bytes = root.alloc_bytes;
    unzoned.allocs = root.allocs;
    report.zones.push_back(std::move(unzoned));
  }
  return report;
}

std::string self_time_table(const ProfileReport& report,
                            std::size_t max_rows) {
  std::vector<const ZoneStats*> rows;
  rows.reserve(report.zones.size());
  for (const ZoneStats& z : report.zones) rows.push_back(&z);
  std::sort(rows.begin(), rows.end(),
            [](const ZoneStats* a, const ZoneStats* b) {
              if (a->excl_ns != b->excl_ns) return a->excl_ns > b->excl_ns;
              return a->path < b->path;  // deterministic tie-break
            });
  if (rows.size() > max_rows) rows.resize(max_rows);

  std::uint64_t total_excl = 0;
  for (const ZoneStats& z : report.zones) total_excl += z.excl_ns;

  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%10s %6s %10s %10s %9s %8s  %s\n",
                "self_ms", "self%", "incl_ms", "calls", "alloc_kb",
                "allocs", "zone");
  out += line;
  for (const ZoneStats* z : rows) {
    const double self_ms = static_cast<double>(z->excl_ns) / 1e6;
    const double incl_ms = static_cast<double>(z->incl_ns) / 1e6;
    const double pct =
        total_excl == 0 ? 0.0
                        : 100.0 * static_cast<double>(z->excl_ns) /
                              static_cast<double>(total_excl);
    const double alloc_kb = static_cast<double>(z->alloc_bytes) / 1024.0;
    std::snprintf(line, sizeof(line),
                  "%10.3f %5.1f%% %10.3f %10llu %9.1f %8llu  %s\n", self_ms,
                  pct, incl_ms, static_cast<unsigned long long>(z->calls),
                  alloc_kb, static_cast<unsigned long long>(z->allocs),
                  z->path.c_str());
    out += line;
  }
  return out;
}

void emit_profile_telemetry(const ProfileReport& report) {
  if (!telemetry_enabled()) return;
  Telemetry& telemetry = Telemetry::instance();
  MetricsRegistry& registry = telemetry.registry();
  for (const ZoneStats& z : report.zones) {
    TraceEvent event;
    event.type = "profile";
    event.name = z.path;
    event.round = telemetry.round();
    event.fields.emplace_back("depth", static_cast<double>(z.depth));
    event.fields.emplace_back("calls", static_cast<double>(z.calls));
    event.fields.emplace_back("incl_ns", static_cast<double>(z.incl_ns));
    event.fields.emplace_back("excl_ns", static_cast<double>(z.excl_ns));
    event.fields.emplace_back("bytes", static_cast<double>(z.bytes));
    event.fields.emplace_back("alloc_bytes",
                              static_cast<double>(z.alloc_bytes));
    event.fields.emplace_back("allocs", static_cast<double>(z.allocs));
    telemetry.emit(std::move(event));

    registry.gauge("fms.prof." + z.path + ".excl_ns")
        .set(static_cast<double>(z.excl_ns));
    registry.gauge("fms.prof." + z.path + ".incl_ns")
        .set(static_cast<double>(z.incl_ns));
    registry.gauge("fms.prof." + z.path + ".calls")
        .set(static_cast<double>(z.calls));
  }
  const AllocStats alloc = alloc_stats();
  registry.gauge("fms.alloc.allocs").set(static_cast<double>(alloc.allocs));
  registry.gauge("fms.alloc.frees").set(static_cast<double>(alloc.frees));
  registry.gauge("fms.alloc.total_bytes")
      .set(static_cast<double>(alloc.total_bytes));
  registry.gauge("fms.alloc.live_bytes")
      .set(static_cast<double>(alloc.live_bytes));
  registry.gauge("fms.alloc.peak_live_bytes")
      .set(static_cast<double>(alloc.peak_live_bytes));
  registry.gauge("fms.rss.peak_bytes")
      .set(static_cast<double>(peak_rss_bytes()));
}

std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
  }
#endif
  return 0;
}

}  // namespace fms::obs
