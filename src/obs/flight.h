// Crash flight recorder: a bounded per-participant ring buffer of recent
// lifecycle events, dumped for postmortem debugging when a run dies.
//
// A 10^5-participant campaign cannot afford full tracing, but when round
// 3412 aborts you still want the last N lifecycle events of every
// participant that touched it. The recorder keeps exactly that: each
// participant owns a fixed-capacity ring (plus one for server-wide
// events), so memory is O(participants * N * sizeof(event)) regardless
// of run length.
//
// Dumps are triggered three ways (see src/core/search.cpp and
// install_crash_handlers):
//   * crash — an uncaught exception or std::terminate;
//   * quorum failure — a round committed below quorum;
//   * any detector's CRIT transition in the health monitor.
// Each dump rewrites the configured file (latest state wins — it is a
// postmortem artifact, not a log), one JSON object per line with a
// header line carrying the reason.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/obs/trace_ctx.h"

namespace fms::obs {

class FlightRecorder {
 public:
  explicit FlightRecorder(int capacity_per_participant);

  // Appends one event to its participant's ring (oldest evicted first).
  void record(const LifecycleEvent& ev);

  // Rewrites `path` with every ring's contents, oldest first, participants
  // in ascending order. The first line is a header:
  //   {"type":"flight_header","reason":"...","events":N}
  void dump(const std::string& path, const std::string& reason) const;
  // Same, onto an already-open stream (the terminate handler writes to a
  // path it re-opens; tests capture via tmpfile).
  void dump_stream(std::FILE* out, const std::string& reason) const;

  int capacity() const { return capacity_; }
  std::size_t num_dumps() const;
  // Ring contents for one participant, oldest first (tests).
  std::vector<LifecycleEvent> events_for(int participant) const;

 private:
  struct Ring {
    std::vector<LifecycleEvent> slots;
    std::size_t next = 0;   // insertion cursor
    std::size_t count = 0;  // filled slots (<= capacity)
  };

  mutable fms::Mutex mu_;
  int capacity_;  // const after construction
  // participant (-1 = server) -> ring
  std::map<int, Ring> rings_ FMS_GUARDED_BY(mu_);
  mutable std::size_t dumps_ FMS_GUARDED_BY(mu_) = 0;
};

// Installs process-wide abnormal-exit hooks (idempotent):
//   * a std::terminate handler that dumps the active flight recorder
//     (reason "crash") and flushes every telemetry sink before chaining
//     to the previous handler;
//   * an atexit hook that flushes telemetry sinks, so JSONL/CSV tails
//     buffered in ofstreams survive exit paths that skip Telemetry
//     destructors.
// Called by Telemetry::configure once telemetry or tracing is enabled.
void install_crash_handlers();

}  // namespace fms::obs
