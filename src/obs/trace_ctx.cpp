#include "src/obs/trace_ctx.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "src/common/check.h"
#include "src/obs/flight.h"
#include "src/obs/sinks.h"

namespace fms::obs {
namespace {

// Same mixer family the fault injector uses: full-avalanche, so adjacent
// (seed, round) pairs produce unrelated ids.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Sim seconds -> integer microsecond ticks (Chrome trace "ts"/"dur").
long long sim_us(double seconds) {
  return static_cast<long long>(std::llround(seconds * 1e6));
}

void append_hex_id(std::string& out, std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  out += buf;
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kDispatch: return "dispatch";
    case Stage::kTransmit: return "transmit";
    case Stage::kLocalTrain: return "local_train";
    case Stage::kFault: return "fault";
    case Stage::kArrive: return "arrive";
    case Stage::kStale: return "stale";
    case Stage::kScreen: return "screen";
    case Stage::kAggregate: return "aggregate";
    case Stage::kDrop: return "drop";
    case Stage::kQuorum: return "quorum";
  }
  return "unknown";
}

std::uint64_t make_trace_id(std::uint64_t seed, int round) {
  // +1 keeps round 0 distinct from the seed-only hash.
  return splitmix64(splitmix64(seed) ^
                    static_cast<std::uint64_t>(round + 1));
}

std::uint64_t make_span_id(std::uint64_t trace_id, int participant,
                           Stage stage) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(participant + 2) << 8) ^
      static_cast<std::uint64_t>(stage);
  return splitmix64(trace_id ^ splitmix64(key));
}

TraceContext& TraceContext::instance() {
  static TraceContext ctx;
  return ctx;
}

void TraceContext::configure(bool enabled, std::uint64_t seed,
                             std::string chrome_path, int flight_capacity,
                             std::string flight_dump_path) {
  {
    fms::MutexLock lock(mu_);
    seed_ = seed;
    chrome_path_ = std::move(chrome_path);
    flight_dump_path_ = std::move(flight_dump_path);
    events_.clear();
    base_s_ = 0.0;
    flight_ = flight_capacity > 0
                  ? std::make_shared<FlightRecorder>(flight_capacity)
                  : nullptr;
  }
  round_.store(-1, std::memory_order_relaxed);
  set_tracing_enabled(enabled);
}

void TraceContext::begin_round(int round) {
  round_.store(round, std::memory_order_relaxed);
}

void TraceContext::end_round(double round_sim_duration_s) {
  fms::MutexLock lock(mu_);
  // A round in which nothing moved (everyone offline) still occupies a
  // nonzero window so successive rounds never collapse onto one tick.
  base_s_ += std::isfinite(round_sim_duration_s) && round_sim_duration_s > 0.0
                 ? round_sim_duration_s
                 : 1e-6;
}

double TraceContext::round_base_s() const {
  fms::MutexLock lock(mu_);
  return base_s_;
}

void TraceContext::record(int participant, Stage stage, double offset_s,
                          double dur_s, double value, std::string detail,
                          int origin_round) {
  if (!tracing_enabled()) return;
  LifecycleEvent ev;
  ev.round = round_.load(std::memory_order_relaxed);
  ev.origin_round = origin_round >= 0 ? origin_round : ev.round;
  ev.participant = participant;
  ev.stage = stage;
  ev.dur_s = dur_s;
  ev.value = value;
  ev.detail = std::move(detail);
  fms::MutexLock lock(mu_);
  ev.ts_s = base_s_ + (std::isfinite(offset_s) ? offset_s : 0.0);
  ev.trace_id = make_trace_id(seed_, ev.origin_round);
  ev.span_id = make_span_id(ev.trace_id, participant, stage);
  if (flight_) flight_->record(ev);
  if (!chrome_path_.empty()) events_.push_back(std::move(ev));
}

void TraceContext::export_chrome() const {
  std::string path;
  std::vector<LifecycleEvent> events;
  {
    fms::MutexLock lock(mu_);
    if (chrome_path_.empty() || events_.empty()) return;
    path = chrome_path_;
    events = events_;
  }
  std::ofstream out(path);
  FMS_CHECK_MSG(out.good(), "cannot open chrome trace file " << path);
  out << chrome_trace_json(events);
}

std::string TraceContext::chrome_path() const {
  fms::MutexLock lock(mu_);
  return chrome_path_;
}

std::string TraceContext::flight_dump_path() const {
  fms::MutexLock lock(mu_);
  return flight_dump_path_;
}

std::shared_ptr<FlightRecorder> TraceContext::flight() const {
  fms::MutexLock lock(mu_);
  return flight_;
}

void TraceContext::dump_flight(const std::string& reason) const {
  std::shared_ptr<FlightRecorder> fl;
  std::string path;
  {
    fms::MutexLock lock(mu_);
    fl = flight_;
    path = flight_dump_path_;
  }
  if (fl && !path.empty()) fl->dump(path, reason);
}

std::size_t TraceContext::num_events() const {
  fms::MutexLock lock(mu_);
  return events_.size();
}

std::vector<LifecycleEvent> TraceContext::events_snapshot() const {
  fms::MutexLock lock(mu_);
  return events_;
}

void TraceContext::reset() {
  fms::MutexLock lock(mu_);
  events_.clear();
  flight_.reset();
  chrome_path_.clear();
  flight_dump_path_.clear();
  base_s_ = 0.0;
  round_.store(-1, std::memory_order_relaxed);
}

std::string chrome_trace_json(const std::vector<LifecycleEvent>& events) {
  std::string out;
  out.reserve(256 + events.size() * 192);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":"
         "\"fms_trace_ctx\",\"clock\":\"sim\"},\"traceEvents\":[\n";

  // Metadata first: one process, one named track per participant plus the
  // server track (-1 -> tid 0; participant k -> tid k + 1). Sorted ids
  // keep the output deterministic regardless of recording interleaving.
  std::map<int, bool> participants;
  for (const LifecycleEvent& ev : events) participants[ev.participant] = true;
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"fms federated search (sim time)\"}}";
  for (const auto& [p, unused] : participants) {
    (void)unused;
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_double(out, p + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    out += p < 0 ? std::string("server") :
                   "participant " + std::to_string(p);
    out += "\"}}";
  }

  for (const LifecycleEvent& ev : events) {
    out += ",\n{\"name\":\"";
    out += stage_name(ev.stage);
    out += "\",\"cat\":\"lifecycle\",\"ph\":\"";
    const bool span = ev.dur_s > 0.0;
    out += span ? "X" : "i";
    out += "\",\"pid\":1,\"tid\":";
    append_double(out, ev.participant + 1);
    out += ",\"ts\":";
    append_double(out, static_cast<double>(sim_us(ev.ts_s)));
    if (span) {
      out += ",\"dur\":";
      append_double(out, static_cast<double>(sim_us(ev.dur_s)));
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"args\":{\"round\":";
    append_double(out, ev.round);
    out += ",\"origin_round\":";
    append_double(out, ev.origin_round);
    out += ",\"participant\":";
    append_double(out, ev.participant);
    out += ",\"value\":";
    append_double(out, ev.value);
    if (!ev.detail.empty()) {
      out += ",\"detail\":\"";
      out += json_escape(ev.detail);
      out += "\"";
    }
    out += ",\"trace_id\":\"";
    append_hex_id(out, ev.trace_id);
    out += "\",\"span_id\":\"";
    append_hex_id(out, ev.span_id);
    out += "\"}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace fms::obs
