#include "src/obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace fms::obs {
namespace {

// ---------------------------------------------------------------------
// Small tolerant JSON reader. The report consumes files this codebase
// emitted (flat trace lines, health.json, BENCH_perf.json, peak files),
// but inputs may be truncated or hand-edited, so parsing returns false
// instead of throwing and the caller degrades to a placeholder.

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<std::pair<std::string, JValue>> obj;  // insertion order
  std::vector<JValue> arr;

  const JValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double number_or(const std::string& key, double fallback) const {
    const JValue* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->num : fallback;
  }
  std::string string_or(const std::string& key,
                        const std::string& fallback) const {
    const JValue* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : fallback;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse(JValue* out) {
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(JValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->kind = JValue::Kind::kString;
      return parse_string(&out->str);
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      const std::size_t len = c == 't' ? 4 : 5;
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      out->kind = JValue::Kind::kBool;
      out->boolean = c == 't';
      return true;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return false;
      pos_ += 4;
      out->kind = JValue::Kind::kNull;
      return true;
    }
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<std::size_t>(end - start);
    out->kind = JValue::Kind::kNumber;
    out->num = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u':
            // Escaped control characters are never semantic here.
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;
            *out += '?';
            break;
          default: *out += e;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool parse_object(JValue* out) {
    out->kind = JValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JValue value;
      if (!parse_value(&value)) return false;
      out->obj.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(JValue* out) {
    out->kind = JValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JValue value;
      if (!parse_value(&value)) return false;
      out->arr.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool parse_json(const std::string& text, JValue* out) {
  JsonReader reader(text);
  return reader.parse(out);
}

bool read_file(const std::string& path, std::string* out) {
  if (path.empty()) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// ---------------------------------------------------------------------
// Trace model.

struct Event {
  std::string type;
  std::string name;
  int round = -1;
  std::vector<std::pair<std::string, double>> fields;  // numeric, in order
};

std::vector<Event> parse_trace_text(const std::string& text) {
  std::vector<Event> events;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JValue v;
    if (!parse_json(line, &v) || v.kind != JValue::Kind::kObject) continue;
    Event ev;
    ev.type = v.string_or("type", "");
    ev.name = v.string_or("name", "");
    ev.round = static_cast<int>(v.number_or("round", -1.0));
    for (const auto& [key, value] : v.obj) {
      if (value.kind != JValue::Kind::kNumber) continue;
      if (key == "round") continue;
      ev.fields.emplace_back(key, value.num);
    }
    events.push_back(std::move(ev));
  }
  return events;
}

double field_or(const Event& ev, const std::string& key, double fallback) {
  for (const auto& [k, v] : ev.fields) {
    if (k == key) return v;
  }
  return fallback;
}

// ---------------------------------------------------------------------
// HTML helpers. All numeric output goes through fmt() so the generated
// bytes are stable for golden-file comparison.

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_fixed(double v, int digits) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

void section_open(std::string* out, const std::string& title) {
  *out += "<section><h2>" + html_escape(title) + "</h2>\n";
}

void section_close(std::string* out) { *out += "</section>\n"; }

void placeholder(std::string* out, const std::string& what) {
  *out += "<p class=\"nodata\">no " + html_escape(what) + " data</p>\n";
}

// ---------------------------------------------------------------------
// Sections.

void render_timeline(std::string* out, const std::vector<Event>& rounds) {
  section_open(out, "Round timeline");
  if (rounds.empty()) {
    placeholder(out, "trace");
    section_close(out);
    return;
  }
  const double width = 720.0, height = 150.0, lane_h = 10.0;
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const Event& ev : rounds) {
    for (const char* key : {"mean_reward", "moving_avg"}) {
      const double v = field_or(ev, key, 0.0);
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  if (hi <= lo) hi = lo + 1.0;
  const double n = static_cast<double>(rounds.size());
  auto x_of = [&](std::size_t i) {
    return n <= 1.0 ? 0.0
                    : width * static_cast<double>(i) / (n - 1.0);
  };
  auto y_of = [&](double v) {
    return (height - lane_h - 4.0) * (1.0 - (v - lo) / (hi - lo));
  };
  auto polyline = [&](const char* key, const char* cls) {
    std::string pts;
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      if (!pts.empty()) pts += ' ';
      pts += fmt_fixed(x_of(i), 1) + "," +
             fmt_fixed(y_of(field_or(rounds[i], key, 0.0)), 1);
    }
    *out += "<polyline class=\"" + std::string(cls) + "\" points=\"" + pts +
            "\"/>\n";
  };
  *out += "<svg viewBox=\"0 0 " + fmt(width) + " " + fmt(height) +
          "\" class=\"timeline\">\n";
  polyline("mean_reward", "reward");
  polyline("moving_avg", "moving");
  // Degradation lane: one cell per round, shaded by degrade_mode.
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const int mode =
        static_cast<int>(field_or(rounds[i], "degrade_mode", 0.0));
    const double cell_w = std::max(1.0, width / n);
    const char* shade = mode <= 0   ? "#d7e8d7"
                        : mode == 1 ? "#f4e3b2"
                        : mode == 2 ? "#f3c98a"
                                    : "#e59b9b";
    *out += "<rect x=\"" + fmt_fixed(x_of(i), 1) + "\" y=\"" +
            fmt(height - lane_h) + "\" width=\"" + fmt_fixed(cell_w, 1) +
            "\" height=\"" + fmt(lane_h) + "\" fill=\"" + shade + "\"/>\n";
  }
  *out += "</svg>\n";
  const Event& last = rounds.back();
  *out += "<p>" + fmt(n) + " rounds; final mean_reward " +
          fmt(field_or(last, "mean_reward", 0.0)) + ", moving_avg " +
          fmt(field_or(last, "moving_avg", 0.0)) + ", reward range [" +
          fmt(lo) + ", " + fmt(hi) +
          "]. Bottom lane: degradation ladder (green=normal).</p>\n";
  section_close(out);
}

// Latest cumulative snapshot per zone/op name: profile and work events
// re-emit cumulative counters every round, so "the run's totals" are the
// last event for each name.
std::map<std::string, Event> latest_by_name(const std::vector<Event>& events,
                                            const std::string& type) {
  std::map<std::string, Event> latest;
  for (const Event& ev : events) {
    if (ev.type == type) latest[ev.name] = ev;
  }
  return latest;
}

void render_phases(std::string* out,
                   const std::map<std::string, Event>& zones) {
  section_open(out, "Per-phase exclusive time");
  if (zones.empty()) {
    placeholder(out, "profile");
    section_close(out);
    return;
  }
  std::vector<std::pair<std::string, const Event*>> rows;
  rows.reserve(zones.size());
  double total_excl = 0.0;
  for (const auto& [name, ev] : zones) {
    rows.emplace_back(name, &ev);
    total_excl += field_or(ev, "excl_ns", 0.0);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    const double ea = field_or(*a.second, "excl_ns", 0.0);
    const double eb = field_or(*b.second, "excl_ns", 0.0);
    if (ea != eb) return ea > eb;
    // fms-lint: allow(float-eq) -- equal-keys fall through to the name
    // tie-break; either branch is a valid strict weak order.
    return a.first < b.first;
  });
  if (rows.size() > 15) rows.resize(15);
  *out += "<table><tr><th>zone</th><th>self ms</th><th>self %</th>"
          "<th>incl ms</th><th>calls</th><th></th></tr>\n";
  for (const auto& [name, ev] : rows) {
    const double excl = field_or(*ev, "excl_ns", 0.0);
    const double pct = total_excl > 0.0 ? 100.0 * excl / total_excl : 0.0;
    *out += "<tr><td>" + html_escape(name) + "</td><td>" +
            fmt_fixed(excl / 1e6, 3) + "</td><td>" + fmt_fixed(pct, 1) +
            "</td><td>" + fmt_fixed(field_or(*ev, "incl_ns", 0.0) / 1e6, 3) +
            "</td><td>" + fmt(field_or(*ev, "calls", 0.0)) +
            "</td><td><div class=\"bar\" style=\"width:" +
            fmt_fixed(std::min(100.0, pct) * 2.0, 1) + "px\"></div></td>"
            "</tr>\n";
  }
  *out += "</table>\n";
  section_close(out);
}

void render_work(std::string* out, const std::map<std::string, Event>& ops) {
  section_open(out, "Work ledger");
  if (ops.empty()) {
    placeholder(out, "work-ledger");
    section_close(out);
    return;
  }
  std::vector<std::pair<std::string, const Event*>> rows;
  for (const auto& [name, ev] : ops) rows.emplace_back(name, &ev);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    const double fa = field_or(*a.second, "flops", 0.0);
    const double fb = field_or(*b.second, "flops", 0.0);
    if (fa != fb) return fa > fb;
    // fms-lint: allow(float-eq) -- equal-keys fall through to the name
    // tie-break; either branch is a valid strict weak order.
    return a.first < b.first;
  });
  *out += "<table><tr><th>op</th><th>calls</th><th>MFLOPs</th>"
          "<th>read MB</th><th>written MB</th><th>AI</th></tr>\n";
  for (const auto& [name, ev] : rows) {
    const double flops = field_or(*ev, "flops", 0.0);
    const double br = field_or(*ev, "bytes_read", 0.0);
    const double bw = field_or(*ev, "bytes_written", 0.0);
    const double ai = br + bw > 0.0 ? flops / (br + bw) : 0.0;
    *out += "<tr><td>" + html_escape(name) + "</td><td>" +
            fmt(field_or(*ev, "calls", 0.0)) + "</td><td>" +
            fmt_fixed(flops / 1e6, 3) + "</td><td>" +
            fmt_fixed(br / 1e6, 3) + "</td><td>" + fmt_fixed(bw / 1e6, 3) +
            "</td><td>" + fmt_fixed(ai, 3) + "</td></tr>\n";
  }
  *out += "</table>\n";
  section_close(out);
}

struct PeakNumbers {
  bool present = false;
  double scalar_gflops = 0.0;
  double vector_gflops = 0.0;
  double stream_gbps = 0.0;
};

// Op-level roofline scatter: achieved GFLOP/s = ledger FLOPs over the
// summed inclusive ns of profiler zones whose leaf name matches the op.
void render_roofline(std::string* out,
                     const std::map<std::string, Event>& ops,
                     const std::map<std::string, Event>& zones,
                     const PeakNumbers& peak) {
  section_open(out, "Op roofline");
  if (ops.empty()) {
    placeholder(out, "work-ledger");
    section_close(out);
    return;
  }
  struct Point {
    std::string op;
    double ai = 0.0;
    double gflops = 0.0;
  };
  std::vector<Point> points;
  for (const auto& [op, ev] : ops) {
    const double flops = field_or(ev, "flops", 0.0);
    const double br = field_or(ev, "bytes_read", 0.0);
    const double bw = field_or(ev, "bytes_written", 0.0);
    if (flops <= 0.0 || br + bw <= 0.0) continue;
    double ns = 0.0;
    for (const auto& [path, zev] : zones) {
      const std::size_t slash = path.rfind('/');
      const std::string leaf =
          slash == std::string::npos ? path : path.substr(slash + 1);
      if (leaf == op) ns += field_or(zev, "incl_ns", 0.0);
    }
    if (ns <= 0.0) continue;
    Point pt;
    pt.op = op;
    pt.ai = flops / (br + bw);
    pt.gflops = flops / ns;  // FLOPs per ns == GFLOP/s
    points.push_back(std::move(pt));
  }
  if (points.empty()) {
    placeholder(out, "roofline (no op has both work and zone time)");
    section_close(out);
    return;
  }
  // Log-log axes: AI in [1e-2, 1e2], GF/s in [1e-3, 1e3].
  const double width = 520.0, height = 300.0;
  const double ai_lo = -2.0, ai_hi = 2.0, gf_lo = -3.0, gf_hi = 3.0;
  auto clamp = [](double v, double lo, double hi) {
    return std::min(hi, std::max(lo, v));
  };
  auto x_of = [&](double ai) {
    const double l = clamp(std::log10(ai), ai_lo, ai_hi);
    return width * (l - ai_lo) / (ai_hi - ai_lo);
  };
  auto y_of = [&](double gf) {
    const double l = clamp(std::log10(std::max(gf, 1e-12)), gf_lo, gf_hi);
    return height * (1.0 - (l - gf_lo) / (gf_hi - gf_lo));
  };
  *out += "<svg viewBox=\"0 0 " + fmt(width) + " " + fmt(height) +
          "\" class=\"roofline\">\n";
  if (peak.present && peak.vector_gflops > 0.0 && peak.stream_gbps > 0.0) {
    // Compute roof (horizontal) and memory roof (45-degree in log-log).
    const double ridge_ai = peak.vector_gflops / peak.stream_gbps;
    *out += "<polyline class=\"roof\" points=\"" +
            fmt_fixed(x_of(std::pow(10.0, ai_lo)), 1) + "," +
            fmt_fixed(y_of(std::pow(10.0, ai_lo) * peak.stream_gbps), 1) +
            " " + fmt_fixed(x_of(ridge_ai), 1) + "," +
            fmt_fixed(y_of(peak.vector_gflops), 1) + " " +
            fmt_fixed(x_of(std::pow(10.0, ai_hi)), 1) + "," +
            fmt_fixed(y_of(peak.vector_gflops), 1) + "\"/>\n";
  }
  for (const Point& pt : points) {
    *out += "<circle cx=\"" + fmt_fixed(x_of(pt.ai), 1) + "\" cy=\"" +
            fmt_fixed(y_of(pt.gflops), 1) +
            "\" r=\"4\"><title>" + html_escape(pt.op) + ": " +
            fmt_fixed(pt.gflops, 3) + " GF/s at AI " + fmt_fixed(pt.ai, 3) +
            "</title></circle>\n";
  }
  *out += "</svg>\n";
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.gflops != b.gflops) return a.gflops > b.gflops;
    // fms-lint: allow(float-eq) -- equal-keys fall through to the name
    // tie-break; either branch is a valid strict weak order.
    return a.op < b.op;
  });
  *out += "<table><tr><th>op</th><th>GF/s</th><th>AI</th>";
  if (peak.present) *out += "<th>% of roof</th>";
  *out += "</tr>\n";
  for (const Point& pt : points) {
    *out += "<tr><td>" + html_escape(pt.op) + "</td><td>" +
            fmt_fixed(pt.gflops, 3) + "</td><td>" + fmt_fixed(pt.ai, 3) +
            "</td>";
    if (peak.present) {
      const double roof =
          std::min(peak.vector_gflops, pt.ai * peak.stream_gbps);
      const double pct = roof > 0.0 ? 100.0 * pt.gflops / roof : 0.0;
      *out += "<td>" + fmt_fixed(pct, 1) + "</td>";
    }
    *out += "</tr>\n";
  }
  *out += "</table>\n";
  if (peak.present) {
    *out += "<p>machine peak: vector " + fmt_fixed(peak.vector_gflops, 2) +
            " GF/s, scalar " + fmt_fixed(peak.scalar_gflops, 2) +
            " GF/s, stream " + fmt_fixed(peak.stream_gbps, 2) +
            " GB/s.</p>\n";
  }
  section_close(out);
}

void render_health(std::string* out, const std::string& health_json) {
  section_open(out, "Search health");
  JValue v;
  if (health_json.empty() || !parse_json(health_json, &v) ||
      v.kind != JValue::Kind::kObject) {
    placeholder(out, "health");
    section_close(out);
    return;
  }
  const std::string worst = v.string_or("worst", "?");
  *out += "<p>worst state over " + fmt(v.number_or("rounds", 0.0)) +
          " rounds: <span class=\"state-" + html_escape(worst) + "\">" +
          html_escape(worst) + "</span></p>\n";
  const JValue* detectors = v.find("detectors");
  if (detectors == nullptr || detectors->kind != JValue::Kind::kArray) {
    section_close(out);
    return;
  }
  *out += "<table><tr><th>detector</th><th>state</th><th>value</th>"
          "<th>warn</th><th>crit</th><th>warn rounds</th>"
          "<th>crit rounds</th></tr>\n";
  for (const JValue& d : detectors->arr) {
    if (d.kind != JValue::Kind::kObject) continue;
    const std::string state = d.string_or("state", "?");
    *out += "<tr><td>" + html_escape(d.string_or("name", "?")) +
            "</td><td class=\"state-" + html_escape(state) + "\">" +
            html_escape(state) + "</td><td>" +
            fmt(d.number_or("value", 0.0)) + "</td><td>" +
            fmt(d.number_or("warn", 0.0)) + "</td><td>" +
            fmt(d.number_or("crit", 0.0)) + "</td><td>" +
            fmt(d.number_or("warn_rounds", 0.0)) + "</td><td>" +
            fmt(d.number_or("crit_rounds", 0.0)) + "</td></tr>\n";
  }
  *out += "</table>\n";
  section_close(out);
}

void render_metrics(std::string* out, const std::string& csv) {
  section_open(out, "Metrics");
  if (csv.empty()) {
    placeholder(out, "metrics");
    section_close(out);
    return;
  }
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  std::vector<std::pair<std::string, std::string>> rows;
  while (std::getline(in, line)) {
    const std::size_t c1 = line.find(',');
    if (c1 == std::string::npos) continue;
    const std::size_t c2 = line.find(',', c1 + 1);
    if (c2 == std::string::npos) continue;
    const std::size_t c3 = line.find(',', c2 + 1);
    const std::string name = line.substr(0, c1);
    // Zone/op gauges are rendered in their own sections; keep the
    // metrics table for everything else.
    if (name.rfind("fms.prof.", 0) == 0 || name.rfind("fms.work.", 0) == 0) {
      continue;
    }
    rows.emplace_back(
        name, line.substr(c2 + 1, c3 == std::string::npos
                                      ? std::string::npos
                                      : c3 - c2 - 1));
  }
  if (rows.empty()) {
    placeholder(out, "metrics");
    section_close(out);
    return;
  }
  std::sort(rows.begin(), rows.end());
  *out += "<table class=\"metrics\"><tr><th>metric</th><th>value</th></tr>\n";
  for (const auto& [name, value] : rows) {
    *out += "<tr><td>" + html_escape(name) + "</td><td>" +
            html_escape(value) + "</td></tr>\n";
  }
  *out += "</table>\n";
  section_close(out);
}

struct HistorySeries {
  std::vector<double> medians;  // oldest -> newest per history row
  std::string last_sha;
};

void render_bench(std::string* out, const std::string& bench_json,
                  const std::string& history_text,
                  const PeakNumbers& peak) {
  section_open(out, "Benchmarks");
  JValue v;
  if (bench_json.empty() || !parse_json(bench_json, &v) ||
      v.kind != JValue::Kind::kObject) {
    placeholder(out, "bench");
    section_close(out);
    return;
  }
  // History: per-benchmark median series across committed rows.
  std::map<std::string, HistorySeries> history;
  int history_rows = 0;
  {
    std::istringstream in(history_text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      JValue row;
      if (!parse_json(line, &row) || row.kind != JValue::Kind::kObject) {
        continue;
      }
      ++history_rows;
      const std::string sha = row.string_or("git_sha", "?");
      const JValue* benches = row.find("benchmarks");
      if (benches == nullptr) continue;
      for (const auto& [name, b] : benches->obj) {
        HistorySeries& series = history[name];
        series.medians.push_back(b.number_or("median_ns", 0.0));
        series.last_sha = sha;
      }
    }
  }
  const JValue* benches = v.find("benchmarks");
  if (benches == nullptr || benches->kind != JValue::Kind::kObject) {
    placeholder(out, "bench");
    section_close(out);
    return;
  }
  *out += "<table><tr><th>benchmark</th><th>median ns</th><th>GF/s</th>"
          "<th>AI</th>";
  if (peak.present) *out += "<th>% of roof</th>";
  *out += "<th>history</th></tr>\n";
  for (const auto& [name, b] : benches->obj) {
    const double median = b.number_or("median_ns", 0.0);
    const double flops = b.number_or("flops", 0.0);
    const double iters = b.number_or("iters", 1.0);
    const double bytes =
        b.number_or("bytes_read", 0.0) + b.number_or("bytes_written", 0.0);
    const double gf =
        median > 0.0 && iters > 0.0 ? flops / iters / median : 0.0;
    const double ai = bytes > 0.0 ? flops / bytes : 0.0;
    *out += "<tr><td>" + html_escape(name) + "</td><td>" +
            fmt_fixed(median, 1) + "</td><td>" + fmt_fixed(gf, 3) +
            "</td><td>" + fmt_fixed(ai, 3) + "</td>";
    if (peak.present) {
      const double roof = ai > 0.0 ? std::min(peak.vector_gflops,
                                              ai * peak.stream_gbps)
                                   : 0.0;
      *out += "<td>" +
              fmt_fixed(roof > 0.0 ? 100.0 * gf / roof : 0.0, 1) + "</td>";
    }
    // Sparkline of history medians (lower is better).
    *out += "<td>";
    const auto it = history.find(name);
    if (it != history.end() && it->second.medians.size() >= 2) {
      const std::vector<double>& m = it->second.medians;
      double lo = m[0], hi = m[0];
      for (const double x : m) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      if (hi <= lo) hi = lo + 1.0;
      std::string pts;
      for (std::size_t i = 0; i < m.size(); ++i) {
        if (!pts.empty()) pts += ' ';
        pts += fmt_fixed(120.0 * static_cast<double>(i) /
                             static_cast<double>(m.size() - 1),
                         1) +
               "," + fmt_fixed(22.0 * (1.0 - (m[i] - lo) / (hi - lo)) + 1.0,
                               1);
      }
      *out += "<svg viewBox=\"0 0 120 24\" class=\"spark\"><polyline "
              "points=\"" +
              pts + "\"/></svg>";
    } else {
      *out += "&mdash;";
    }
    *out += "</td></tr>\n";
  }
  *out += "</table>\n";
  if (history_rows > 0) {
    *out += "<p>" + fmt(history_rows) +
            " history row(s) in BENCH_history.jsonl.</p>\n";
  }
  section_close(out);
}

const char* kCss =
    "body{font-family:system-ui,sans-serif;margin:24px auto;max-width:960px;"
    "color:#222}h1{border-bottom:2px solid #444}h2{margin-top:32px}"
    "table{border-collapse:collapse;font-size:13px}"
    "td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}"
    "td:first-child,th:first-child{text-align:left}"
    ".nodata{color:#999;font-style:italic}"
    ".bar{background:#6b8cba;height:10px}"
    ".timeline{width:100%;max-width:720px;border:1px solid #ddd}"
    ".timeline .reward{fill:none;stroke:#b55;stroke-width:1.5}"
    ".timeline .moving{fill:none;stroke:#36c;stroke-width:1.5}"
    ".roofline{width:100%;max-width:520px;border:1px solid #ddd}"
    ".roofline circle{fill:#36c}"
    ".roofline .roof{fill:none;stroke:#b55;stroke-width:1.5}"
    ".spark{width:120px;height:24px}"
    ".spark polyline{fill:none;stroke:#36c;stroke-width:1}"
    ".state-OK{color:#283}.state-WARN{color:#b82}.state-CRIT{color:#c33}";

}  // namespace

std::string generate_report_html(const ReportInputs& inputs) {
  std::string trace_text, metrics_csv, health_json, bench_json;
  std::string history_text, peak_json;
  read_file(inputs.trace_jsonl_path, &trace_text);
  read_file(inputs.metrics_csv_path, &metrics_csv);
  read_file(inputs.health_json_path, &health_json);
  read_file(inputs.bench_json_path, &bench_json);
  read_file(inputs.history_jsonl_path, &history_text);
  read_file(inputs.peak_json_path, &peak_json);

  const std::vector<Event> events = parse_trace_text(trace_text);
  std::vector<Event> rounds;
  for (const Event& ev : events) {
    if (ev.type == "round") rounds.push_back(ev);
  }
  const std::map<std::string, Event> zones = latest_by_name(events, "profile");
  const std::map<std::string, Event> ops = latest_by_name(events, "work");

  PeakNumbers peak;
  {
    JValue v;
    if (!peak_json.empty() && parse_json(peak_json, &v) &&
        v.kind == JValue::Kind::kObject) {
      peak.scalar_gflops = v.number_or("scalar_gflops", 0.0);
      peak.vector_gflops = v.number_or("vector_gflops", 0.0);
      peak.stream_gbps = v.number_or("stream_gbps", 0.0);
      peak.present = peak.vector_gflops > 0.0 && peak.stream_gbps > 0.0;
    }
  }

  std::string out;
  out.reserve(1 << 16);
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>";
  out += html_escape(inputs.title);
  out += "</title>\n<style>";
  out += kCss;
  out += "</style>\n</head>\n<body>\n<h1>";
  out += html_escape(inputs.title);
  out += "</h1>\n";
  render_timeline(&out, rounds);
  render_phases(&out, zones);
  render_work(&out, ops);
  render_roofline(&out, ops, zones, peak);
  render_health(&out, health_json);
  render_bench(&out, bench_json, history_text, peak);
  render_metrics(&out, metrics_csv);
  out += "<footer><p>fms_report &middot; self-contained; generated "
         "deterministically from run artifacts.</p></footer>\n"
         "</body></html>\n";
  return out;
}

void write_report_html(const ReportInputs& inputs,
                       const std::string& out_path) {
  const std::string html = generate_report_html(inputs);
  std::ofstream out(out_path);
  FMS_CHECK_MSG(out.good(), "cannot open report file " << out_path);
  out << html;
}

RunDiff diff_runs(const std::string& trace_a_path,
                  const std::string& trace_b_path) {
  RunDiff diff;
  std::string text_a, text_b;
  if (!read_file(trace_a_path, &text_a)) {
    diff.identical = false;
    diff.notes.push_back("cannot read trace A: " + trace_a_path);
    return diff;
  }
  if (!read_file(trace_b_path, &text_b)) {
    diff.identical = false;
    diff.notes.push_back("cannot read trace B: " + trace_b_path);
    return diff;
  }
  std::vector<Event> rounds_a, rounds_b;
  for (Event& ev : parse_trace_text(text_a)) {
    if (ev.type == "round") rounds_a.push_back(std::move(ev));
  }
  for (Event& ev : parse_trace_text(text_b)) {
    if (ev.type == "round") rounds_b.push_back(std::move(ev));
  }
  diff.rounds_a = static_cast<int>(rounds_a.size());
  diff.rounds_b = static_cast<int>(rounds_b.size());
  const std::size_t shared = std::min(rounds_a.size(), rounds_b.size());
  for (std::size_t i = 0; i < shared; ++i) {
    const Event& a = rounds_a[i];
    const Event& b = rounds_b[i];
    if (a.round != b.round) {
      diff.identical = false;
      diff.first_diverging_round = std::min(a.round, b.round);
      diff.first_diverging_field = "(round number)";
      diff.value_a = a.round;
      diff.value_b = b.round;
      return diff;
    }
    const std::size_t nfields = std::min(a.fields.size(), b.fields.size());
    for (std::size_t f = 0; f < nfields; ++f) {
      if (a.fields[f].first != b.fields[f].first) {
        diff.identical = false;
        diff.first_diverging_round = a.round;
        diff.first_diverging_field =
            a.fields[f].first + " vs " + b.fields[f].first;
        return diff;
      }
      // fms-lint: allow(float-eq) -- exact comparison is the point:
      // bit-identical runs must diff clean, anything else must not.
      if (a.fields[f].second != b.fields[f].second) {
        diff.identical = false;
        diff.first_diverging_round = a.round;
        diff.first_diverging_field = a.fields[f].first;
        diff.value_a = a.fields[f].second;
        diff.value_b = b.fields[f].second;
        return diff;
      }
    }
    if (a.fields.size() != b.fields.size()) {
      diff.identical = false;
      diff.first_diverging_round = a.round;
      diff.first_diverging_field = "(field count)";
      diff.value_a = static_cast<double>(a.fields.size());
      diff.value_b = static_cast<double>(b.fields.size());
      return diff;
    }
  }
  if (rounds_a.size() != rounds_b.size()) {
    diff.identical = false;
    diff.first_diverging_round = static_cast<int>(shared);
    diff.first_diverging_field = "(missing round)";
    diff.value_a = static_cast<double>(rounds_a.size());
    diff.value_b = static_cast<double>(rounds_b.size());
    diff.notes.push_back("round counts differ: " +
                         std::to_string(rounds_a.size()) + " vs " +
                         std::to_string(rounds_b.size()));
  }
  return diff;
}

std::string diff_summary(const RunDiff& diff) {
  std::string out;
  if (diff.identical) {
    out = "runs identical across " + std::to_string(diff.rounds_a) +
          " rounds\n";
  } else {
    out = "runs diverge at round " +
          std::to_string(diff.first_diverging_round) + " on field '" +
          diff.first_diverging_field + "' (" + fmt(diff.value_a) + " vs " +
          fmt(diff.value_b) + ")\n";
  }
  for (const std::string& note : diff.notes) out += "note: " + note + "\n";
  return out;
}

std::string generate_diff_html(const RunDiff& diff, const std::string& name_a,
                               const std::string& name_b) {
  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
         "<title>run diff</title>\n<style>";
  out += kCss;
  out += "</style>\n</head>\n<body>\n<h1>run diff</h1>\n";
  out += "<p>A: " + html_escape(name_a) + " (" +
         std::to_string(diff.rounds_a) + " rounds)<br>B: " +
         html_escape(name_b) + " (" + std::to_string(diff.rounds_b) +
         " rounds)</p>\n";
  if (diff.identical) {
    out += "<p class=\"state-OK\">IDENTICAL</p>\n";
  } else {
    out += "<p class=\"state-CRIT\">DIVERGED</p>\n<table>"
           "<tr><th>first diverging round</th><td>" +
           std::to_string(diff.first_diverging_round) +
           "</td></tr><tr><th>field</th><td>" +
           html_escape(diff.first_diverging_field) +
           "</td></tr><tr><th>A value</th><td>" + fmt(diff.value_a) +
           "</td></tr><tr><th>B value</th><td>" + fmt(diff.value_b) +
           "</td></tr></table>\n";
  }
  for (const std::string& note : diff.notes) {
    out += "<p class=\"nodata\">" + html_escape(note) + "</p>\n";
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace fms::obs
