// Phase P3 (retrain the searched architecture from scratch) and phase P4
// (evaluation). Both a centralized and a federated (FedAvg
// gradient-averaging) trainer are provided, matching the paper's two P3
// variants; the federated trainer also powers the FedAvg fixed-model
// baseline in Tables III/IV and the convergence curves of Figs. 9-11.
#pragma once

#include <functional>
#include <vector>

#include "src/common/config.h"
#include "src/data/dataset.h"
#include "src/nn/lr_schedule.h"
#include "src/nn/net.h"
#include "src/nn/optim.h"

namespace fms {

struct TrainPoint {
  int step = 0;          // epoch (centralized) or round (federated)
  double train_acc = 0.0;
  double val_acc = 0.0;  // NaN-free: only recorded on eval steps
};

struct RetrainResult {
  double final_test_accuracy = 0.0;
  double best_test_accuracy = 0.0;
  std::vector<TrainPoint> curve;
};

// Top-1 accuracy over a dataset (eval mode, batched).
double evaluate(TrainableNet& net, const Dataset& data, int batch_size);

// Centralized SGD training for `epochs` passes over the training set.
// An optional schedule anneals the learning rate across epochs (DARTS
// retraining uses cosine annealing); nullptr keeps opts.lr constant.
RetrainResult centralized_train(TrainableNet& net, const Dataset& train,
                                const Dataset& test, int epochs,
                                int batch_size, const SGD::Options& opts,
                                const AugmentConfig* augment, Rng& rng,
                                int eval_every = 1,
                                const LrSchedule* schedule = nullptr);

// Federated training: each round every participant computes one local
// batch gradient on the shared global model; the server averages and
// steps (FedAvg, gradient form). Returns per-round average participant
// training accuracy and periodic validation accuracy.
RetrainResult federated_train(TrainableNet& net, const Dataset& train,
                              const std::vector<std::vector<int>>& partition,
                              const Dataset& test, int rounds, int batch_size,
                              const SGD::Options& opts,
                              const AugmentConfig* augment, Rng& rng,
                              int eval_every = 10,
                              const LrSchedule* schedule = nullptr);

}  // namespace fms
