#include "src/core/journal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "src/common/check.h"
#include "src/common/serialize.h"

namespace fms {
namespace {

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FMS_CHECK_MSG(in.good(), "cannot open file: " << path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

std::vector<std::uint8_t> JournalFrame::serialize() const {
  ByteWriter w;
  w.write(phase);
  w.write(round);
  record.serialize(w);
  w.write_string(rng_cursor);
  w.write_string(staleness_cursor);
  w.write(degrade_mode);
  w.write(degrade_transitions);
  return w.take();
}

JournalFrame JournalFrame::deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  JournalFrame f;
  f.phase = r.read<std::uint8_t>();
  f.round = r.read<int>();
  f.record.restore(r);
  f.rng_cursor = r.read_string();
  f.staleness_cursor = r.read_string();
  f.degrade_mode = r.read<int>();
  f.degrade_transitions = r.read<int>();
  FMS_CHECK_MSG(r.exhausted(), "journal frame has trailing bytes");
  return f;
}

RoundJournal::RoundJournal(std::string path, const FaultPlan& plan)
    : path_(std::move(path)), plan_(plan), faults_(plan, 1) {
  std::error_code ec;
  if (std::filesystem::exists(path_, ec)) {
    // Re-opening after a crash or a faulted append: find the valid prefix
    // so new frames land after the last good one, never after torn bytes.
    const LoadResult existing = load(path_);
    FMS_CHECK_MSG(existing.header_valid,
                  "journal header is corrupt: " << path_);
    good_size_ = existing.valid_bytes;
  } else {
    write_header();
  }
}

void RoundJournal::write_header() {
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  FMS_CHECK_MSG(out.good(), "cannot create journal: " << path_);
  out.write(reinterpret_cast<const char*>(&kJournalMagic),
            sizeof(kJournalMagic));
  out.write(reinterpret_cast<const char*>(&kJournalVersion),
            sizeof(kJournalVersion));
  out.flush();
  FMS_CHECK_MSG(out.good(), "journal header write failed: " << path_);
  good_size_ = sizeof(kJournalMagic) + sizeof(kJournalVersion);
}

void RoundJournal::append(const JournalFrame& frame) {
  std::vector<std::uint8_t> bytes;
  append_crc_frame(bytes, frame.serialize());

  std::size_t n = bytes.size();
  bool short_write = false;
  if (plan_.has_disk()) {
    DiskOutcome out = faults_.disk_outcome(
        DiskOp::kJournalAppend, static_cast<std::uint64_t>(frame.round));
    if (out.eio) {
      // Transient EIO on open/flush: the writer retries once and the
      // retry lands, so the only observable effect is the counter.
      ++stats_.eio_retries;
    }
    if (out.short_write) {
      // Torn tail: only a prefix of the frame reaches disk. Keep at
      // least the write observable (>= 1 byte) and strictly short.
      n = std::max<std::size_t>(
          1, std::min(n - 1, static_cast<std::size_t>(
                                 out.keep_fraction *
                                 static_cast<double>(bytes.size()))));
      short_write = true;
    }
  }

  // Repair first: a previous short write left torn bytes past good_size_.
  // Truncating here keeps the invariant that torn bytes only ever sit at
  // the file tail — the tolerant reader then sees a clean prefix.
  std::error_code ec;
  const auto actual = std::filesystem::file_size(path_, ec);
  if (!ec && actual > good_size_) {
    std::filesystem::resize_file(path_, good_size_, ec);
    FMS_CHECK_MSG(!ec, "journal tail repair failed: " << path_);
  }

  std::ofstream out(path_, std::ios::binary | std::ios::app);
  FMS_CHECK_MSG(out.good(), "cannot open journal for append: " << path_);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(n));
  out.flush();
  FMS_CHECK_MSG(out.good(), "journal append failed: " << path_);

  if (short_write) {
    ++stats_.short_writes;
    // good_size_ stays put: the partial frame is torn tail, repaired on
    // the next append (or truncated by recovery).
  } else {
    good_size_ += n;
    ++stats_.frames_written;
  }
}

void RoundJournal::rotate() {
  std::error_code ec;
  std::filesystem::rename(path_, path_ + ".prev", ec);
  FMS_CHECK_MSG(!ec, "journal rotation failed: " << path_);
  write_header();
  ++stats_.rotations;
}

RoundJournal::LoadResult RoundJournal::load(const std::string& path) {
  LoadResult result;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return result;
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  constexpr std::size_t kHeaderBytes =
      sizeof(kJournalMagic) + sizeof(kJournalVersion);
  if (bytes.size() < kHeaderBytes) {
    result.header_valid = bytes.empty();
    result.torn_bytes = bytes.size();
    return result;
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + sizeof(magic), sizeof(version));
  if (magic != kJournalMagic || version != kJournalVersion) {
    result.header_valid = false;
    result.torn_bytes = bytes.size();
    return result;
  }
  std::size_t pos = kHeaderBytes;
  std::vector<std::uint8_t> payload;
  while (true) {
    const std::size_t frame_start = pos;
    if (!next_crc_frame(bytes, pos, &payload)) break;
    try {
      result.frames.push_back(JournalFrame::deserialize(payload));
    } catch (const CheckError&) {
      // CRC-valid but semantically malformed (e.g. a frame written by a
      // newer field layout): stop here, same as a torn tail, and count
      // the bad frame as torn rather than valid.
      pos = frame_start;
      break;
    }
  }
  result.valid_bytes = pos;
  result.torn_bytes = bytes.size() - pos;
  return result;
}

void RoundJournal::truncate_to(const std::string& path, std::size_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  FMS_CHECK_MSG(!ec, "journal truncation failed: " << path);
}

}  // namespace fms
