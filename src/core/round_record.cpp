#include "src/core/round_record.h"

namespace fms {

void RoundRecord::serialize(ByteWriter& w) const {
  w.write(round);
  w.write(mean_reward);
  w.write(moving_avg);
  w.write(arrived);
  w.write(dropped);
  w.write(max_latency_s);
  w.write(mean_latency_s);
  w.write(static_cast<std::uint64_t>(bytes_down));
  w.write(static_cast<std::uint64_t>(bytes_up));
  w.write(stale_arrived);
  w.write(compensated);
  w.write(mean_tau);
  w.write(max_tau);
  w.write(alpha_entropy);
  w.write(baseline);
  w.write(offline);
  w.write(rejected);
  w.write(late);
  w.write(retransmits);
  w.write(static_cast<std::uint8_t>(partial_quorum ? 1 : 0));
  w.write(commit_latency_s);
  w.write(agg_clipped);
  w.write(agg_clipped_mass);
  w.write(static_cast<std::int64_t>(agg_trimmed));
  w.write(agg_rejected);
  w.write(winsorized);
  w.write(screen_bound);
  w.write(health);
  w.write_string(health_trips);
  w.write(live);
  w.write(joined);
  w.write(left);
  w.write(cohort);
  w.write(shed);
  w.write(deadline_s);
  w.write(degrade_mode);
  w.write_string(degrade_transition);
}

void RoundRecord::restore(ByteReader& r) {
  round = r.read<int>();
  mean_reward = r.read<double>();
  moving_avg = r.read<double>();
  arrived = r.read<int>();
  dropped = r.read<int>();
  max_latency_s = r.read<double>();
  mean_latency_s = r.read<double>();
  bytes_down = static_cast<std::size_t>(r.read<std::uint64_t>());
  bytes_up = static_cast<std::size_t>(r.read<std::uint64_t>());
  stale_arrived = r.read<int>();
  compensated = r.read<int>();
  mean_tau = r.read<double>();
  max_tau = r.read<int>();
  alpha_entropy = r.read<double>();
  baseline = r.read<double>();
  offline = r.read<int>();
  rejected = r.read<int>();
  late = r.read<int>();
  retransmits = r.read<int>();
  partial_quorum = r.read<std::uint8_t>() != 0;
  commit_latency_s = r.read<double>();
  agg_clipped = r.read<int>();
  agg_clipped_mass = r.read<double>();
  agg_trimmed = static_cast<long>(r.read<std::int64_t>());
  agg_rejected = r.read<int>();
  winsorized = r.read<int>();
  screen_bound = r.read<double>();
  health = r.read<int>();
  health_trips = r.read_string();
  live = r.read<int>();
  joined = r.read<int>();
  left = r.read<int>();
  cohort = r.read<int>();
  shed = r.read<int>();
  deadline_s = r.read<double>();
  degrade_mode = r.read<int>();
  degrade_transition = r.read_string();
}

RoundRecord RoundRecord::canonical() const {
  RoundRecord c = *this;
  c.health = 0;
  c.health_trips.clear();
  return c;
}

}  // namespace fms
