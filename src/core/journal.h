// Write-ahead round journal — the durability layer between checkpoints.
//
// A crash between auto-checkpoints used to lose every committed round
// since the last `checkpoint_every` boundary. The journal closes that
// gap: after every committed round the coordinator appends one CRC32-
// framed frame carrying the round's outcome (RoundRecord), the RNG
// cursors, and the degradation-ladder position. Recovery loads the
// newest valid checkpoint, truncates any torn tail frame, and
// deterministically *re-executes* the journaled rounds — the frames are
// verification data, not state deltas, so replay is proven bit-identical
// against the pre-crash run rather than assumed.
//
// Frame format (after an 8-byte file header of magic + version):
//   [u32 payload length][u32 crc32(payload)][payload]
// where payload = JournalFrame::serialize(). The reader stops at the
// first frame that is short or fails CRC — the torn-tail rule: a torn
// frame and everything after it never happened (that round is lost from
// disk but re-executed deterministically on recovery).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/round_record.h"
#include "src/fault/fault.h"

namespace fms {

inline constexpr std::uint32_t kJournalMagic = 0x464d534a;  // "FMSJ"
inline constexpr std::uint32_t kJournalVersion = 1;

// One committed round, as journaled. Everything recovery needs to
// *verify* a deterministic replay: the canonical RoundRecord, both RNG
// cursor strings, and the degradation-ladder position after the round.
struct JournalFrame {
  std::uint8_t phase = 0;  // 0 = warmup, 1 = search
  int round = 0;
  RoundRecord record;            // canonical() form (health fields zeroed)
  std::string rng_cursor;        // Rng::save_state() after the round
  std::string staleness_cursor;  // staleness stream cursor after the round
  int degrade_mode = 0;          // ladder mode after the round
  int degrade_transitions = 0;   // cumulative ladder transitions

  // Frame persistence; the pair is byte-exact and symmetric (enforced by
  // fms_analyze checkpoint-symmetry).
  std::vector<std::uint8_t> serialize() const;
  static JournalFrame deserialize(const std::vector<std::uint8_t>& bytes);
};

// Writer-side ledger, surfaced in the CLI exit summary and as
// fms.journal.* counters.
struct JournalStats {
  std::uint64_t frames_written = 0;
  std::uint64_t eio_retries = 0;   // transient EIOs absorbed by retry
  std::uint64_t short_writes = 0;  // torn tails left by the fault channel
  std::uint64_t rotations = 0;     // journal -> journal.prev rotations
};

// Append-only journal writer with a tolerant static loader. Appends are
// flushed per frame, so a kill between appends is indistinguishable from
// a clean stop; the seeded disk-fault channel (FaultPlan disk_* keys)
// exercises the torn-tail and EIO paths deterministically.
class RoundJournal {
 public:
  // Opens (or creates) the journal at `path`. An existing file is
  // tolerant-loaded to find the valid prefix; a previous short write
  // leaves torn bytes at the tail, which the next append truncates away
  // (torn bytes therefore only ever live at the tail, never mid-file).
  RoundJournal(std::string path, const FaultPlan& plan);

  // Appends one frame. Consults the disk-fault channel when the plan
  // schedules disk faults: a transient EIO is retried once (counted), a
  // short write leaves only a prefix of the frame on disk (counted; the
  // round is lost from disk, not from memory).
  void append(const JournalFrame& frame);

  // Rotates the live journal to `<path>.prev` and starts a fresh one.
  // Called at the moment a checkpoint commits: the retained `.prev`
  // checkpoint generation stays covered by `<path>.prev` frames.
  void rotate();

  const std::string& path() const { return path_; }
  const JournalStats& stats() const { return stats_; }

  // Result of a tolerant load. `valid_bytes` is the byte offset of the
  // end of the last valid frame (the truncation point for a torn tail);
  // `torn_bytes` counts the bytes after it.
  struct LoadResult {
    bool header_valid = true;  // false: file exists but header is garbage
    std::vector<JournalFrame> frames;
    std::size_t valid_bytes = 0;
    std::size_t torn_bytes = 0;
  };

  // Loads every valid frame from `path`. Missing file -> empty result.
  // Never throws on corrupted input: the first invalid frame ends the
  // scan (torn-tail rule).
  static LoadResult load(const std::string& path);

  // Truncates the file at `path` to `size` bytes (the torn-tail repair).
  static void truncate_to(const std::string& path, std::size_t size);

 private:
  void write_header();

  std::string path_;
  FaultPlan plan_;
  FaultInjector faults_;
  JournalStats stats_;
  // End of the last fully-written frame; bytes past this are a torn tail
  // from a faulted append, repaired (truncated) before the next append.
  std::size_t good_size_ = 0;
};

}  // namespace fms
