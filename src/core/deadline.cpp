#include "src/core/deadline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/serialize.h"

namespace fms {

QuorumOutcome quorum_commit(std::vector<double> arrivals, double quorum,
                            int cohort, double timeout_s) {
  QuorumOutcome out;
  out.deadline = std::numeric_limits<double>::infinity();
  std::sort(arrivals.begin(), arrivals.end());
  out.q_need = static_cast<std::size_t>(
      std::ceil(quorum * static_cast<double>(cohort)));
  if (!arrivals.empty()) {
    out.deadline = arrivals.size() >= out.q_need && out.q_need > 0
                       ? arrivals[out.q_need - 1]
                       : arrivals.back();
  }
  if (timeout_s > 0.0) {
    out.deadline = std::min(out.deadline, timeout_s);
  }
  for (double c : arrivals) {
    if (c <= out.deadline + 1e-12) ++out.on_time;
  }
  out.partial = out.on_time < out.q_need;
  out.commit_latency_s = std::isfinite(out.deadline)
                             ? out.deadline
                             : (arrivals.empty() ? 0.0 : arrivals.back());
  return out;
}

void DeadlineEstimator::add_sample(double seconds, int window) {
  if (window <= 0) return;
  window_.push_back(seconds);
  if (window_.size() > static_cast<std::size_t>(window)) {
    window_.erase(window_.begin(),
                  window_.begin() +
                      static_cast<std::ptrdiff_t>(window_.size() -
                                                  static_cast<std::size_t>(window)));
  }
}

double DeadlineEstimator::deadline(const AdaptiveTimeoutConfig& cfg) const {
  if (!cfg.enabled ||
      window_.size() < static_cast<std::size_t>(std::max(1, cfg.min_samples))) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> sorted = window_;
  std::sort(sorted.begin(), sorted.end());
  const double q = std::min(1.0, std::max(0.0, cfg.quantile));
  const auto n = sorted.size();
  std::size_t idx = 0;
  if (q > 0.0) {
    idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    idx = idx > 0 ? idx - 1 : 0;
  }
  idx = std::min(idx, n - 1);
  double d = sorted[idx] * cfg.slack;
  if (cfg.floor_s > 0.0) d = std::max(d, cfg.floor_s);
  if (cfg.ceil_s > 0.0) d = std::min(d, cfg.ceil_s);
  return d;
}

void DeadlineEstimator::serialize(ByteWriter& w) const {
  w.write_vector(window_);
}

void DeadlineEstimator::restore(ByteReader& r) {
  window_ = r.read_vector<double>();
}

}  // namespace fms
