#include "src/core/retrain.h"

#include <algorithm>
#include <numeric>

#include "src/tensor/ops.h"

namespace fms {

double evaluate(TrainableNet& net, const Dataset& data, int batch_size) {
  FMS_CHECK(!data.empty());
  int correct_total = 0;
  for (int start = 0; start < data.size(); start += batch_size) {
    const int end = std::min(data.size(), start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    Dataset::Batch batch = data.make_batch(idx, nullptr, nullptr);
    Tensor logits = net.forward(batch.x, /*train=*/false);
    CrossEntropyResult ce = cross_entropy(logits, batch.y);
    correct_total += static_cast<int>(
        ce.accuracy * static_cast<float>(end - start) + 0.5F);
  }
  return static_cast<double>(correct_total) / data.size();
}

RetrainResult centralized_train(TrainableNet& net, const Dataset& train,
                                const Dataset& test, int epochs,
                                int batch_size, const SGD::Options& opts,
                                const AugmentConfig* augment, Rng& rng,
                                int eval_every, const LrSchedule* schedule) {
  SGD optimizer(opts);
  RetrainResult result;
  std::vector<int> order(static_cast<std::size_t>(train.size()));
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (schedule != nullptr) {
      optimizer.set_lr(schedule->lr_at(epoch, epochs));
    }
    rng.shuffle(order);
    double acc_sum = 0.0;
    int batches = 0;
    for (int start = 0; start + batch_size <= train.size();
         start += batch_size) {
      std::span<const int> idx(order.data() + start,
                               static_cast<std::size_t>(batch_size));
      Dataset::Batch batch = train.make_batch(idx, augment, &rng);
      net.zero_grad();
      Tensor logits = net.forward(batch.x, /*train=*/true);
      CrossEntropyResult ce = cross_entropy(logits, batch.y);
      net.backward(ce.grad_logits);
      optimizer.step(net.params());
      acc_sum += ce.accuracy;
      ++batches;
    }
    TrainPoint pt;
    pt.step = epoch;
    pt.train_acc = batches > 0 ? acc_sum / batches : 0.0;
    if ((epoch + 1) % eval_every == 0 || epoch + 1 == epochs) {
      pt.val_acc = evaluate(net, test, batch_size);
      result.best_test_accuracy =
          std::max(result.best_test_accuracy, pt.val_acc);
    }
    result.curve.push_back(pt);
  }
  result.final_test_accuracy = evaluate(net, test, batch_size);
  result.best_test_accuracy =
      std::max(result.best_test_accuracy, result.final_test_accuracy);
  return result;
}

RetrainResult federated_train(TrainableNet& net, const Dataset& train,
                              const std::vector<std::vector<int>>& partition,
                              const Dataset& test, int rounds, int batch_size,
                              const SGD::Options& opts,
                              const AugmentConfig* augment, Rng& rng,
                              int eval_every, const LrSchedule* schedule) {
  SGD optimizer(opts);
  RetrainResult result;
  const int k = static_cast<int>(partition.size());
  FMS_CHECK(k > 0);
  std::vector<Shard> shards;
  shards.reserve(partition.size());
  for (const auto& p : partition) shards.emplace_back(&train, p);

  const auto& params = net.params();
  for (int round = 0; round < rounds; ++round) {
    if (schedule != nullptr) {
      optimizer.set_lr(schedule->lr_at(round, rounds));
    }
    // Accumulate per-participant batch gradients into a flat average.
    std::vector<float> grad_sum;
    double acc_sum = 0.0;
    for (int p = 0; p < k; ++p) {
      Dataset::Batch batch =
          shards[static_cast<std::size_t>(p)].next_batch(batch_size, augment,
                                                         rng);
      net.zero_grad();
      Tensor logits = net.forward(batch.x, /*train=*/true);
      CrossEntropyResult ce = cross_entropy(logits, batch.y);
      net.backward(ce.grad_logits);
      acc_sum += ce.accuracy;
      std::vector<float> g = flatten_grads(params);
      if (grad_sum.empty()) {
        grad_sum = std::move(g);
      } else {
        for (std::size_t i = 0; i < grad_sum.size(); ++i) grad_sum[i] += g[i];
      }
    }
    for (float& g : grad_sum) g /= static_cast<float>(k);
    net.zero_grad();
    accumulate_grads(grad_sum, params);
    optimizer.step(params);

    TrainPoint pt;
    pt.step = round;
    pt.train_acc = acc_sum / k;
    if ((round + 1) % eval_every == 0 || round + 1 == rounds) {
      pt.val_acc = evaluate(net, test, batch_size);
      result.best_test_accuracy =
          std::max(result.best_test_accuracy, pt.val_acc);
    }
    result.curve.push_back(pt);
  }
  result.final_test_accuracy = evaluate(net, test, batch_size);
  result.best_test_accuracy =
      std::max(result.best_test_accuracy, result.final_test_accuracy);
  return result;
}

}  // namespace fms
