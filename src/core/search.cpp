#include "src/core/search.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "src/common/serialize.h"
#include "src/common/stopwatch.h"
#include "src/nn/optim.h"
#include "src/obs/alloc.h"
#include "src/obs/health.h"
#include "src/obs/profile.h"
#include "src/obs/span.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace_ctx.h"
#include "src/obs/work.h"
#include "src/tensor/ops.h"

namespace fms {
namespace {

// Header of the opaque runtime-state blob inside v2 checkpoints. Bumped to
// "FMS4" when the churn layer appended the client registry, the deadline-
// estimator window, and the degradation-controller state (and the fault
// ledger grew the uplink counter): older blobs fail the magic check
// instead of misparsing a shifted layout.
constexpr std::uint32_t kRuntimeMagic = 0x464d5334;  // "FMS4"

}  // namespace

FederatedSearch::FederatedSearch(const SearchConfig& cfg,
                                 const Dataset& train_data,
                                 const std::vector<std::vector<int>>& partition)
    : cfg_(cfg),
      rng_(cfg.seed),
      policy_(Cell::num_edges(cfg.supernet.num_nodes), cfg.alpha),
      theta_opt_(SGD::Options{cfg.theta.learning_rate, cfg.theta.momentum,
                              cfg.theta.weight_decay, cfg.theta.gradient_clip}),
      pool_(/*staleness_threshold=*/5),
      moving_(50) {
  if (cfg.telemetry.enabled) {
    obs::Telemetry::instance().configure(cfg.telemetry, cfg.seed);
    owns_telemetry_ = true;
  }
  if (cfg.telemetry.enabled &&
      (cfg.telemetry.health || !cfg.telemetry.health_report_path.empty())) {
    health_ = std::make_unique<obs::HealthMonitor>();
  }
  staleness_rng_ = rng_.fork();
  Rng net_rng = rng_.fork();
  supernet_ = std::make_unique<Supernet>(cfg.supernet, net_rng);
  FMS_CHECK_MSG(!partition.empty(), "need at least one participant");
  for (std::size_t k = 0; k < partition.size(); ++k) {
    participants_.push_back(std::make_unique<SearchParticipant>(
        static_cast<int>(k), Shard(&train_data, partition[k]), cfg.supernet,
        cfg.augment, cfg.schedule.batch_size, rng_.fork()));
    // Default environment mix: participants cycle through the six mobility
    // settings; Fig. 7 benches construct their own traces explicitly.
    traces_.emplace_back(
        static_cast<NetEnvironment>(k % kNumNetEnvironments), rng_.fork());
  }
  registry_ = ClientRegistry(static_cast<int>(partition.size()));
}

FederatedSearch::~FederatedSearch() {
  if (health_ && !cfg_.telemetry.health_report_path.empty()) {
    health_->write_report(cfg_.telemetry.health_report_path);
  }
  if (owns_telemetry_) obs::Telemetry::instance().finish();
}

SearchOptions FederatedSearch::warmup_options() {
  SearchOptions opts;
  opts.update_alpha = false;
  opts.update_theta = true;
  opts.stale_policy = StalePolicy::kHardSync;
  return opts;
}

std::vector<RoundRecord> FederatedSearch::run_warmup(int steps) {
  const SearchOptions opts = warmup_options();
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(run_round(round_counter_++, opts));
    journal_round(0, records.back());
    if (on_round) on_round(records.back());
  }
  return records;
}

std::vector<RoundRecord> FederatedSearch::run_search(
    int steps, const SearchOptions& opts) {
  const bool auto_ckpt =
      opts.checkpoint_every > 0 && !opts.checkpoint_path.empty();
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(run_round(round_counter_++, opts));
    journal_round(1, records.back());
    if (on_round) on_round(records.back());
    if (auto_ckpt && round_counter_ % opts.checkpoint_every == 0) {
      FMS_SPAN("checkpoint");
      write_checkpoint_file(opts.checkpoint_path, checkpoint(),
                            disk_faults_.get(),
                            static_cast<std::uint64_t>(round_counter_));
      if (obs::telemetry_enabled()) {
        obs::Telemetry::instance().registry().counter("fms.checkpoints.written")
            .add(1);
      }
      // Rotate the journal at the instant the checkpoint commits: the
      // retained `.prev` checkpoint generation stays covered by the
      // `.prev` journal frames, so recovery can replay forward from
      // either generation. (A kill between the two renames is safe —
      // recovery filters frames to rounds past the restored checkpoint.)
      if (journal_) {
        journal_->rotate();
        if (obs::telemetry_enabled()) {
          obs::Telemetry::instance().registry().counter("fms.journal.rotations")
              .add(1);
        }
      }
    }
  }
  return records;
}

void FederatedSearch::enable_journal(const std::string& path,
                                     const FaultPlan& disk_plan) {
  journal_ = std::make_unique<RoundJournal>(path, disk_plan);
  disk_faults_ = std::make_unique<FaultInjector>(disk_plan, 1);
}

void FederatedSearch::journal_round(std::uint8_t phase,
                                    const RoundRecord& rec) {
  if (!journal_) return;
  // Purely observational: save_state() is const on every stream touched
  // here, so the trajectory is bit-identical with journaling on or off.
  JournalFrame f;
  f.phase = phase;
  f.round = rec.round;
  f.record = rec.canonical();
  f.rng_cursor = rng_.save_state();
  f.staleness_cursor = staleness_rng_.save_state();
  f.degrade_mode = static_cast<int>(degrade_.mode());
  f.degrade_transitions = degrade_.transitions();
  const JournalStats before = journal_->stats();
  journal_->append(f);
  if (obs::telemetry_enabled()) {
    const JournalStats& after = journal_->stats();
    auto& reg = obs::Telemetry::instance().registry();
    if (after.frames_written > before.frames_written) {
      reg.counter("fms.journal.frames_written").add(1);
    }
    if (after.eio_retries > before.eio_retries) {
      reg.counter("fms.journal.eio_retries").add(1);
    }
    if (after.short_writes > before.short_writes) {
      reg.counter("fms.journal.short_writes").add(1);
    }
  }
}

RoundRecord FederatedSearch::run_round(int t, const SearchOptions& opts) {
  const int k = num_participants();
  const bool telemetry = obs::telemetry_enabled();
  if (telemetry) obs::Telemetry::instance().set_round(t);
  // Causal tracing (src/obs/trace_ctx): every hook below is purely
  // observational — no RNG draw, no float op — so the search trajectory is
  // bit-identical with tracing on or off (pinned by test).
  const bool tracing = obs::tracing_enabled();
  obs::TraceContext& trace = obs::TraceContext::instance();
  if (tracing) trace.begin_round(t);
  FMS_SPAN("round");
  RoundRecord rec;
  rec.round = t;
  const FaultStats stats_before = fault_stats_;
  const FaultInjector injector(opts.fault_plan, k);
  const bool faults = injector.active();

  // --- churn membership + degradation mode for the round ---
  // The churn model is a pure function of (seed, client, round); the
  // registry persists each client's history across membership changes.
  // Both are observational with an empty plan: live == k, joined == left
  // == 0, and the round proceeds exactly as before the churn layer.
  const ChurnModel churn(opts.churn_plan, k);
  const ClientRegistry::RoundMembership mem = registry_.begin_round(churn, t);
  rec.live = mem.live;
  rec.joined = mem.joined;
  rec.left = mem.left;
  // The ladder mode was decided by previous rounds' outcomes (causal, so
  // checkpoint/resume replays it exactly); this round runs under it.
  const DegradeMode mode =
      opts.degrade.max_mode > 0 ? degrade_.mode() : DegradeMode::kNormal;
  rec.degrade_mode = static_cast<int>(mode);

  // --- sample masks and snapshot state (Alg. 1 lines 4-9) ---
  std::vector<Mask> masks;
  const bool soft_sync = opts.stale_policy != StalePolicy::kHardSync;
  {
    FMS_SPAN("sample");
    masks.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) masks.push_back(policy_.sample(rng_));
    if (soft_sync) {
      RoundSnapshot snap;
      snap.theta = supernet_->flat_values();
      snap.alpha = policy_.alpha();
      snap.masks = masks;
      pool_.save(t, std::move(snap));
    }
  }

  // --- adaptive transmission (Alg. 1 lines 10-11, Fig. 7) ---
  // Effective download latency per participant after link faults and the
  // retransmit-with-backoff defense; infinity marks a dead link.
  std::vector<int> assignment;
  std::vector<double> latency(static_cast<std::size_t>(k), 0.0);
  std::vector<char> offline(static_cast<std::size_t>(k), 0);
  std::vector<char> link_dead(static_cast<std::size_t>(k), 0);
  std::vector<LinkOutcome> links(static_cast<std::size_t>(k));
  LatencyStats lat;  // raw modeled latencies; cohort selection reads them
  {
    FMS_SPAN("transmit");
    std::vector<std::size_t> model_bytes;
    std::vector<double> bandwidths;
    model_bytes.reserve(static_cast<std::size_t>(k));
    bandwidths.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      model_bytes.push_back(
          supernet_->submodel_bytes(masks[static_cast<std::size_t>(i)]));
      // Traces advance for every participant — offline or not — so a faulty
      // run stays on the fault-free run's bandwidth trajectory.
      bandwidths.push_back(traces_[static_cast<std::size_t>(i)].next_bps());
    }
    assignment = assign_models(model_bytes, bandwidths, opts.assign, rng_);
    lat = transmission_latency(
        model_bytes, bandwidths, assignment,
        opts.assign == AssignStrategy::kAverageSize);
    rec.max_latency_s = lat.max_seconds;
    rec.mean_latency_s = lat.mean_seconds;
    for (int i = 0; i < k; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (faults && injector.is_offline(i, t)) {
        offline[ui] = 1;
        continue;
      }
      double li = lat.per_participant[ui];
      if (faults) {
        links[ui] = injector.link_outcome(i, t, opts.max_retransmits,
                                          opts.retransmit_backoff_s);
        if (!links[ui].delivered) {
          link_dead[ui] = 1;
          continue;
        }
        li = li / links[ui].bandwidth_scale + links[ui].extra_seconds;
      }
      if (!std::isfinite(li)) {  // zero-bandwidth link from the trace itself
        link_dead[ui] = 1;
        continue;
      }
      latency[ui] = li;
    }
  }

  // --- cohort selection (degradation mode >= shrink_cohort): dispatch
  // only to the fastest cohort_fraction of the live fleet, ranked by the
  // raw modeled download latency (the bandwidth the server just measured),
  // ties broken by id — deterministic, no RNG draw.
  std::vector<char> in_cohort(static_cast<std::size_t>(k), 0);
  {
    for (int i = 0; i < k; ++i) {
      in_cohort[static_cast<std::size_t>(i)] =
          mem.live_mask[static_cast<std::size_t>(i)];
    }
    if (mode >= DegradeMode::kShrinkCohort && mem.live > 0) {
      std::vector<std::pair<double, int>> order;
      order.reserve(static_cast<std::size_t>(mem.live));
      for (int i = 0; i < k; ++i) {
        if (mem.live_mask[static_cast<std::size_t>(i)] != 0) {
          order.emplace_back(lat.per_participant[static_cast<std::size_t>(i)],
                             i);
        }
      }
      std::sort(order.begin(), order.end());
      int keep = static_cast<int>(
          std::ceil(opts.degrade.cohort_fraction *
                    static_cast<double>(mem.live)));
      keep = std::max(keep, std::min(opts.degrade.min_cohort, mem.live));
      keep = std::min(keep, mem.live);
      for (std::size_t o = static_cast<std::size_t>(keep); o < order.size();
           ++o) {
        in_cohort[static_cast<std::size_t>(order[o].second)] = 0;
      }
    }
  }
  rec.cohort = 0;
  for (int i = 0; i < k; ++i) {
    if (in_cohort[static_cast<std::size_t>(i)] != 0) ++rec.cohort;
  }
  rec.shed = mem.live - rec.cohort;

  // --- quorum commit (defense): close the round at the ceil(q*K)-th
  // arrival or the timeout cap, whichever comes first. Updates expected
  // after the deadline are "late" and fold into the soft-sync/DC path.
  // The quorum count stays anchored to the full registry population K:
  // committing with less coverage than ceil(q*K) is a partial quorum even
  // when churn shrank the live set — that erosion is exactly the signal
  // the degradation controller keys on. Mode >= partial_quorum relieves
  // the requirement itself so rounds commit with what arrived.
  double deadline = std::numeric_limits<double>::infinity();
  {
    FMS_SPAN("quorum");
    std::vector<double> cands;
    cands.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      if (in_cohort[ui] != 0 && offline[ui] == 0 && link_dead[ui] == 0) {
        cands.push_back(latency[ui]);
      }
    }
    // Timeout cap: the adaptive windowed-quantile deadline replaces the
    // static round_timeout_s once warm; degradation mode >= relax_deadline
    // stretches whichever cap is in effect.
    double timeout = opts.round_timeout_s;
    if (opts.adaptive_timeout.enabled) {
      const double est = deadline_est_.deadline(opts.adaptive_timeout);
      if (std::isfinite(est)) timeout = est;
    }
    if (mode >= DegradeMode::kRelaxDeadline && timeout > 0.0) {
      timeout *= opts.degrade.relax_factor;
    }
    rec.deadline_s = timeout;
    double q = opts.quorum;
    if (mode >= DegradeMode::kPartialQuorum) q *= opts.degrade.quorum_relief;
    const QuorumOutcome qo = quorum_commit(cands, q, k, timeout);
    deadline = qo.deadline;
    rec.partial_quorum = qo.partial;
    rec.commit_latency_s = qo.commit_latency_s;
    if (tracing) {
      // Server-track commit event at the deadline tick.
      trace.record(-1, obs::Stage::kQuorum, rec.commit_latency_s, 0.0,
                   rec.commit_latency_s,
                   rec.partial_quorum ? "partial" : "full");
    }
  }

  // --- dispatch, local training, delayed arrival (lines 12-15) ---
  // Serialized mask/header overhead of a message whose values travel
  // through the configured codec.
  auto payload_bytes = [&](const Mask& m, std::size_t num_values) {
    return 4 + (8 + m.normal.size()) + (8 + m.reduce.size()) +
           codec_encoded_bytes(num_values, opts.codec);
  };
  obs::Histogram* down_hist = nullptr;
  obs::Histogram* up_hist = nullptr;
  if (telemetry) {
    auto& reg = obs::Telemetry::instance().registry();
    // Per-participant payload distribution, in bytes (linear-ish coverage
    // from 1KB to 100MB via the default log-spaced buckets scaled by 1e9).
    std::vector<double> byte_bounds;
    for (double b : obs::default_time_buckets()) byte_bounds.push_back(b * 1e9);
    down_hist = &reg.histogram("fms.participant.bytes_down", byte_bounds);
    up_hist = &reg.histogram("fms.participant.bytes_up", byte_bounds);
  }
  // Classifies the outcome of a payload fault attached to an update that
  // never gets applied (the third outcome, "recovered", is recorded at
  // apply time in the arrivals loop below).
  auto account_payload_drop = [&](const std::optional<FaultKind>& pf) {
    if (pf.has_value()) ++fault_stats_.dropped;
  };
  for (int i = 0; i < k; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    // Staleness draws happen for every participant — even offline or
    // churned-away ones — so faulty/churny and clean runs consume the
    // same staleness stream.
    const int tau_draw =
        soft_sync ? opts.staleness.sample_traced(staleness_rng_, i) : 0;
    if (mem.live_mask[ui] == 0) {
      // Churned away: not a fault. The server never dispatches, charges
      // no bytes, and books nothing in the fault ledger — the client
      // simply is not there this round.
      if (tracing) {
        trace.record(i, obs::Stage::kDrop, 0.0, 0.0, 0.0, "churn_absent");
      }
      continue;
    }
    if (in_cohort[ui] == 0) {
      // Shed by cohort shrink (degradation mode >= 2): live but not
      // dispatched to this round.
      if (tracing) {
        trace.record(i, obs::Stage::kDrop, 0.0, 0.0, 0.0, "cohort_shed");
      }
      continue;
    }
    if (offline[ui] != 0) {
      ++rec.offline;
      if (injector.is_crashed(i, t)) {
        ++fault_stats_.injected_crash;
        if (tracing) trace.record(i, obs::Stage::kDrop, 0.0, 0.0, 0.0, "crash");
      } else {
        ++fault_stats_.injected_dropout;
        if (tracing) {
          trace.record(i, obs::Stage::kDrop, 0.0, 0.0, 0.0, "dropout");
        }
      }
      ++fault_stats_.dropped;  // no reply ever arrives
      continue;
    }
    if (links[ui].faulted()) {
      ++fault_stats_.injected_link;
      fault_stats_.retransmits += static_cast<std::uint64_t>(
          links[ui].retransmits);
      rec.retransmits += links[ui].retransmits;
      if (tracing) {
        trace.record(i, obs::Stage::kFault, 0.0, links[ui].extra_seconds,
                     static_cast<double>(links[ui].retransmits),
                     link_dead[ui] != 0 ? "link:dead" : "link:recovered");
      }
      if (link_dead[ui] != 0) {
        ++fault_stats_.dropped;  // every attempt failed
      } else {
        ++fault_stats_.recovered;  // retransmit/collapse absorbed the fault
      }
    }
    if (link_dead[ui] != 0) {
      // Dead link: the download never lands, so no payload is built and no
      // bytes are charged — the server simply skips this participant.
      ++rec.dropped;
      if (tracing) trace.record(i, obs::Stage::kDrop, 0.0, 0.0, 0.0, "link_dead");
      continue;
    }
    const std::optional<FaultKind> pf =
        faults ? injector.payload_fault(i, t) : std::nullopt;
    // Spelled with an explicit engaged check (not optional==value): GCC's
    // -Wmaybe-uninitialized false-fires on the operator== template at -O3,
    // which FMS_WERROR would promote to a build break.
    const bool pf_corrupt =
        pf.has_value() && *pf == FaultKind::kCorruptPayload;
    const bool pf_divergent = pf.has_value() && *pf == FaultKind::kDivergent;
    // Byzantine attack this client runs, if any. Skipped when a payload
    // fault already fires: that update is destroyed anyway, and counting
    // both would double-book an update that resolves exactly once.
    const std::optional<FaultKind> byz =
        faults && !pf.has_value() ? injector.byzantine_kind(i, t)
                                  : std::nullopt;
    // The fault attached to this update for exactly-once accounting.
    const std::optional<FaultKind> uf = pf.has_value() ? pf : byz;

    const Mask& mask = masks[static_cast<std::size_t>(assignment[i])];
    SubmodelMsg msg;
    msg.round = t;
    msg.mask = mask;
    {
      FMS_SPAN("prune");
      msg.values =
          supernet_->gather_values(supernet_->masked_param_ids(mask));
      if (opts.codec != Codec::kFloat32) {
        msg.values = codec_round_trip(msg.values, opts.codec);
      }
    }
    if (pf_corrupt) {
      // One corruption event flips bits on the wire in both directions:
      // the SubmodelMsg the client trains on and the UpdateMsg it returns.
      ++fault_stats_.injected_corrupt;
      injector.corrupt(msg.values, i, t);
    }
    const std::size_t down = payload_bytes(mask, msg.values.size());
    rec.bytes_down += down;
    submodel_bytes_sum_ += down;
    ++submodel_count_;
    if (down_hist != nullptr) down_hist->observe(static_cast<double>(down));
    if (tracing) {
      trace.record(i, obs::Stage::kDispatch, 0.0, 0.0,
                   static_cast<double>(down));
    }
    registry_.note_dispatch(i, latency[ui]);

    UpdateMsg upd = participants_[ui]->train_step(msg);
    if (tracing) {
      // Local training lands at the end of the modeled download window;
      // value carries the reported training accuracy.
      trace.record(i, obs::Stage::kLocalTrain, latency[ui], 0.0,
                   static_cast<double>(upd.reward));
    }
    if (opts.codec != Codec::kFloat32) {
      upd.grads = codec_round_trip(upd.grads, opts.codec);
    }
    if (pf_divergent) {
      ++fault_stats_.injected_divergent;
      injector.poison(upd, i, t);
    } else if (pf_corrupt) {
      injector.corrupt(upd.grads, i, t);
    } else if (byz.has_value()) {
      switch (*byz) {
        case FaultKind::kSignFlip:
          ++fault_stats_.injected_sign_flip;
          break;
        case FaultKind::kGradScale:
          ++fault_stats_.injected_grad_scale;
          break;
        case FaultKind::kCollude:
          ++fault_stats_.injected_collude;
          break;
        default:
          ++fault_stats_.injected_reward;
          break;
      }
      injector.attack(upd, *byz, i, t);
    }
    if (tracing && uf.has_value()) {
      trace.record(i, obs::Stage::kFault, latency[ui], 0.0, 0.0,
                   fault_kind_name(*uf));
    }
    const std::size_t up = payload_bytes(upd.mask, upd.grads.size()) + 8;
    rec.bytes_up += up;
    if (up_hist != nullptr) up_hist->observe(static_cast<double>(up));

    // Upload-link faults with bounded retransmit + seeded backoff jitter:
    // a dead uplink drops the update after the client's bytes were spent;
    // recovered retries push its arrival later (possibly past the
    // deadline, where the soft-sync path absorbs it as stale).
    double up_extra = 0.0;
    if (faults) {
      const LinkOutcome up_link = injector.upload_outcome(
          i, t, opts.max_retransmits, opts.retransmit_backoff_s);
      if (up_link.faulted()) {
        ++fault_stats_.injected_uplink;
        fault_stats_.retransmits +=
            static_cast<std::uint64_t>(up_link.retransmits);
        rec.retransmits += up_link.retransmits;
        if (tracing) {
          trace.record(i, obs::Stage::kFault, latency[ui],
                       up_link.extra_seconds,
                       static_cast<double>(up_link.retransmits),
                       up_link.delivered ? "uplink:recovered" : "uplink:dead");
        }
        if (!up_link.delivered) {
          ++fault_stats_.dropped;  // the reply never reaches the server
          ++rec.dropped;
          account_payload_drop(uf);
          if (tracing) {
            trace.record(i, obs::Stage::kDrop, latency[ui], 0.0, 0.0,
                         "uplink_dead");
          }
          continue;
        }
        ++fault_stats_.recovered;
        up_extra = up_link.extra_seconds;
      }
    }
    const double arrive_s = latency[ui] + up_extra;
    // Feed the adaptive-deadline window with committed on-time round
    // times (always, so checkpoints carry a warm window whether or not
    // adaptive deadlines are enabled yet). Pure bookkeeping: no RNG, no
    // effect on the trajectory unless adaptive_timeout.enabled.
    if (arrive_s <= deadline + 1e-12) {
      deadline_est_.add_sample(arrive_s, opts.adaptive_timeout.window);
    }

    int tau = tau_draw;
    if (soft_sync && mem.rejoined[ui] != 0 && tau != kExceedsThreshold) {
      // A rejoining client trained against the state it last saw: its
      // first update back flows through the staleness/DC path rather
      // than being applied as fresh.
      tau = std::max(tau, 1);
    }
    if (arrive_s > deadline + 1e-12) {
      // Missed the quorum commit: fold into the soft-sync path one round
      // late at minimum; hard sync has no stale path, so the update drops.
      ++rec.late;
      if (soft_sync) {
        if (tau != kExceedsThreshold) tau = std::max(tau, 1);
      } else {
        ++rec.dropped;
        account_payload_drop(uf);
        if (tracing) {
          trace.record(i, obs::Stage::kDrop, arrive_s, 0.0, 0.0, "late");
        }
        continue;
      }
    }
    if (tau == kExceedsThreshold || tau > pool_.threshold()) {
      ++rec.dropped;  // beyond the staleness threshold: never applied
      account_payload_drop(uf);
      if (tracing) {
        trace.record(i, obs::Stage::kDrop, latency[ui], 0.0,
                     static_cast<double>(tau), "stale_overflow");
      }
      continue;
    }
    arrivals_[t + tau].push_back(std::move(upd));
  }
  total_bytes_down_ += rec.bytes_down;
  total_bytes_up_ += rec.bytes_up;

  // --- process this round's arrivals (lines 16-31) ---
  supernet_->zero_grad();
  AlphaPair grad_j = AlphaPair::zeros(policy_.num_edges());
  std::vector<std::pair<double, AlphaPair>> alpha_terms;  // (reward, dlogp)
  // Accepted updates, collected (not yet applied) so the aggregate phase
  // below can choose between the exact Eq. 13 mean and a robust estimator.
  std::vector<std::vector<std::size_t>> applied_ids;
  std::vector<std::vector<float>> applied_grads;
  // (participant, dispatch round) of each accepted update, so the
  // aggregate phase can attribute estimator verdicts to causal traces.
  std::vector<std::pair<int, int>> applied_from;
  double reward_sum = 0.0;
  double tau_sum = 0.0;
  int m = 0;
  {
    FMS_SPAN("compensate");
    obs::Histogram* tau_hist =
        telemetry ? &obs::Telemetry::instance().registry().histogram(
                        "fms.staleness.tau",
                        obs::linear_buckets(pool_.threshold()))
                  : nullptr;
    auto due = arrivals_.find(t);
    if (due != arrivals_.end()) {
      // Adaptive screening: tighten the norm cutoff to median + k*MAD of
      // this round's arrivals (robust location/scale, so up to half the
      // fleet lying cannot widen the bound) when enough updates arrived;
      // otherwise the fixed cap applies. The bound never exceeds the cap.
      float screen_bound = opts.screen_max_grad_norm;
      if (opts.screen_updates && opts.adaptive_screen) {
        std::vector<double> norms;
        norms.reserve(due->second.size());
        for (const UpdateMsg& u : due->second) {
          double sq = 0.0;
          for (float g : u.grads) sq += static_cast<double>(g) * g;
          const double norm = std::sqrt(sq);
          if (std::isfinite(norm)) norms.push_back(norm);
        }
        screen_bound = static_cast<float>(agg::adaptive_norm_bound(
            norms, opts.adaptive_screen_k, opts.adaptive_screen_min,
            static_cast<double>(opts.screen_max_grad_norm)));
      }
      if (opts.screen_updates) rec.screen_bound = screen_bound;
      for (UpdateMsg& upd : due->second) {
        const int tau = t - upd.round;
        if (tau_hist != nullptr) tau_hist->observe(static_cast<double>(tau));
        if (tracing) {
          trace.record(upd.participant, obs::Stage::kArrive, 0.0, 0.0,
                       static_cast<double>(tau),
                       tau > 0 ? "stale" : "fresh", upd.round);
        }
        // The injector is stateless, so the fault attached to this update
        // (possibly from an earlier round) is re-derived, not stored. Same
        // precedence as the dispatch site: payload fault, else Byzantine.
        std::optional<FaultKind> pf =
            faults ? injector.payload_fault(upd.participant, upd.round)
                   : std::nullopt;
        if (faults && !pf.has_value()) {
          pf = injector.byzantine_kind(upd.participant, upd.round);
        }
        if (opts.screen_updates) {
          // Defense: reject poisoned/corrupted updates before they can
          // reach theta, alpha, or the REINFORCE baseline.
          const char* violation = screen_update(upd, screen_bound);
          if (violation != nullptr) {
            ++rec.rejected;
            if (pf.has_value()) ++fault_stats_.rejected;
            if (telemetry) {
              obs::Telemetry::instance().registry()
                  .counter(std::string("fms.updates.rejected.") + violation)
                  .add(1);
            }
            continue;
          }
        }
        std::vector<float> grads;
        AlphaPair dlogp = AlphaPair::zeros(policy_.num_edges());
        std::vector<std::size_t> ids = supernet_->masked_param_ids(upd.mask);
        if (tau == 0) {
          grads = std::move(upd.grads);
          dlogp = policy_.log_prob_grad(upd.mask);
        } else {
          if (opts.stale_policy == StalePolicy::kDrop) {
            ++rec.dropped;
            if (pf.has_value()) ++fault_stats_.dropped;
            if (tracing) {
              trace.record(upd.participant, obs::Stage::kDrop, 0.0, 0.0,
                           static_cast<double>(tau), "stale_policy",
                           upd.round);
            }
            continue;
          }
          const RoundSnapshot* snap = pool_.find(upd.round);
          if (snap == nullptr) {  // evicted: nothing to compensate against
            ++rec.dropped;
            if (pf.has_value()) ++fault_stats_.dropped;
            if (tracing) {
              trace.record(upd.participant, obs::Stage::kDrop, 0.0, 0.0,
                           static_cast<double>(tau), "snapshot_evicted",
                           upd.round);
            }
            continue;
          }
          if (opts.stale_policy == StalePolicy::kUseStale) {
            grads = std::move(upd.grads);
            dlogp = ArchPolicy::log_prob_grad_at(snap->alpha, upd.mask);
          } else {  // kCompensate: Eq. 13 + Eq. 15
            std::vector<float> fresh_w = supernet_->gather_values(ids);
            std::vector<float> stale_w =
                supernet_->gather_from_flat(snap->theta, ids);
            grads = compensate_weight_gradient(upd.grads, fresh_w, stale_w,
                                               opts.dc_lambda);
            AlphaPair stale_dlogp =
                ArchPolicy::log_prob_grad_at(snap->alpha, upd.mask);
            dlogp = compensate_alpha_gradient(stale_dlogp, policy_.alpha(),
                                              snap->alpha, opts.dc_lambda);
            ++rec.compensated;
          }
          ++rec.stale_arrived;
        }
        tau_sum += tau;
        rec.max_tau = std::max(rec.max_tau, tau);
        applied_ids.push_back(std::move(ids));
        applied_grads.push_back(std::move(grads));
        applied_from.emplace_back(upd.participant, upd.round);
        alpha_terms.emplace_back(upd.reward, std::move(dlogp));
        reward_sum += upd.reward;
        ++m;
        registry_.note_applied(upd.participant, tau);
        // A faulted payload that survived screening and got applied was
        // absorbed by training — the third and final outcome.
        if (pf.has_value()) ++fault_stats_.recovered;
      }
      arrivals_.erase(due);
    }
  }

  rec.arrived = m;
  rec.mean_tau = m > 0 ? tau_sum / m : 0.0;
  {
    FMS_SPAN("aggregate");
    if (m > 0) {
      rec.mean_reward = reward_sum / m;
      // Robust reward channel (defense): winsorize the round's rewards into
      // the Tukey band before they can reach the moving average, the
      // baseline, or their own advantage — a lying client's influence is
      // then bounded by the band width, not by trust. The defended mean is
      // what the curves and the EMA see.
      if (opts.winsorize_rewards_k > 0.0) {
        std::vector<double> rewards;
        rewards.reserve(alpha_terms.size());
        for (const auto& term : alpha_terms) rewards.push_back(term.first);
        const agg::WinsorBounds wb =
            agg::winsor_bounds(rewards, opts.winsorize_rewards_k);
        double wsum = 0.0;
        for (auto& [reward, dlogp] : alpha_terms) {
          if (reward < wb.lo) {
            reward = wb.lo;
            ++rec.winsorized;
          } else if (reward > wb.hi) {
            reward = wb.hi;
            ++rec.winsorized;
          }
          wsum += reward;
        }
        rec.mean_reward = wsum / m;
      }
      rec.moving_avg = moving_.update(rec.mean_reward);

      // REINFORCE with moving-average baseline (Eq. 8-10). The median
      // baseline mode feeds the EMA a statistic a lying minority cannot
      // move at all (mean mode reproduces Eq. 9 exactly).
      double round_stat = rec.mean_reward;
      if (opts.baseline_mode == BaselineMode::kMedianReward) {
        std::vector<double> rewards;
        rewards.reserve(alpha_terms.size());
        for (const auto& term : alpha_terms) rewards.push_back(term.first);
        round_stat =
            ArchPolicy::round_statistic(rewards, BaselineMode::kMedianReward);
      }
      const double b = policy_.update_baseline(round_stat);
      for (auto& [reward, dlogp] : alpha_terms) {
        grad_j.add_scaled(dlogp, static_cast<float>(reward - b) /
                                     static_cast<float>(m));
      }
      if (opts.update_alpha) policy_.apply_gradient(grad_j);

      if (opts.aggregator.kind == agg::AggregatorKind::kMean) {
        // Eq. 13 exactly, preserving the pre-robustness float-op order:
        // scatter each accepted gradient in arrival order, then scale by
        // 1/m — bit-identical to the legacy in-loop scatter.
        // The masked scatter is this path's mean estimator, so it books
        // the agg.mean work: one add per scattered element plus one
        // scale per theta coordinate.
        FMS_WORK("agg.mean", [&] {
          std::uint64_t scattered = 0;
          for (const std::vector<float>& g : applied_grads) {
            scattered += g.size();
          }
          std::uint64_t dim = 0;
          for (const Param* p : supernet_->params()) {
            dim += p->grad.vec().size();
          }
          obs::OpCost cost;
          cost.flops = scattered + dim;
          cost.bytes_read = 4 * scattered;
          cost.bytes_written = 4 * dim;
          cost.elements = dim;
          return cost;
        }());
        for (std::size_t u = 0; u < applied_grads.size(); ++u) {
          supernet_->scatter_add_grads(applied_ids[u], applied_grads[u]);
          if (tracing) {
            trace.record(applied_from[u].first, obs::Stage::kAggregate, 0.0,
                         0.0, 0.0, "applied", applied_from[u].second);
          }
        }
        if (opts.update_theta) {
          const float inv_m = 1.0F / static_cast<float>(m);
          for (Param* p : supernet_->params()) {
            for (float& g : p->grad.vec()) g *= inv_m;
          }
          theta_opt_.step(supernet_->params());
        }
      } else {
        // Robust estimator: densify each masked update into the whole-net
        // coordinate space (unsampled ops contribute zero gradient, the
        // same semantics the legacy scatter gives the mean) and aggregate.
        // The presence masks let the per-coordinate estimators tell a
        // real zero gradient from an op the update never sampled — see
        // the participation-aware notes in src/agg/aggregator.h.
        std::vector<std::vector<float>> dense;
        std::vector<std::vector<std::uint8_t>> presence;
        dense.reserve(applied_grads.size());
        presence.reserve(applied_grads.size());
        for (std::size_t u = 0; u < applied_grads.size(); ++u) {
          dense.push_back(
              supernet_->dense_from_masked(applied_ids[u], applied_grads[u]));
          presence.push_back(supernet_->presence_from_masked(applied_ids[u]));
        }
        const agg::AggregationOutcome out =
            agg::aggregate(opts.aggregator, dense, presence);
        rec.agg_clipped = out.clipped_updates;
        rec.agg_clipped_mass = out.clipped_mass;
        rec.agg_trimmed = out.trimmed_values;
        rec.agg_rejected = out.rejected_updates;
        if (tracing) {
          // The krum family reports its survivor set; everything else
          // folds every update into the estimate.
          std::vector<char> kept(applied_from.size(),
                                 out.selected.empty() ? 1 : 0);
          for (const int s : out.selected) {
            if (s >= 0 && static_cast<std::size_t>(s) < kept.size()) {
              kept[static_cast<std::size_t>(s)] = 1;
            }
          }
          for (std::size_t u = 0; u < applied_from.size(); ++u) {
            trace.record(applied_from[u].first, obs::Stage::kAggregate, 0.0,
                         0.0, 0.0,
                         kept[u] != 0 ? "applied" : "rejected:estimator",
                         applied_from[u].second);
          }
        }
        if (opts.update_theta) {
          supernet_->add_flat_grads(out.grad);
          theta_opt_.step(supernet_->params());
        }
      }
    } else {
      rec.moving_avg = moving_.value();
    }
  }
  robust_stats_.clipped_updates += static_cast<std::uint64_t>(rec.agg_clipped);
  robust_stats_.clipped_mass += rec.agg_clipped_mass;
  robust_stats_.trimmed_values += static_cast<std::uint64_t>(rec.agg_trimmed);
  robust_stats_.rejected_updates +=
      static_cast<std::uint64_t>(rec.agg_rejected);
  robust_stats_.winsorized_rewards +=
      static_cast<std::uint64_t>(rec.winsorized);
  rec.alpha_entropy = policy_.mean_entropy();
  rec.baseline = policy_.baseline();

  if (soft_sync) pool_.evict(t);

  // --- degradation controller (hysteresis over committed outcomes) ---
  if (opts.degrade.max_mode > 0) {
    // Bad round: the quorum was not met on time, or the timeout cap
    // itself closed the round while stragglers were still inbound
    // (deadline blow-through).
    const bool cap_bound = rec.deadline_s > 0.0 &&
                           std::isfinite(deadline) &&
                           deadline >= rec.deadline_s - 1e-12 && rec.late > 0;
    const DegradationController::Transition dtr =
        degrade_.observe(rec.partial_quorum || cap_bound, opts.degrade);
    if (dtr.changed) {
      rec.degrade_transition = std::string(degrade_mode_name(dtr.from)) +
                               "->" + degrade_mode_name(dtr.to);
      if (static_cast<int>(dtr.to) > static_cast<int>(dtr.from)) {
        // Stepping deeper into degradation is an incident: snapshot the
        // per-participant lifecycle ring for the post-mortem.
        trace.dump_flight(std::string("degrade_enter:") +
                          degrade_mode_name(dtr.to));
      }
    }
  }

  // --- search-health monitor + flight-recorder triggers ---
  if (health_) {
    obs::HealthSignal sig;
    sig.participants = k;
    sig.live = rec.live;
    sig.joined = rec.joined;
    sig.left = rec.left;
    if (obs::alloc_tracking_enabled()) {
      sig.live_alloc_bytes = obs::alloc_stats().live_bytes;
    }
    rec.health = static_cast<int>(health_->observe(rec, sig));
    for (const obs::DetectorStatus& d : health_->detectors()) {
      if (d.state >= obs::HealthState::kWarn) {
        if (!rec.health_trips.empty()) rec.health_trips += ",";
        rec.health_trips += d.name;
      }
    }
    if (health_->crit_transition()) {
      trace.dump_flight("health_crit:" + health_->last_crit_detectors()[0]);
    }
  }
  if (rec.partial_quorum) trace.dump_flight("quorum_failure");
  if (tracing) {
    // Advance the sim clock past this round so the next round's events
    // render after it (the committed deadline bounds everything recorded
    // at a latency offset; stragglers surface as kArrive next rounds).
    trace.end_round(std::max(rec.commit_latency_s, rec.max_latency_s));
  }

  if (telemetry) record_round_telemetry(rec, opts, stats_before);
  return rec;
}

// Feeds the round's outcome into the metrics registry and emits the
// structured "round" trace event — everything the paper's systems curves
// (Figs. 7-8, Table V) are plotted from.
void FederatedSearch::record_round_telemetry(const RoundRecord& rec,
                                             const SearchOptions& opts,
                                             const FaultStats& before) {
  obs::Telemetry& telemetry = obs::Telemetry::instance();
  obs::MetricsRegistry& reg = telemetry.registry();

  reg.counter("fms.updates.arrived").add(static_cast<std::uint64_t>(rec.arrived));
  reg.counter("fms.updates.dropped").add(static_cast<std::uint64_t>(rec.dropped));
  reg.counter("fms.updates.stale").add(static_cast<std::uint64_t>(rec.stale_arrived));
  reg.counter("fms.updates.compensated")
      .add(static_cast<std::uint64_t>(rec.compensated));
  reg.counter("fms.bytes.down").add(rec.bytes_down);
  reg.counter("fms.bytes.up").add(rec.bytes_up);
  reg.counter("fms.rounds").add(1);

  // Fault-tolerance counters: this round's deltas of the cumulative ledger.
  auto add_delta = [&reg](const char* name, std::uint64_t now,
                          std::uint64_t prev) {
    if (now > prev) reg.counter(name).add(now - prev);
  };
  add_delta("fms.fault.injected.crash", fault_stats_.injected_crash,
            before.injected_crash);
  add_delta("fms.fault.injected.dropout", fault_stats_.injected_dropout,
            before.injected_dropout);
  add_delta("fms.fault.injected.link", fault_stats_.injected_link,
            before.injected_link);
  add_delta("fms.fault.injected.corrupt", fault_stats_.injected_corrupt,
            before.injected_corrupt);
  add_delta("fms.fault.injected.divergent", fault_stats_.injected_divergent,
            before.injected_divergent);
  add_delta("fms.fault.injected.sign_flip", fault_stats_.injected_sign_flip,
            before.injected_sign_flip);
  add_delta("fms.fault.injected.grad_scale", fault_stats_.injected_grad_scale,
            before.injected_grad_scale);
  add_delta("fms.fault.injected.collude", fault_stats_.injected_collude,
            before.injected_collude);
  add_delta("fms.fault.injected.reward_attack", fault_stats_.injected_reward,
            before.injected_reward);
  add_delta("fms.fault.rejected", fault_stats_.rejected, before.rejected);
  add_delta("fms.fault.dropped", fault_stats_.dropped, before.dropped);
  add_delta("fms.fault.recovered", fault_stats_.recovered, before.recovered);
  if (rec.rejected > 0) {
    reg.counter("fms.updates.rejected")
        .add(static_cast<std::uint64_t>(rec.rejected));
  }
  if (rec.late > 0) {
    reg.counter("fms.updates.late").add(static_cast<std::uint64_t>(rec.late));
  }
  if (rec.offline > 0) {
    reg.counter("fms.participants.offline")
        .add(static_cast<std::uint64_t>(rec.offline));
  }
  if (rec.retransmits > 0) {
    reg.counter("fms.retransmits")
        .add(static_cast<std::uint64_t>(rec.retransmits));
  }
  if (rec.partial_quorum) reg.counter("fms.rounds.partial_quorum").add(1);
  reg.histogram("fms.round.commit_latency_s").observe(rec.commit_latency_s);

  // Churn + degradation: membership deltas, live population, ladder mode.
  add_delta("fms.fault.injected.uplink", fault_stats_.injected_uplink,
            before.injected_uplink);
  if (rec.joined > 0) {
    reg.counter("fms.churn.joined").add(static_cast<std::uint64_t>(rec.joined));
  }
  if (rec.left > 0) {
    reg.counter("fms.churn.left").add(static_cast<std::uint64_t>(rec.left));
  }
  if (rec.shed > 0) {
    reg.counter("fms.churn.shed").add(static_cast<std::uint64_t>(rec.shed));
  }
  reg.gauge("fms.churn.live").set(static_cast<double>(rec.live));
  reg.gauge("fms.degrade.mode").set(static_cast<double>(rec.degrade_mode));
  if (!rec.degrade_transition.empty()) {
    reg.counter("fms.degrade.transitions").add(1);
  }

  // Robust-aggregation counters: how much influence the estimator removed.
  if (rec.agg_clipped > 0) {
    reg.counter("fms.agg.clipped").add(static_cast<std::uint64_t>(rec.agg_clipped));
  }
  if (rec.agg_trimmed > 0) {
    reg.counter("fms.agg.trimmed").add(static_cast<std::uint64_t>(rec.agg_trimmed));
  }
  if (rec.agg_rejected > 0) {
    reg.counter("fms.agg.rejected")
        .add(static_cast<std::uint64_t>(rec.agg_rejected));
  }
  if (rec.winsorized > 0) {
    reg.counter("fms.rewards.winsorized")
        .add(static_cast<std::uint64_t>(rec.winsorized));
  }

  reg.gauge("fms.policy.baseline").set(rec.baseline);
  reg.gauge("fms.alpha.entropy.mean").set(rec.alpha_entropy);
  reg.gauge("fms.round.moving_avg").set(rec.moving_avg);

  reg.histogram("fms.round.max_latency_s").observe(rec.max_latency_s);
  reg.histogram("fms.round.mean_latency_s").observe(rec.mean_latency_s);

  // Per-edge alpha entropy gauges (the paper's policy-sharpening signal).
  const std::vector<double> entropies = policy_.edge_entropies();
  const std::size_t half = entropies.size() / 2;
  obs::Histogram& ent_hist =
      reg.histogram("fms.alpha.edge_entropy", obs::linear_buckets(3));
  for (std::size_t e = 0; e < entropies.size(); ++e) {
    const bool normal = e < half;
    const std::size_t edge = normal ? e : e - half;
    reg.gauge(std::string("fms.alpha.entropy.") +
              (normal ? "normal." : "reduce.") + std::to_string(edge))
        .set(entropies[e]);
    ent_hist.observe(entropies[e]);
  }

  obs::TraceEvent event;
  event.type = "round";
  event.name = "round";
  event.round = rec.round;
  event.fields = {
      {"mean_reward", rec.mean_reward},
      {"moving_avg", rec.moving_avg},
      {"arrived", static_cast<double>(rec.arrived)},
      {"dropped", static_cast<double>(rec.dropped)},
      {"stale_arrived", static_cast<double>(rec.stale_arrived)},
      {"compensated", static_cast<double>(rec.compensated)},
      {"mean_tau", rec.mean_tau},
      {"max_tau", static_cast<double>(rec.max_tau)},
      {"bytes_down", static_cast<double>(rec.bytes_down)},
      {"bytes_up", static_cast<double>(rec.bytes_up)},
      {"max_latency_s", rec.max_latency_s},
      {"mean_latency_s", rec.mean_latency_s},
      {"alpha_entropy", rec.alpha_entropy},
      {"baseline", rec.baseline},
      {"dc_lambda", static_cast<double>(opts.dc_lambda)},
      {"offline", static_cast<double>(rec.offline)},
      {"rejected", static_cast<double>(rec.rejected)},
      {"late", static_cast<double>(rec.late)},
      {"retransmits", static_cast<double>(rec.retransmits)},
      {"partial_quorum", rec.partial_quorum ? 1.0 : 0.0},
      {"commit_latency_s", rec.commit_latency_s},
      {"agg_clipped", static_cast<double>(rec.agg_clipped)},
      {"agg_clipped_mass", rec.agg_clipped_mass},
      {"agg_trimmed", static_cast<double>(rec.agg_trimmed)},
      {"agg_rejected", static_cast<double>(rec.agg_rejected)},
      {"winsorized", static_cast<double>(rec.winsorized)},
      {"screen_bound", rec.screen_bound},
      {"health", static_cast<double>(rec.health)},
      {"live", static_cast<double>(rec.live)},
      {"joined", static_cast<double>(rec.joined)},
      {"left", static_cast<double>(rec.left)},
      {"cohort", static_cast<double>(rec.cohort)},
      {"shed", static_cast<double>(rec.shed)},
      {"deadline_s", rec.deadline_s},
      {"degrade_mode", static_cast<double>(rec.degrade_mode)},
  };
  telemetry.emit(std::move(event));

  // With --profile on, flush the zone tree into the sinks each round:
  // one "profile" trace event per zone plus the fms.prof.* / fms.alloc.*
  // gauges (cumulative since the last reset_profiler()).
  if (obs::profiling_enabled()) {
    obs::emit_profile_telemetry(obs::collect_profile());
  }
  // Same cadence for the work ledger: one "work" event per op plus the
  // fms.work.* gauges (cumulative since the last reset_work_ledger()).
  if (obs::work_tracking_enabled()) {
    obs::emit_work_telemetry(obs::collect_work());
  }
}

SearchCheckpoint FederatedSearch::checkpoint() {
  SearchCheckpoint ckpt =
      make_checkpoint(*supernet_, policy_, cfg_.supernet.num_nodes,
                      round_counter_);
  ckpt.baseline_initialized = policy_.baseline_initialized();
  ckpt.runtime_state = serialize_runtime_state();
  return ckpt;
}

void FederatedSearch::restore(const SearchCheckpoint& ckpt) {
  FMS_CHECK_MSG(ckpt.num_nodes == cfg_.supernet.num_nodes,
                "checkpoint node count " << ckpt.num_nodes
                                         << " != configured "
                                         << cfg_.supernet.num_nodes);
  restore_checkpoint(ckpt, *supernet_, policy_);
  policy_.restore_baseline(ckpt.baseline, ckpt.baseline_initialized);
  round_counter_ = ckpt.round;
  if (ckpt.has_runtime_state()) restore_runtime_state(ckpt.runtime_state);
}

FederatedSearch::RecoveryReport FederatedSearch::recover(
    const RecoverConfig& rc) {
  Stopwatch timer;
  RecoveryReport report;
  const bool telemetry = obs::telemetry_enabled();

  // 1. Newest valid checkpoint, falling back to the retained `.prev`
  // generation when the primary fails CRC or parse. No checkpoint at all
  // means the crash happened before the first auto-checkpoint: recovery
  // replays from round 0 (the constructor state is the round-0 state).
  std::error_code ec;
  if (std::filesystem::exists(rc.checkpoint_path, ec) ||
      std::filesystem::exists(rc.checkpoint_path + ".prev", ec)) {
    const CheckpointLoad load =
        read_checkpoint_file_with_fallback(rc.checkpoint_path);
    restore(load.ckpt);
    report.checkpoint_loaded = true;
    report.used_prev_checkpoint = load.used_prev;
    if (load.used_prev) {
      if (telemetry) {
        obs::Telemetry::instance()
            .registry()
            .counter("fms.checkpoints.prev_fallback")
            .add(1);
      }
      if (obs::tracing_enabled()) {
        obs::TraceContext::instance().dump_flight("checkpoint_prev_fallback");
      }
    }
  }
  report.start_round = round_counter_;

  // 2. Journal frames from both generations: `.prev` covers the previous
  // checkpoint generation, the live file covers the current one. Frames
  // at rounds the checkpoint already contains are stale — drop them.
  const RoundJournal::LoadResult prev =
      RoundJournal::load(rc.journal_path + ".prev");
  const RoundJournal::LoadResult live = RoundJournal::load(rc.journal_path);
  FMS_CHECK_MSG(live.header_valid,
                "journal header is corrupt: " << rc.journal_path);
  std::map<int, JournalFrame> frames;
  for (const auto* lr : {&prev, &live}) {
    for (const JournalFrame& f : lr->frames) {
      if (f.round >= round_counter_) frames[f.round] = f;
    }
  }
  report.frames_loaded = frames.size();

  // 3. Torn-tail rule: a frame that is short or fails CRC — and anything
  // after it — never happened. Truncate it off so the resumed journal
  // appends after the last good frame.
  if (live.torn_bytes > 0) {
    RoundJournal::truncate_to(rc.journal_path, live.valid_bytes);
    report.torn_bytes = live.torn_bytes;
    if (telemetry) {
      auto& reg = obs::Telemetry::instance().registry();
      reg.counter("fms.journal.frames_truncated").add(1);
      reg.counter("fms.journal.torn_bytes")
          .add(static_cast<std::uint64_t>(live.torn_bytes));
    }
    if (obs::tracing_enabled()) {
      obs::TraceContext::instance().dump_flight("journal_torn_tail");
    }
  }

  // 4. Deterministic replay: re-execute every round past the checkpoint
  // up to the newest journaled round, verifying each re-executed round
  // against its frame when one survived. Replay is gap-tolerant — a
  // round whose frame was lost to a short write is re-executed all the
  // same (determinism comes from the restored state, not the frames); it
  // just cannot be cross-checked. The phase boundary comes from the
  // caller's warmup_rounds, not the frames, so a journal losing its
  // warmup frames still replays correctly.
  if (!frames.empty()) {
    const int last = frames.rbegin()->first;
    const SearchOptions warmup = warmup_options();
    while (round_counter_ <= last) {
      const int t = round_counter_;
      const std::uint8_t phase = t < rc.warmup_rounds ? 0 : 1;
      const RoundRecord rec =
          run_round(round_counter_++, phase == 0 ? warmup : rc.search);
      ++report.replayed_rounds;
      const auto it = frames.find(t);
      if (it == frames.end()) continue;
      const JournalFrame& f = it->second;
      FMS_CHECK_MSG(f.phase == phase, "journal replay diverged at round "
                                          << t << ": phase mismatch");
      ByteWriter replayed;
      ByteWriter journaled;
      rec.canonical().serialize(replayed);
      f.record.serialize(journaled);
      FMS_CHECK_MSG(replayed.bytes() == journaled.bytes(),
                    "journal replay diverged at round "
                        << t << ": round record mismatch");
      FMS_CHECK_MSG(rng_.save_state() == f.rng_cursor,
                    "journal replay diverged at round " << t
                                                        << ": rng cursor");
      FMS_CHECK_MSG(staleness_rng_.save_state() == f.staleness_cursor,
                    "journal replay diverged at round "
                        << t << ": staleness cursor");
      FMS_CHECK_MSG(static_cast<int>(degrade_.mode()) == f.degrade_mode &&
                        degrade_.transitions() == f.degrade_transitions,
                    "journal replay diverged at round "
                        << t << ": degradation ladder");
    }
  }

  report.recovery_ms = timer.elapsed_seconds() * 1000.0;
  if (telemetry) {
    auto& reg = obs::Telemetry::instance().registry();
    if (report.replayed_rounds > 0) {
      reg.counter("fms.journal.frames_replayed")
          .add(static_cast<std::uint64_t>(report.replayed_rounds));
    }
    reg.gauge("fms.journal.recovery_ms").set(report.recovery_ms);
  }

  // Resume journaling where the crashed run left off: new frames append
  // after the (possibly truncated) tail.
  enable_journal(rc.journal_path, rc.search.fault_plan);
  return report;
}

std::vector<std::uint8_t> FederatedSearch::serialize_runtime_state() const {
  ByteWriter w;
  w.write(kRuntimeMagic);
  w.write(round_counter_);
  w.write(static_cast<std::uint64_t>(total_bytes_down_));
  w.write(static_cast<std::uint64_t>(total_bytes_up_));
  w.write(static_cast<std::uint64_t>(submodel_bytes_sum_));
  w.write(static_cast<std::uint64_t>(submodel_count_));
  // Fault ledger, so resumed campaigns keep the accounting invariant exact.
  w.write(fault_stats_);
  // Robustness ledger, so a resumed run's CLI summary matches an
  // uninterrupted one.
  w.write(robust_stats_);
  // Every RNG stream: the server's two, each participant's, each trace's.
  w.write_string(rng_.save_state());
  w.write_string(staleness_rng_.save_state());
  w.write(static_cast<std::uint32_t>(participants_.size()));
  for (const auto& p : participants_) {
    w.write_string(p->rng_state());
    // Mid-epoch batch iteration state.
    w.write_vector(p->shard().epoch_order());
    w.write(static_cast<std::uint64_t>(p->shard().epoch_cursor()));
  }
  w.write(static_cast<std::uint32_t>(traces_.size()));
  for (const auto& tr : traces_) {
    w.write_string(tr.rng_state());
    w.write(tr.state_mbps());  // AR(1) filter state
  }
  // Optimizer momentum (empty means no step has been taken yet).
  const auto& vel = theta_opt_.velocity();
  w.write(static_cast<std::uint32_t>(vel.size()));
  for (const auto& v : vel) w.write_vector(v);
  // Moving-average window. The rolling sum and rebuild phase carry
  // float-rounding state, so they are persisted verbatim rather than
  // recomputed — recomputation would diverge from an uninterrupted run.
  const std::deque<double>& mv = moving_.values();
  w.write_vector(std::vector<double>(mv.begin(), mv.end()));
  w.write(moving_.raw_sum());
  w.write(static_cast<std::uint64_t>(moving_.rebuild_counter()));
  // Delay-compensation memory pool snapshots.
  w.write(static_cast<std::uint32_t>(pool_.snapshots().size()));
  for (const auto& [round, snap] : pool_.snapshots()) {
    w.write(round);
    w.write_vector(snap.theta);
    w.write_vector(snap.alpha.flatten());
    w.write(static_cast<std::uint32_t>(snap.masks.size()));
    for (const Mask& m : snap.masks) {
      w.write_vector(m.normal);
      w.write_vector(m.reduce);
    }
  }
  // In-flight (not yet arrived) updates.
  w.write(static_cast<std::uint32_t>(arrivals_.size()));
  for (const auto& [round, updates] : arrivals_) {
    w.write(round);
    w.write(static_cast<std::uint32_t>(updates.size()));
    for (const UpdateMsg& u : updates) w.write_vector(u.serialize());
  }
  // Churn layer (FMS4): membership history, the adaptive-deadline window,
  // and the degradation ladder — so a resumed search replays the exact
  // membership deltas, deadlines, and mode transitions.
  registry_.serialize(w);
  deadline_est_.serialize(w);
  degrade_.serialize(w);
  return w.take();
}

void FederatedSearch::restore_runtime_state(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  FMS_CHECK_MSG(r.read<std::uint32_t>() == kRuntimeMagic,
                "corrupt runtime state (bad magic)");
  round_counter_ = r.read<int>();
  total_bytes_down_ = static_cast<std::size_t>(r.read<std::uint64_t>());
  total_bytes_up_ = static_cast<std::size_t>(r.read<std::uint64_t>());
  submodel_bytes_sum_ = static_cast<std::size_t>(r.read<std::uint64_t>());
  submodel_count_ = static_cast<std::size_t>(r.read<std::uint64_t>());
  fault_stats_ = r.read<FaultStats>();
  robust_stats_ = r.read<RobustStats>();
  rng_.load_state(r.read_string());
  staleness_rng_.load_state(r.read_string());
  const auto np = r.read<std::uint32_t>();
  FMS_CHECK_MSG(np == participants_.size(),
                "checkpoint has " << np << " participants, search has "
                                  << participants_.size());
  for (auto& p : participants_) {
    p->set_rng_state(r.read_string());
    std::vector<int> order = r.read_vector<int>();
    const auto cursor = r.read<std::uint64_t>();
    p->shard().restore_epoch(std::move(order),
                             static_cast<std::size_t>(cursor));
  }
  const auto nt = r.read<std::uint32_t>();
  FMS_CHECK_MSG(nt == traces_.size(), "checkpoint trace count mismatch");
  for (auto& tr : traces_) {
    tr.set_rng_state(r.read_string());
    tr.set_state_mbps(r.read<double>());
  }
  const auto nv = r.read<std::uint32_t>();
  std::vector<std::vector<float>> vel(nv);
  for (auto& v : vel) v = r.read_vector<float>();
  FMS_CHECK_MSG(vel.empty() || vel.size() == supernet_->params().size(),
                "optimizer state tensor count mismatch");
  theta_opt_.set_velocity(std::move(vel));
  const std::vector<double> window_vals = r.read_vector<double>();
  const double window_sum = r.read<double>();
  const auto window_rebuild = r.read<std::uint64_t>();
  moving_.restore(std::deque<double>(window_vals.begin(), window_vals.end()),
                  window_sum, static_cast<std::size_t>(window_rebuild));
  std::map<int, RoundSnapshot> snaps;
  const auto ns = r.read<std::uint32_t>();
  for (std::uint32_t s = 0; s < ns; ++s) {
    const int round = r.read<int>();
    RoundSnapshot snap;
    snap.theta = r.read_vector<float>();
    FMS_CHECK_MSG(snap.theta.size() == supernet_->param_count(),
                  "pool snapshot theta shape mismatch");
    snap.alpha =
        AlphaPair::unflatten(r.read_vector<float>(), policy_.num_edges());
    const auto nm = r.read<std::uint32_t>();
    for (std::uint32_t j = 0; j < nm; ++j) {
      Mask m;
      m.normal = r.read_vector<int>();
      m.reduce = r.read_vector<int>();
      snap.masks.push_back(std::move(m));
    }
    snaps.emplace(round, std::move(snap));
  }
  pool_.restore(std::move(snaps));
  arrivals_.clear();
  const auto na = r.read<std::uint32_t>();
  for (std::uint32_t a = 0; a < na; ++a) {
    const int round = r.read<int>();
    const auto nu = r.read<std::uint32_t>();
    auto& updates = arrivals_[round];
    for (std::uint32_t u = 0; u < nu; ++u) {
      updates.push_back(UpdateMsg::deserialize(r.read_vector<std::uint8_t>()));
    }
  }
  registry_.restore(r);
  deadline_est_.restore(r);
  degrade_.restore(r);
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in runtime state");
}

Genotype FederatedSearch::derive() const {
  return policy_.derive_genotype(cfg_.supernet.num_nodes);
}

double FederatedSearch::avg_submodel_bytes() const {
  return submodel_count_ == 0
             ? 0.0
             : static_cast<double>(submodel_bytes_sum_) /
                   static_cast<double>(submodel_count_);
}

}  // namespace fms
