#include "src/core/search.h"

#include <algorithm>
#include <string>

#include "src/nn/optim.h"
#include "src/obs/span.h"
#include "src/obs/telemetry.h"
#include "src/tensor/ops.h"

namespace fms {

FederatedSearch::FederatedSearch(const SearchConfig& cfg,
                                 const Dataset& train_data,
                                 const std::vector<std::vector<int>>& partition)
    : cfg_(cfg),
      rng_(cfg.seed),
      policy_(Cell::num_edges(cfg.supernet.num_nodes), cfg.alpha),
      theta_opt_(SGD::Options{cfg.theta.learning_rate, cfg.theta.momentum,
                              cfg.theta.weight_decay, cfg.theta.gradient_clip}),
      pool_(/*staleness_threshold=*/5),
      moving_(50) {
  if (cfg.telemetry.enabled) {
    obs::Telemetry::instance().configure(cfg.telemetry);
    owns_telemetry_ = true;
  }
  staleness_rng_ = rng_.fork();
  Rng net_rng = rng_.fork();
  supernet_ = std::make_unique<Supernet>(cfg.supernet, net_rng);
  FMS_CHECK_MSG(!partition.empty(), "need at least one participant");
  for (std::size_t k = 0; k < partition.size(); ++k) {
    participants_.push_back(std::make_unique<SearchParticipant>(
        static_cast<int>(k), Shard(&train_data, partition[k]), cfg.supernet,
        cfg.augment, cfg.schedule.batch_size, rng_.fork()));
    // Default environment mix: participants cycle through the six mobility
    // settings; Fig. 7 benches construct their own traces explicitly.
    traces_.emplace_back(
        static_cast<NetEnvironment>(k % kNumNetEnvironments), rng_.fork());
  }
}

FederatedSearch::~FederatedSearch() {
  if (owns_telemetry_) obs::Telemetry::instance().finish();
}

std::vector<RoundRecord> FederatedSearch::run_warmup(int steps) {
  SearchOptions opts;
  opts.update_alpha = false;
  opts.update_theta = true;
  opts.stale_policy = StalePolicy::kHardSync;
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(run_round(round_counter_++, opts));
    if (on_round) on_round(records.back());
  }
  return records;
}

std::vector<RoundRecord> FederatedSearch::run_search(
    int steps, const SearchOptions& opts) {
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(run_round(round_counter_++, opts));
    if (on_round) on_round(records.back());
  }
  return records;
}

RoundRecord FederatedSearch::run_round(int t, const SearchOptions& opts) {
  const int k = num_participants();
  const bool telemetry = obs::telemetry_enabled();
  if (telemetry) obs::Telemetry::instance().set_round(t);
  FMS_SPAN("round");
  RoundRecord rec;
  rec.round = t;

  // --- sample masks and snapshot state (Alg. 1 lines 4-9) ---
  std::vector<Mask> masks;
  const bool soft_sync = opts.stale_policy != StalePolicy::kHardSync;
  {
    FMS_SPAN("sample");
    masks.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) masks.push_back(policy_.sample(rng_));
    if (soft_sync) {
      RoundSnapshot snap;
      snap.theta = supernet_->flat_values();
      snap.alpha = policy_.alpha();
      snap.masks = masks;
      pool_.save(t, std::move(snap));
    }
  }

  // --- adaptive transmission (Alg. 1 lines 10-11, Fig. 7) ---
  std::vector<int> assignment;
  {
    FMS_SPAN("transmit");
    std::vector<std::size_t> model_bytes;
    std::vector<double> bandwidths;
    model_bytes.reserve(static_cast<std::size_t>(k));
    bandwidths.reserve(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      model_bytes.push_back(
          supernet_->submodel_bytes(masks[static_cast<std::size_t>(i)]));
      bandwidths.push_back(traces_[static_cast<std::size_t>(i)].next_bps());
    }
    assignment = assign_models(model_bytes, bandwidths, opts.assign, rng_);
    LatencyStats lat = transmission_latency(
        model_bytes, bandwidths, assignment,
        opts.assign == AssignStrategy::kAverageSize);
    rec.max_latency_s = lat.max_seconds;
    rec.mean_latency_s = lat.mean_seconds;
  }

  // --- dispatch, local training, delayed arrival (lines 12-15) ---
  // Serialized mask/header overhead of a message whose values travel
  // through the configured codec.
  auto payload_bytes = [&](const Mask& m, std::size_t num_values) {
    return 4 + (8 + m.normal.size()) + (8 + m.reduce.size()) +
           codec_encoded_bytes(num_values, opts.codec);
  };
  obs::Histogram* down_hist = nullptr;
  obs::Histogram* up_hist = nullptr;
  if (telemetry) {
    auto& reg = obs::Telemetry::instance().registry();
    // Per-participant payload distribution, in bytes (linear-ish coverage
    // from 1KB to 100MB via the default log-spaced buckets scaled by 1e9).
    std::vector<double> byte_bounds;
    for (double b : obs::default_time_buckets()) byte_bounds.push_back(b * 1e9);
    down_hist = &reg.histogram("fms.participant.bytes_down", byte_bounds);
    up_hist = &reg.histogram("fms.participant.bytes_up", byte_bounds);
  }
  for (int i = 0; i < k; ++i) {
    const Mask& mask = masks[static_cast<std::size_t>(assignment[i])];
    SubmodelMsg msg;
    msg.round = t;
    msg.mask = mask;
    {
      FMS_SPAN("prune");
      msg.values =
          supernet_->gather_values(supernet_->masked_param_ids(mask));
      if (opts.codec != Codec::kFloat32) {
        msg.values = codec_round_trip(msg.values, opts.codec);
      }
    }
    const std::size_t down = payload_bytes(mask, msg.values.size());
    rec.bytes_down += down;
    submodel_bytes_sum_ += down;
    ++submodel_count_;
    if (down_hist != nullptr) down_hist->observe(static_cast<double>(down));

    UpdateMsg upd = participants_[static_cast<std::size_t>(i)]->train_step(msg);
    if (opts.codec != Codec::kFloat32) {
      upd.grads = codec_round_trip(upd.grads, opts.codec);
    }
    const std::size_t up = payload_bytes(upd.mask, upd.grads.size()) + 8;
    rec.bytes_up += up;
    if (up_hist != nullptr) up_hist->observe(static_cast<double>(up));

    const int tau = soft_sync ? opts.staleness.sample(staleness_rng_) : 0;
    if (tau == kExceedsThreshold || tau > pool_.threshold()) {
      ++rec.dropped;  // beyond the staleness threshold: never applied
      continue;
    }
    arrivals_[t + tau].push_back(std::move(upd));
  }
  total_bytes_down_ += rec.bytes_down;
  total_bytes_up_ += rec.bytes_up;

  // --- process this round's arrivals (lines 16-31) ---
  supernet_->zero_grad();
  AlphaPair grad_j = AlphaPair::zeros(policy_.num_edges());
  std::vector<std::pair<double, AlphaPair>> alpha_terms;  // (reward, dlogp)
  double reward_sum = 0.0;
  double tau_sum = 0.0;
  int m = 0;
  {
    FMS_SPAN("compensate");
    obs::Histogram* tau_hist =
        telemetry ? &obs::Telemetry::instance().registry().histogram(
                        "fms.staleness.tau",
                        obs::linear_buckets(pool_.threshold()))
                  : nullptr;
    auto due = arrivals_.find(t);
    if (due != arrivals_.end()) {
      for (UpdateMsg& upd : due->second) {
        const int tau = t - upd.round;
        if (tau_hist != nullptr) tau_hist->observe(static_cast<double>(tau));
        std::vector<float> grads;
        AlphaPair dlogp = AlphaPair::zeros(policy_.num_edges());
        if (tau == 0) {
          grads = std::move(upd.grads);
          dlogp = policy_.log_prob_grad(upd.mask);
        } else {
          if (opts.stale_policy == StalePolicy::kDrop) {
            ++rec.dropped;
            continue;
          }
          const RoundSnapshot* snap = pool_.find(upd.round);
          if (snap == nullptr) {  // evicted: nothing to compensate against
            ++rec.dropped;
            continue;
          }
          if (opts.stale_policy == StalePolicy::kUseStale) {
            grads = std::move(upd.grads);
            dlogp = ArchPolicy::log_prob_grad_at(snap->alpha, upd.mask);
          } else {  // kCompensate: Eq. 13 + Eq. 15
            const auto ids = supernet_->masked_param_ids(upd.mask);
            std::vector<float> fresh_w = supernet_->gather_values(ids);
            std::vector<float> stale_w =
                supernet_->gather_from_flat(snap->theta, ids);
            grads = compensate_weight_gradient(upd.grads, fresh_w, stale_w,
                                               opts.dc_lambda);
            AlphaPair stale_dlogp =
                ArchPolicy::log_prob_grad_at(snap->alpha, upd.mask);
            dlogp = compensate_alpha_gradient(stale_dlogp, policy_.alpha(),
                                              snap->alpha, opts.dc_lambda);
            ++rec.compensated;
          }
          ++rec.stale_arrived;
        }
        tau_sum += tau;
        rec.max_tau = std::max(rec.max_tau, tau);
        supernet_->scatter_add_grads(supernet_->masked_param_ids(upd.mask),
                                     grads);
        alpha_terms.emplace_back(upd.reward, std::move(dlogp));
        reward_sum += upd.reward;
        ++m;
      }
      arrivals_.erase(due);
    }
  }

  rec.arrived = m;
  rec.mean_tau = m > 0 ? tau_sum / m : 0.0;
  {
    FMS_SPAN("aggregate");
    if (m > 0) {
      rec.mean_reward = reward_sum / m;
      rec.moving_avg = moving_.update(rec.mean_reward);

      // REINFORCE with moving-average baseline (Eq. 8-10).
      const double b = policy_.update_baseline(rec.mean_reward);
      for (auto& [reward, dlogp] : alpha_terms) {
        grad_j.add_scaled(dlogp, static_cast<float>(reward - b) /
                                     static_cast<float>(m));
      }
      if (opts.update_alpha) policy_.apply_gradient(grad_j);

      if (opts.update_theta) {
        // Average gradients over arrived sub-models (line 32) and step.
        const float inv_m = 1.0F / static_cast<float>(m);
        for (Param* p : supernet_->params()) {
          for (float& g : p->grad.vec()) g *= inv_m;
        }
        theta_opt_.step(supernet_->params());
      }
    } else {
      rec.moving_avg = moving_.value();
    }
  }
  rec.alpha_entropy = policy_.mean_entropy();
  rec.baseline = policy_.baseline();

  if (soft_sync) pool_.evict(t);
  if (telemetry) record_round_telemetry(rec, opts);
  return rec;
}

// Feeds the round's outcome into the metrics registry and emits the
// structured "round" trace event — everything the paper's systems curves
// (Figs. 7-8, Table V) are plotted from.
void FederatedSearch::record_round_telemetry(const RoundRecord& rec,
                                             const SearchOptions& opts) {
  obs::Telemetry& telemetry = obs::Telemetry::instance();
  obs::MetricsRegistry& reg = telemetry.registry();

  reg.counter("fms.updates.arrived").add(static_cast<std::uint64_t>(rec.arrived));
  reg.counter("fms.updates.dropped").add(static_cast<std::uint64_t>(rec.dropped));
  reg.counter("fms.updates.stale").add(static_cast<std::uint64_t>(rec.stale_arrived));
  reg.counter("fms.updates.compensated")
      .add(static_cast<std::uint64_t>(rec.compensated));
  reg.counter("fms.bytes.down").add(rec.bytes_down);
  reg.counter("fms.bytes.up").add(rec.bytes_up);
  reg.counter("fms.rounds").add(1);

  reg.gauge("fms.policy.baseline").set(rec.baseline);
  reg.gauge("fms.alpha.entropy.mean").set(rec.alpha_entropy);
  reg.gauge("fms.round.moving_avg").set(rec.moving_avg);

  reg.histogram("fms.round.max_latency_s").observe(rec.max_latency_s);
  reg.histogram("fms.round.mean_latency_s").observe(rec.mean_latency_s);

  // Per-edge alpha entropy gauges (the paper's policy-sharpening signal).
  const std::vector<double> entropies = policy_.edge_entropies();
  const std::size_t half = entropies.size() / 2;
  obs::Histogram& ent_hist =
      reg.histogram("fms.alpha.edge_entropy", obs::linear_buckets(3));
  for (std::size_t e = 0; e < entropies.size(); ++e) {
    const bool normal = e < half;
    const std::size_t edge = normal ? e : e - half;
    reg.gauge(std::string("fms.alpha.entropy.") +
              (normal ? "normal." : "reduce.") + std::to_string(edge))
        .set(entropies[e]);
    ent_hist.observe(entropies[e]);
  }

  obs::TraceEvent event;
  event.type = "round";
  event.name = "round";
  event.round = rec.round;
  event.fields = {
      {"mean_reward", rec.mean_reward},
      {"moving_avg", rec.moving_avg},
      {"arrived", static_cast<double>(rec.arrived)},
      {"dropped", static_cast<double>(rec.dropped)},
      {"stale_arrived", static_cast<double>(rec.stale_arrived)},
      {"compensated", static_cast<double>(rec.compensated)},
      {"mean_tau", rec.mean_tau},
      {"max_tau", static_cast<double>(rec.max_tau)},
      {"bytes_down", static_cast<double>(rec.bytes_down)},
      {"bytes_up", static_cast<double>(rec.bytes_up)},
      {"max_latency_s", rec.max_latency_s},
      {"mean_latency_s", rec.mean_latency_s},
      {"alpha_entropy", rec.alpha_entropy},
      {"baseline", rec.baseline},
      {"dc_lambda", static_cast<double>(opts.dc_lambda)},
  };
  telemetry.emit(std::move(event));
}

Genotype FederatedSearch::derive() const {
  return policy_.derive_genotype(cfg_.supernet.num_nodes);
}

double FederatedSearch::avg_submodel_bytes() const {
  return submodel_count_ == 0
             ? 0.0
             : static_cast<double>(submodel_bytes_sum_) /
                   static_cast<double>(submodel_count_);
}

}  // namespace fms
