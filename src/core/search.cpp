#include "src/core/search.h"

#include <algorithm>

#include "src/nn/optim.h"
#include "src/tensor/ops.h"

namespace fms {

FederatedSearch::FederatedSearch(const SearchConfig& cfg,
                                 const Dataset& train_data,
                                 const std::vector<std::vector<int>>& partition)
    : cfg_(cfg),
      rng_(cfg.seed),
      policy_(Cell::num_edges(cfg.supernet.num_nodes), cfg.alpha),
      theta_opt_(SGD::Options{cfg.theta.learning_rate, cfg.theta.momentum,
                              cfg.theta.weight_decay, cfg.theta.gradient_clip}),
      pool_(/*staleness_threshold=*/5),
      moving_(50) {
  staleness_rng_ = rng_.fork();
  Rng net_rng = rng_.fork();
  supernet_ = std::make_unique<Supernet>(cfg.supernet, net_rng);
  FMS_CHECK_MSG(!partition.empty(), "need at least one participant");
  for (std::size_t k = 0; k < partition.size(); ++k) {
    participants_.push_back(std::make_unique<SearchParticipant>(
        static_cast<int>(k), Shard(&train_data, partition[k]), cfg.supernet,
        cfg.augment, cfg.schedule.batch_size, rng_.fork()));
    // Default environment mix: participants cycle through the six mobility
    // settings; Fig. 7 benches construct their own traces explicitly.
    traces_.emplace_back(
        static_cast<NetEnvironment>(k % kNumNetEnvironments), rng_.fork());
  }
}

std::vector<RoundRecord> FederatedSearch::run_warmup(int steps) {
  SearchOptions opts;
  opts.update_alpha = false;
  opts.update_theta = true;
  opts.stale_policy = StalePolicy::kHardSync;
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(run_round(round_counter_++, opts));
    if (on_round) on_round(records.back());
  }
  return records;
}

std::vector<RoundRecord> FederatedSearch::run_search(
    int steps, const SearchOptions& opts) {
  std::vector<RoundRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(run_round(round_counter_++, opts));
    if (on_round) on_round(records.back());
  }
  return records;
}

RoundRecord FederatedSearch::run_round(int t, const SearchOptions& opts) {
  const int k = num_participants();
  RoundRecord rec;
  rec.round = t;

  // --- sample masks and snapshot state (Alg. 1 lines 4-9) ---
  std::vector<Mask> masks;
  masks.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) masks.push_back(policy_.sample(rng_));
  const bool soft_sync = opts.stale_policy != StalePolicy::kHardSync;
  if (soft_sync) {
    RoundSnapshot snap;
    snap.theta = supernet_->flat_values();
    snap.alpha = policy_.alpha();
    snap.masks = masks;
    pool_.save(t, std::move(snap));
  }

  // --- adaptive transmission (Alg. 1 lines 10-11, Fig. 7) ---
  std::vector<std::size_t> model_bytes;
  std::vector<double> bandwidths;
  model_bytes.reserve(static_cast<std::size_t>(k));
  bandwidths.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    model_bytes.push_back(
        supernet_->submodel_bytes(masks[static_cast<std::size_t>(i)]));
    bandwidths.push_back(traces_[static_cast<std::size_t>(i)].next_bps());
  }
  std::vector<int> assignment =
      assign_models(model_bytes, bandwidths, opts.assign, rng_);
  LatencyStats lat = transmission_latency(
      model_bytes, bandwidths, assignment,
      opts.assign == AssignStrategy::kAverageSize);
  rec.max_latency_s = lat.max_seconds;
  rec.mean_latency_s = lat.mean_seconds;

  // --- dispatch, local training, delayed arrival (lines 12-15) ---
  // Serialized mask/header overhead of a message whose values travel
  // through the configured codec.
  auto payload_bytes = [&](const Mask& m, std::size_t num_values) {
    return 4 + (8 + m.normal.size()) + (8 + m.reduce.size()) +
           codec_encoded_bytes(num_values, opts.codec);
  };
  for (int i = 0; i < k; ++i) {
    const Mask& mask = masks[static_cast<std::size_t>(assignment[i])];
    SubmodelMsg msg;
    msg.round = t;
    msg.mask = mask;
    msg.values =
        supernet_->gather_values(supernet_->masked_param_ids(mask));
    if (opts.codec != Codec::kFloat32) {
      msg.values = codec_round_trip(msg.values, opts.codec);
    }
    const std::size_t down = payload_bytes(mask, msg.values.size());
    rec.bytes_down += down;
    submodel_bytes_sum_ += down;
    ++submodel_count_;

    UpdateMsg upd = participants_[static_cast<std::size_t>(i)]->train_step(msg);
    if (opts.codec != Codec::kFloat32) {
      upd.grads = codec_round_trip(upd.grads, opts.codec);
    }
    rec.bytes_up += payload_bytes(upd.mask, upd.grads.size()) + 8;

    const int tau = soft_sync ? opts.staleness.sample(staleness_rng_) : 0;
    if (tau == kExceedsThreshold || tau > pool_.threshold()) {
      ++rec.dropped;  // beyond the staleness threshold: never applied
      continue;
    }
    arrivals_[t + tau].push_back(std::move(upd));
  }
  total_bytes_down_ += rec.bytes_down;
  total_bytes_up_ += rec.bytes_up;

  // --- process this round's arrivals (lines 16-31) ---
  supernet_->zero_grad();
  AlphaPair grad_j = AlphaPair::zeros(policy_.num_edges());
  std::vector<std::pair<double, AlphaPair>> alpha_terms;  // (reward, dlogp)
  double reward_sum = 0.0;
  int m = 0;
  auto due = arrivals_.find(t);
  if (due != arrivals_.end()) {
    for (UpdateMsg& upd : due->second) {
      const int tau = t - upd.round;
      std::vector<float> grads;
      AlphaPair dlogp = AlphaPair::zeros(policy_.num_edges());
      if (tau == 0) {
        grads = std::move(upd.grads);
        dlogp = policy_.log_prob_grad(upd.mask);
      } else {
        if (opts.stale_policy == StalePolicy::kDrop) {
          ++rec.dropped;
          continue;
        }
        const RoundSnapshot* snap = pool_.find(upd.round);
        if (snap == nullptr) {  // evicted: nothing to compensate against
          ++rec.dropped;
          continue;
        }
        if (opts.stale_policy == StalePolicy::kUseStale) {
          grads = std::move(upd.grads);
          dlogp = ArchPolicy::log_prob_grad_at(snap->alpha, upd.mask);
        } else {  // kCompensate: Eq. 13 + Eq. 15
          const auto ids = supernet_->masked_param_ids(upd.mask);
          std::vector<float> fresh_w = supernet_->gather_values(ids);
          std::vector<float> stale_w =
              supernet_->gather_from_flat(snap->theta, ids);
          grads = compensate_weight_gradient(upd.grads, fresh_w, stale_w,
                                             opts.dc_lambda);
          AlphaPair stale_dlogp =
              ArchPolicy::log_prob_grad_at(snap->alpha, upd.mask);
          dlogp = compensate_alpha_gradient(stale_dlogp, policy_.alpha(),
                                            snap->alpha, opts.dc_lambda);
        }
      }
      supernet_->scatter_add_grads(supernet_->masked_param_ids(upd.mask),
                                   grads);
      alpha_terms.emplace_back(upd.reward, std::move(dlogp));
      reward_sum += upd.reward;
      ++m;
    }
    arrivals_.erase(due);
  }

  rec.arrived = m;
  if (m > 0) {
    rec.mean_reward = reward_sum / m;
    rec.moving_avg = moving_.update(rec.mean_reward);

    // REINFORCE with moving-average baseline (Eq. 8-10).
    const double b = policy_.update_baseline(rec.mean_reward);
    for (auto& [reward, dlogp] : alpha_terms) {
      grad_j.add_scaled(dlogp, static_cast<float>(reward - b) /
                                   static_cast<float>(m));
    }
    if (opts.update_alpha) policy_.apply_gradient(grad_j);

    if (opts.update_theta) {
      // Average gradients over arrived sub-models (line 32) and step.
      const float inv_m = 1.0F / static_cast<float>(m);
      for (Param* p : supernet_->params()) {
        for (float& g : p->grad.vec()) g *= inv_m;
      }
      theta_opt_.step(supernet_->params());
    }
  } else {
    rec.moving_avg = moving_.value();
  }

  if (soft_sync) pool_.evict(t);
  return rec;
}

Genotype FederatedSearch::derive() const {
  return policy_.derive_genotype(cfg_.supernet.num_nodes);
}

double FederatedSearch::avg_submodel_bytes() const {
  return submodel_count_ == 0
             ? 0.0
             : static_cast<double>(submodel_bytes_sum_) /
                   static_cast<double>(submodel_count_);
}

}  // namespace fms
