// Round-commit deadlines: the exact quorum/timeout close rule used by
// FederatedSearch::run_round, extracted as a pure function so its edge
// cases are unit-testable, plus the windowed-quantile adaptive deadline
// estimator that replaces a static round_timeout_s.
#pragma once

#include <cstddef>
#include <vector>

namespace fms {

class ByteReader;  // src/common/serialize.h
class ByteWriter;

// Adaptive round deadline: cap the round at `quantile` of the recent
// committed per-participant round times, stretched by `slack` and clamped
// into [floor_s, ceil_s]. Deterministic — the window holds simulated
// times, never wall clock — and checkpointable via DeadlineEstimator.
struct AdaptiveTimeoutConfig {
  bool enabled = false;
  double quantile = 0.90;
  double slack = 1.5;
  double floor_s = 0.05;  // never tighter than this
  double ceil_s = 0.0;    // 0 = no ceiling
  int window = 64;        // samples kept (per-participant, not per-round)
  int min_samples = 8;    // below this the static timeout applies
};

// Outcome of the quorum close rule for one round.
struct QuorumOutcome {
  double deadline = 0.0;         // commit tick; +inf when nothing bounds it
  std::size_t q_need = 0;        // ceil(quorum * cohort)
  std::size_t on_time = 0;       // arrivals at or before the deadline
  bool partial = false;          // on_time < q_need
  double commit_latency_s = 0.0; // finite simulated close time
};

// The round-commit rule: the round closes at the q_need-th arrival — or,
// with fewer than q_need candidates, at the last arrival — capped by
// timeout_s when positive. `arrivals` are the candidate latencies
// (unsorted, finite); `cohort` anchors the quorum count. Bit-identical to
// the inline rule this replaces (sort + comparisons only).
QuorumOutcome quorum_commit(std::vector<double> arrivals, double quorum,
                            int cohort, double timeout_s);

// Windowed-quantile deadline estimator. Fed every committed on-time
// per-participant round time; deadline() is +infinity until min_samples
// accumulate, so callers fall back to the static timeout while cold. The
// window is part of the checkpoint runtime blob: a resumed search
// computes the exact deadlines an uninterrupted one would.
class DeadlineEstimator {
 public:
  void add_sample(double seconds, int window);
  std::size_t samples() const { return window_.size(); }
  // Quantile * slack clamped into [floor_s, ceil_s]; +inf when disabled
  // or not yet warm.
  double deadline(const AdaptiveTimeoutConfig& cfg) const;

  void serialize(ByteWriter& w) const;
  void restore(ByteReader& r);

 private:
  std::vector<double> window_;  // insertion-ordered, oldest first
};

}  // namespace fms
