// Checkpointing: persist and restore the search state (supernet weights,
// architecture parameters, baseline) and searched genotypes. A federated
// search that runs for thousands of rounds must survive server restarts;
// this module gives the orchestrator durable state with format/version
// and shape validation on load.
#pragma once

#include <string>

#include "src/nas/genotype.h"
#include "src/nas/supernet.h"
#include "src/rl/policy.h"

namespace fms {

// Version history:
//   1 — theta + alpha + baseline + round (weights-only snapshot).
//   2 — adds the REINFORCE baseline's initialization flag and an opaque
//       runtime-state blob (optimizer momentum, moving-average window,
//       delay-compensation memory pool, in-flight arrivals, every RNG
//       stream) produced by FederatedSearch::checkpoint(), enabling
//       bit-identical crash-recovery. Version-1 files still load; their
//       runtime state is simply empty (weights-only resume).
inline constexpr std::uint32_t kCheckpointVersion = 2;

struct SearchCheckpoint {
  std::uint32_t version = kCheckpointVersion;
  int num_edges = 0;
  int num_nodes = 0;
  std::vector<float> theta;  // flat supernet values
  AlphaPair alpha;
  double baseline = 0.0;
  int round = 0;
  // --- version >= 2 ---
  bool baseline_initialized = false;
  std::vector<std::uint8_t> runtime_state;  // empty: weights-only checkpoint

  bool has_runtime_state() const { return !runtime_state.empty(); }

  std::vector<std::uint8_t> serialize() const;
  static SearchCheckpoint deserialize(const std::vector<std::uint8_t>& bytes);
};

SearchCheckpoint make_checkpoint(Supernet& supernet, const ArchPolicy& policy,
                                 int num_nodes, int round);

// Throws CheckError on shape mismatch (wrong supernet config / edge count).
void restore_checkpoint(const SearchCheckpoint& ckpt, Supernet& supernet,
                        ArchPolicy& policy);

void write_checkpoint_file(const std::string& path,
                           const SearchCheckpoint& ckpt);
SearchCheckpoint read_checkpoint_file(const std::string& path);

// Genotype persistence (binary, versioned).
std::vector<std::uint8_t> serialize_genotype(const Genotype& g);
Genotype deserialize_genotype(const std::vector<std::uint8_t>& bytes);
void write_genotype_file(const std::string& path, const Genotype& g);
Genotype read_genotype_file(const std::string& path);

}  // namespace fms
