// Checkpointing: persist and restore the search state (supernet weights,
// architecture parameters, baseline) and searched genotypes. A federated
// search that runs for thousands of rounds must survive server restarts;
// this module gives the orchestrator durable state with format/version
// and shape validation on load.
#pragma once

#include <string>

#include "src/nas/genotype.h"
#include "src/nas/supernet.h"
#include "src/rl/policy.h"

namespace fms {

struct SearchCheckpoint {
  std::uint32_t version = 1;
  int num_edges = 0;
  int num_nodes = 0;
  std::vector<float> theta;  // flat supernet values
  AlphaPair alpha;
  double baseline = 0.0;
  int round = 0;

  std::vector<std::uint8_t> serialize() const;
  static SearchCheckpoint deserialize(const std::vector<std::uint8_t>& bytes);
};

SearchCheckpoint make_checkpoint(Supernet& supernet, const ArchPolicy& policy,
                                 int num_nodes, int round);

// Throws CheckError on shape mismatch (wrong supernet config / edge count).
void restore_checkpoint(const SearchCheckpoint& ckpt, Supernet& supernet,
                        ArchPolicy& policy);

void write_checkpoint_file(const std::string& path,
                           const SearchCheckpoint& ckpt);
SearchCheckpoint read_checkpoint_file(const std::string& path);

// Genotype persistence (binary, versioned).
std::vector<std::uint8_t> serialize_genotype(const Genotype& g);
Genotype deserialize_genotype(const std::vector<std::uint8_t>& bytes);
void write_genotype_file(const std::string& path, const Genotype& g);
Genotype read_genotype_file(const std::string& path);

}  // namespace fms
