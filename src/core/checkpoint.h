// Checkpointing: persist and restore the search state (supernet weights,
// architecture parameters, baseline) and searched genotypes. A federated
// search that runs for thousands of rounds must survive server restarts;
// this module gives the orchestrator durable state with format/version
// and shape validation on load.
// Writes are crash-atomic: serialize -> CRC trailer -> `<path>.tmp` ->
// flush -> rename the old primary to `<path>.prev` -> rename the tmp into
// place. A kill anywhere leaves either the old file, the new file, or
// both generations intact — never a torn primary — and restore falls back
// to `.prev` when the primary fails CRC or parse.
#pragma once

#include <string>

#include "src/fault/fault.h"
#include "src/nas/genotype.h"
#include "src/nas/supernet.h"
#include "src/rl/policy.h"

namespace fms {

// Version history:
//   1 — theta + alpha + baseline + round (weights-only snapshot).
//   2 — adds the REINFORCE baseline's initialization flag and an opaque
//       runtime-state blob (optimizer momentum, moving-average window,
//       delay-compensation memory pool, in-flight arrivals, every RNG
//       stream) produced by FederatedSearch::checkpoint(), enabling
//       bit-identical crash-recovery. Version-1 files still load; their
//       runtime state is simply empty (weights-only resume).
inline constexpr std::uint32_t kCheckpointVersion = 2;

struct SearchCheckpoint {
  std::uint32_t version = kCheckpointVersion;
  int num_edges = 0;
  int num_nodes = 0;
  std::vector<float> theta;  // flat supernet values
  AlphaPair alpha;
  double baseline = 0.0;
  int round = 0;
  // --- version >= 2 ---
  bool baseline_initialized = false;
  std::vector<std::uint8_t> runtime_state;  // empty: weights-only checkpoint

  bool has_runtime_state() const { return !runtime_state.empty(); }

  std::vector<std::uint8_t> serialize() const;
  static SearchCheckpoint deserialize(const std::vector<std::uint8_t>& bytes);
};

SearchCheckpoint make_checkpoint(Supernet& supernet, const ArchPolicy& policy,
                                 int num_nodes, int round);

// Throws CheckError on shape mismatch (wrong supernet config / edge count).
void restore_checkpoint(const SearchCheckpoint& ckpt, Supernet& supernet,
                        ArchPolicy& policy);

// Atomic write with `.prev` rotation (see file header). When `faults` is
// non-null and its plan schedules disk faults, the write is subjected to
// the seeded disk-fault channel keyed by `op_id` (the round): transient
// EIO (retried), short write of the tmp file (rotation aborted, primary
// untouched), or post-CRC corruption (caught on read, `.prev` fallback).
void write_checkpoint_file(const std::string& path,
                           const SearchCheckpoint& ckpt,
                           const FaultInjector* faults = nullptr,
                           std::uint64_t op_id = 0);
SearchCheckpoint read_checkpoint_file(const std::string& path);

// Restore with `.prev` fallback: tries the primary first; on CRC/parse
// failure loads `<path>.prev` instead. Throws only when both generations
// are unreadable. `used_prev` and `primary_error` let the caller surface
// the fallback (flight-recorder event + counter).
struct CheckpointLoad {
  SearchCheckpoint ckpt;
  bool used_prev = false;
  std::string primary_error;  // empty when the primary loaded cleanly
};
CheckpointLoad read_checkpoint_file_with_fallback(const std::string& path);

// Genotype persistence (binary, versioned). Same atomic-write + fallback
// contract as checkpoints.
std::vector<std::uint8_t> serialize_genotype(const Genotype& g);
Genotype deserialize_genotype(const std::vector<std::uint8_t>& bytes);
void write_genotype_file(const std::string& path, const Genotype& g,
                         const FaultInjector* faults = nullptr,
                         std::uint64_t op_id = 0);
Genotype read_genotype_file(const std::string& path);

struct GenotypeLoad {
  Genotype genotype;
  bool used_prev = false;
  std::string primary_error;
};
GenotypeLoad read_genotype_file_with_fallback(const std::string& path);

}  // namespace fms
