// FederatedSearch — the paper's primary contribution, end to end.
//
// Implements Algorithm 1 (Delay-Compensated Federated Model Search): the
// server holds the supernet theta and the RL controller alpha; each round
// it samples one-hot masks per participant, ships pruned sub-models
// (adaptively matched to transmission conditions), retrieves rewards and
// weight gradients, repairs stale updates per the configured policy, and
// updates alpha by REINFORCE and theta by averaged SGD.
//
// Phases (paper §VI-A): warm-up (P1) trains theta under a fixed uniform
// policy; search (P2) optimizes alpha and theta jointly; derive() then
// discretizes alpha into the final Genotype for retraining (P3).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/config.h"
#include "src/common/stats.h"
#include "src/data/dataset.h"
#include "src/dc/compensation.h"
#include "src/fed/compression.h"
#include "src/fed/participant.h"
#include "src/net/trace.h"
#include "src/net/transmission.h"
#include "src/nn/optim.h"
#include "src/sim/staleness.h"

namespace fms {

struct SearchOptions {
  StalePolicy stale_policy = StalePolicy::kHardSync;
  StalenessDistribution staleness = StalenessDistribution::none();
  float dc_lambda = 0.5F;  // lambda of Eq. 13 / Eq. 15
  AssignStrategy assign = AssignStrategy::kAdaptive;
  bool update_theta = true;  // false reproduces the Fig. 5 ablation
  bool update_alpha = true;  // false during warm-up
  // Lossy payload compression applied to sub-model downloads and gradient
  // uploads; the quantization noise flows through training.
  Codec codec = Codec::kFloat32;
};

struct RoundRecord {
  int round = 0;
  double mean_reward = 0.0;   // average training accuracy of arrived updates
  double moving_avg = 0.0;    // 50-round moving average (paper's curves)
  int arrived = 0;
  int dropped = 0;
  double max_latency_s = 0.0;
  double mean_latency_s = 0.0;
  std::size_t bytes_down = 0;
  std::size_t bytes_up = 0;
  // Staleness observability (paper Fig. 8 / Alg. 1): of the updates applied
  // this round, how many were stale (tau > 0), how late they were, and how
  // many went through the Eq. 13/15 delay compensation.
  int stale_arrived = 0;
  int compensated = 0;
  double mean_tau = 0.0;  // mean staleness of applied updates, in rounds
  int max_tau = 0;
  // Search-semantic gauges the paper's curves need.
  double alpha_entropy = 0.0;  // mean per-edge policy entropy (nats)
  double baseline = 0.0;       // REINFORCE moving-average baseline (Eq. 9)
};

class FederatedSearch {
 public:
  // `partition[k]` holds the training-set indices of participant k.
  // When cfg.telemetry.enabled the constructor installs the configured
  // sinks on the global obs::Telemetry context; the destructor then
  // flushes them and writes the metrics CSV snapshot.
  FederatedSearch(const SearchConfig& cfg, const Dataset& train_data,
                  const std::vector<std::vector<int>>& partition);
  ~FederatedSearch();

  // P1: fixed (uniform) alpha, theta-only updates.
  std::vector<RoundRecord> run_warmup(int steps);
  // P2: the search itself.
  std::vector<RoundRecord> run_search(int steps, const SearchOptions& opts);

  Genotype derive() const;

  Supernet& supernet() { return *supernet_; }
  ArchPolicy& policy() { return policy_; }
  int num_participants() const { return static_cast<int>(participants_.size()); }

  // Payload statistics accumulated over all rounds so far.
  double avg_submodel_bytes() const;
  std::size_t supernet_bytes() { return supernet_->supernet_bytes(); }
  std::size_t total_bytes_down() const { return total_bytes_down_; }
  std::size_t total_bytes_up() const { return total_bytes_up_; }

  // Optional per-round observer (progress logging in examples/benches).
  std::function<void(const RoundRecord&)> on_round;

 private:
  RoundRecord run_round(int t, const SearchOptions& opts);
  void record_round_telemetry(const RoundRecord& rec,
                              const SearchOptions& opts);

  SearchConfig cfg_;
  Rng rng_;
  // Dedicated stream so soft-sync staleness draws do not perturb the main
  // stream: an all-fresh soft-sync run follows the hard-sync trajectory
  // exactly (verified by test).
  Rng staleness_rng_;
  std::unique_ptr<Supernet> supernet_;
  ArchPolicy policy_;
  SGD theta_opt_;
  std::vector<std::unique_ptr<SearchParticipant>> participants_;
  std::vector<BandwidthTrace> traces_;
  bool owns_telemetry_ = false;  // true when the ctor configured the sinks
  MemoryPool pool_;
  std::map<int, std::vector<UpdateMsg>> arrivals_;
  WindowAverage moving_;
  int round_counter_ = 0;
  std::size_t total_bytes_down_ = 0;
  std::size_t total_bytes_up_ = 0;
  std::size_t submodel_bytes_sum_ = 0;
  std::size_t submodel_count_ = 0;
};

}  // namespace fms
