// FederatedSearch — the paper's primary contribution, end to end.
//
// Implements Algorithm 1 (Delay-Compensated Federated Model Search): the
// server holds the supernet theta and the RL controller alpha; each round
// it samples one-hot masks per participant, ships pruned sub-models
// (adaptively matched to transmission conditions), retrieves rewards and
// weight gradients, repairs stale updates per the configured policy, and
// updates alpha by REINFORCE and theta by averaged SGD.
//
// Phases (paper §VI-A): warm-up (P1) trains theta under a fixed uniform
// policy; search (P2) optimizes alpha and theta jointly; derive() then
// discretizes alpha into the final Genotype for retraining (P3).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/agg/aggregator.h"
#include "src/common/config.h"
#include "src/common/stats.h"
#include "src/core/checkpoint.h"
#include "src/core/deadline.h"
#include "src/core/journal.h"
#include "src/core/round_record.h"
#include "src/data/dataset.h"
#include "src/dc/compensation.h"
#include "src/fault/degrade.h"
#include "src/fault/fault.h"
#include "src/fed/compression.h"
#include "src/fed/participant.h"
#include "src/fed/registry.h"
#include "src/net/trace.h"
#include "src/net/transmission.h"
#include "src/nn/optim.h"
#include "src/sim/churn.h"
#include "src/sim/staleness.h"

namespace fms {

namespace obs {
class HealthMonitor;  // src/obs/health.h
}

struct SearchOptions {
  StalePolicy stale_policy = StalePolicy::kHardSync;
  StalenessDistribution staleness = StalenessDistribution::none();
  float dc_lambda = 0.5F;  // lambda of Eq. 13 / Eq. 15
  AssignStrategy assign = AssignStrategy::kAdaptive;
  bool update_theta = true;  // false reproduces the Fig. 5 ablation
  bool update_alpha = true;  // false during warm-up
  // Lossy payload compression applied to sub-model downloads and gradient
  // uploads; the quantization noise flows through training.
  Codec codec = Codec::kFloat32;

  // --- fault injection + server-side defenses ---
  // Deterministic fault schedule; an empty plan injects nothing.
  FaultPlan fault_plan;
  // Quorum-based round commit: the round closes once ceil(quorum * K)
  // updates have arrived, or — when round_timeout_s > 0 — at the timeout,
  // whichever is earlier. Stragglers past the deadline fold into the
  // soft-sync/DC path with staleness >= 1 (or are dropped under hard
  // sync). quorum = 1 with no timeout reproduces classic full-sync rounds.
  double quorum = 1.0;
  double round_timeout_s = 0.0;  // 0 disables the timeout
  // Bounded retransmit-with-backoff for failed downloads: up to
  // max_retransmits retries, the n-th delayed by retransmit_backoff_s*2^n.
  int max_retransmits = 2;
  double retransmit_backoff_s = 0.5;
  // Update screening: reject non-finite rewards/losses/gradients and
  // gradient norms above screen_max_grad_norm before they can poison
  // theta, alpha, or the REINFORCE baseline. The default bound is far
  // above anything benign training produces, so screening is on by
  // default without perturbing fault-free runs.
  bool screen_updates = true;
  float screen_max_grad_norm = 1e4F;  // <= 0 disables the norm bound
  // Adaptive screening bound: when enabled and at least adaptive_screen_min
  // updates arrived this round, the norm cutoff tightens to
  // median + k*MAD over the round's update norms (never looser than
  // screen_max_grad_norm); with fewer arrivals the fixed cap applies
  // unchanged — robust statistics need a quorum of their own.
  bool adaptive_screen = false;
  double adaptive_screen_k = 6.0;
  int adaptive_screen_min = 4;
  // --- Byzantine-robust aggregation (src/agg) ---
  // Gradient estimator for the theta update. kMean reproduces Eq. 13
  // exactly (bit-identical to the pre-robustness code path); the robust
  // estimators bound the influence any f lying participants can exert.
  // Screening is the pre-filter (rejects individually implausible
  // updates); the aggregator is the estimator (bounds coordinated,
  // in-range lies that screening cannot see).
  agg::AggregatorConfig aggregator;
  // Robust reward channel for the alpha REINFORCE update: k > 0 clamps
  // each arrived reward into [Q1 - k*IQR, Q3 + k*IQR] of the round's
  // arrivals before it can reach the moving average, the baseline, or its
  // own advantage (1.5 is the classic Tukey fence). 0 disables.
  double winsorize_rewards_k = 0.0;
  // Statistic feeding the REINFORCE baseline EMA (Eq. 9); the median
  // variant is immune to any lying minority.
  BaselineMode baseline_mode = BaselineMode::kMeanReward;
  // --- churn + graceful degradation (PR 7) ---
  // Deterministic membership schedule; an empty plan keeps every client
  // live every round. Churned-away clients are *not* faults: nothing is
  // dispatched to them and nothing enters the fault ledger.
  ChurnPlan churn_plan;
  // Adaptive round deadline: when enabled and warm, a windowed-quantile
  // estimate of recent committed per-participant round times replaces the
  // static round_timeout_s as the commit cap.
  AdaptiveTimeoutConfig adaptive_timeout;
  // Graceful-degradation ladder (relax deadline -> shrink cohort ->
  // partial-quorum commit); degrade.max_mode = 0 disables the controller.
  DegradeConfig degrade;
  // Auto-checkpoint cadence (crash-recovery): every checkpoint_every
  // rounds the full search state is written to checkpoint_path.
  int checkpoint_every = 0;  // 0 disables
  std::string checkpoint_path;
};

// RoundRecord lives in src/core/round_record.h (extracted so the round
// journal can serialize whole records without pulling in this header).

// Cumulative robustness ledger across all rounds (CLI summary): how much
// influence the robust estimators and the winsorized reward channel
// actually removed.
struct RobustStats {
  std::uint64_t clipped_updates = 0;
  double clipped_mass = 0.0;
  std::uint64_t trimmed_values = 0;
  std::uint64_t rejected_updates = 0;
  std::uint64_t winsorized_rewards = 0;
};

class FederatedSearch {
 public:
  // `partition[k]` holds the training-set indices of participant k.
  // When cfg.telemetry.enabled the constructor installs the configured
  // sinks on the global obs::Telemetry context; the destructor then
  // flushes them and writes the metrics CSV snapshot.
  FederatedSearch(const SearchConfig& cfg, const Dataset& train_data,
                  const std::vector<std::vector<int>>& partition);
  ~FederatedSearch();

  // P1: fixed (uniform) alpha, theta-only updates.
  std::vector<RoundRecord> run_warmup(int steps);
  // P2: the search itself.
  std::vector<RoundRecord> run_search(int steps, const SearchOptions& opts);

  Genotype derive() const;

  Supernet& supernet() { return *supernet_; }
  ArchPolicy& policy() { return policy_; }
  int num_participants() const { return static_cast<int>(participants_.size()); }

  // Payload statistics accumulated over all rounds so far.
  double avg_submodel_bytes() const;
  std::size_t supernet_bytes() { return supernet_->supernet_bytes(); }
  std::size_t total_bytes_down() const { return total_bytes_down_; }
  std::size_t total_bytes_up() const { return total_bytes_up_; }

  // Crash-recovery. checkpoint() captures the complete search state —
  // weights, alpha, baseline, optimizer momentum, moving-average window,
  // DC memory pool, in-flight arrivals, and every RNG stream — so that a
  // restore()d search replays the exact RoundRecord stream an
  // uninterrupted run would have produced (bit-identical, same seeds).
  SearchCheckpoint checkpoint();
  // Accepts v1 (weights-only) checkpoints too; those resume the weights
  // and round counter but not the runtime streams.
  void restore(const SearchCheckpoint& ckpt);

  // --- write-ahead round journal + kill-anywhere recovery ---
  // Opens the journal at `path`; from then on every committed round
  // appends one frame. `disk_plan` seeds the disk-fault channel (pass the
  // run's fault plan; a plan without disk_* keys journals fault-free).
  // Journaling is purely observational: the search trajectory is
  // bit-identical with it on or off.
  void enable_journal(const std::string& path, const FaultPlan& disk_plan);
  const RoundJournal* journal() const { return journal_.get(); }

  struct RecoverConfig {
    std::string checkpoint_path;  // primary; `.prev` is the fallback
    std::string journal_path;     // live journal; `.prev` covers the
                                  // previous checkpoint generation
    int warmup_rounds = 0;        // phase boundary for replay
    SearchOptions search;         // options the crashed run used
  };

  struct RecoveryReport {
    bool checkpoint_loaded = false;   // false: no checkpoint, fresh start
    bool used_prev_checkpoint = false;
    int start_round = 0;        // round counter restored from the checkpoint
    int replayed_rounds = 0;    // rounds re-executed past the checkpoint
    std::uint64_t frames_loaded = 0;
    std::size_t torn_bytes = 0;  // truncated off the live journal tail
    double recovery_ms = 0.0;
  };

  // Kill-anywhere recovery: loads the newest valid checkpoint (falling
  // back to `.prev`), truncates any torn journal tail, deterministically
  // re-executes every round past the checkpoint, and verifies each
  // re-executed round against its journal frame (record bytes, RNG
  // cursors, ladder position) when one survived. Leaves the search ready
  // to continue — and journaling to `journal_path`.
  RecoveryReport recover(const RecoverConfig& rc);

  // Cumulative fault ledger across all rounds run so far. Invariant:
  // injected_total() == rejected + dropped + recovered.
  const FaultStats& fault_stats() const { return fault_stats_; }
  // Cumulative robust-aggregation ledger across all rounds run so far.
  const RobustStats& robust_stats() const { return robust_stats_; }
  // Persistent per-client registry (membership history, device profiles,
  // latency momentum, staleness history).
  const ClientRegistry& registry() const { return registry_; }
  // Degradation ladder mode after the last committed round.
  DegradeMode degrade_mode() const { return degrade_.mode(); }
  int degrade_transitions() const { return degrade_.transitions(); }

  // Online search-health monitor (nullptr unless cfg.telemetry.health or
  // a health_report_path was configured). The destructor writes the
  // health.json report when a path was configured.
  const obs::HealthMonitor* health() const { return health_.get(); }

  // Optional per-round observer (progress logging in examples/benches).
  std::function<void(const RoundRecord&)> on_round;

 private:
  RoundRecord run_round(int t, const SearchOptions& opts);
  void record_round_telemetry(const RoundRecord& rec, const SearchOptions& opts,
                              const FaultStats& before);
  std::vector<std::uint8_t> serialize_runtime_state() const;
  void restore_runtime_state(const std::vector<std::uint8_t>& bytes);
  // The fixed warm-up options (P1): uniform alpha, theta-only updates.
  // Shared between run_warmup and recovery replay so both phases execute
  // the identical configuration.
  static SearchOptions warmup_options();
  // Appends one frame for a committed round (no-op when no journal).
  void journal_round(std::uint8_t phase, const RoundRecord& rec);

  SearchConfig cfg_;
  Rng rng_;
  // Dedicated stream so soft-sync staleness draws do not perturb the main
  // stream: an all-fresh soft-sync run follows the hard-sync trajectory
  // exactly (verified by test).
  Rng staleness_rng_;
  std::unique_ptr<Supernet> supernet_;
  ArchPolicy policy_;
  SGD theta_opt_;
  std::vector<std::unique_ptr<SearchParticipant>> participants_;
  std::vector<BandwidthTrace> traces_;
  bool owns_telemetry_ = false;  // true when the ctor configured the sinks
  std::unique_ptr<obs::HealthMonitor> health_;
  MemoryPool pool_;
  std::map<int, std::vector<UpdateMsg>> arrivals_;
  WindowAverage moving_;
  FaultStats fault_stats_;
  RobustStats robust_stats_;
  ClientRegistry registry_;
  DeadlineEstimator deadline_est_;
  DegradationController degrade_;
  std::unique_ptr<RoundJournal> journal_;
  // Disk-fault channel for checkpoint/genotype writes (shares the plan
  // seed with the journal's own injector, distinct DiskOp streams).
  std::unique_ptr<FaultInjector> disk_faults_;
  int round_counter_ = 0;
  std::size_t total_bytes_down_ = 0;
  std::size_t total_bytes_up_ = 0;
  std::size_t submodel_bytes_sum_ = 0;
  std::size_t submodel_count_ = 0;
};

}  // namespace fms
