#include "src/core/checkpoint.h"

#include <fstream>

#include "src/common/serialize.h"
#include "src/obs/profile.h"

namespace fms {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x464d5343;  // "FMSC"
constexpr std::uint32_t kGenotypeMagic = 0x464d5347;    // "FMSG"

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  FMS_CHECK_MSG(f.good(), "cannot open " << path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream f(path, std::ios::binary);
  FMS_CHECK_MSG(f.good(), "cannot open " << path);
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
  FMS_CHECK_MSG(f.good(), "write failed for " << path);
}

}  // namespace

std::vector<std::uint8_t> SearchCheckpoint::serialize() const {
  FMS_PROFILE_ZONE("ckpt.serialize");
  ByteWriter w;
  w.write(kCheckpointMagic);
  w.write(version);
  w.write(num_edges);
  w.write(num_nodes);
  w.write(round);
  w.write(baseline);
  w.write_vector(theta);
  w.write_vector(alpha.flatten());
  if (version >= 2) {
    w.write(static_cast<std::uint8_t>(baseline_initialized ? 1 : 0));
    w.write_vector(runtime_state);
  }
  return w.take();
}

SearchCheckpoint SearchCheckpoint::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  FMS_PROFILE_ZONE("ckpt.restore");
  ByteReader r(bytes);
  FMS_CHECK_MSG(r.read<std::uint32_t>() == kCheckpointMagic,
                "not a checkpoint file");
  SearchCheckpoint ckpt;
  ckpt.version = r.read<std::uint32_t>();
  FMS_CHECK_MSG(ckpt.version >= 1 && ckpt.version <= kCheckpointVersion,
                "unsupported checkpoint version " << ckpt.version);
  ckpt.num_edges = r.read<int>();
  ckpt.num_nodes = r.read<int>();
  ckpt.round = r.read<int>();
  ckpt.baseline = r.read<double>();
  FMS_CHECK_MSG(ckpt.num_edges >= 0 && ckpt.num_nodes >= 0,
                "corrupt checkpoint shape: " << ckpt.num_edges << " edges, "
                                             << ckpt.num_nodes << " nodes");
  ckpt.theta = r.read_vector<float>();
  ckpt.alpha = AlphaPair::unflatten(r.read_vector<float>(), ckpt.num_edges);
  if (ckpt.version >= 2) {
    ckpt.baseline_initialized = r.read<std::uint8_t>() != 0;
    ckpt.runtime_state = r.read_vector<std::uint8_t>();
  } else {
    // v1 files predate the flag; a non-zero baseline implies it was live.
    // fms-lint: allow(float-eq) -- 0.0 is the exact serialized default
    ckpt.baseline_initialized = ckpt.baseline != 0.0;
  }
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in checkpoint");
  return ckpt;
}

SearchCheckpoint make_checkpoint(Supernet& supernet, const ArchPolicy& policy,
                                 int num_nodes, int round) {
  SearchCheckpoint ckpt;
  ckpt.num_edges = policy.num_edges();
  ckpt.num_nodes = num_nodes;
  ckpt.theta = supernet.flat_values();
  ckpt.alpha = policy.alpha();
  ckpt.baseline = policy.baseline();
  ckpt.round = round;
  return ckpt;
}

void restore_checkpoint(const SearchCheckpoint& ckpt, Supernet& supernet,
                        ArchPolicy& policy) {
  FMS_CHECK_MSG(ckpt.theta.size() == supernet.param_count(),
                "checkpoint theta size " << ckpt.theta.size()
                                         << " != supernet param count "
                                         << supernet.param_count());
  FMS_CHECK_MSG(ckpt.num_edges == policy.num_edges(),
                "checkpoint edge count mismatch");
  supernet.set_flat_values(ckpt.theta);
  policy.set_alpha(ckpt.alpha);
}

void write_checkpoint_file(const std::string& path,
                           const SearchCheckpoint& ckpt) {
  write_file(path, ckpt.serialize());
}

SearchCheckpoint read_checkpoint_file(const std::string& path) {
  return SearchCheckpoint::deserialize(read_file(path));
}

std::vector<std::uint8_t> serialize_genotype(const Genotype& g) {
  ByteWriter w;
  w.write(kGenotypeMagic);
  w.write(g.nodes);
  auto write_edges = [&](const std::vector<GenotypeEdge>& edges) {
    w.write(static_cast<std::uint32_t>(edges.size()));
    for (const auto& e : edges) {
      w.write(e.input);
      w.write(static_cast<int>(e.op));
    }
  };
  write_edges(g.normal);
  write_edges(g.reduce);
  return w.take();
}

Genotype deserialize_genotype(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  FMS_CHECK_MSG(r.read<std::uint32_t>() == kGenotypeMagic,
                "not a genotype file");
  Genotype g;
  g.nodes = r.read<int>();
  auto read_edges = [&](std::vector<GenotypeEdge>& edges) {
    const auto n = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
      GenotypeEdge e;
      e.input = r.read<int>();
      const int op = r.read<int>();
      FMS_CHECK_MSG(op >= 0 && op < kNumOps, "corrupt genotype op");
      e.op = static_cast<OpType>(op);
      edges.push_back(e);
    }
  };
  read_edges(g.normal);
  read_edges(g.reduce);
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in genotype");
  FMS_CHECK_MSG(g.normal.size() == static_cast<std::size_t>(2 * g.nodes) &&
                    g.reduce.size() == g.normal.size(),
                "corrupt genotype structure");
  return g;
}

void write_genotype_file(const std::string& path, const Genotype& g) {
  write_file(path, serialize_genotype(g));
}

Genotype read_genotype_file(const std::string& path) {
  return deserialize_genotype(read_file(path));
}

}  // namespace fms
