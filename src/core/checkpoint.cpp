#include "src/core/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "src/common/serialize.h"
#include "src/obs/profile.h"

namespace fms {
namespace {

constexpr std::uint32_t kCheckpointMagic = 0x464d5343;  // "FMSC"
constexpr std::uint32_t kGenotypeMagic = 0x464d5347;    // "FMSG"
// File-layer CRC trailer appended to every durable file:
//   [u32 kTrailerMagic][u32 crc32(payload)]
// Kept at the file layer (not inside the serialized payload) so the
// checkpoint byte format — and kCheckpointVersion — stay unchanged, and
// legacy trailer-less files still load (the reader sniffs the magic).
constexpr std::uint32_t kTrailerMagic = 0x43524331;  // "CRC1"
constexpr std::size_t kTrailerBytes = 2 * sizeof(std::uint32_t);

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  FMS_CHECK_MSG(f.good(), "cannot open " << path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

// Reads a durable file and verifies + strips its CRC trailer when one is
// present. Throws CheckError on CRC mismatch — the signal that flips the
// caller onto the `.prev` generation.
std::vector<std::uint8_t> read_durable_file(const std::string& path) {
  std::vector<std::uint8_t> bytes = read_file(path);
  if (bytes.size() < kTrailerBytes) return bytes;
  std::uint32_t magic = 0;
  std::uint32_t crc = 0;
  const std::uint8_t* tail = bytes.data() + bytes.size() - kTrailerBytes;
  std::memcpy(&magic, tail, sizeof(magic));
  std::memcpy(&crc, tail + sizeof(magic), sizeof(crc));
  if (magic != kTrailerMagic) return bytes;  // legacy trailer-less file
  const std::size_t payload = bytes.size() - kTrailerBytes;
  FMS_CHECK_MSG(crc32(bytes.data(), payload) == crc,
                "CRC trailer mismatch in " << path);
  bytes.resize(payload);
  return bytes;
}

// Crash-atomic durable write: payload + CRC trailer to `<path>.tmp`,
// flush, rename primary -> `<path>.prev`, rename tmp into place. The
// optional disk-fault channel models the three failure modes the read
// path must survive: transient EIO (retried once, the retry lands),
// short write (torn tmp file, rotation aborted — exactly a kill
// mid-write), and post-CRC corruption (poisoned primary, caught on read).
void write_durable_file(const std::string& path,
                        std::vector<std::uint8_t> bytes,
                        const FaultInjector* faults, DiskOp op,
                        std::uint64_t op_id) {
  ByteWriter trailer;
  trailer.write(kTrailerMagic);
  trailer.write(crc32(bytes));
  const auto& t = trailer.bytes();
  bytes.insert(bytes.end(), t.begin(), t.end());

  std::size_t n = bytes.size();
  bool short_write = false;
  if (faults != nullptr && faults->plan().has_disk()) {
    const DiskOutcome out = faults->disk_outcome(op, op_id);
    if (out.corrupt) {
      // Bits flip after the trailer was stamped, so the corruption is
      // detectable on read no matter where it lands.
      faults->corrupt_bytes(bytes, op_id);
    }
    if (out.short_write) {
      n = std::max<std::size_t>(
          1, std::min(n - 1, static_cast<std::size_t>(
                                 out.keep_fraction *
                                 static_cast<double>(bytes.size()))));
      short_write = true;
    }
    // out.eio: transient EIO on open/flush, absorbed by a single retry —
    // no observable file effect.
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    FMS_CHECK_MSG(f.good(), "cannot open " << tmp);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(n));
    f.flush();
    FMS_CHECK_MSG(f.good(), "write failed for " << tmp);
  }
  // A short write models a kill mid-write: the torn bytes live only in
  // the tmp file and the rotation never happens — primary and `.prev`
  // are untouched, which is the whole point of the tmp+rename protocol.
  if (short_write) return;

  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, path + ".prev", ec);
    FMS_CHECK_MSG(!ec, "rotation to .prev failed for " << path);
  }
  std::filesystem::rename(tmp, path, ec);
  FMS_CHECK_MSG(!ec, "rename into place failed for " << path);
}

}  // namespace

std::vector<std::uint8_t> SearchCheckpoint::serialize() const {
  FMS_PROFILE_ZONE("ckpt.serialize");
  ByteWriter w;
  w.write(kCheckpointMagic);
  w.write(version);
  w.write(num_edges);
  w.write(num_nodes);
  w.write(round);
  w.write(baseline);
  w.write_vector(theta);
  w.write_vector(alpha.flatten());
  if (version >= 2) {
    w.write(static_cast<std::uint8_t>(baseline_initialized ? 1 : 0));
    w.write_vector(runtime_state);
  }
  return w.take();
}

SearchCheckpoint SearchCheckpoint::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  FMS_PROFILE_ZONE("ckpt.restore");
  ByteReader r(bytes);
  FMS_CHECK_MSG(r.read<std::uint32_t>() == kCheckpointMagic,
                "not a checkpoint file");
  SearchCheckpoint ckpt;
  ckpt.version = r.read<std::uint32_t>();
  FMS_CHECK_MSG(ckpt.version >= 1 && ckpt.version <= kCheckpointVersion,
                "unsupported checkpoint version " << ckpt.version);
  ckpt.num_edges = r.read<int>();
  ckpt.num_nodes = r.read<int>();
  ckpt.round = r.read<int>();
  ckpt.baseline = r.read<double>();
  FMS_CHECK_MSG(ckpt.num_edges >= 0 && ckpt.num_nodes >= 0,
                "corrupt checkpoint shape: " << ckpt.num_edges << " edges, "
                                             << ckpt.num_nodes << " nodes");
  ckpt.theta = r.read_vector<float>();
  ckpt.alpha = AlphaPair::unflatten(r.read_vector<float>(), ckpt.num_edges);
  if (ckpt.version >= 2) {
    ckpt.baseline_initialized = r.read<std::uint8_t>() != 0;
    ckpt.runtime_state = r.read_vector<std::uint8_t>();
  } else {
    // v1 files predate the flag; a non-zero baseline implies it was live.
    // fms-lint: allow(float-eq) -- 0.0 is the exact serialized default
    ckpt.baseline_initialized = ckpt.baseline != 0.0;
  }
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in checkpoint");
  return ckpt;
}

SearchCheckpoint make_checkpoint(Supernet& supernet, const ArchPolicy& policy,
                                 int num_nodes, int round) {
  SearchCheckpoint ckpt;
  ckpt.num_edges = policy.num_edges();
  ckpt.num_nodes = num_nodes;
  ckpt.theta = supernet.flat_values();
  ckpt.alpha = policy.alpha();
  ckpt.baseline = policy.baseline();
  ckpt.round = round;
  return ckpt;
}

void restore_checkpoint(const SearchCheckpoint& ckpt, Supernet& supernet,
                        ArchPolicy& policy) {
  FMS_CHECK_MSG(ckpt.theta.size() == supernet.param_count(),
                "checkpoint theta size " << ckpt.theta.size()
                                         << " != supernet param count "
                                         << supernet.param_count());
  FMS_CHECK_MSG(ckpt.num_edges == policy.num_edges(),
                "checkpoint edge count mismatch");
  supernet.set_flat_values(ckpt.theta);
  policy.set_alpha(ckpt.alpha);
}

void write_checkpoint_file(const std::string& path,
                           const SearchCheckpoint& ckpt,
                           const FaultInjector* faults, std::uint64_t op_id) {
  write_durable_file(path, ckpt.serialize(), faults, DiskOp::kCheckpointWrite,
                     op_id);
}

SearchCheckpoint read_checkpoint_file(const std::string& path) {
  return SearchCheckpoint::deserialize(read_durable_file(path));
}

CheckpointLoad read_checkpoint_file_with_fallback(const std::string& path) {
  CheckpointLoad load;
  try {
    load.ckpt = read_checkpoint_file(path);
    return load;
  } catch (const CheckError& e) {
    load.primary_error = e.what();
  }
  load.ckpt = read_checkpoint_file(path + ".prev");
  load.used_prev = true;
  return load;
}

std::vector<std::uint8_t> serialize_genotype(const Genotype& g) {
  ByteWriter w;
  w.write(kGenotypeMagic);
  w.write(g.nodes);
  auto write_edges = [&](const std::vector<GenotypeEdge>& edges) {
    w.write(static_cast<std::uint32_t>(edges.size()));
    for (const auto& e : edges) {
      w.write(e.input);
      w.write(static_cast<int>(e.op));
    }
  };
  write_edges(g.normal);
  write_edges(g.reduce);
  return w.take();
}

Genotype deserialize_genotype(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  FMS_CHECK_MSG(r.read<std::uint32_t>() == kGenotypeMagic,
                "not a genotype file");
  Genotype g;
  g.nodes = r.read<int>();
  auto read_edges = [&](std::vector<GenotypeEdge>& edges) {
    const auto n = r.read<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
      GenotypeEdge e;
      e.input = r.read<int>();
      const int op = r.read<int>();
      FMS_CHECK_MSG(op >= 0 && op < kNumOps, "corrupt genotype op");
      e.op = static_cast<OpType>(op);
      edges.push_back(e);
    }
  };
  read_edges(g.normal);
  read_edges(g.reduce);
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in genotype");
  FMS_CHECK_MSG(g.normal.size() == static_cast<std::size_t>(2 * g.nodes) &&
                    g.reduce.size() == g.normal.size(),
                "corrupt genotype structure");
  return g;
}

void write_genotype_file(const std::string& path, const Genotype& g,
                         const FaultInjector* faults, std::uint64_t op_id) {
  write_durable_file(path, serialize_genotype(g), faults,
                     DiskOp::kGenotypeWrite, op_id);
}

Genotype read_genotype_file(const std::string& path) {
  return deserialize_genotype(read_durable_file(path));
}

GenotypeLoad read_genotype_file_with_fallback(const std::string& path) {
  GenotypeLoad load;
  try {
    load.genotype = read_genotype_file(path);
    return load;
  } catch (const CheckError& e) {
    load.primary_error = e.what();
  }
  load.genotype = read_genotype_file(path + ".prev");
  load.used_prev = true;
  return load;
}

}  // namespace fms
