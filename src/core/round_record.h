// RoundRecord — the per-round outcome of the federated search, both the
// paper's curves (reward, staleness, payload bytes) and the systems
// observability added by the fault/churn/robustness layers.
//
// Lives in its own header (extracted from search.h) because the write-
// ahead round journal serializes whole records: each journal frame
// carries the committed RoundRecord so recovery can verify that a
// deterministic replay reproduced the exact pre-crash outcome.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/serialize.h"

namespace fms {

struct RoundRecord {
  int round = 0;
  double mean_reward = 0.0;   // average training accuracy of arrived updates
  double moving_avg = 0.0;    // 50-round moving average (paper's curves)
  int arrived = 0;
  int dropped = 0;
  double max_latency_s = 0.0;
  double mean_latency_s = 0.0;
  std::size_t bytes_down = 0;
  std::size_t bytes_up = 0;
  // Staleness observability (paper Fig. 8 / Alg. 1): of the updates applied
  // this round, how many were stale (tau > 0), how late they were, and how
  // many went through the Eq. 13/15 delay compensation.
  int stale_arrived = 0;
  int compensated = 0;
  double mean_tau = 0.0;  // mean staleness of applied updates, in rounds
  int max_tau = 0;
  // Search-semantic gauges the paper's curves need.
  double alpha_entropy = 0.0;  // mean per-edge policy entropy (nats)
  double baseline = 0.0;       // REINFORCE moving-average baseline (Eq. 9)
  // Fault-tolerance observability.
  int offline = 0;       // participants crashed or dropped out this round
  int rejected = 0;      // updates rejected by screening
  int late = 0;          // updates past the quorum commit deadline
  int retransmits = 0;   // link retries performed this round
  bool partial_quorum = false;   // committed with fewer than ceil(q*K) on time
  double commit_latency_s = 0.0;  // simulated time at which the round closed
  // Robust-aggregation observability.
  int agg_clipped = 0;            // updates norm-clipped by clipped_mean
  double agg_clipped_mass = 0.0;  // L2 mass removed by that clipping
  long agg_trimmed = 0;           // coordinate values trimmed (trimmed_mean)
  int agg_rejected = 0;           // updates excluded by krum / multi_krum
  int winsorized = 0;             // rewards clamped into the Tukey band
  double screen_bound = 0.0;      // effective gradient-norm cutoff this round
  // Search-health observability (src/obs/health). Both stay at their
  // defaults when the monitor is off — the record is otherwise untouched,
  // preserving the bit-identity contract.
  int health = 0;                 // worst detector: 0 OK / 1 WARN / 2 CRIT
  std::string health_trips;       // detectors at WARN+, comma-joined
  // Churn + graceful-degradation observability. A churn-free run reports
  // live == K, joined == left == shed == 0, cohort == K, degrade_mode 0.
  int live = 0;       // clients live under the churn schedule
  int joined = 0;     // absent -> live transitions this round
  int left = 0;       // live -> absent transitions this round
  int cohort = 0;     // clients actually dispatched to
  int shed = 0;       // live clients skipped by cohort shrink (mode >= 2)
  double deadline_s = 0.0;  // timeout cap in effect (0 = uncapped)
  int degrade_mode = 0;     // ladder mode in effect during the round
  // "from->to" when the controller moved at the end of this round.
  std::string degrade_transition;

  // Journal-frame persistence. The pair is byte-exact and symmetric
  // (enforced by fms_analyze checkpoint-symmetry); the journal compares
  // serialized records to prove replay determinism, so every field above
  // must round-trip here.
  void serialize(ByteWriter& w) const;
  void restore(ByteReader& r);

  // The health fields are windowed-monitor state that checkpoints do not
  // carry, so a replayed round cannot reproduce them; zero them before a
  // byte comparison. Purely a copy — the live record is untouched.
  RoundRecord canonical() const;
};

}  // namespace fms
