// Loader for the CIFAR-10/CIFAR-100 binary format.
//
// This reproduction ships synthetic stand-ins (synth.h) because the real
// datasets are not available offline — but a downstream user who has
// them should not have to touch library code. These functions parse the
// standard binary files (data_batch_*.bin / train.bin) into a Dataset
// with the same normalization the synthetic generators use, so every
// pipeline in the library runs on the real data unchanged.
//
// CIFAR-10 record: 1 label byte + 3072 pixel bytes (R, G, B planes).
// CIFAR-100 record: 1 coarse label byte + 1 fine label byte + 3072 pixels.
#pragma once

#include <string>
#include <vector>

#include "src/data/dataset.h"

namespace fms {

struct CifarFormat {
  int num_classes = 10;
  bool has_coarse_label = false;  // true for CIFAR-100 files
};

// Parses one binary file's bytes. Throws CheckError on malformed input
// (truncated records, out-of-range labels).
void append_cifar_records(const std::vector<std::uint8_t>& bytes,
                          const CifarFormat& format, Dataset& out);

// Loads and concatenates the given files into one Dataset (32x32x3).
Dataset load_cifar(const std::vector<std::string>& paths,
                   const CifarFormat& format);

}  // namespace fms
