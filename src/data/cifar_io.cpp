#include "src/data/cifar_io.h"

#include <fstream>
#include <iterator>

namespace fms {
namespace {

constexpr int kImageSize = 32;
constexpr std::size_t kPixelBytes = 3UL * kImageSize * kImageSize;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  FMS_CHECK_MSG(f.good(), "cannot open " << path);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

void append_cifar_records(const std::vector<std::uint8_t>& bytes,
                          const CifarFormat& format, Dataset& out) {
  const std::size_t header = format.has_coarse_label ? 2 : 1;
  const std::size_t record = header + kPixelBytes;
  FMS_CHECK_MSG(!bytes.empty() && bytes.size() % record == 0,
                "malformed CIFAR file: " << bytes.size()
                                         << " bytes is not a multiple of "
                                         << record);
  for (std::size_t pos = 0; pos < bytes.size(); pos += record) {
    // CIFAR-100 stores coarse label first, fine label second.
    const int label = bytes[pos + header - 1];
    FMS_CHECK_MSG(label < format.num_classes,
                  "label " << label << " out of range");
    std::vector<float> image(kPixelBytes);
    for (std::size_t i = 0; i < kPixelBytes; ++i) {
      // Map [0, 255] to [-1, 1], matching the synthetic generators' range.
      image[i] =
          static_cast<float>(bytes[pos + header + i]) / 127.5F - 1.0F;
    }
    out.add(std::move(image), label);
  }
}

Dataset load_cifar(const std::vector<std::string>& paths,
                   const CifarFormat& format) {
  Dataset out(format.num_classes, 3, kImageSize, kImageSize);
  for (const auto& path : paths) {
    append_cifar_records(read_file(path), format, out);
  }
  FMS_CHECK_MSG(!out.empty(), "no CIFAR records loaded");
  return out;
}

}  // namespace fms
