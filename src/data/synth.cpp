#include "src/data/synth.h"

#include <array>
#include <cmath>

namespace fms {
namespace {

constexpr float kPi = 3.14159265358979323846F;

// One grating image: sin(f * (x cos t + y sin t) + phase) mixed into the
// three channels by the class color vector, plus noise.
std::vector<float> grating_image(int size, float theta, float freq,
                                 const std::array<float, 3>& color,
                                 float noise_std, Rng& rng) {
  const float phase = rng.uniform(0.0F, 2.0F * kPi);
  const float gain = rng.uniform(0.7F, 1.3F);
  std::vector<float> img(static_cast<std::size_t>(3) * size * size);
  const float ct = std::cos(theta), st = std::sin(theta);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      const float u = (static_cast<float>(x) / size - 0.5F) * 2.0F;
      const float v = (static_cast<float>(y) / size - 0.5F) * 2.0F;
      const float s = std::sin(freq * kPi * (u * ct + v * st) + phase) * gain;
      for (int c = 0; c < 3; ++c) {
        img[(static_cast<std::size_t>(c) * size + y) * size + x] =
            s * color[static_cast<std::size_t>(c)] +
            rng.normal(0.0F, noise_std);
      }
    }
  }
  return img;
}

// Class-conditional parameters for the grating family. variant selects one
// of 10 frequency/color mixes, orientation_idx one of 10 orientations.
struct GratingClass {
  float theta;
  float freq;
  std::array<float, 3> color;
};

GratingClass grating_class(int orientation_idx, int variant) {
  GratingClass g;
  g.theta = static_cast<float>(orientation_idx) * kPi / 10.0F;
  g.freq = 1.5F + 0.45F * static_cast<float>(variant % 5);
  // Deterministic distinct color mixes per variant.
  const float a = 0.4F + 0.06F * static_cast<float>(variant % 10);
  g.color = {a, 1.0F - a, 0.3F + 0.07F * static_cast<float>(variant % 7)};
  return g;
}

void fill_grating_dataset(Dataset& out, int n, int size, int num_classes,
                          float noise_std, bool wide_family, Rng& rng) {
  for (int i = 0; i < n; ++i) {
    const int label = i % num_classes;  // balanced classes
    GratingClass g = wide_family
                         ? grating_class(label % 10, label / 10)
                         : grating_class(label, label);
    out.add(grating_image(size, g.theta, g.freq, g.color, noise_std, rng),
            label);
  }
}

// Seven-segment encodings for digits 0-9 (segments: top, top-left,
// top-right, middle, bottom-left, bottom-right, bottom).
constexpr std::array<std::array<int, 7>, 10> kSegments = {{
    {1, 1, 1, 0, 1, 1, 1},  // 0
    {0, 0, 1, 0, 0, 1, 0},  // 1
    {1, 0, 1, 1, 1, 0, 1},  // 2
    {1, 0, 1, 1, 0, 1, 1},  // 3
    {0, 1, 1, 1, 0, 1, 0},  // 4
    {1, 1, 0, 1, 0, 1, 1},  // 5
    {1, 1, 0, 1, 1, 1, 1},  // 6
    {1, 0, 1, 0, 0, 1, 0},  // 7
    {1, 1, 1, 1, 1, 1, 1},  // 8
    {1, 1, 1, 1, 0, 1, 1},  // 9
}};

std::vector<float> digit_image(int size, int digit, float noise_std,
                               Rng& rng) {
  std::vector<float> img(static_cast<std::size_t>(3) * size * size);
  // Background clutter: low-frequency blobs, SVHN-style busy background.
  for (int c = 0; c < 3; ++c) {
    const float bias = rng.uniform(-0.4F, 0.4F);
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        img[(static_cast<std::size_t>(c) * size + y) * size + x] =
            bias + rng.normal(0.0F, noise_std * 0.8F);
      }
    }
  }
  // Digit bounding box with random placement and scale.
  const int dh = std::max(7, size * 3 / 5);
  const int dw = std::max(5, dh * 3 / 5);
  const int oy = rng.randint(0, size - dh);
  const int ox = rng.randint(0, size - dw);
  const float stroke = rng.uniform(0.8F, 1.4F);
  auto put = [&](int y, int x) {
    if (y < 0 || y >= size || x < 0 || x >= size) return;
    for (int c = 0; c < 3; ++c) {
      img[(static_cast<std::size_t>(c) * size + y) * size + x] =
          stroke * (c == 0 ? 1.0F : 0.85F);
    }
  };
  const auto& seg = kSegments[static_cast<std::size_t>(digit)];
  const int mid = oy + dh / 2;
  const int bot = oy + dh - 1;
  // Horizontal segments.
  for (int x = ox; x < ox + dw; ++x) {
    if (seg[0]) put(oy, x);
    if (seg[3]) put(mid, x);
    if (seg[6]) put(bot, x);
  }
  // Vertical segments.
  for (int y = oy; y <= mid; ++y) {
    if (seg[1]) put(y, ox);
    if (seg[2]) put(y, ox + dw - 1);
  }
  for (int y = mid; y <= bot; ++y) {
    if (seg[4]) put(y, ox);
    if (seg[5]) put(y, ox + dw - 1);
  }
  return img;
}

}  // namespace

TrainTest make_synth_c10(const SynthSpec& spec, Rng& rng) {
  TrainTest tt{Dataset(10, 3, spec.image_size, spec.image_size),
               Dataset(10, 3, spec.image_size, spec.image_size)};
  fill_grating_dataset(tt.train, spec.train_size, spec.image_size, 10,
                       spec.noise_std, /*wide_family=*/false, rng);
  fill_grating_dataset(tt.test, spec.test_size, spec.image_size, 10,
                       spec.noise_std, /*wide_family=*/false, rng);
  return tt;
}

TrainTest make_synth_svhn(const SynthSpec& spec, Rng& rng) {
  TrainTest tt{Dataset(10, 3, spec.image_size, spec.image_size),
               Dataset(10, 3, spec.image_size, spec.image_size)};
  for (int i = 0; i < spec.train_size; ++i) {
    const int d = i % 10;
    tt.train.add(digit_image(spec.image_size, d, spec.noise_std, rng), d);
  }
  for (int i = 0; i < spec.test_size; ++i) {
    const int d = i % 10;
    tt.test.add(digit_image(spec.image_size, d, spec.noise_std, rng), d);
  }
  return tt;
}

TrainTest make_synth_c100(const SynthSpec& spec, Rng& rng) {
  TrainTest tt{Dataset(100, 3, spec.image_size, spec.image_size),
               Dataset(100, 3, spec.image_size, spec.image_size)};
  fill_grating_dataset(tt.train, spec.train_size, spec.image_size, 100,
                       spec.noise_std, /*wide_family=*/true, rng);
  fill_grating_dataset(tt.test, spec.test_size, spec.image_size, 100,
                       spec.noise_std, /*wide_family=*/true, rng);
  return tt;
}

}  // namespace fms
