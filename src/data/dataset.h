// Dataset substrate.
//
// The paper evaluates on CIFAR10 / SVHN / CIFAR100, which are not available
// offline; the algorithms only interact with data through batches, labels
// and per-participant label distributions, so we substitute procedural
// class-conditional generators (see synth.h) and keep the partitioning
// (i.i.d. and per-class Dirichlet(0.5), as in FedNAS) faithful.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/config.h"
#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace fms {

// An in-memory labeled image dataset (NCHW, float32 in roughly [-1, 1]).
class Dataset {
 public:
  Dataset(int num_classes, int channels, int height, int width)
      : num_classes_(num_classes), c_(channels), h_(height), w_(width) {}

  void add(std::vector<float> image, int label) {
    FMS_CHECK(static_cast<int>(image.size()) == c_ * h_ * w_);
    FMS_CHECK(label >= 0 && label < num_classes_);
    pixels_.insert(pixels_.end(), image.begin(), image.end());
    labels_.push_back(label);
  }

  int size() const { return static_cast<int>(labels_.size()); }
  bool empty() const { return labels_.empty(); }
  int num_classes() const { return num_classes_; }
  int channels() const { return c_; }
  int height() const { return h_; }
  int width() const { return w_; }
  const std::vector<int>& labels() const { return labels_; }
  int label(int i) const { return labels_[static_cast<std::size_t>(i)]; }

  std::span<const float> image(int i) const {
    const std::size_t sz = static_cast<std::size_t>(c_) * h_ * w_;
    return {pixels_.data() + static_cast<std::size_t>(i) * sz, sz};
  }

  // Assembles a batch [B, C, H, W]; when aug != nullptr applies random
  // horizontal flip, pad-and-crop ("random clip") and cutout per sample.
  struct Batch {
    Tensor x;
    std::vector<int> y;
  };
  Batch make_batch(std::span<const int> indices, const AugmentConfig* aug,
                   Rng* rng) const;

 private:
  int num_classes_, c_, h_, w_;
  std::vector<float> pixels_;
  std::vector<int> labels_;
};

// Index-based view of a dataset shard owned by one participant.
class Shard {
 public:
  Shard() = default;
  Shard(const Dataset* data, std::vector<int> indices)
      : data_(data), indices_(std::move(indices)) {}

  int size() const { return static_cast<int>(indices_.size()); }
  const Dataset& dataset() const { return *data_; }
  const std::vector<int>& indices() const { return indices_; }

  // Random batch with replacement across epochs (shuffled without
  // replacement within an epoch).
  Dataset::Batch next_batch(int batch_size, const AugmentConfig* aug,
                            Rng& rng);

  // Label histogram — used by tests to verify non-i.i.d. skew.
  std::vector<int> label_histogram() const;

  // Epoch-iteration state (shuffled order + cursor) snapshot/restore, so a
  // resumed federated search continues mid-epoch exactly where it stopped.
  const std::vector<int>& epoch_order() const { return order_; }
  std::size_t epoch_cursor() const { return cursor_; }
  void restore_epoch(std::vector<int> order, std::size_t cursor) {
    FMS_CHECK_MSG(cursor <= order.size(), "shard cursor past epoch end");
    FMS_CHECK_MSG(order.empty() || order.size() == indices_.size(),
                  "shard epoch order size mismatch");
    order_ = std::move(order);
    cursor_ = cursor;
  }

 private:
  const Dataset* data_ = nullptr;
  std::vector<int> indices_;
  std::vector<int> order_;
  std::size_t cursor_ = 0;
};

// Splits [0, n) into K near-equal random shards.
std::vector<std::vector<int>> iid_partition(int n, int k, Rng& rng);

// Per-class Dirichlet(beta) partition over K participants (FedNAS-style):
// for each class, sample p ~ Dir_K(beta) and distribute that class's
// samples according to p.
std::vector<std::vector<int>> dirichlet_partition(
    const std::vector<int>& labels, int num_classes, int k, double beta,
    Rng& rng);

// Builds Shards for all participants from a partition.
std::vector<Shard> make_shards(const Dataset& data,
                               const std::vector<std::vector<int>>& parts);

}  // namespace fms
