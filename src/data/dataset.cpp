#include "src/data/dataset.h"

#include <algorithm>
#include <numeric>

namespace fms {
namespace {

// In-place horizontal flip of one [C, H, W] image.
void hflip(float* img, int c, int h, int w) {
  for (int ic = 0; ic < c; ++ic) {
    for (int ih = 0; ih < h; ++ih) {
      float* row = img + (static_cast<std::size_t>(ic) * h + ih) * w;
      std::reverse(row, row + w);
    }
  }
}

// Pad-by-m and random-crop back to (h, w) — the paper's "random clip".
void random_crop(float* img, int c, int h, int w, int margin, Rng& rng) {
  const int dh = rng.randint(-margin, margin);
  const int dw = rng.randint(-margin, margin);
  if (dh == 0 && dw == 0) return;
  std::vector<float> out(static_cast<std::size_t>(c) * h * w, 0.0F);
  for (int ic = 0; ic < c; ++ic) {
    for (int ih = 0; ih < h; ++ih) {
      const int sh = ih + dh;
      if (sh < 0 || sh >= h) continue;
      for (int iw = 0; iw < w; ++iw) {
        const int sw = iw + dw;
        if (sw < 0 || sw >= w) continue;
        out[(static_cast<std::size_t>(ic) * h + ih) * w + iw] =
            img[(static_cast<std::size_t>(ic) * h + sh) * w + sw];
      }
    }
  }
  std::copy(out.begin(), out.end(), img);
}

// Zeroes a random square of the given side length (cutout, [28] in paper).
void cutout(float* img, int c, int h, int w, int length, Rng& rng) {
  const int cy = rng.randint(0, h - 1);
  const int cx = rng.randint(0, w - 1);
  const int y0 = std::max(0, cy - length / 2);
  const int y1 = std::min(h, cy + (length + 1) / 2);
  const int x0 = std::max(0, cx - length / 2);
  const int x1 = std::min(w, cx + (length + 1) / 2);
  for (int ic = 0; ic < c; ++ic) {
    for (int ih = y0; ih < y1; ++ih) {
      for (int iw = x0; iw < x1; ++iw) {
        img[(static_cast<std::size_t>(ic) * h + ih) * w + iw] = 0.0F;
      }
    }
  }
}

}  // namespace

Dataset::Batch Dataset::make_batch(std::span<const int> indices,
                                   const AugmentConfig* aug, Rng* rng) const {
  const int b = static_cast<int>(indices.size());
  Batch batch{Tensor({b, c_, h_, w_}), {}};
  batch.y.reserve(static_cast<std::size_t>(b));
  const std::size_t sz = static_cast<std::size_t>(c_) * h_ * w_;
  for (int i = 0; i < b; ++i) {
    const int idx = indices[static_cast<std::size_t>(i)];
    FMS_CHECK(idx >= 0 && idx < size());
    auto img = image(idx);
    float* dst = batch.x.data() + static_cast<std::size_t>(i) * sz;
    std::copy(img.begin(), img.end(), dst);
    if (aug != nullptr) {
      FMS_CHECK_MSG(rng != nullptr, "augmentation requires an Rng");
      if (rng->bernoulli(aug->horizontal_flip_p)) hflip(dst, c_, h_, w_);
      if (aug->random_clip > 0) {
        random_crop(dst, c_, h_, w_, aug->random_clip, *rng);
      }
      if (aug->cutout > 0) cutout(dst, c_, h_, w_, aug->cutout, *rng);
    }
    batch.y.push_back(label(idx));
  }
  return batch;
}

Dataset::Batch Shard::next_batch(int batch_size, const AugmentConfig* aug,
                                 Rng& rng) {
  FMS_CHECK_MSG(data_ != nullptr && !indices_.empty(), "empty shard");
  std::vector<int> chosen;
  chosen.reserve(static_cast<std::size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    if (cursor_ >= order_.size()) {
      order_ = indices_;
      rng.shuffle(order_);
      cursor_ = 0;
    }
    chosen.push_back(order_[cursor_++]);
  }
  return data_->make_batch(chosen, aug, &rng);
}

std::vector<int> Shard::label_histogram() const {
  std::vector<int> hist(static_cast<std::size_t>(data_->num_classes()), 0);
  for (int idx : indices_) {
    ++hist[static_cast<std::size_t>(data_->label(idx))];
  }
  return hist;
}

std::vector<std::vector<int>> iid_partition(int n, int k, Rng& rng) {
  FMS_CHECK(n > 0 && k > 0);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<std::vector<int>> parts(static_cast<std::size_t>(k));
  for (int i = 0; i < n; ++i) {
    parts[static_cast<std::size_t>(i % k)].push_back(order[static_cast<std::size_t>(i)]);
  }
  return parts;
}

std::vector<std::vector<int>> dirichlet_partition(
    const std::vector<int>& labels, int num_classes, int k, double beta,
    Rng& rng) {
  FMS_CHECK(k > 0 && num_classes > 0);
  std::vector<std::vector<int>> by_class(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    FMS_CHECK(labels[i] >= 0 && labels[i] < num_classes);
    by_class[static_cast<std::size_t>(labels[i])].push_back(static_cast<int>(i));
  }
  std::vector<std::vector<int>> parts(static_cast<std::size_t>(k));
  for (auto& cls : by_class) {
    rng.shuffle(cls);
    std::vector<double> p = rng.dirichlet(beta, k);
    // Convert proportions to contiguous slice boundaries.
    std::size_t start = 0;
    double cum = 0.0;
    for (int j = 0; j < k; ++j) {
      cum += p[static_cast<std::size_t>(j)];
      std::size_t end = (j == k - 1)
                            ? cls.size()
                            : static_cast<std::size_t>(cum * static_cast<double>(cls.size()));
      end = std::min(end, cls.size());
      for (std::size_t i = start; i < end; ++i) {
        parts[static_cast<std::size_t>(j)].push_back(cls[i]);
      }
      start = std::max(start, end);
    }
  }
  // Guarantee every participant has at least one sample (tiny shards would
  // break batch training); steal from the largest shard if needed.
  for (auto& part : parts) {
    if (!part.empty()) continue;
    auto largest = std::max_element(
        parts.begin(), parts.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    FMS_CHECK_MSG(largest->size() > 1, "not enough data to cover participants");
    part.push_back(largest->back());
    largest->pop_back();
  }
  return parts;
}

std::vector<Shard> make_shards(const Dataset& data,
                               const std::vector<std::vector<int>>& parts) {
  std::vector<Shard> shards;
  shards.reserve(parts.size());
  for (const auto& p : parts) shards.emplace_back(&data, p);
  return shards;
}

}  // namespace fms
