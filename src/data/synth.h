// Procedural class-conditional image generators standing in for the
// paper's datasets (see DESIGN.md §4 for the substitution rationale).
//
//  * SynthC10  — CIFAR10 stand-in: 10 classes of oriented sinusoidal
//    gratings with class-specific orientation, frequency and channel
//    color mix, plus per-sample phase jitter and Gaussian noise.
//  * SynthSVHN — SVHN stand-in: 10 digit classes rendered from
//    seven-segment templates with random placement, stroke jitter and
//    background clutter (SVHN's "digits amid distractors" character).
//  * SynthC100 — CIFAR100 stand-in: 100 classes drawn from the *same
//    grating family* as SynthC10 (10 orientations x 10 frequency/color
//    variants), so architectures searched on SynthC10 transfer
//    meaningfully, mirroring the paper's CIFAR10 -> CIFAR100 transfer.
#pragma once

#include "src/data/dataset.h"

namespace fms {

struct SynthSpec {
  int train_size = 2000;
  int test_size = 500;
  int image_size = 16;
  float noise_std = 0.35F;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

TrainTest make_synth_c10(const SynthSpec& spec, Rng& rng);
TrainTest make_synth_svhn(const SynthSpec& spec, Rng& rng);
TrainTest make_synth_c100(const SynthSpec& spec, Rng& rng);

}  // namespace fms
