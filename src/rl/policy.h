// The RL controller: an architecture-parameter matrix alpha acting as a
// stochastic policy over sub-models (paper §IV).
//
//  * sampling:  per edge, op i is chosen with p_i = softmax(alpha)_i
//    (Eq. 4) and materialized as a one-hot mask (Eq. 5);
//  * learning:  REINFORCE with the analytic log-prob gradient
//    ∇alpha log p_i = (… , 1 − p_i , …, −p_j , …) (Eq. 12), so the policy
//    update needs no backpropagation and runs entirely on the server;
//  * baseline:  moving-average reward baseline b_{t+1} (Eq. 8–9) to reduce
//    gradient variance.
#pragma once

#include <vector>

#include "src/common/config.h"
#include "src/common/stats.h"
#include "src/nas/genotype.h"
#include "src/nas/supernet.h"

namespace fms {

// Alpha (or an alpha-shaped gradient) for both cell templates.
struct AlphaPair {
  AlphaTable normal;
  AlphaTable reduce;

  static AlphaPair zeros(int num_edges);

  void add_scaled(const AlphaPair& other, float scale);
  void scale(float s);
  float l2_norm() const;
  // Scales so the global L2 norm is at most max_norm; returns pre-clip norm.
  float clip(float max_norm);

  std::vector<float> flatten() const;
  static AlphaPair unflatten(const std::vector<float>& flat, int num_edges);
};

// Which per-round reward statistic feeds the REINFORCE baseline (Eq. 9).
// kMeanReward is the paper's choice; kMedianReward is the robust variant:
// a colluding minority reporting accuracy 1.0 shifts the mean by f/m per
// round but cannot move the median at all while f < m/2.
enum class BaselineMode {
  kMeanReward,
  kMedianReward,
};

class ArchPolicy {
 public:
  ArchPolicy(int num_edges, AlphaOptConfig cfg);

  int num_edges() const { return num_edges_; }
  const AlphaPair& alpha() const { return alpha_; }
  void set_alpha(AlphaPair a) { alpha_ = std::move(a); }

  // Eq. 4 per edge; Eq. 5 across edges: one-hot op per edge.
  Mask sample(Rng& rng) const;

  // Probability of sampling `mask` under the current alpha.
  double log_prob(const Mask& mask) const;

  // Eq. 12, evaluated at the current alpha.
  AlphaPair log_prob_grad(const Mask& mask) const;
  // Eq. 12 evaluated at an arbitrary (possibly stale) alpha — needed by the
  // delay-compensated update (Eq. 15).
  static AlphaPair log_prob_grad_at(const AlphaPair& alpha, const Mask& mask);

  // Moving-average baseline (Eq. 9): b_{t+1} = beta*mean_acc + (1-beta)*b_t.
  // Returns the updated baseline to subtract from this round's accuracies.
  double update_baseline(double round_mean_accuracy);
  // Robust variant: folds the round's rewards into the configured
  // statistic (mean or median) before the EMA update.
  double update_baseline(const std::vector<double>& round_rewards,
                         BaselineMode mode);
  // The per-round statistic alone (mean or median with even-count
  // averaging; empty input gives 0).
  static double round_statistic(const std::vector<double>& rewards,
                                BaselineMode mode);
  double baseline() const { return baseline_.value(); }
  bool baseline_initialized() const { return baseline_.initialized(); }
  // Crash-recovery: reinstate the exact EMA state (the uninitialized flag
  // matters — the first update seeds the average instead of decaying).
  void restore_baseline(double value, bool initialized) {
    baseline_.restore(value, initialized);
  }

  // Shannon entropy (nats) of each edge's softmax distribution, normal
  // edges first then reduce edges. The uniform initial policy gives
  // log(kNumOps) per edge; a converged policy approaches 0 — the telemetry
  // layer tracks this decay as the search's progress signal.
  std::vector<double> edge_entropies() const;
  double mean_entropy() const;

  // Gradient-ascent step on J (with weight decay and global-norm clip).
  void apply_gradient(const AlphaPair& grad_j);

  // Discretizes the current alpha into a final architecture.
  Genotype derive_genotype(int nodes) const;

  const AlphaOptConfig& options() const { return cfg_; }

 private:
  int num_edges_;
  AlphaOptConfig cfg_;
  AlphaPair alpha_;
  ExpMovingAverage baseline_;
};

}  // namespace fms
