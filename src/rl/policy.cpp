#include "src/rl/policy.h"

#include <algorithm>
#include <cmath>

namespace fms {

AlphaPair AlphaPair::zeros(int num_edges) {
  AlphaPair a;
  a.normal.assign(static_cast<std::size_t>(num_edges), {});
  a.reduce.assign(static_cast<std::size_t>(num_edges), {});
  return a;
}

void AlphaPair::add_scaled(const AlphaPair& other, float scale) {
  FMS_CHECK(normal.size() == other.normal.size() &&
            reduce.size() == other.reduce.size());
  for (std::size_t e = 0; e < normal.size(); ++e) {
    for (int o = 0; o < kNumOps; ++o) {
      normal[e][static_cast<std::size_t>(o)] +=
          scale * other.normal[e][static_cast<std::size_t>(o)];
      reduce[e][static_cast<std::size_t>(o)] +=
          scale * other.reduce[e][static_cast<std::size_t>(o)];
    }
  }
}

void AlphaPair::scale(float s) {
  for (auto& row : normal)
    for (auto& v : row) v *= s;
  for (auto& row : reduce)
    for (auto& v : row) v *= s;
}

float AlphaPair::l2_norm() const {
  double sq = 0.0;
  for (const auto& row : normal)
    for (float v : row) sq += static_cast<double>(v) * v;
  for (const auto& row : reduce)
    for (float v : row) sq += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sq));
}

float AlphaPair::clip(float max_norm) {
  const float norm = l2_norm();
  if (max_norm > 0.0F && norm > max_norm) scale(max_norm / (norm + 1e-12F));
  return norm;
}

std::vector<float> AlphaPair::flatten() const {
  std::vector<float> flat;
  flat.reserve((normal.size() + reduce.size()) * kNumOps);
  for (const auto& row : normal) flat.insert(flat.end(), row.begin(), row.end());
  for (const auto& row : reduce) flat.insert(flat.end(), row.begin(), row.end());
  return flat;
}

AlphaPair AlphaPair::unflatten(const std::vector<float>& flat, int num_edges) {
  FMS_CHECK(flat.size() ==
            static_cast<std::size_t>(2 * num_edges) * kNumOps);
  AlphaPair a = zeros(num_edges);
  std::size_t pos = 0;
  for (auto& row : a.normal)
    for (auto& v : row) v = flat[pos++];
  for (auto& row : a.reduce)
    for (auto& v : row) v = flat[pos++];
  return a;
}

ArchPolicy::ArchPolicy(int num_edges, AlphaOptConfig cfg)
    : num_edges_(num_edges),
      cfg_(cfg),
      alpha_(AlphaPair::zeros(num_edges)),  // uniform policy at start
      baseline_(cfg.baseline_decay) {}

namespace {

int sample_edge(const std::array<float, kNumOps>& alpha_row, Rng& rng) {
  const auto p = alpha_softmax(alpha_row);
  std::vector<float> w(p.begin(), p.end());
  return rng.categorical(w);
}

}  // namespace

Mask ArchPolicy::sample(Rng& rng) const {
  Mask m;
  m.normal.reserve(alpha_.normal.size());
  m.reduce.reserve(alpha_.reduce.size());
  for (const auto& row : alpha_.normal) m.normal.push_back(sample_edge(row, rng));
  for (const auto& row : alpha_.reduce) m.reduce.push_back(sample_edge(row, rng));
  return m;
}

double ArchPolicy::log_prob(const Mask& mask) const {
  FMS_CHECK(mask.normal.size() == alpha_.normal.size() &&
            mask.reduce.size() == alpha_.reduce.size());
  double lp = 0.0;
  for (std::size_t e = 0; e < mask.normal.size(); ++e) {
    const auto p = alpha_softmax(alpha_.normal[e]);
    lp += std::log(std::max(
        p[static_cast<std::size_t>(mask.normal[e])], 1e-12F));
  }
  for (std::size_t e = 0; e < mask.reduce.size(); ++e) {
    const auto p = alpha_softmax(alpha_.reduce[e]);
    lp += std::log(std::max(
        p[static_cast<std::size_t>(mask.reduce[e])], 1e-12F));
  }
  return lp;
}

AlphaPair ArchPolicy::log_prob_grad(const Mask& mask) const {
  return log_prob_grad_at(alpha_, mask);
}

AlphaPair ArchPolicy::log_prob_grad_at(const AlphaPair& alpha,
                                       const Mask& mask) {
  FMS_CHECK(mask.normal.size() == alpha.normal.size() &&
            mask.reduce.size() == alpha.reduce.size());
  AlphaPair g = AlphaPair::zeros(static_cast<int>(alpha.normal.size()));
  // Eq. 12: d log(p_i)/d alpha_j = delta_ij - p_j.
  auto fill = [](const AlphaTable& a, const std::vector<int>& m,
                 AlphaTable& out) {
    for (std::size_t e = 0; e < m.size(); ++e) {
      const auto p = alpha_softmax(a[e]);
      for (int o = 0; o < kNumOps; ++o) {
        out[e][static_cast<std::size_t>(o)] =
            (o == m[e] ? 1.0F : 0.0F) - p[static_cast<std::size_t>(o)];
      }
    }
  };
  fill(alpha.normal, mask.normal, g.normal);
  fill(alpha.reduce, mask.reduce, g.reduce);
  return g;
}

double ArchPolicy::update_baseline(double round_mean_accuracy) {
  return baseline_.update(round_mean_accuracy);
}

double ArchPolicy::update_baseline(const std::vector<double>& round_rewards,
                                   BaselineMode mode) {
  return baseline_.update(round_statistic(round_rewards, mode));
}

double ArchPolicy::round_statistic(const std::vector<double>& rewards,
                                   BaselineMode mode) {
  if (rewards.empty()) return 0.0;
  if (mode == BaselineMode::kMeanReward) return mean_of(rewards);
  std::vector<double> sorted = rewards;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  return sorted.size() % 2 == 1 ? sorted[mid]
                                : (sorted[mid - 1] + sorted[mid]) / 2.0;
}

namespace {

double row_entropy(const std::array<float, kNumOps>& alpha_row) {
  const auto p = alpha_softmax(alpha_row);
  double h = 0.0;
  for (float pi : p) {
    if (pi > 0.0F) h -= static_cast<double>(pi) * std::log(pi);
  }
  return h;
}

}  // namespace

std::vector<double> ArchPolicy::edge_entropies() const {
  std::vector<double> out;
  out.reserve(alpha_.normal.size() + alpha_.reduce.size());
  for (const auto& row : alpha_.normal) out.push_back(row_entropy(row));
  for (const auto& row : alpha_.reduce) out.push_back(row_entropy(row));
  return out;
}

double ArchPolicy::mean_entropy() const {
  const std::vector<double> h = edge_entropies();
  if (h.empty()) return 0.0;
  double sum = 0.0;
  for (double v : h) sum += v;
  return sum / static_cast<double>(h.size());
}

void ArchPolicy::apply_gradient(const AlphaPair& grad_j) {
  AlphaPair step = grad_j;
  // Weight decay pulls alpha toward the uniform policy (maximizing
  // J - wd/2 * ||alpha||^2).
  step.add_scaled(alpha_, -cfg_.weight_decay);
  step.clip(cfg_.gradient_clip);
  alpha_.add_scaled(step, cfg_.learning_rate);
}

Genotype ArchPolicy::derive_genotype(int nodes) const {
  return discretize(alpha_.normal, alpha_.reduce, nodes);
}

}  // namespace fms
