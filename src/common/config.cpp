#include "src/common/config.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace fms {

double env_scale() {
  const char* s = std::getenv("FMS_SCALE");
  if (s == nullptr) return 1.0;
  try {
    double v = std::stod(s);
    return std::max(0.1, v);
  } catch (...) {
    return 1.0;
  }
}

SearchConfig default_config() {
  SearchConfig cfg;
  double scale = env_scale();
  // fms-lint: allow(float-eq) -- 1.0 is the exact "no env override" default
  if (scale != 1.0) {
    auto sc = [&](int v) { return static_cast<int>(v * scale); };
    cfg.schedule.warmup_steps = sc(cfg.schedule.warmup_steps);
    cfg.schedule.search_steps = sc(cfg.schedule.search_steps);
    cfg.schedule.retrain_epochs = std::max(1, sc(cfg.schedule.retrain_epochs));
    cfg.schedule.fl_train_steps = sc(cfg.schedule.fl_train_steps);
  }
  return cfg;
}

}  // namespace fms
