// Small statistics helpers used by the RL baseline, metric streams, and
// experiment reporting.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <vector>

#include "src/common/check.h"

namespace fms {

// Exponential moving average: b_{t+1} = beta * x + (1 - beta) * b_t.
// This is the form the paper uses for the REINFORCE reward baseline
// (Eq. 9), where beta is the "baseline decay" hyperparameter.
class ExpMovingAverage {
 public:
  explicit ExpMovingAverage(double beta) : beta_(beta) {
    FMS_CHECK(beta >= 0.0 && beta <= 1.0);
  }

  double update(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = beta_ * x + (1.0 - beta_) * value_;
    }
    return value_;
  }

  double value() const { return initialized_ ? value_ : 0.0; }
  bool initialized() const { return initialized_; }

  // Exact state restore for crash-recovery (beta stays as constructed).
  void restore(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double beta_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Fixed-window moving average (the paper smooths search curves with a
// 50-step window).
class WindowAverage {
 public:
  explicit WindowAverage(std::size_t window) : window_(window) {
    FMS_CHECK(window > 0);
  }

  double update(double x) {
    values_.push_back(x);
    sum_ += x;
    if (values_.size() > window_) {
      sum_ -= values_.front();
      values_.pop_front();
    }
    // The rolling add/subtract accumulates floating-point error without
    // bound over long searches (tens of thousands of rounds); recompute
    // the sum exactly once per window turnover so the error stays at a
    // single window's worth of rounding.
    if (++updates_since_rebuild_ >= window_) {
      updates_since_rebuild_ = 0;
      sum_ = 0.0;
      for (double v : values_) sum_ += v;
    }
    return value();
  }

  double value() const {
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
  }

  // Exact state snapshot/restore for crash-recovery: the rolling sum and
  // the rebuild phase both carry floating-point state that a resumed run
  // must reproduce bit-for-bit.
  std::size_t window() const { return window_; }
  const std::deque<double>& values() const { return values_; }
  double raw_sum() const { return sum_; }
  std::size_t rebuild_counter() const { return updates_since_rebuild_; }
  void restore(std::deque<double> values, double sum,
               std::size_t rebuild_counter) {
    FMS_CHECK_MSG(values.size() <= window_, "window state too large");
    values_ = std::move(values);
    sum_ = sum;
    updates_since_rebuild_ = rebuild_counter;
  }

 private:
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
  std::size_t updates_since_rebuild_ = 0;
};

// Welford online mean/variance.
class OnlineMeanVar {
 public:
  void update(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

inline double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline double stddev_of(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean_of(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

}  // namespace fms
