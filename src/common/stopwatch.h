#pragma once

#include <chrono>

namespace fms {

// Wall-clock stopwatch for the search-time experiments (Table V).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fms
