// Minimal fixed-size thread pool.
//
// Participant-local training steps are independent and can run in
// parallel; on single-core hosts the pool degrades gracefully to one
// worker. parallel_for is the only API the library uses.
//
// Locking discipline is compile-time-checked via the thread-safety
// annotations (src/common/thread_annotations.h): tasks_ and stopping_
// are guarded by mu_, and the clang CI jobs fail on any unguarded
// access.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace fms {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads =
                          std::max(1U, std::thread::hardware_concurrency())) {
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) for i in [0, n); blocks until all complete. Exceptions from
  // tasks propagate as the first one captured.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.size() == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    // Completion state is local to this call, shared only with the task
    // lambdas below — a plain mutex is fine (no annotatable members).
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t remaining = n;
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(done_mu);
          if (!first_error) first_error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void submit(std::function<void()> task) {
    {
      MutexLock lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        // Explicit loop (not the predicate overload): the analysis sees
        // the guarded reads happen with mu_ held; wait() re-acquires
        // before returning.
        while (!stopping_ && tasks_.empty()) cv_.wait(mu_);
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ FMS_GUARDED_BY(mu_);
  std::condition_variable_any cv_;
  bool stopping_ FMS_GUARDED_BY(mu_) = false;
};

}  // namespace fms
