// Lightweight runtime invariant checking used throughout the library.
//
// FMS_CHECK is always on (the cost is negligible next to tensor math) and
// throws fms::CheckError so tests can assert on failures and callers can
// recover if they choose to.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fms {

class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FMS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace fms

#define FMS_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) ::fms::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define FMS_CHECK_MSG(cond, msg)                                   \
  do {                                                             \
    if (!(cond)) {                                                 \
      std::ostringstream fms_check_os_;                            \
      fms_check_os_ << msg;                                        \
      ::fms::detail::check_failed(#cond, __FILE__, __LINE__,       \
                                  fms_check_os_.str());            \
    }                                                              \
  } while (0)
