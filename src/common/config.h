// Experiment configuration mirroring Table I of the paper, plus the
// substrate-scale knobs this reproduction adds (image size, channel count,
// number of cells) so the same pipeline runs on a 1-core CPU.
#pragma once

#include <cstdint>
#include <string>

namespace fms {

// Hyperparameters for the supernet weights theta (paper Table I).
struct ThetaOptConfig {
  float learning_rate = 0.025F;
  float momentum = 0.9F;
  float weight_decay = 0.0003F;
  float gradient_clip = 5.0F;
};

// Hyperparameters for the architecture parameters alpha (paper Table I).
struct AlphaOptConfig {
  float learning_rate = 0.003F;
  float weight_decay = 0.0001F;
  float gradient_clip = 5.0F;
  float baseline_decay = 0.99F;  // beta in Eq. 9
};

// Hyperparameters for phase P3 retraining (paper Table I has separate
// centralized and federated settings).
struct RetrainConfig {
  // centralized P3
  float lr_centralized = 0.025F;
  float momentum_centralized = 0.9F;
  float weight_decay_centralized = 0.0003F;
  float clip_centralized = 5.0F;
  // federated P3
  float lr_federated = 0.1F;
  float momentum_federated = 0.5F;
  float weight_decay_federated = 0.005F;
  float clip_federated = 5.0F;
};

// Search-space / model-scale parameters. Paper values in comments; the
// defaults are the CPU-substrate scale used by tests and benches.
struct SupernetConfig {
  int num_cells = 4;        // paper: 8 searched / 20 evaluated (16 for SVHN)
  int num_nodes = 3;        // intermediate nodes per cell (paper/DARTS: 4)
  int stem_channels = 8;    // paper: 16 searched / 36 evaluated
  int num_classes = 10;
  int image_size = 16;      // paper: 32 (CIFAR/SVHN)
  int image_channels = 3;
};

// End-to-end pipeline schedule. Paper values in comments.
struct ScheduleConfig {
  int batch_size = 64;        // paper: 256
  int num_participants = 10;  // paper Table I: K = 10
  int warmup_steps = 60;      // paper: 10000
  int search_steps = 120;     // paper: 6000 (10000 on non-iid CIFAR10)
  int retrain_epochs = 6;     // paper: 600
  int fl_train_steps = 120;   // paper: 6000
};

// Augmentation settings (paper Table I).
struct AugmentConfig {
  int cutout = 4;            // paper: 16 (on 32x32); scaled to 16x16 images
  int random_clip = 2;       // paper: 4 — pad-and-random-crop margin
  float horizontal_flip_p = 0.5F;
};

// Telemetry sink selection (src/obs). Disabled by default: the search hot
// path then pays only a relaxed atomic load per instrumentation site.
struct TelemetryConfig {
  bool enabled = false;
  std::string trace_jsonl_path;  // per-round + per-span JSONL events
  std::string metrics_csv_path;  // registry snapshot written at end of run
  bool console = false;          // per-round progress one-liner
  int console_every = 25;        // console line cadence in rounds
  // Scoped-zone profiler + tensor allocation accounting (src/obs/profile).
  // Off by default: the disabled path is one relaxed atomic load per zone
  // and search output is bit-identical either way.
  bool profile = false;
  // Per-op FLOP/byte work ledger (src/obs/work). Same contract as the
  // profiler: one relaxed atomic load per site when off, bit-identical
  // search output either way.
  bool work = false;
  // Causal round tracing (src/obs/trace_ctx): a non-empty path exports the
  // per-participant lifecycle as Chrome trace-event JSON (sim-time ticks;
  // load at ui.perfetto.dev). Bit-identical on/off, like the profiler.
  std::string trace_chrome_path;
  // Online search-health monitor (src/obs/health): windowed OK/WARN/CRIT
  // detectors over the round stream. A non-empty report path implies
  // health and writes health.json at the end of the run.
  bool health = false;
  std::string health_report_path;
  // Crash flight recorder (src/obs/flight): > 0 keeps the last N lifecycle
  // events per participant and dumps them to flight_dump_path on crash,
  // quorum failure, or any health CRIT transition.
  int flight_recorder = 0;
  std::string flight_dump_path;
};

struct SearchConfig {
  ThetaOptConfig theta;
  AlphaOptConfig alpha;
  RetrainConfig retrain;
  SupernetConfig supernet;
  ScheduleConfig schedule;
  AugmentConfig augment;
  TelemetryConfig telemetry;
  std::uint64_t seed = 42;
};

// Returns a config scaled by the FMS_SCALE environment variable (>=1
// lengthens schedules toward the paper's values); scale 1 is the fast
// CPU default.
SearchConfig default_config();
double env_scale();

}  // namespace fms
