// Console table and CSV emission for the benchmark harness.
//
// Every bench binary prints a paper-style table to stdout and, when given
// an output directory, mirrors the rows to CSV for plotting.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace fms {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names) {
    header_ = std::move(names);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    FMS_CHECK_MSG(header_.empty() || cells.size() == header_.size(),
                  "row width mismatch in table " << title_);
    rows_.push_back(std::move(cells));
    return *this;
  }

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i >= width.size()) width.resize(i + 1, 0);
        width[i] = std::max(width[i], cells[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    os << "== " << title_ << " ==\n";
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        os << std::left << std::setw(static_cast<int>(width[i]) + 2)
           << cells[i];
      }
      os << "\n";
    };
    if (!header_.empty()) {
      line(header_);
      std::size_t total = 0;
      for (auto w : width) total += w + 2;
      os << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_) line(r);
    os.flush();
  }

  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    FMS_CHECK_MSG(f.good(), "cannot open " << path);
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) f << ",";
        f << cells[i];
      }
      f << "\n";
    };
    if (!header_.empty()) emit(header_);
    for (const auto& r : rows_) emit(r);
  }

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Series writer for figure-style outputs (x, one or more named series).
class Series {
 public:
  explicit Series(std::string title) : title_(std::move(title)) {}

  Series& axes(std::string x_name, std::vector<std::string> series_names) {
    x_name_ = std::move(x_name);
    names_ = std::move(series_names);
    return *this;
  }

  Series& point(double x, std::vector<double> ys) {
    FMS_CHECK(ys.size() == names_.size());
    xs_.push_back(x);
    ys_.push_back(std::move(ys));
    return *this;
  }

  // Prints every `stride`-th point so long runs stay readable on a console.
  void print(std::ostream& os = std::cout, std::size_t stride = 1) const {
    os << "== " << title_ << " ==\n" << x_name_;
    for (const auto& n : names_) os << "\t" << n;
    os << "\n";
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      if (i % stride != 0 && i + 1 != xs_.size()) continue;
      os << Table::num(xs_[i], 0);
      for (double y : ys_[i]) os << "\t" << Table::num(y, 4);
      os << "\n";
    }
    os.flush();
  }

  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    FMS_CHECK_MSG(f.good(), "cannot open " << path);
    f << x_name_;
    for (const auto& n : names_) f << "," << n;
    f << "\n";
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      f << xs_[i];
      for (double y : ys_[i]) f << "," << y;
      f << "\n";
    }
  }

  std::size_t size() const { return xs_.size(); }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<std::vector<double>>& ys() const { return ys_; }

 private:
  std::string title_;
  std::string x_name_;
  std::vector<std::string> names_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> ys_;
};

}  // namespace fms
