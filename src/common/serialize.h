// Binary serialization with exact byte accounting.
//
// The paper's efficiency claims hinge on payload sizes (a sub-model is
// ~1/N of the supernet), so every message in the federated substrate is
// actually serialized and its size measured rather than estimated.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/check.h"
#include "src/obs/profile.h"

namespace fms {

class ByteWriter {
 public:
  template <typename T>
  void write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Bulk payloads dominate serialization cost; attribute them to the
    // enclosing profiler zone (ckpt.serialize, fed.encode, ...).
    FMS_PROFILE_BYTES(v.size() * sizeof(T));
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  void write_string(const std::string& s) {
    FMS_PROFILE_BYTES(s.size());
    write(static_cast<std::uint64_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    FMS_CHECK_MSG(pos_ + sizeof(T) <= buf_.size(), "ByteReader underflow");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto n = read<std::uint64_t>();
    FMS_PROFILE_BYTES(n * sizeof(T));
    FMS_CHECK_MSG(pos_ + n * sizeof(T) <= buf_.size(), "ByteReader underflow");
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  std::string read_string() {
    auto n = read<std::uint64_t>();
    FMS_CHECK_MSG(pos_ + n <= buf_.size(), "ByteReader underflow");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += n;
    return s;
  }

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t position() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

inline double bytes_to_mb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace fms
