// Binary serialization with exact byte accounting.
//
// The paper's efficiency claims hinge on payload sizes (a sub-model is
// ~1/N of the supernet), so every message in the federated substrate is
// actually serialized and its size measured rather than estimated.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/check.h"
#include "src/obs/profile.h"

namespace fms {

class ByteWriter {
 public:
  template <typename T>
  void write(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Bulk payloads dominate serialization cost; attribute them to the
    // enclosing profiler zone (ckpt.serialize, fed.encode, ...).
    FMS_PROFILE_BYTES(v.size() * sizeof(T));
    write(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  void write_string(const std::string& s) {
    FMS_PROFILE_BYTES(s.size());
    write(static_cast<std::uint64_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    FMS_CHECK_MSG(pos_ + sizeof(T) <= buf_.size(), "ByteReader underflow");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto n = read<std::uint64_t>();
    // Divide instead of multiplying: a corrupted length field must fail
    // the bounds check, not wrap the multiplication and pass it.
    FMS_CHECK_MSG(n <= (buf_.size() - pos_) / sizeof(T),
                  "ByteReader underflow");
    FMS_PROFILE_BYTES(n * sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  std::string read_string() {
    auto n = read<std::uint64_t>();
    FMS_CHECK_MSG(pos_ + n <= buf_.size(), "ByteReader underflow");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += n;
    return s;
  }

  bool exhausted() const { return pos_ == buf_.size(); }
  std::size_t position() const { return pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

inline double bytes_to_mb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// --- CRC32 framing (durability path: journal frames, checkpoint trailer) ---
//
// Standard CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320), computed over a
// byte span. The table is built once per process; the function is pure.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFU] ^ (crc >> 8);
  }
  return ~crc;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

// Length-prefixed CRC frame: [u32 payload length][u32 crc32(payload)][payload].
// The fixed 8-byte prologue lets a tolerant reader detect a torn tail (short
// prologue, short payload, or CRC mismatch) and truncate exactly there.
inline constexpr std::size_t kFrameHeaderBytes = 8;

inline void append_crc_frame(std::vector<std::uint8_t>& out,
                             const std::vector<std::uint8_t>& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  const auto* lp = reinterpret_cast<const std::uint8_t*>(&len);
  const auto* cp = reinterpret_cast<const std::uint8_t*>(&crc);
  out.insert(out.end(), lp, lp + sizeof(len));
  out.insert(out.end(), cp, cp + sizeof(crc));
  out.insert(out.end(), payload.begin(), payload.end());
}

// Tolerant frame extraction: reads the frame starting at `pos` in `buf`.
// On success advances `pos` past the frame and fills `payload`; returns
// false (leaving `pos` untouched) when the remaining bytes do not form a
// complete, CRC-valid frame — the torn-tail signal.
inline bool next_crc_frame(const std::vector<std::uint8_t>& buf,
                           std::size_t& pos,
                           std::vector<std::uint8_t>* payload) {
  if (buf.size() - pos < kFrameHeaderBytes) return false;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, buf.data() + pos, sizeof(len));
  std::memcpy(&crc, buf.data() + pos + sizeof(len), sizeof(crc));
  if (len > buf.size() - pos - kFrameHeaderBytes) return false;
  const std::uint8_t* body = buf.data() + pos + kFrameHeaderBytes;
  if (crc32(body, len) != crc) return false;
  payload->assign(body, body + len);
  pos += kFrameHeaderBytes + len;
  return true;
}

}  // namespace fms
