// Deterministic random number generation.
//
// Every stochastic component in the library takes an Rng& (or a seed)
// explicitly so that experiments are exactly reproducible; nothing reads
// from a global generator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace fms {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  // Uniform real in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }

  // Standard normal scaled by stddev.
  float normal(float mean = 0.0F, float stddev = 1.0F) {
    std::normal_distribution<float> d(mean, stddev);
    return d(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int randint(int lo, int hi) {
    FMS_CHECK(lo <= hi);
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  // Samples an index according to the (unnormalized, non-negative) weights.
  int categorical(const std::vector<float>& weights) {
    FMS_CHECK(!weights.empty());
    std::discrete_distribution<int> d(weights.begin(), weights.end());
    return d(engine_);
  }

  // Samples a probability vector from Dirichlet(alpha, ..., alpha) of size n.
  std::vector<double> dirichlet(double alpha, int n) {
    FMS_CHECK(alpha > 0.0 && n > 0);
    std::gamma_distribution<double> d(alpha, 1.0);
    std::vector<double> out(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (auto& v : out) {
      v = d(engine_);
      sum += v;
    }
    if (sum <= 0.0) {  // pathological underflow: fall back to uniform
      for (auto& v : out) v = 1.0 / n;
      return out;
    }
    for (auto& v : out) v /= sum;
    return out;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Returns a derived generator; streams seeded this way are independent
  // enough for simulation purposes and keep components decoupled.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  // Engine-state snapshot/restore (the standard guarantees the textual
  // round-trip reproduces the exact stream) — what crash-recovery needs
  // for bit-identical resumed searches.
  std::string save_state() const {
    std::ostringstream os;
    os << engine_;
    return os.str();
  }
  void load_state(const std::string& state) {
    std::istringstream is(state);
    is >> engine_;
    FMS_CHECK_MSG(!is.fail(), "corrupt rng state");
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fms
