// Clang thread-safety annotations, plus the annotated mutex wrapper the
// rest of the library locks with.
//
// The concurrency layer's locking discipline (which mutex guards which
// member, which methods require a lock held) was previously enforced only
// dynamically by TSan. Clang's -Wthread-safety analysis checks the same
// discipline at compile time, but it needs the capability attributes on
// the mutex type itself — and libstdc++'s std::mutex carries none. So:
//
//   * FMS_GUARDED_BY / FMS_REQUIRES / FMS_ACQUIRE / ... expand to the
//     clang attributes when building with clang and to nothing elsewhere
//     (GCC builds see plain code, bit-identical behavior);
//   * fms::Mutex wraps std::mutex with FMS_CAPABILITY so the analysis can
//     track acquire/release through it;
//   * fms::MutexLock is the annotated scoped guard (std::lock_guard is
//     not annotated, so locking through it would be invisible to the
//     analysis).
//
// Condition variables: use std::condition_variable_any waiting directly
// on the fms::Mutex (it is BasicLockable), with the explicit loop form
//
//   while (!predicate) cv_.wait(mu_);
//
// instead of the predicate-lambda overload — the analysis cannot see that
// a lambda body runs under the lock, but it tracks the loop form fine.
//
// Conventions (checked by -Wthread-safety -Werror on the clang CI jobs):
//   * every member accessed under a mutex is FMS_GUARDED_BY(that mutex);
//   * private helpers called with the lock held are FMS_REQUIRES(mu_);
//   * members that are const after construction need no annotation.
#pragma once

#include <mutex>

#if defined(__clang__)
#define FMS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FMS_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

#define FMS_CAPABILITY(x) FMS_THREAD_ANNOTATION(capability(x))
#define FMS_SCOPED_CAPABILITY FMS_THREAD_ANNOTATION(scoped_lockable)
#define FMS_GUARDED_BY(x) FMS_THREAD_ANNOTATION(guarded_by(x))
#define FMS_PT_GUARDED_BY(x) FMS_THREAD_ANNOTATION(pt_guarded_by(x))
#define FMS_REQUIRES(...) \
  FMS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FMS_ACQUIRE(...) FMS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FMS_RELEASE(...) FMS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FMS_TRY_ACQUIRE(...) \
  FMS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FMS_EXCLUDES(...) FMS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FMS_RETURN_CAPABILITY(x) FMS_THREAD_ANNOTATION(lock_returned(x))
#define FMS_NO_THREAD_SAFETY_ANALYSIS \
  FMS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fms {

// std::mutex with the capability attribute the analysis needs. Also
// BasicLockable, so std::condition_variable_any can wait on it directly.
class FMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FMS_ACQUIRE() { mu_.lock(); }
  void unlock() FMS_RELEASE() { mu_.unlock(); }
  bool try_lock() FMS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Annotated scoped guard (drop-in for std::lock_guard<std::mutex>).
class FMS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FMS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FMS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace fms
