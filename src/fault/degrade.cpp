#include "src/fault/degrade.h"

#include <algorithm>

#include "src/common/serialize.h"

namespace fms {

const char* degrade_mode_name(DegradeMode m) {
  switch (m) {
    case DegradeMode::kNormal: return "normal";
    case DegradeMode::kRelaxDeadline: return "relax_deadline";
    case DegradeMode::kShrinkCohort: return "shrink_cohort";
    case DegradeMode::kPartialQuorum: return "partial_quorum";
  }
  return "unknown";
}

DegradationController::Transition DegradationController::observe(
    bool bad_round, const DegradeConfig& cfg) {
  Transition tr;
  tr.from = mode_;
  tr.to = mode_;
  const int max_mode = std::min(3, std::max(0, cfg.max_mode));
  const int trip = std::max(1, cfg.trip_rounds);
  const int recover = std::max(1, cfg.recover_rounds);
  if (bad_round) {
    ++bad_streak_;
    good_streak_ = 0;
    if (bad_streak_ >= trip && static_cast<int>(mode_) < max_mode) {
      mode_ = static_cast<DegradeMode>(static_cast<int>(mode_) + 1);
      bad_streak_ = 0;  // re-arm: the next step needs a fresh streak
      ++entered_[static_cast<std::size_t>(mode_)];
    }
  } else {
    ++good_streak_;
    bad_streak_ = 0;
    if (good_streak_ >= recover && mode_ != DegradeMode::kNormal) {
      mode_ = static_cast<DegradeMode>(static_cast<int>(mode_) - 1);
      good_streak_ = 0;
    }
  }
  // A lowered max_mode (e.g. on resume with a different flag) pulls the
  // controller back inside the allowed ladder immediately.
  if (static_cast<int>(mode_) > max_mode) {
    mode_ = static_cast<DegradeMode>(max_mode);
  }
  tr.to = mode_;
  tr.changed = tr.to != tr.from;
  if (tr.changed) ++transitions_;
  return tr;
}

void DegradationController::serialize(ByteWriter& w) const {
  w.write(static_cast<std::int32_t>(mode_));
  w.write(bad_streak_);
  w.write(good_streak_);
  w.write(transitions_);
  for (const int e : entered_) w.write(e);
}

void DegradationController::restore(ByteReader& r) {
  const auto m = r.read<std::int32_t>();
  mode_ = static_cast<DegradeMode>(std::min(3, std::max(0, static_cast<int>(m))));
  bad_streak_ = r.read<int>();
  good_streak_ = r.read<int>();
  transitions_ = r.read<int>();
  for (int& e : entered_) e = r.read<int>();
}

}  // namespace fms
