// Graceful-degradation controller: a hysteresis ladder the round loop
// steps down when rounds keep failing to commit cleanly, and back up when
// conditions recover.
//
// Mode ladder (each mode includes the measures of the ones before it):
//   0 normal          — configured deadline and quorum apply unchanged.
//   1 relax_deadline  — the timeout cap is stretched by relax_factor, so
//                       slow-but-present clients make the commit.
//   2 shrink_cohort   — only the fastest cohort_fraction of the live
//                       fleet is dispatched to (ties by id), shedding
//                       load and shortening the commit tail.
//   3 partial_quorum  — the quorum requirement itself is relieved by
//                       quorum_relief: the round commits with what
//                       arrived and stragglers fold into the soft-sync /
//                       delay-compensation path.
//
// Transitions are driven by *committed round outcomes only* (partial
// quorum, deadline blow-through), so the controller is causal: the mode
// for round t is fully determined by rounds < t, which makes it trivially
// checkpointable and bit-identical on resume. Hysteresis: stepping down
// takes trip_rounds consecutive bad rounds, stepping up takes
// recover_rounds consecutive good ones — recover_rounds > trip_rounds
// damps oscillation at a mode boundary.
#pragma once

#include <cstdint>

namespace fms {

class ByteReader;  // src/common/serialize.h
class ByteWriter;

enum class DegradeMode : int {
  kNormal = 0,
  kRelaxDeadline = 1,
  kShrinkCohort = 2,
  kPartialQuorum = 3,
};

const char* degrade_mode_name(DegradeMode m);

struct DegradeConfig {
  // Deepest mode the controller may enter; 0 disables it entirely (the
  // search then behaves exactly as before this layer existed).
  int max_mode = 0;
  int trip_rounds = 3;     // consecutive bad rounds before stepping down
  int recover_rounds = 6;  // consecutive good rounds before stepping up
  double relax_factor = 2.0;    // timeout multiplier at mode >= 1
  double cohort_fraction = 0.7; // live fraction dispatched at mode >= 2
  int min_cohort = 2;           // never shrink below this many clients
  double quorum_relief = 0.5;   // quorum multiplier at mode >= 3
};

class DegradationController {
 public:
  DegradeMode mode() const { return mode_; }

  struct Transition {
    bool changed = false;
    DegradeMode from = DegradeMode::kNormal;
    DegradeMode to = DegradeMode::kNormal;
  };

  // Feeds one committed round's outcome; may move one step along the
  // ladder and resets the streak that caused the move.
  Transition observe(bool bad_round, const DegradeConfig& cfg);

  int transitions() const { return transitions_; }
  int entries(DegradeMode m) const {
    return entered_[static_cast<std::size_t>(m)];
  }

  void serialize(ByteWriter& w) const;
  void restore(ByteReader& r);

 private:
  DegradeMode mode_ = DegradeMode::kNormal;
  int bad_streak_ = 0;
  int good_streak_ = 0;
  int transitions_ = 0;
  int entered_[4] = {0, 0, 0, 0};  // times each mode was stepped into
};

}  // namespace fms
