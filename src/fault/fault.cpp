#include "src/fault/fault.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/obs/trace_ctx.h"

namespace fms {
namespace {

// Decision-stream salts: each fault family draws from its own hash stream
// so tuning one probability never reshuffles another family's schedule.
constexpr std::uint64_t kSaltCrashSelect = 0xC1;
constexpr std::uint64_t kSaltCrashRound = 0xC2;
constexpr std::uint64_t kSaltDropout = 0xD0;
constexpr std::uint64_t kSaltLink = 0x11;
constexpr std::uint64_t kSaltUplink = 0x12;
constexpr std::uint64_t kSaltUplinkJitter = 0x13;
constexpr std::uint64_t kSaltCollapse = 0xB0;
constexpr std::uint64_t kSaltCorrupt = 0xC0;
constexpr std::uint64_t kSaltCorruptBits = 0xCB;
constexpr std::uint64_t kSaltDivergentSelect = 0xF0;
constexpr std::uint64_t kSaltDivergent = 0xF1;
constexpr std::uint64_t kSaltPoisonMode = 0xF2;
constexpr std::uint64_t kSaltSignFlip = 0xA1;
constexpr std::uint64_t kSaltGradScale = 0xA2;
constexpr std::uint64_t kSaltCollude = 0xA3;
constexpr std::uint64_t kSaltColludeStream = 0xA4;
constexpr std::uint64_t kSaltRewardAttack = 0xA5;
// Disk faults (durability path): keyed by (op, op_id = round), not by
// participant — durable writes happen on the coordinator.
constexpr std::uint64_t kSaltDiskEio = 0xE0;
constexpr std::uint64_t kSaltDiskShort = 0xE1;
constexpr std::uint64_t kSaltDiskTear = 0xE2;
constexpr std::uint64_t kSaltDiskCorrupt = 0xE3;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                  std::uint64_t b) {
  std::uint64_t h = splitmix64(seed ^ salt);
  h = splitmix64(h ^ a);
  h = splitmix64(h ^ b);
  return h;
}

double to_u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    FMS_CHECK_MSG(used == value.size() && std::isfinite(v),
                  "bad fault-plan value for " << key << ": '" << value << "'");
    return v;
  } catch (const CheckError&) {
    throw;
  } catch (...) {
    throw CheckError("bad fault-plan value for " + key + ": '" + value + "'");
  }
}

double parse_prob(const std::string& key, const std::string& value) {
  const double v = parse_double(key, value);
  FMS_CHECK_MSG(v >= 0.0 && v <= 1.0,
                "fault-plan " << key << " must be in [0, 1], got " << v);
  return v;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kLinkFailure: return "link_failure";
    case FaultKind::kBandwidthCollapse: return "bandwidth_collapse";
    case FaultKind::kCorruptPayload: return "corrupt_payload";
    case FaultKind::kDivergent: return "divergent";
    case FaultKind::kSignFlip: return "sign_flip";
    case FaultKind::kGradScale: return "grad_scale";
    case FaultKind::kCollude: return "collude";
    case FaultKind::kRewardAttack: return "reward_attack";
  }
  return "unknown";
}

bool FaultPlan::empty() const {
  return crash_fraction <= 0.0 && dropout_p <= 0.0 && link_failure_p <= 0.0 &&
         uplink_failure_p <= 0.0 && collapse_p <= 0.0 && corrupt_p <= 0.0 &&
         divergent_fraction <= 0.0 && !has_byzantine();
}

bool FaultPlan::has_byzantine() const {
  return sign_flip_fraction > 0.0 || grad_scale_fraction > 0.0 ||
         collude_fraction > 0.0 || reward_attack_fraction > 0.0;
}

bool FaultPlan::has_disk() const {
  return disk_eio_p > 0.0 || disk_short_p > 0.0 || disk_corrupt_p > 0.0;
}

FaultPlan FaultPlan::severe(std::uint64_t seed) {
  FaultPlan plan;
  plan.crash_fraction = 0.3;
  plan.crash_round = 0;
  plan.crash_spread = 10;
  plan.corrupt_p = 0.1;
  plan.divergent_fraction = 0.2;
  plan.divergent_p = 0.5;
  plan.link_failure_p = 0.1;
  plan.seed = seed;
  return plan;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    FMS_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "fault-plan entry '" << item << "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "crash") {
      plan.crash_fraction = parse_prob(key, value);
    } else if (key == "crash_round") {
      plan.crash_round = static_cast<int>(parse_double(key, value));
    } else if (key == "crash_spread") {
      plan.crash_spread = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.crash_spread >= 0, "crash_spread must be >= 0");
    } else if (key == "dropout") {
      plan.dropout_p = parse_prob(key, value);
    } else if (key == "dropout_rounds") {
      plan.dropout_rounds = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.dropout_rounds >= 1, "dropout_rounds must be >= 1");
    } else if (key == "link") {
      plan.link_failure_p = parse_prob(key, value);
    } else if (key == "uplink") {
      plan.uplink_failure_p = parse_prob(key, value);
    } else if (key == "backoff_jitter") {
      plan.backoff_jitter = parse_prob(key, value);
    } else if (key == "collapse") {
      plan.collapse_p = parse_prob(key, value);
    } else if (key == "collapse_factor") {
      plan.collapse_factor = parse_double(key, value);
      FMS_CHECK_MSG(plan.collapse_factor > 0.0 && plan.collapse_factor <= 1.0,
                    "collapse_factor must be in (0, 1]");
    } else if (key == "corrupt") {
      plan.corrupt_p = parse_prob(key, value);
    } else if (key == "corrupt_bits") {
      plan.corrupt_bits = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.corrupt_bits >= 1, "corrupt_bits must be >= 1");
    } else if (key == "divergent") {
      plan.divergent_fraction = parse_prob(key, value);
    } else if (key == "divergent_p") {
      plan.divergent_p = parse_prob(key, value);
    } else if (key == "sign_flip") {
      plan.sign_flip_fraction = parse_prob(key, value);
    } else if (key == "sign_flip_lambda") {
      plan.sign_flip_lambda = parse_double(key, value);
      FMS_CHECK_MSG(plan.sign_flip_lambda > 0.0,
                    "sign_flip_lambda must be > 0");
    } else if (key == "grad_scale") {
      plan.grad_scale_fraction = parse_prob(key, value);
    } else if (key == "grad_scale_lambda") {
      plan.grad_scale_lambda = parse_double(key, value);
      FMS_CHECK_MSG(plan.grad_scale_lambda > 0.0,
                    "grad_scale_lambda must be > 0");
    } else if (key == "collude") {
      plan.collude_fraction = parse_prob(key, value);
    } else if (key == "collude_scale") {
      plan.collude_scale = parse_double(key, value);
      FMS_CHECK_MSG(plan.collude_scale > 0.0, "collude_scale must be > 0");
    } else if (key == "reward_attack") {
      plan.reward_attack_fraction = parse_prob(key, value);
    } else if (key == "reward_attack_delta") {
      plan.reward_attack_delta = parse_double(key, value);
      FMS_CHECK_MSG(plan.reward_attack_delta >= -1.0 &&
                        plan.reward_attack_delta <= 1.0,
                    "reward_attack_delta must be in [-1, 1]");
    } else if (key == "disk_eio") {
      plan.disk_eio_p = parse_prob(key, value);
    } else if (key == "disk_short") {
      plan.disk_short_p = parse_prob(key, value);
    } else if (key == "disk_corrupt") {
      plan.disk_corrupt_p = parse_prob(key, value);
    } else if (key == "disk_corrupt_bits") {
      plan.disk_corrupt_bits = static_cast<int>(parse_double(key, value));
      FMS_CHECK_MSG(plan.disk_corrupt_bits >= 1,
                    "disk_corrupt_bits must be >= 1");
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_double(key, value));
    } else {
      throw CheckError("unknown fault-plan key '" + key + "'");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "crash=" << crash_fraction << ",crash_round=" << crash_round
     << ",crash_spread=" << crash_spread << ",dropout=" << dropout_p
     << ",dropout_rounds=" << dropout_rounds << ",link=" << link_failure_p
     << ",uplink=" << uplink_failure_p << ",backoff_jitter=" << backoff_jitter
     << ",collapse=" << collapse_p << ",collapse_factor=" << collapse_factor
     << ",corrupt=" << corrupt_p << ",corrupt_bits=" << corrupt_bits
     << ",divergent=" << divergent_fraction << ",divergent_p=" << divergent_p
     << ",sign_flip=" << sign_flip_fraction
     << ",sign_flip_lambda=" << sign_flip_lambda
     << ",grad_scale=" << grad_scale_fraction
     << ",grad_scale_lambda=" << grad_scale_lambda
     << ",collude=" << collude_fraction << ",collude_scale=" << collude_scale
     << ",reward_attack=" << reward_attack_fraction
     << ",reward_attack_delta=" << reward_attack_delta
     << ",disk_eio=" << disk_eio_p << ",disk_short=" << disk_short_p
     << ",disk_corrupt=" << disk_corrupt_p
     << ",disk_corrupt_bits=" << disk_corrupt_bits << ",seed=" << seed;
  return os.str();
}

FaultInjector::FaultInjector(const FaultPlan& plan, int num_participants)
    : plan_(plan), num_participants_(num_participants) {
  FMS_CHECK_MSG(num_participants > 0, "injector needs participants");
}

double FaultInjector::u01(std::uint64_t salt, std::uint64_t a,
                          std::uint64_t b) const {
  return to_u01(mix(plan_.seed, salt, a, b));
}

bool FaultInjector::is_crashed(int participant, int round) const {
  if (plan_.crash_fraction <= 0.0) return false;
  const auto p = static_cast<std::uint64_t>(participant);
  if (u01(kSaltCrashSelect, p, 0) >= plan_.crash_fraction) return false;
  const int at = plan_.crash_round +
                 static_cast<int>(u01(kSaltCrashRound, p, 0) *
                                  (plan_.crash_spread + 1));
  return round >= at;
}

bool FaultInjector::is_dropped_out(int participant, int round) const {
  if (plan_.dropout_p <= 0.0) return false;
  const auto p = static_cast<std::uint64_t>(participant);
  for (int r = round - plan_.dropout_rounds + 1; r <= round; ++r) {
    if (r < 0) continue;
    if (u01(kSaltDropout, p, static_cast<std::uint64_t>(r)) < plan_.dropout_p) {
      return true;
    }
  }
  return false;
}

LinkOutcome FaultInjector::link_outcome(int participant, int round,
                                        int max_retransmits,
                                        double backoff_s) const {
  LinkOutcome out;
  if (plan_.link_failure_p <= 0.0 && plan_.collapse_p <= 0.0) return out;
  const auto p = static_cast<std::uint64_t>(participant);
  const auto r = static_cast<std::uint64_t>(round);
  double backoff = backoff_s;
  for (int attempt = 0; attempt <= max_retransmits; ++attempt) {
    const std::uint64_t word = r * 64 + static_cast<std::uint64_t>(attempt);
    if (u01(kSaltLink, p, word) < plan_.link_failure_p) {
      if (attempt == max_retransmits) {
        out.delivered = false;
        return out;
      }
      ++out.retransmits;
      out.extra_seconds += backoff;
      backoff *= 2.0;  // exponential backoff between retries
      continue;
    }
    break;
  }
  if (plan_.collapse_p > 0.0 && u01(kSaltCollapse, p, r) < plan_.collapse_p) {
    out.bandwidth_scale = plan_.collapse_factor;
  }
  return out;
}

LinkOutcome FaultInjector::upload_outcome(int participant, int round,
                                          int max_retransmits,
                                          double backoff_s) const {
  LinkOutcome out;
  if (plan_.uplink_failure_p <= 0.0) return out;
  const auto p = static_cast<std::uint64_t>(participant);
  const auto r = static_cast<std::uint64_t>(round);
  double backoff = backoff_s;
  for (int attempt = 0; attempt <= max_retransmits; ++attempt) {
    const std::uint64_t word = r * 64 + static_cast<std::uint64_t>(attempt);
    if (u01(kSaltUplink, p, word) < plan_.uplink_failure_p) {
      if (attempt == max_retransmits) {
        out.delivered = false;
        return out;
      }
      ++out.retransmits;
      // Exponential backoff with deterministic seeded jitter: hashing
      // (participant, round, attempt) spreads colliding retries without
      // consuming any RNG stream the checkpoint would have to carry.
      const double jitter =
          plan_.backoff_jitter > 0.0
              ? 1.0 + plan_.backoff_jitter * u01(kSaltUplinkJitter, p, word)
              : 1.0;
      out.extra_seconds += backoff * jitter;
      backoff *= 2.0;
      continue;
    }
    break;
  }
  return out;
}

std::optional<FaultKind> FaultInjector::payload_fault(int participant,
                                                      int round) const {
  const auto p = static_cast<std::uint64_t>(participant);
  const auto r = static_cast<std::uint64_t>(round);
  if (plan_.divergent_fraction > 0.0 &&
      u01(kSaltDivergentSelect, p, 0) < plan_.divergent_fraction &&
      u01(kSaltDivergent, p, r) < plan_.divergent_p) {
    return FaultKind::kDivergent;
  }
  if (plan_.corrupt_p > 0.0 && u01(kSaltCorrupt, p, r) < plan_.corrupt_p) {
    return FaultKind::kCorruptPayload;
  }
  return std::nullopt;
}

std::optional<FaultKind> FaultInjector::byzantine_kind(
    int participant, int /*round*/) const {
  // Selection is persistent: a Byzantine client lies on every update it
  // sends (the round argument stays in the API so schedules could become
  // time-varying without touching call sites).
  const auto p = static_cast<std::uint64_t>(participant);
  if (plan_.sign_flip_fraction > 0.0 &&
      u01(kSaltSignFlip, p, 0) < plan_.sign_flip_fraction) {
    return FaultKind::kSignFlip;
  }
  if (plan_.grad_scale_fraction > 0.0 &&
      u01(kSaltGradScale, p, 0) < plan_.grad_scale_fraction) {
    return FaultKind::kGradScale;
  }
  if (plan_.collude_fraction > 0.0 &&
      u01(kSaltCollude, p, 0) < plan_.collude_fraction) {
    return FaultKind::kCollude;
  }
  if (plan_.reward_attack_fraction > 0.0 &&
      u01(kSaltRewardAttack, p, 0) < plan_.reward_attack_fraction) {
    return FaultKind::kRewardAttack;
  }
  return std::nullopt;
}

void FaultInjector::attack(UpdateMsg& upd, FaultKind kind, int /*participant*/,
                           int round) const {
  auto clamp01 = [](double r) {
    return static_cast<float>(std::min(1.0, std::max(0.0, r)));
  };
  switch (kind) {
    case FaultKind::kSignFlip:
      // Reverse-direction attack: honest reward, inverted (and optionally
      // amplified) gradient — turns the averaged step into ascent.
      for (float& g : upd.grads) {
        g = static_cast<float>(-plan_.sign_flip_lambda * g);
      }
      break;
    case FaultKind::kGradScale:
      for (float& g : upd.grads) {
        g = static_cast<float>(plan_.grad_scale_lambda * g);
      }
      break;
    case FaultKind::kCollude: {
      // Every colluder in a round replays the same pseudo-gradient stream
      // (keyed by round only), so the clones sit arbitrarily close to one
      // another — the schedule that stresses distance-based defenses.
      Rng rng(mix(plan_.seed, kSaltColludeStream,
                  static_cast<std::uint64_t>(round), 0));
      const auto scale = static_cast<float>(plan_.collude_scale);
      for (float& g : upd.grads) g = scale * rng.uniform(-1.0F, 1.0F);
      break;
    }
    case FaultKind::kRewardAttack:
      // Stays inside [0, 1] by design: this lie is invisible to update
      // screening and must be absorbed by reward winsorization or the
      // median baseline.
      upd.reward = clamp01(static_cast<double>(upd.reward) +
                           plan_.reward_attack_delta);
      break;
    default:
      break;
  }
}

void FaultInjector::corrupt(std::vector<float>& values, int participant,
                            int round) const {
  if (values.empty()) return;
  Rng rng(mix(plan_.seed, kSaltCorruptBits,
              static_cast<std::uint64_t>(participant),
              static_cast<std::uint64_t>(round)));
  for (int i = 0; i < plan_.corrupt_bits; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.randint(0, static_cast<int>(values.size()) - 1));
    const int bit = rng.randint(0, 31);
    std::uint32_t word;
    std::memcpy(&word, &values[idx], sizeof(word));
    word ^= (1U << bit);
    std::memcpy(&values[idx], &word, sizeof(word));
  }
}

DiskOutcome FaultInjector::disk_outcome(DiskOp op, std::uint64_t op_id) const {
  DiskOutcome out;
  if (!plan_.has_disk()) return out;
  const auto o = static_cast<std::uint64_t>(op);
  if (plan_.disk_eio_p > 0.0 && u01(kSaltDiskEio, o, op_id) < plan_.disk_eio_p) {
    out.eio = true;
  }
  if (plan_.disk_short_p > 0.0 &&
      u01(kSaltDiskShort, o, op_id) < plan_.disk_short_p) {
    out.short_write = true;
    out.keep_fraction = u01(kSaltDiskTear, o, op_id);
  }
  if (plan_.disk_corrupt_p > 0.0 &&
      u01(kSaltDiskCorrupt, o, op_id) < plan_.disk_corrupt_p) {
    out.corrupt = true;
  }
  return out;
}

void FaultInjector::corrupt_bytes(std::vector<std::uint8_t>& bytes,
                                  std::uint64_t op_id) const {
  if (bytes.empty()) return;
  Rng rng(mix(plan_.seed, kSaltDiskCorrupt, op_id, 1));
  for (int i = 0; i < plan_.disk_corrupt_bits; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.randint(0, static_cast<int>(bytes.size()) - 1));
    bytes[idx] ^= static_cast<std::uint8_t>(1U << rng.randint(0, 7));
  }
}

void FaultInjector::poison(UpdateMsg& upd, int participant, int round) const {
  const std::uint64_t mode = mix(plan_.seed, kSaltPoisonMode,
                                 static_cast<std::uint64_t>(participant),
                                 static_cast<std::uint64_t>(round)) %
                             3;
  switch (mode) {
    case 0:  // NaN gradients, NaN reward
      for (std::size_t i = 0; i < upd.grads.size(); i += 3) {
        upd.grads[i] = std::numeric_limits<float>::quiet_NaN();
      }
      upd.reward = std::numeric_limits<float>::quiet_NaN();
      break;
    case 1:  // Inf gradients, Inf loss
      for (std::size_t i = 0; i < upd.grads.size(); i += 3) {
        upd.grads[i] = std::numeric_limits<float>::infinity();
      }
      upd.loss = std::numeric_limits<float>::infinity();
      break;
    default:  // exploding but finite gradients, out-of-range reward
      for (float& g : upd.grads) g = g * 1e12F + 1e8F;
      upd.reward = 1e6F;
      break;
  }
}

namespace {

// Screening body; the public wrapper adds the trace hook so every early
// return records its verdict exactly once.
const char* screen_update_impl(const UpdateMsg& upd, float max_grad_norm) {
  if (!std::isfinite(upd.reward) || upd.reward < 0.0F || upd.reward > 1.0F) {
    return "reward_out_of_range";
  }
  if (!std::isfinite(upd.loss)) return "loss_not_finite";
  double sq = 0.0;
  for (const float g : upd.grads) {
    if (!std::isfinite(g)) return "grad_not_finite";
    sq += static_cast<double>(g) * g;
  }
  if (max_grad_norm > 0.0F &&
      sq > static_cast<double>(max_grad_norm) * max_grad_norm) {
    return "grad_norm_outlier";
  }
  return nullptr;
}

}  // namespace

const char* screen_update(const UpdateMsg& upd, float max_grad_norm) {
  const char* violation = screen_update_impl(upd, max_grad_norm);
  if (violation != nullptr && obs::tracing_enabled()) {
    // Causal screen event, keyed to the update's dispatch round so the
    // rejection joins the cohort's trace even when the update was stale.
    obs::TraceContext::instance().record(
        upd.participant, obs::Stage::kScreen, 0.0, 0.0, 0.0,
        std::string("rejected:") + violation, upd.round);
  }
  return violation;
}

}  // namespace fms
