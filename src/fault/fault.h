// Deterministic fault injection for the federated search substrate.
//
// The paper's setting — phones on 4G links running a shared search — fails
// in ways the benign simulator (src/sim, src/net) never produces: devices
// crash and never reply, links die mid-round, payloads arrive corrupted,
// and divergent clients emit NaN/Inf or exploding gradients. This module
// *schedules* those faults and the server loop (src/core/search.cpp)
// *defends* against them, so the robustness claims are tested rather than
// assumed.
//
// Every decision is a pure function of (plan seed, participant, round,
// attempt): the injector carries no evolving RNG state. That makes fault
// campaigns reproducible byte-for-byte, independent of query order, and —
// critically for crash-recovery — means a resumed search re-derives the
// exact same fault schedule without checkpointing injector state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/fed/messages.h"

namespace fms {

enum class FaultKind {
  kCrash,         // participant goes dark permanently (no reply ever)
  kDropout,       // participant offline for a few rounds, then recovers
  kLinkFailure,   // download attempt fails; retransmit may recover it
  kBandwidthCollapse,  // link survives but at a fraction of its bandwidth
  kCorruptPayload,     // bit flips in SubmodelMsg / UpdateMsg buffers
  kDivergent,     // client emits NaN/Inf or exploding gradients + rewards
  // Byzantine adversaries: clients that lie, not crash. Unlike kDivergent
  // their updates are crafted to *pass* update screening (finite values,
  // rewards in [0, 1]) — only a robust estimator (src/agg) or a robust
  // reward channel bounds their influence.
  kSignFlip,      // gradient g -> -lambda * g (reverse-direction attack)
  kGradScale,     // gradient g -> lambda * g (amplification attack)
  kCollude,       // colluders all submit the same bounded fake gradient
  kRewardAttack,  // reward shifted by +/- delta, clamped into [0, 1]
};

const char* fault_kind_name(FaultKind k);

// Declarative fault schedule. All probabilities are per-decision (per
// participant-round or per transmission attempt); fractions select a fixed
// deterministic subset of the fleet. An all-zero plan injects nothing and
// the search takes its fault-free fast path.
struct FaultPlan {
  double crash_fraction = 0.0;   // fraction of participants that crash...
  int crash_round = 0;           // ...at a round drawn from
  int crash_spread = 0;          // [crash_round, crash_round + crash_spread]
  double dropout_p = 0.0;        // P(transient dropout starts) per round
  int dropout_rounds = 2;        // rounds offline before recovery
  double link_failure_p = 0.0;   // P(a download attempt fails)
  double uplink_failure_p = 0.0; // P(an upload attempt fails)
  // Deterministic seeded jitter on the upload retransmit backoff: the
  // n-th retry waits backoff * 2^n * (1 + backoff_jitter * u) with u a
  // per-(participant, round, attempt) hash draw — decorrelates retry
  // storms without an RNG stream to checkpoint.
  double backoff_jitter = 0.0;   // in [0, 1]
  double collapse_p = 0.0;       // P(bandwidth collapses) per round
  double collapse_factor = 0.05; // surviving bandwidth fraction
  double corrupt_p = 0.0;        // P(payload bit flips) per update
  int corrupt_bits = 8;          // flipped bits per corrupted payload
  double divergent_fraction = 0.0;  // fraction of clients that diverge...
  double divergent_p = 0.5;         // ...poisoning each update with this P
  // --- Byzantine adversaries (persistent once selected; every update the
  // selected client sends is attacked, which is the strongest and the
  // easiest-to-reason-about schedule) ---
  double sign_flip_fraction = 0.0;  // fraction running the sign-flip attack
  double sign_flip_lambda = 1.0;    // g -> -lambda * g
  double grad_scale_fraction = 0.0; // fraction running the scaling attack
  double grad_scale_lambda = 10.0;  // g -> lambda * g
  double collude_fraction = 0.0;    // fraction submitting cloned gradients
  double collude_scale = 5.0;       // magnitude of the cloned direction
  double reward_attack_fraction = 0.0;  // fraction lying about accuracy
  double reward_attack_delta = 0.5;     // signed shift; < 0 deflates
  // --- disk faults (durability path: journal appends, checkpoint and
  // genotype writes). Per-operation probabilities keyed by (op, round);
  // the writers in src/core consult these directly, so the round loop's
  // fault-free fast path — and the search trajectory — is untouched by a
  // disk-only plan. ---
  double disk_eio_p = 0.0;      // P(transient EIO on open/flush; one retry
                                // then the write lands)
  double disk_short_p = 0.0;    // P(short write: only a prefix of the
                                // buffer reaches disk — a torn tail)
  double disk_corrupt_p = 0.0;  // P(buffer bit-flips between CRC stamping
                                // and the write — a poisoned file)
  int disk_corrupt_bits = 32;   // flipped bits per corrupted write
  std::uint64_t seed = 0x7a0175;

  // True when no network/payload/Byzantine family is scheduled — the
  // round loop's fast path. Disk faults are deliberately excluded: they
  // never touch the search trajectory, only the durability writers, which
  // check has_disk() themselves.
  bool empty() const;
  // True when any Byzantine family is scheduled.
  bool has_byzantine() const;
  // True when any disk-fault family is scheduled.
  bool has_disk() const;

  // Reference campaign of the acceptance bar: 30% crashed participants,
  // corrupted payloads, and NaN/exploding-gradient clients.
  static FaultPlan severe(std::uint64_t seed = 0x7a0175);

  // Parses "key=value" pairs separated by commas, e.g.
  //   "crash=0.3,crash_round=5,corrupt=0.2,divergent=0.3,link=0.1,seed=7"
  // Keys: crash, crash_round, crash_spread, dropout, dropout_rounds, link,
  // uplink, backoff_jitter, collapse, collapse_factor, corrupt,
  // corrupt_bits, divergent, divergent_p, sign_flip, sign_flip_lambda,
  // grad_scale, grad_scale_lambda, collude, collude_scale, reward_attack,
  // reward_attack_delta, disk_eio, disk_short, disk_corrupt,
  // disk_corrupt_bits, seed. Throws CheckError on unknown keys or bad
  // values.
  static FaultPlan parse(const std::string& spec);
  std::string to_string() const;
};

// Durable-write operations the disk-fault channel can strike. The enum
// value is a salt-stream discriminator: the same (op_id = round) draws
// independent outcomes for the journal append and the checkpoint write
// of the same round.
enum class DiskOp : std::uint64_t {
  kJournalAppend = 1,
  kCheckpointWrite = 2,
  kGenotypeWrite = 3,
};

// What the disk does to one durable write. At most the writer observes:
// a transient EIO (retry succeeds), a short write (a prefix of the buffer
// lands — keep_fraction in [0, 1)), or silent corruption (bits flip after
// the CRC was stamped, so the read path must catch it).
struct DiskOutcome {
  bool eio = false;
  bool short_write = false;
  double keep_fraction = 1.0;  // meaningful only when short_write
  bool corrupt = false;
  bool faulted() const { return eio || short_write || corrupt; }
};

// Outcome of the download-link simulation for one participant-round,
// including bounded retransmit-with-backoff (defense lives here so the
// latency model and the search loop agree on attempt accounting).
struct LinkOutcome {
  bool delivered = true;       // false: every attempt failed, link is dead
  int retransmits = 0;         // retries beyond the first attempt
  double extra_seconds = 0.0;  // accumulated backoff delay
  double bandwidth_scale = 1.0;  // collapse factor on the delivering attempt
  bool faulted() const {
    return !delivered || retransmits > 0 || bandwidth_scale < 1.0;
  }
};

// Ledger of injected faults and their resolutions. The invariant the
// acceptance test checks: every injected fault is accounted for exactly
// once, i.e. injected_total() == rejected + dropped + recovered.
struct FaultStats {
  std::uint64_t injected_crash = 0;
  std::uint64_t injected_dropout = 0;
  std::uint64_t injected_link = 0;
  std::uint64_t injected_uplink = 0;
  std::uint64_t injected_corrupt = 0;
  std::uint64_t injected_divergent = 0;
  std::uint64_t injected_sign_flip = 0;
  std::uint64_t injected_grad_scale = 0;
  std::uint64_t injected_collude = 0;
  std::uint64_t injected_reward = 0;
  std::uint64_t rejected = 0;   // caught by update screening
  std::uint64_t dropped = 0;    // update never applied (offline, dead link,
                                // staleness overflow, evicted snapshot)
  std::uint64_t recovered = 0;  // retransmit succeeded / fault absorbed
                                // (for Byzantine updates: reached the
                                // aggregator, whose estimator bounds them)
  std::uint64_t retransmits = 0;  // individual retries (not in the equation)

  std::uint64_t injected_byzantine() const {
    return injected_sign_flip + injected_grad_scale + injected_collude +
           injected_reward;
  }
  std::uint64_t injected_total() const {
    return injected_crash + injected_dropout + injected_link +
           injected_uplink + injected_corrupt + injected_divergent +
           injected_byzantine();
  }
  std::uint64_t accounted() const { return rejected + dropped + recovered; }
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int num_participants);

  const FaultPlan& plan() const { return plan_; }
  bool active() const { return !plan_.empty(); }

  // --- availability ---
  bool is_crashed(int participant, int round) const;
  bool is_dropped_out(int participant, int round) const;
  bool is_offline(int participant, int round) const {
    return is_crashed(participant, round) || is_dropped_out(participant, round);
  }

  // --- link faults + retransmit defense ---
  // Simulates up to 1 + max_retransmits download attempts; each retry
  // doubles the backoff (backoff_s, 2*backoff_s, ...).
  LinkOutcome link_outcome(int participant, int round, int max_retransmits,
                           double backoff_s) const;
  // Upload-direction counterpart: its own decision stream (so download and
  // upload schedules stay independent), seeded jitter on the backoff, and
  // no bandwidth collapse (collapse models the shared physical link and is
  // already applied on the download leg).
  LinkOutcome upload_outcome(int participant, int round, int max_retransmits,
                             double backoff_s) const;

  // --- payload faults (at most one per update) ---
  // kDivergent wins over kCorruptPayload when both fire.
  std::optional<FaultKind> payload_fault(int participant, int round) const;
  // --- Byzantine adversaries ---
  // The attack this participant runs (persistent selection; precedence
  // sign-flip > grad-scale > collude > reward when a client is selected
  // by several families). When payload_fault also fires for the same
  // update, the payload fault wins: the attack is not applied that round
  // (the update is already destroyed) and the payload fault takes the
  // exactly-once accounting slot.
  std::optional<FaultKind> byzantine_kind(int participant, int round) const;
  // Applies the given Byzantine attack in place. Gradients stay finite
  // and the reward stays in [0, 1], so the result passes screening by
  // construction.
  void attack(UpdateMsg& upd, FaultKind kind, int participant,
              int round) const;
  // Flips plan.corrupt_bits random bits across the buffer, deterministically
  // per (participant, round).
  void corrupt(std::vector<float>& values, int participant, int round) const;
  // Poisons an update the way a divergent client would: NaN / Inf /
  // exploding gradients and an out-of-range or non-finite reward.
  void poison(UpdateMsg& upd, int participant, int round) const;

  // --- disk faults (durability path) ---
  // The fate of one durable write, a pure function of (plan seed, op,
  // op_id) like every other decision here — a recovered run re-derives
  // the same disk-fault schedule it crashed under.
  DiskOutcome disk_outcome(DiskOp op, std::uint64_t op_id) const;
  // Flips plan.disk_corrupt_bits random bits across the buffer,
  // deterministically per op_id. Called by the writers after the CRC is
  // stamped, so the corruption is detectable on read.
  void corrupt_bytes(std::vector<std::uint8_t>& bytes,
                     std::uint64_t op_id) const;

 private:
  double u01(std::uint64_t salt, std::uint64_t a, std::uint64_t b) const;

  FaultPlan plan_;
  int num_participants_;
};

// Server-side update screening (defense): accepts only updates whose
// reward is a finite training accuracy in [0, 1], whose loss is finite,
// and whose gradient is finite with L2 norm at most max_grad_norm
// (<= 0 disables the norm bound). Returns nullptr when the update is
// clean, otherwise a static string naming the first violation.
const char* screen_update(const UpdateMsg& upd, float max_grad_norm);

}  // namespace fms
