// Persistent per-client registry: the server-side record of every
// participant that survives across membership changes.
//
// The churn model (src/sim/churn.h) decides *who is live*; the registry
// remembers *who everyone is* — device profile, membership transitions,
// latency momentum, and staleness history — so a client that leaves and
// rejoins mid-search is the same client, not a stranger. This is also the
// registry groundwork the cohort-sampling roadmap item needs: a compact
// per-client state store the round loop can consult without holding any
// participant's dense update.
//
// The registry is purely observational bookkeeping: it draws no RNG and
// contributes no float op to the search trajectory, so keeping it always
// on preserves the bit-identity contracts of churn-free runs. Its state
// rides in the checkpoint runtime blob so a resumed search continues the
// same membership history.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/churn.h"
#include "src/sim/devices.h"

namespace fms {

class ByteReader;  // src/common/serialize.h
class ByteWriter;

struct ClientInfo {
  int id = 0;
  // Hardware profile (cycled over the known device set, matching the
  // network-environment cycling in FederatedSearch). Re-derived from the
  // id, never serialized.
  DeviceProfile device;
  bool live = false;           // membership as of the last begin_round
  bool ever_seen = false;      // has been live at least once
  int first_live_round = -1;
  int last_live_round = -1;
  int joins = 0;    // absent -> live transitions after first appearance
  int leaves = 0;   // live -> absent transitions
  int rounds_live = 0;
  int rounds_absent = 0;
  std::uint64_t dispatched = 0;      // sub-models shipped to this client
  std::uint64_t updates_applied = 0;
  std::uint64_t stale_updates = 0;   // applied with tau > 0
  std::uint64_t tau_sum = 0;         // staleness history (sum over applied)
  int max_tau = 0;
  // Latency momentum: EMA of the client's modeled round time, the per-
  // client signal cohort selection and capacity planning key on.
  double latency_ema = 0.0;
  bool latency_ema_set = false;
};

class ClientRegistry {
 public:
  // One slot per participant; device profiles cycle over the known set.
  explicit ClientRegistry(int num_participants = 0);

  int size() const { return static_cast<int>(clients_.size()); }
  const ClientInfo& info(int client) const;
  const std::vector<ClientInfo>& clients() const { return clients_; }

  // Membership delta of one round, as seen by the round loop.
  struct RoundMembership {
    int live = 0;
    int joined = 0;  // absent -> live this round (rejoins + late joins)
    int left = 0;    // live -> absent this round
    std::vector<char> live_mask;  // size() entries
    // Live now, absent last round, and seen before: the clients whose
    // first update back is treated as stale by the soft-sync path.
    std::vector<char> rejoined;
  };

  // Advances membership to `round` under the churn schedule and returns
  // the delta. The initial live set is a baseline, not a join wave: a
  // churn-free run reports joined == left == 0 every round.
  RoundMembership begin_round(const ChurnModel& churn, int round);

  // Bookkeeping hooks (observational only).
  void note_dispatch(int client, double latency_s);
  void note_applied(int client, int tau);

  std::uint64_t total_joins() const;
  std::uint64_t total_leaves() const;

  void serialize(ByteWriter& w) const;
  void restore(ByteReader& r);

 private:
  std::vector<ClientInfo> clients_;
  bool initialized_ = false;  // first begin_round seeds the baseline
};

}  // namespace fms
