// A federated participant for the model-search protocol.
//
// Each participant owns a local data shard and a supernet-shaped parameter
// replica. On receiving a sub-model message it installs the shipped weights
// (only the masked subset — everything else in the replica is never
// touched by a masked forward), trains one batch, and reports the weight
// gradients plus the training accuracy as the RL reward — all through the
// single backward pass of Algorithm 1's Participant Update.
#pragma once

#include <memory>

#include "src/common/config.h"
#include "src/data/dataset.h"
#include "src/fed/messages.h"

namespace fms {

class SearchParticipant {
 public:
  SearchParticipant(int id, Shard shard, const SupernetConfig& cfg,
                    const AugmentConfig& augment, int batch_size,
                    Rng rng);

  int id() const { return id_; }
  int local_data_size() const { return shard_.size(); }

  // Algorithm 1, lines 37-42.
  UpdateMsg train_step(const SubmodelMsg& msg);

  // Crash-recovery state: the local RNG (batch sampling + augmentation)
  // and the shard's epoch cursor. Replica weights need no persistence —
  // every masked parameter is re-shipped each round and BatchNorm trains
  // on batch statistics.
  std::string rng_state() const { return rng_.save_state(); }
  void set_rng_state(const std::string& state) { rng_.load_state(state); }
  const Shard& shard() const { return shard_; }
  Shard& shard() { return shard_; }

 private:
  int id_;
  Shard shard_;
  AugmentConfig augment_;
  int batch_size_;
  Rng rng_;
  std::unique_ptr<Supernet> replica_;
};

}  // namespace fms
