#include "src/fed/compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/common/serialize.h"

namespace fms {
namespace {

constexpr std::size_t kInt8ChunkSize = 256;  // values per quantization chunk

// --- IEEE binary16 conversion (round-to-nearest) ---
std::uint16_t float_to_half(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, 4);
  const std::uint32_t sign = (x >> 16) & 0x8000U;
  std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mant = x & 0x7FFFFFU;
  if (exp <= 0) {
    // Underflow to signed zero (denormals flushed — fine for weights).
    return static_cast<std::uint16_t>(sign);
  }
  if (exp >= 31) {
    // Overflow to max finite magnitude (safer than inf for training).
    return static_cast<std::uint16_t>(sign | 0x7BFFU);
  }
  // Round to nearest even on the dropped 13 bits.
  const std::uint32_t rounded = mant + 0x0FFFU + ((mant >> 13) & 1U);
  if (rounded & 0x800000U) {
    ++exp;
    if (exp >= 31) return static_cast<std::uint16_t>(sign | 0x7BFFU);
    return static_cast<std::uint16_t>(sign |
                                      (static_cast<std::uint32_t>(exp) << 10));
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exp) << 10) | (rounded >> 13));
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (h & 0x8000U) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1FU;
  const std::uint32_t mant = h & 0x3FFU;
  std::uint32_t x;
  if (exp == 0) {
    x = sign;  // flushed denormals
  } else if (exp == 31) {
    x = sign | 0x7F800000U | (mant << 13);
  } else {
    x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, 4);
  return f;
}

}  // namespace

const char* codec_name(Codec c) {
  switch (c) {
    case Codec::kFloat32: return "float32";
    case Codec::kFloat16: return "float16";
    case Codec::kInt8: return "int8";
  }
  return "unknown";
}

std::vector<std::uint8_t> codec_encode(std::span<const float> values,
                                       Codec codec) {
  ByteWriter w;
  w.write(static_cast<std::uint8_t>(codec));
  w.write(static_cast<std::uint64_t>(values.size()));
  switch (codec) {
    case Codec::kFloat32: {
      for (float v : values) w.write(v);
      break;
    }
    case Codec::kFloat16: {
      for (float v : values) w.write(float_to_half(v));
      break;
    }
    case Codec::kInt8: {
      for (std::size_t start = 0; start < values.size();
           start += kInt8ChunkSize) {
        const std::size_t end =
            std::min(values.size(), start + kInt8ChunkSize);
        float lo = values[start], hi = values[start];
        for (std::size_t i = start; i < end; ++i) {
          lo = std::min(lo, values[i]);
          hi = std::max(hi, values[i]);
        }
        const float scale = (hi - lo) > 0.0F ? (hi - lo) / 255.0F : 1.0F;
        w.write(lo);
        w.write(scale);
        for (std::size_t i = start; i < end; ++i) {
          const float q = std::round((values[i] - lo) / scale);
          w.write(static_cast<std::uint8_t>(
              std::clamp(q, 0.0F, 255.0F)));
        }
      }
      break;
    }
  }
  return w.take();
}

std::vector<float> codec_decode(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const auto codec = static_cast<Codec>(r.read<std::uint8_t>());
  const auto n = static_cast<std::size_t>(r.read<std::uint64_t>());
  std::vector<float> out;
  out.reserve(n);
  switch (codec) {
    case Codec::kFloat32: {
      for (std::size_t i = 0; i < n; ++i) out.push_back(r.read<float>());
      break;
    }
    case Codec::kFloat16: {
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(half_to_float(r.read<std::uint16_t>()));
      }
      break;
    }
    case Codec::kInt8: {
      std::size_t remaining = n;
      while (remaining > 0) {
        const std::size_t chunk = std::min(remaining, kInt8ChunkSize);
        const float lo = r.read<float>();
        const float scale = r.read<float>();
        for (std::size_t i = 0; i < chunk; ++i) {
          out.push_back(lo + scale * static_cast<float>(r.read<std::uint8_t>()));
        }
        remaining -= chunk;
      }
      break;
    }
    default:
      FMS_CHECK_MSG(false, "corrupt codec tag");
  }
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in compressed payload");
  return out;
}

std::size_t codec_encoded_bytes(std::size_t n, Codec codec) {
  const std::size_t header = 1 + 8;
  switch (codec) {
    case Codec::kFloat32:
      return header + 4 * n;
    case Codec::kFloat16:
      return header + 2 * n;
    case Codec::kInt8: {
      const std::size_t chunks = (n + kInt8ChunkSize - 1) / kInt8ChunkSize;
      return header + chunks * 8 + n;
    }
  }
  return 0;
}

std::vector<float> codec_round_trip(std::span<const float> values,
                                    Codec codec) {
  if (codec == Codec::kFloat32) {
    return std::vector<float>(values.begin(), values.end());
  }
  return codec_decode(codec_encode(values, codec));
}

}  // namespace fms
