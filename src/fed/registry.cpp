#include "src/fed/registry.h"

#include "src/common/check.h"
#include "src/common/serialize.h"

namespace fms {
namespace {

constexpr double kLatencyEmaBeta = 0.8;  // weight on the running estimate

DeviceProfile device_for(int id) {
  // Heterogeneous fleet groundwork: clients cycle through the known
  // device set the same way they cycle through network environments.
  return id % 2 == 0 ? gtx_1080ti() : jetson_tx2();
}

}  // namespace

ClientRegistry::ClientRegistry(int num_participants) {
  clients_.resize(static_cast<std::size_t>(num_participants));
  for (int i = 0; i < num_participants; ++i) {
    clients_[static_cast<std::size_t>(i)].id = i;
    clients_[static_cast<std::size_t>(i)].device = device_for(i);
  }
}

const ClientInfo& ClientRegistry::info(int client) const {
  FMS_CHECK_MSG(client >= 0 && client < size(),
                "registry has no client " << client);
  return clients_[static_cast<std::size_t>(client)];
}

ClientRegistry::RoundMembership ClientRegistry::begin_round(
    const ChurnModel& churn, int round) {
  RoundMembership mem;
  mem.live_mask.assign(clients_.size(), 0);
  mem.rejoined.assign(clients_.size(), 0);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientInfo& c = clients_[i];
    const bool now = churn.is_live(c.id, round);
    if (now) {
      mem.live_mask[i] = 1;
      ++mem.live;
      ++c.rounds_live;
      if (!c.live) {
        if (initialized_ && c.ever_seen) {
          // A true rejoin: this client's first update back trained
          // against the state it last saw and is treated as stale.
          mem.rejoined[i] = 1;
        }
        if (initialized_) ++mem.joined;
        if (c.ever_seen) ++c.joins;
      }
      if (!c.ever_seen) {
        c.ever_seen = true;
        c.first_live_round = round;
      }
      c.last_live_round = round;
    } else {
      ++c.rounds_absent;
      if (c.live) {
        ++mem.left;
        ++c.leaves;
      }
    }
    c.live = now;
  }
  initialized_ = true;
  return mem;
}

void ClientRegistry::note_dispatch(int client, double latency_s) {
  ClientInfo& c = clients_[static_cast<std::size_t>(client)];
  ++c.dispatched;
  if (c.latency_ema_set) {
    c.latency_ema =
        kLatencyEmaBeta * c.latency_ema + (1.0 - kLatencyEmaBeta) * latency_s;
  } else {
    c.latency_ema = latency_s;
    c.latency_ema_set = true;
  }
}

void ClientRegistry::note_applied(int client, int tau) {
  ClientInfo& c = clients_[static_cast<std::size_t>(client)];
  ++c.updates_applied;
  if (tau > 0) {
    ++c.stale_updates;
    c.tau_sum += static_cast<std::uint64_t>(tau);
  }
  if (tau > c.max_tau) c.max_tau = tau;
}

std::uint64_t ClientRegistry::total_joins() const {
  std::uint64_t n = 0;
  for (const ClientInfo& c : clients_) n += static_cast<std::uint64_t>(c.joins);
  return n;
}

std::uint64_t ClientRegistry::total_leaves() const {
  std::uint64_t n = 0;
  for (const ClientInfo& c : clients_) {
    n += static_cast<std::uint64_t>(c.leaves);
  }
  return n;
}

void ClientRegistry::serialize(ByteWriter& w) const {
  w.write(static_cast<std::uint8_t>(initialized_ ? 1 : 0));
  w.write(static_cast<std::uint32_t>(clients_.size()));
  for (const ClientInfo& c : clients_) {
    w.write(static_cast<std::uint8_t>(c.live ? 1 : 0));
    w.write(static_cast<std::uint8_t>(c.ever_seen ? 1 : 0));
    w.write(c.first_live_round);
    w.write(c.last_live_round);
    w.write(c.joins);
    w.write(c.leaves);
    w.write(c.rounds_live);
    w.write(c.rounds_absent);
    w.write(c.dispatched);
    w.write(c.updates_applied);
    w.write(c.stale_updates);
    w.write(c.tau_sum);
    w.write(c.max_tau);
    w.write(c.latency_ema);
    w.write(static_cast<std::uint8_t>(c.latency_ema_set ? 1 : 0));
  }
}

void ClientRegistry::restore(ByteReader& r) {
  initialized_ = r.read<std::uint8_t>() != 0;
  const auto n = r.read<std::uint32_t>();
  FMS_CHECK_MSG(n == clients_.size(),
                "checkpoint registry has " << n << " clients, search has "
                                           << clients_.size());
  for (ClientInfo& c : clients_) {
    c.live = r.read<std::uint8_t>() != 0;
    c.ever_seen = r.read<std::uint8_t>() != 0;
    c.first_live_round = r.read<int>();
    c.last_live_round = r.read<int>();
    c.joins = r.read<int>();
    c.leaves = r.read<int>();
    c.rounds_live = r.read<int>();
    c.rounds_absent = r.read<int>();
    c.dispatched = r.read<std::uint64_t>();
    c.updates_applied = r.read<std::uint64_t>();
    c.stale_updates = r.read<std::uint64_t>();
    c.tau_sum = r.read<std::uint64_t>();
    c.max_tau = r.read<int>();
    c.latency_ema = r.read<double>();
    c.latency_ema_set = r.read<std::uint8_t>() != 0;
  }
}

}  // namespace fms
