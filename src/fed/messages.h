// Wire messages between server and participants.
//
// Payloads are actually serialized so the efficiency numbers (sub-model vs
// supernet bytes, Table V / Fig. 7) come from measured message sizes, not
// estimates. In deployment these would travel over RPC; here they travel
// through the in-process network simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/serialize.h"
#include "src/nas/supernet.h"

namespace fms {

// Server -> participant: a pruned sub-model (mask + selected weights).
struct SubmodelMsg {
  int round = 0;
  Mask mask;
  std::vector<float> values;  // masked parameter subset, flat

  std::vector<std::uint8_t> serialize() const;
  static SubmodelMsg deserialize(const std::vector<std::uint8_t>& bytes);
  std::size_t byte_size() const;
};

// Participant -> server: reward and sub-model weight gradients
// (Algorithm 1, Participant Update).
struct UpdateMsg {
  int round = 0;           // the round the sub-model was sampled in (t')
  int participant = 0;
  float reward = 0.0F;     // training accuracy R(theta_k)
  float loss = 0.0F;
  Mask mask;               // echoed so the server can scatter the gradient
  std::vector<float> grads;

  std::vector<std::uint8_t> serialize() const;
  static UpdateMsg deserialize(const std::vector<std::uint8_t>& bytes);
  std::size_t byte_size() const;
};

}  // namespace fms
