#include "src/fed/participant.h"

#include "src/obs/span.h"
#include "src/tensor/ops.h"

namespace fms {

SearchParticipant::SearchParticipant(int id, Shard shard,
                                     const SupernetConfig& cfg,
                                     const AugmentConfig& augment,
                                     int batch_size, Rng rng)
    : id_(id),
      shard_(std::move(shard)),
      augment_(augment),
      batch_size_(batch_size),
      rng_(rng) {
  // The replica's init values are irrelevant: every masked parameter is
  // overwritten by the incoming message before use.
  Rng init_rng = rng_.fork();
  replica_ = std::make_unique<Supernet>(cfg, init_rng);
}

UpdateMsg SearchParticipant::train_step(const SubmodelMsg& msg) {
  FMS_SPAN("local_train");
  const auto ids = replica_->masked_param_ids(msg.mask);
  replica_->scatter_values(ids, msg.values);
  replica_->zero_grad();

  Dataset::Batch batch = shard_.next_batch(batch_size_, &augment_, rng_);
  Tensor logits = replica_->forward(batch.x, msg.mask, /*train=*/true);
  CrossEntropyResult ce = cross_entropy(logits, batch.y);
  replica_->backward(ce.grad_logits);

  UpdateMsg out;
  out.round = msg.round;
  out.participant = id_;
  out.reward = ce.accuracy;
  out.loss = ce.loss;
  out.mask = msg.mask;
  out.grads = replica_->gather_grads(ids);
  return out;
}

}  // namespace fms
