#include "src/fed/messages.h"

#include "src/obs/profile.h"
#include "src/obs/work.h"

namespace fms {
namespace {

void write_mask(ByteWriter& w, const Mask& m) {
  std::vector<std::int8_t> normal(m.normal.begin(), m.normal.end());
  std::vector<std::int8_t> reduce(m.reduce.begin(), m.reduce.end());
  w.write_vector(normal);
  w.write_vector(reduce);
}

Mask read_mask(ByteReader& r) {
  Mask m;
  auto normal = r.read_vector<std::int8_t>();
  auto reduce = r.read_vector<std::int8_t>();
  m.normal.assign(normal.begin(), normal.end());
  m.reduce.assign(reduce.begin(), reduce.end());
  return m;
}

}  // namespace

std::vector<std::uint8_t> SubmodelMsg::serialize() const {
  FMS_PROFILE_ZONE("fed.encode");
  ByteWriter w;
  w.write(round);
  write_mask(w, mask);
  w.write_vector(values);
  std::vector<std::uint8_t> out = w.take();
  FMS_WORK("fed.encode", obs::codec_cost(out.size()));
  return out;
}

SubmodelMsg SubmodelMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  FMS_PROFILE_ZONE("fed.decode");
  FMS_WORK("fed.decode", obs::codec_cost(bytes.size()));
  ByteReader r(bytes);
  SubmodelMsg msg;
  msg.round = r.read<int>();
  msg.mask = read_mask(r);
  msg.values = r.read_vector<float>();
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in SubmodelMsg");
  return msg;
}

std::size_t SubmodelMsg::byte_size() const { return serialize().size(); }

std::vector<std::uint8_t> UpdateMsg::serialize() const {
  FMS_PROFILE_ZONE("fed.encode");
  ByteWriter w;
  w.write(round);
  w.write(participant);
  w.write(reward);
  w.write(loss);
  write_mask(w, mask);
  w.write_vector(grads);
  std::vector<std::uint8_t> out = w.take();
  FMS_WORK("fed.encode", obs::codec_cost(out.size()));
  return out;
}

UpdateMsg UpdateMsg::deserialize(const std::vector<std::uint8_t>& bytes) {
  FMS_PROFILE_ZONE("fed.decode");
  FMS_WORK("fed.decode", obs::codec_cost(bytes.size()));
  ByteReader r(bytes);
  UpdateMsg msg;
  msg.round = r.read<int>();
  msg.participant = r.read<int>();
  msg.reward = r.read<float>();
  msg.loss = r.read<float>();
  msg.mask = read_mask(r);
  msg.grads = r.read_vector<float>();
  FMS_CHECK_MSG(r.exhausted(), "trailing bytes in UpdateMsg");
  return msg;
}

std::size_t UpdateMsg::byte_size() const { return serialize().size(); }

}  // namespace fms
