// Lossy payload compression for federated messages.
//
// The paper's efficiency argument is about *what* is shipped (sub-models
// instead of the supernet); an orthogonal production lever is *how* it is
// shipped. This module provides three codecs for float payloads:
//
//   kFloat32 — raw (lossless, 4 B/value; the default everywhere),
//   kFloat16 — IEEE binary16 (2 B/value, ~1e-3 relative error),
//   kInt8    — per-chunk affine quantization (1 B/value + per-chunk scale).
//
// FederatedSearch can apply a codec to both the sub-model download and
// the gradient upload (SearchOptions::codec); the quantization noise then
// flows through training exactly as it would in a real deployment, and
// bench_ablation_compression measures the bytes-vs-accuracy trade-off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fms {

enum class Codec { kFloat32, kFloat16, kInt8 };

const char* codec_name(Codec c);

// Encodes values; the buffer is self-describing (codec tag + count).
std::vector<std::uint8_t> codec_encode(std::span<const float> values,
                                       Codec codec);
// Decodes a buffer produced by codec_encode.
std::vector<float> codec_decode(const std::vector<std::uint8_t>& bytes);

// Size in bytes that encoding n values with the codec produces.
std::size_t codec_encoded_bytes(std::size_t n, Codec codec);

// Convenience: one lossy round-trip (what the receiver actually sees).
std::vector<float> codec_round_trip(std::span<const float> values,
                                    Codec codec);

}  // namespace fms
