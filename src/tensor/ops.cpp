#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fms {

int conv_out_size(int in, int kernel, int stride, int padding, int dilation) {
  int eff = dilation * (kernel - 1) + 1;
  int out = (in + 2 * padding - eff) / stride + 1;
  FMS_CHECK_MSG(out > 0, "conv output collapsed to zero");
  return out;
}

Tensor conv2d_forward(const Tensor& x, const Tensor& w,
                      const Conv2dSpec& spec) {
  FMS_CHECK(x.ndim() == 4 && w.ndim() == 4);
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int cout = w.dim(0), cin_g = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  const int g = spec.groups;
  FMS_CHECK_MSG(cin % g == 0 && cout % g == 0 && cin / g == cin_g,
                "channel/group mismatch: cin=" << cin << " cout=" << cout
                                               << " groups=" << g);
  const int ho = conv_out_size(h, kh, spec.stride, spec.padding, spec.dilation);
  const int wo = conv_out_size(ww, kw, spec.stride, spec.padding, spec.dilation);
  const int cout_g = cout / g;

  Tensor y({n, cout, ho, wo});
  for (int in = 0; in < n; ++in) {
    for (int gi = 0; gi < g; ++gi) {
      for (int oc = 0; oc < cout_g; ++oc) {
        const int oc_abs = gi * cout_g + oc;
        for (int oh = 0; oh < ho; ++oh) {
          for (int ow = 0; ow < wo; ++ow) {
            float acc = 0.0F;
            for (int ic = 0; ic < cin_g; ++ic) {
              const int ic_abs = gi * cin_g + ic;
              for (int r = 0; r < kh; ++r) {
                const int ih = oh * spec.stride - spec.padding + r * spec.dilation;
                if (ih < 0 || ih >= h) continue;
                for (int c = 0; c < kw; ++c) {
                  const int iw = ow * spec.stride - spec.padding + c * spec.dilation;
                  if (iw < 0 || iw >= ww) continue;
                  acc += x.at4(in, ic_abs, ih, iw) * w.at4(oc_abs, ic, r, c);
                }
              }
            }
            y.at4(in, oc_abs, oh, ow) = acc;
          }
        }
      }
    }
  }
  return y;
}

Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& w,
                            const Tensor& grad_y, const Conv2dSpec& spec) {
  const int n = x.dim(0), cin = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int cout = w.dim(0), cin_g = w.dim(1), kh = w.dim(2), kw = w.dim(3);
  const int g = spec.groups;
  const int ho = grad_y.dim(2), wo = grad_y.dim(3);
  FMS_CHECK(grad_y.dim(0) == n && grad_y.dim(1) == cout);
  const int cout_g = cout / g;

  Conv2dGrads out{Tensor({n, cin, h, ww}), Tensor({cout, cin_g, kh, kw})};
  for (int in = 0; in < n; ++in) {
    for (int gi = 0; gi < g; ++gi) {
      for (int oc = 0; oc < cout_g; ++oc) {
        const int oc_abs = gi * cout_g + oc;
        for (int oh = 0; oh < ho; ++oh) {
          for (int ow = 0; ow < wo; ++ow) {
            const float gy = grad_y.at4(in, oc_abs, oh, ow);
            // fms-lint: allow(float-eq) -- exact-zero sparsity skip (ReLU)
            if (gy == 0.0F) continue;
            for (int ic = 0; ic < cin_g; ++ic) {
              const int ic_abs = gi * cin_g + ic;
              for (int r = 0; r < kh; ++r) {
                const int ih = oh * spec.stride - spec.padding + r * spec.dilation;
                if (ih < 0 || ih >= h) continue;
                for (int c = 0; c < kw; ++c) {
                  const int iw = ow * spec.stride - spec.padding + c * spec.dilation;
                  if (iw < 0 || iw >= ww) continue;
                  out.grad_x.at4(in, ic_abs, ih, iw) += gy * w.at4(oc_abs, ic, r, c);
                  out.grad_w.at4(oc_abs, ic, r, c) += gy * x.at4(in, ic_abs, ih, iw);
                }
              }
            }
          }
        }
      }
    }
  }
  return out;
}

MaxPoolResult maxpool2d_forward(const Tensor& x, int kernel, int stride,
                                int padding) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int ho = conv_out_size(h, kernel, stride, padding, 1);
  const int wo = conv_out_size(w, kernel, stride, padding, 1);
  MaxPoolResult res{Tensor({n, c, ho, wo}), {}};
  res.argmax.resize(res.y.numel());
  std::size_t oi = 0;
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      for (int oh = 0; oh < ho; ++oh) {
        for (int ow = 0; ow < wo; ++ow, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          bool found = false;
          for (int r = 0; r < kernel; ++r) {
            const int ih = oh * stride - padding + r;
            if (ih < 0 || ih >= h) continue;
            for (int cc = 0; cc < kernel; ++cc) {
              const int iw = ow * stride - padding + cc;
              if (iw < 0 || iw >= w) continue;
              const float v = x.at4(in, ic, ih, iw);
              if (!found || v > best) {
                best = v;
                best_idx = x.offset4(in, ic, ih, iw);
                found = true;
              }
            }
          }
          // Window fully in padding cannot happen with valid out sizes.
          res.y[oi] = found ? best : 0.0F;
          res.argmax[oi] = best_idx;
        }
      }
    }
  }
  return res;
}

Tensor maxpool2d_backward(const Tensor& x, const MaxPoolResult& fwd,
                          const Tensor& grad_y) {
  Tensor grad_x(x.shape());
  FMS_CHECK(grad_y.numel() == fwd.argmax.size());
  for (std::size_t i = 0; i < fwd.argmax.size(); ++i) {
    grad_x[fwd.argmax[i]] += grad_y[i];
  }
  return grad_x;
}

Tensor avgpool2d_forward(const Tensor& x, int kernel, int stride, int padding) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int ho = conv_out_size(h, kernel, stride, padding, 1);
  const int wo = conv_out_size(w, kernel, stride, padding, 1);
  Tensor y({n, c, ho, wo});
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      for (int oh = 0; oh < ho; ++oh) {
        for (int ow = 0; ow < wo; ++ow) {
          float acc = 0.0F;
          for (int r = 0; r < kernel; ++r) {
            const int ih = oh * stride - padding + r;
            if (ih < 0 || ih >= h) continue;
            for (int cc = 0; cc < kernel; ++cc) {
              const int iw = ow * stride - padding + cc;
              if (iw < 0 || iw >= w) continue;
              acc += x.at4(in, ic, ih, iw);
            }
          }
          // count_include_pad=True semantics (matches PyTorch default used
          // by DARTS): divide by the full window size.
          y.at4(in, ic, oh, ow) = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor avgpool2d_backward(const Tensor& x, const Tensor& grad_y, int kernel,
                          int stride, int padding) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int ho = grad_y.dim(2), wo = grad_y.dim(3);
  Tensor grad_x(x.shape());
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      for (int oh = 0; oh < ho; ++oh) {
        for (int ow = 0; ow < wo; ++ow) {
          const float gy = grad_y.at4(in, ic, oh, ow) * inv;
          for (int r = 0; r < kernel; ++r) {
            const int ih = oh * stride - padding + r;
            if (ih < 0 || ih >= h) continue;
            for (int cc = 0; cc < kernel; ++cc) {
              const int iw = ow * stride - padding + cc;
              if (iw < 0 || iw >= w) continue;
              grad_x.at4(in, ic, ih, iw) += gy;
            }
          }
        }
      }
    }
  }
  return grad_x;
}

Tensor global_avgpool_forward(const Tensor& x) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor y({n, c});
  const float inv = 1.0F / static_cast<float>(h * w);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      float acc = 0.0F;
      for (int ih = 0; ih < h; ++ih)
        for (int iw = 0; iw < w; ++iw) acc += x.at4(in, ic, ih, iw);
      y.at2(in, ic) = acc * inv;
    }
  }
  return y;
}

Tensor global_avgpool_backward(const Tensor& x, const Tensor& grad_y) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor grad_x(x.shape());
  const float inv = 1.0F / static_cast<float>(h * w);
  for (int in = 0; in < n; ++in) {
    for (int ic = 0; ic < c; ++ic) {
      const float gy = grad_y.at2(in, ic) * inv;
      for (int ih = 0; ih < h; ++ih)
        for (int iw = 0; iw < w; ++iw) grad_x.at4(in, ic, ih, iw) = gy;
    }
  }
  return grad_x;
}

Tensor relu_forward(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = std::max(0.0F, y[i]);
  return y;
}

Tensor relu_backward(const Tensor& x, const Tensor& grad_y) {
  FMS_CHECK(x.same_shape(grad_y));
  Tensor grad_x(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    grad_x[i] = x[i] > 0.0F ? grad_y[i] : 0.0F;
  }
  return grad_x;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FMS_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(0));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float av = a.at2(i, kk);
      // fms-lint: allow(float-eq) -- exact-zero sparsity skip
      if (av == 0.0F) continue;
      for (int j = 0; j < n; ++j) c.at2(i, j) += av * b.at2(kk, j);
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  FMS_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.dim(0) == b.dim(0));
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int kk = 0; kk < k; ++kk) {
    for (int i = 0; i < m; ++i) {
      const float av = a.at2(kk, i);
      // fms-lint: allow(float-eq) -- exact-zero sparsity skip
      if (av == 0.0F) continue;
      for (int j = 0; j < n; ++j) c.at2(i, j) += av * b.at2(kk, j);
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  FMS_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.dim(1) == b.dim(1));
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (int kk = 0; kk < k; ++kk) acc += a.at2(i, kk) * b.at2(j, kk);
      c.at2(i, j) = acc;
    }
  }
  return c;
}

Tensor concat_channels(const std::vector<Tensor>& parts) {
  FMS_CHECK(!parts.empty());
  const int n = parts[0].dim(0), h = parts[0].dim(2), w = parts[0].dim(3);
  int c_total = 0;
  for (const auto& p : parts) {
    FMS_CHECK(p.ndim() == 4 && p.dim(0) == n && p.dim(2) == h && p.dim(3) == w);
    c_total += p.dim(1);
  }
  Tensor y({n, c_total, h, w});
  for (int in = 0; in < n; ++in) {
    int c_off = 0;
    for (const auto& p : parts) {
      const int c = p.dim(1);
      const std::size_t block = static_cast<std::size_t>(c) * h * w;
      const float* src = p.data() + p.offset4(in, 0, 0, 0);
      float* dst = y.data() + y.offset4(in, c_off, 0, 0);
      std::copy(src, src + block, dst);
      c_off += c;
    }
  }
  return y;
}

std::vector<Tensor> split_channels(const Tensor& x, int groups) {
  FMS_CHECK(x.ndim() == 4 && x.dim(1) % groups == 0);
  const int n = x.dim(0), c = x.dim(1) / groups, h = x.dim(2), w = x.dim(3);
  std::vector<Tensor> parts;
  parts.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    Tensor p({n, c, h, w});
    for (int in = 0; in < n; ++in) {
      const std::size_t block = static_cast<std::size_t>(c) * h * w;
      const float* src = x.data() + x.offset4(in, g * c, 0, 0);
      float* dst = p.data() + p.offset4(in, 0, 0, 0);
      std::copy(src, src + block, dst);
    }
    parts.push_back(std::move(p));
  }
  return parts;
}

Tensor softmax(const Tensor& logits) {
  FMS_CHECK(logits.ndim() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor p({n, c});
  for (int i = 0; i < n; ++i) {
    float mx = -std::numeric_limits<float>::infinity();
    for (int j = 0; j < c; ++j) mx = std::max(mx, logits.at2(i, j));
    float z = 0.0F;
    for (int j = 0; j < c; ++j) {
      const float e = std::exp(logits.at2(i, j) - mx);
      p.at2(i, j) = e;
      z += e;
    }
    for (int j = 0; j < c; ++j) p.at2(i, j) /= z;
  }
  return p;
}

CrossEntropyResult cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  FMS_CHECK(logits.ndim() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  FMS_CHECK(static_cast<int>(labels.size()) == n);
  CrossEntropyResult res;
  res.probs = softmax(logits);
  res.grad_logits = Tensor({n, c});
  double loss = 0.0;
  int correct = 0;
  const float inv_n = 1.0F / static_cast<float>(n);
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    FMS_CHECK(y >= 0 && y < c);
    const float py = std::max(res.probs.at2(i, y), 1e-12F);
    loss -= std::log(py);
    int argmax = 0;
    float best = res.probs.at2(i, 0);
    for (int j = 1; j < c; ++j) {
      if (res.probs.at2(i, j) > best) {
        best = res.probs.at2(i, j);
        argmax = j;
      }
    }
    if (argmax == y) ++correct;
    for (int j = 0; j < c; ++j) {
      res.grad_logits.at2(i, j) =
          (res.probs.at2(i, j) - (j == y ? 1.0F : 0.0F)) * inv_n;
    }
  }
  res.loss = static_cast<float>(loss / n);
  res.accuracy = static_cast<float>(correct) / static_cast<float>(n);
  return res;
}

}  // namespace fms
