// Tensor operations with explicit forward and backward implementations.
//
// Convolutions support stride / padding / dilation / groups, which covers
// everything the DARTS operation set needs (plain, depthwise-separable and
// dilated separable convolutions). Shapes are NCHW.
#pragma once

#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace fms {

struct Conv2dSpec {
  int stride = 1;
  int padding = 0;
  int dilation = 1;
  int groups = 1;
};

// Output spatial size for one dimension.
int conv_out_size(int in, int kernel, int stride, int padding, int dilation);

// y[N, Cout, Ho, Wo] = conv(x[N, Cin, H, W], w[Cout, Cin/groups, kh, kw]).
Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Conv2dSpec& spec);

struct Conv2dGrads {
  Tensor grad_x;
  Tensor grad_w;
};
Conv2dGrads conv2d_backward(const Tensor& x, const Tensor& w,
                            const Tensor& grad_y, const Conv2dSpec& spec);

// --- pooling ---
struct MaxPoolResult {
  Tensor y;
  // Flat input offset of the argmax for each output element.
  std::vector<std::size_t> argmax;
};
MaxPoolResult maxpool2d_forward(const Tensor& x, int kernel, int stride,
                                int padding);
Tensor maxpool2d_backward(const Tensor& x, const MaxPoolResult& fwd,
                          const Tensor& grad_y);

Tensor avgpool2d_forward(const Tensor& x, int kernel, int stride, int padding);
Tensor avgpool2d_backward(const Tensor& x, const Tensor& grad_y, int kernel,
                          int stride, int padding);

// Global average pooling: [N, C, H, W] -> [N, C].
Tensor global_avgpool_forward(const Tensor& x);
Tensor global_avgpool_backward(const Tensor& x, const Tensor& grad_y);

// --- activations ---
Tensor relu_forward(const Tensor& x);
Tensor relu_backward(const Tensor& x, const Tensor& grad_y);

// --- linear algebra ---
// C[m, n] = A[m, k] * B[k, n]
Tensor matmul(const Tensor& a, const Tensor& b);
// C[m, n] = A^T[k, m] * B[k, n]  (a is [k, m])
Tensor matmul_tn(const Tensor& a, const Tensor& b);
// C[m, n] = A[m, k] * B^T[n, k]  (b is [n, k])
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// --- shape manipulation ---
// Concatenates NCHW tensors along the channel dimension.
Tensor concat_channels(const std::vector<Tensor>& parts);
// Splits an NCHW tensor into equal channel groups (inverse of concat).
std::vector<Tensor> split_channels(const Tensor& x, int groups);

// --- classification losses ---
// Row-wise softmax of logits [N, C].
Tensor softmax(const Tensor& logits);

struct CrossEntropyResult {
  float loss = 0.0F;          // mean NLL over the batch
  float accuracy = 0.0F;      // top-1
  Tensor grad_logits;         // d(mean loss)/d logits
  Tensor probs;
};
CrossEntropyResult cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

}  // namespace fms
