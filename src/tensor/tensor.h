// Dense float32 tensor.
//
// The library deliberately uses a small value-semantic tensor (contiguous
// std::vector<float> storage, row-major) instead of a general autograd
// graph: every layer in src/nn implements an explicit backward pass, which
// keeps the math auditable and the federated gradient plumbing (flatten /
// scatter / compensate) trivial.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/obs/alloc.h"
#include "src/obs/work.h"

namespace fms {

// Tensor storage is the only float buffer the search allocates in bulk,
// so every acquisition/release below reports to the allocation ledger
// (src/obs/alloc.h). "Alloc" means this tensor took ownership of live
// bytes (fresh buffer, copy, or adopted vector); moves transfer
// ownership and report nothing. The hooks cost one relaxed atomic load
// when tracking is off.
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<int> shape, float fill = 0.0F)
      : shape_(std::move(shape)), data_(checked_numel(shape_), fill) {
    obs::track_alloc(storage_bytes());
  }

  Tensor(std::vector<int> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    FMS_CHECK_MSG(data_.size() == checked_numel(shape_),
                  "data size does not match shape");
    obs::track_alloc(storage_bytes());
  }

  Tensor(const Tensor& o) : shape_(o.shape_), data_(o.data_) {
    obs::track_alloc(storage_bytes());
  }

  Tensor(Tensor&& o) noexcept
      : shape_(std::move(o.shape_)), data_(std::move(o.data_)) {
    // Ownership of the live bytes moved with the buffer; make sure the
    // source really is empty so its destructor releases nothing.
    o.shape_.clear();
    o.data_.clear();
  }

  Tensor& operator=(const Tensor& o) {
    if (this != &o) {
      obs::track_free(storage_bytes());
      shape_ = o.shape_;
      data_ = o.data_;
      obs::track_alloc(storage_bytes());
    }
    return *this;
  }

  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      obs::track_free(storage_bytes());
      shape_ = std::move(o.shape_);
      data_ = std::move(o.data_);
      o.shape_.clear();
      o.data_.clear();
    }
    return *this;
  }

  ~Tensor() { obs::track_free(storage_bytes()); }

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  static Tensor full(std::vector<int> shape, float v) {
    return Tensor(std::move(shape), v);
  }

  // Gaussian init, used for data generation and (scaled) weight init.
  static Tensor randn(std::vector<int> shape, Rng& rng, float stddev = 1.0F) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) v = rng.normal(0.0F, stddev);
    return t;
  }

  // --- shape ---
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const {
    FMS_CHECK(i >= 0 && i < ndim());
    return shape_[static_cast<std::size_t>(i)];
  }
  const std::vector<int>& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

  // Reshape to a view-compatible shape (numel must match). Routed
  // through the adopting constructor so the copy hits the ledger.
  Tensor reshaped(std::vector<int> shape) const {
    FMS_CHECK(checked_numel(shape) == data_.size());
    return Tensor(std::move(shape), data_);
  }

  // --- element access ---
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // 2-D indexing (rows, cols).
  float& at2(int i, int j) {
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }
  float at2(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * shape_[1] + j];
  }

  // 4-D NCHW indexing.
  float& at4(int n, int c, int h, int w) {
    return data_[offset4(n, c, h, w)];
  }
  float at4(int n, int c, int h, int w) const {
    return data_[offset4(n, c, h, w)];
  }
  std::size_t offset4(int n, int c, int h, int w) const {
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
               shape_[3] +
           w;
  }

  // --- arithmetic (elementwise, shape-checked) ---
  Tensor& operator+=(const Tensor& o) {
    FMS_CHECK(same_shape(o));
    FMS_WORK("tensor.axpy", obs::axpy_cost(data_.size()));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Tensor& operator-=(const Tensor& o) {
    FMS_CHECK(same_shape(o));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Tensor& operator*=(float s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  void fill(float v) {
    for (auto& x : data_) x = v;
  }
  void zero() { fill(0.0F); }

  float sum() const {
    double s = 0.0;
    for (float v : data_) s += v;
    return static_cast<float>(s);
  }

  float l2_norm() const {
    double s = 0.0;
    for (float v : data_) s += static_cast<double>(v) * v;
    return static_cast<float>(std::sqrt(s));
  }

  std::string shape_str() const;

 private:
  std::size_t storage_bytes() const { return data_.size() * sizeof(float); }

  static std::size_t checked_numel(const std::vector<int>& shape) {
    std::size_t n = 1;
    for (int d : shape) {
      FMS_CHECK_MSG(d >= 0, "negative dimension");
      n *= static_cast<std::size_t>(d);
    }
    return n;
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

inline Tensor operator+(Tensor a, const Tensor& b) { return a += b; }
inline Tensor operator-(Tensor a, const Tensor& b) { return a -= b; }
inline Tensor operator*(Tensor a, float s) { return a *= s; }

}  // namespace fms
