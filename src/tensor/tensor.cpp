#include "src/tensor/tensor.h"

#include <sstream>

namespace fms {

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace fms
