// Layer abstraction with explicit forward/backward.
//
// Modules cache whatever the backward pass needs during forward(train=true);
// calling backward() after an eval-mode forward is a programming error and
// is checked. clone() performs a deep copy, which is how sub-models are
// materialized from supernet operations.
#pragma once

#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace fms {

// A learnable tensor together with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  Param() = default;

  std::size_t numel() const { return value.numel(); }
};

class Module {
 public:
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& x, bool train) = 0;
  // Returns gradient w.r.t. the input of the last forward(train=true) call;
  // accumulates into parameter .grad fields.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Appends pointers to all parameters (depth-first, deterministic order).
  virtual void collect_params(std::vector<Param*>& out) {
    (void)out;  // parameter-free modules
  }

  virtual std::unique_ptr<Module> clone() const = 0;

  std::vector<Param*> params() {
    std::vector<Param*> out;
    collect_params(out);
    return out;
  }

  void zero_grad() {
    for (Param* p : params()) p->grad.zero();
  }

  std::size_t param_count() {
    std::size_t n = 0;
    for (Param* p : params()) n += p->numel();
    return n;
  }
};

// Sequential container; owns its children.
class Sequential : public Module {
 public:
  Sequential() = default;

  explicit Sequential(std::vector<std::unique_ptr<Module>> children)
      : children_(std::move(children)) {}

  Sequential& add(std::unique_ptr<Module> m) {
    children_.push_back(std::move(m));
    return *this;
  }

  Tensor forward(const Tensor& x, bool train) override {
    Tensor h = x;
    for (auto& m : children_) h = m->forward(h, train);
    return h;
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor g = grad_out;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  void collect_params(std::vector<Param*>& out) override {
    for (auto& m : children_) m->collect_params(out);
  }

  std::unique_ptr<Module> clone() const override {
    auto copy = std::make_unique<Sequential>();
    for (const auto& m : children_) copy->add(m->clone());
    return copy;
  }

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_[i]; }

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

// --- flat parameter plumbing (used by the federated substrate) ---

// Copies all parameter values into one flat vector.
std::vector<float> flatten_values(const std::vector<Param*>& params);
// Copies all parameter gradients into one flat vector.
std::vector<float> flatten_grads(const std::vector<Param*>& params);
// Writes a flat vector back into parameter values. Sizes must match.
void unflatten_values(const std::vector<float>& flat,
                      const std::vector<Param*>& params);
// Adds a flat vector into parameter gradients. Sizes must match.
void accumulate_grads(const std::vector<float>& flat,
                      const std::vector<Param*>& params);

}  // namespace fms
