// Minimal interface for a trainable classifier network — what the P3
// retraining loops and the FedAvg baseline need, satisfied by DiscreteNet
// and the hand-designed baseline models.
#pragma once

#include <vector>

#include "src/nn/module.h"

namespace fms {

class TrainableNet {
 public:
  virtual ~TrainableNet() = default;

  virtual Tensor forward(const Tensor& x, bool train) = 0;
  virtual void backward(const Tensor& grad_logits) = 0;
  virtual const std::vector<Param*>& params() = 0;
  virtual void zero_grad() = 0;
  virtual std::size_t param_count() const = 0;
};

}  // namespace fms
