// Learning-rate schedules.
//
// DARTS-style retraining anneals the learning rate with a cosine schedule
// over the training horizon; the paper's P3 inherits that recipe. The
// retraining loops accept an optional schedule (nullptr = constant LR, the
// default used by the fast CPU benches).
#pragma once

#include <cmath>

#include "src/common/check.h"

namespace fms {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate for step t of total_steps.
  virtual float lr_at(int step, int total_steps) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) { FMS_CHECK(lr > 0.0F); }
  float lr_at(int, int) const override { return lr_; }

 private:
  float lr_;
};

// eta_t = eta_min + (eta_max - eta_min) * (1 + cos(pi * t / T)) / 2.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float lr_max, float lr_min = 0.0F)
      : lr_max_(lr_max), lr_min_(lr_min) {
    FMS_CHECK(lr_max > lr_min && lr_min >= 0.0F);
  }

  float lr_at(int step, int total_steps) const override {
    FMS_CHECK(total_steps > 0 && step >= 0);
    const float t = std::min(1.0F, static_cast<float>(step) /
                                       static_cast<float>(total_steps));
    constexpr float kPi = 3.14159265358979323846F;
    return lr_min_ +
           (lr_max_ - lr_min_) * 0.5F * (1.0F + std::cos(kPi * t));
  }

 private:
  float lr_max_;
  float lr_min_;
};

}  // namespace fms
