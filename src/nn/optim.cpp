#include "src/nn/optim.h"

#include <cmath>

#include "src/common/check.h"

namespace fms {

float clip_global_norm(const std::vector<Param*>& params, float max_norm) {
  double sq = 0.0;
  for (const Param* p : params) {
    for (float g : p->grad.vec()) sq += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (max_norm > 0.0F && norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12F);
    for (Param* p : params) {
      for (float& g : p->grad.vec()) g *= scale;
    }
  }
  return norm;
}

float clip_global_norm(std::vector<float>& flat_grad, float max_norm) {
  double sq = 0.0;
  for (float g : flat_grad) sq += static_cast<double>(g) * g;
  const float norm = static_cast<float>(std::sqrt(sq));
  if (max_norm > 0.0F && norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12F);
    for (float& g : flat_grad) g *= scale;
  }
  return norm;
}

void SGD::step(const std::vector<Param*>& params) {
  if (velocity_.empty()) {
    velocity_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      velocity_[i].assign(params[i]->numel(), 0.0F);
    }
  }
  FMS_CHECK_MSG(velocity_.size() == params.size(),
                "SGD param list changed between steps");
  clip_global_norm(params, opts_.clip);
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param* p = params[i];
    auto& vel = velocity_[i];
    FMS_CHECK(vel.size() == p->numel());
    for (std::size_t j = 0; j < vel.size(); ++j) {
      const float g =
          p->grad.vec()[j] + opts_.weight_decay * p->value.vec()[j];
      vel[j] = opts_.momentum * vel[j] + g;
      p->value.vec()[j] -= opts_.lr * vel[j];
    }
  }
}

}  // namespace fms
