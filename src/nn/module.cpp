#include "src/nn/module.h"

#include "src/common/check.h"

namespace fms {

std::vector<float> flatten_values(const std::vector<Param*>& params) {
  std::vector<float> flat;
  std::size_t total = 0;
  for (const Param* p : params) total += p->numel();
  flat.reserve(total);
  for (const Param* p : params) {
    flat.insert(flat.end(), p->value.vec().begin(), p->value.vec().end());
  }
  return flat;
}

std::vector<float> flatten_grads(const std::vector<Param*>& params) {
  std::vector<float> flat;
  std::size_t total = 0;
  for (const Param* p : params) total += p->numel();
  flat.reserve(total);
  for (const Param* p : params) {
    flat.insert(flat.end(), p->grad.vec().begin(), p->grad.vec().end());
  }
  return flat;
}

void unflatten_values(const std::vector<float>& flat,
                      const std::vector<Param*>& params) {
  std::size_t pos = 0;
  for (Param* p : params) {
    FMS_CHECK_MSG(pos + p->numel() <= flat.size(), "flat vector too short");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + p->numel()),
              p->value.vec().begin());
    pos += p->numel();
  }
  FMS_CHECK_MSG(pos == flat.size(), "flat vector size mismatch");
}

void accumulate_grads(const std::vector<float>& flat,
                      const std::vector<Param*>& params) {
  std::size_t pos = 0;
  for (Param* p : params) {
    FMS_CHECK_MSG(pos + p->numel() <= flat.size(), "flat vector too short");
    for (std::size_t i = 0; i < p->numel(); ++i) {
      p->grad.vec()[i] += flat[pos + i];
    }
    pos += p->numel();
  }
  FMS_CHECK_MSG(pos == flat.size(), "flat vector size mismatch");
}

}  // namespace fms
