#include "src/nn/layers.h"

#include <cmath>

#include "src/obs/profile.h"
#include "src/obs/work.h"

namespace fms {
namespace {

// Dims come off Tensor as int; the cost models take element counts.
inline std::size_t sz(int v) { return static_cast<std::size_t>(v); }

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, Conv2dSpec spec,
               Rng& rng)
    : spec_(spec) {
  FMS_CHECK(in_channels % spec.groups == 0 && out_channels % spec.groups == 0);
  const int cin_g = in_channels / spec.groups;
  const float fan_in = static_cast<float>(cin_g * kernel * kernel);
  const float stddev = std::sqrt(2.0F / fan_in);
  w_ = Param(Tensor::randn({out_channels, cin_g, kernel, kernel}, rng, stddev));
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  FMS_PROFILE_ZONE("nn.conv_fwd");
  FMS_PROFILE_BYTES(x.numel() * sizeof(float));
  if (train) {
    cached_x_ = x;
    has_cache_ = true;
  } else {
    has_cache_ = false;
  }
  Tensor y = conv2d_forward(x, w_.value, spec_);
  FMS_WORK("nn.conv_fwd",
           obs::conv2d_fwd_cost(sz(x.dim(0)), sz(x.dim(1)), sz(x.dim(2)),
                                sz(x.dim(3)), sz(w_.value.dim(0)),
                                sz(w_.value.dim(2)), sz(w_.value.dim(3)),
                                sz(y.dim(2)), sz(y.dim(3)),
                                sz(spec_.groups)));
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  FMS_PROFILE_ZONE("nn.conv_bwd");
  FMS_PROFILE_BYTES(grad_out.numel() * sizeof(float));
  FMS_CHECK_MSG(has_cache_, "Conv2d::backward without train-mode forward");
  Conv2dGrads g = conv2d_backward(cached_x_, w_.value, grad_out, spec_);
  FMS_WORK("nn.conv_bwd",
           obs::conv2d_bwd_cost(
               sz(cached_x_.dim(0)), sz(cached_x_.dim(1)),
               sz(cached_x_.dim(2)), sz(cached_x_.dim(3)),
               sz(w_.value.dim(0)), sz(w_.value.dim(2)),
               sz(w_.value.dim(3)), sz(grad_out.dim(2)),
               sz(grad_out.dim(3)), sz(spec_.groups)));
  w_.grad += g.grad_w;
  return std::move(g.grad_x);
}

BatchNorm2d::BatchNorm2d(int channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor::full({channels}, 1.0F)),
      beta_(Tensor::zeros({channels})),
      running_mean_({channels}),
      running_var_(Tensor::full({channels}, 1.0F)) {}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  FMS_PROFILE_ZONE("nn.bn_fwd");
  FMS_PROFILE_BYTES(x.numel() * sizeof(float));
  FMS_CHECK(x.ndim() == 4 && x.dim(1) == channels_);
  const int n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  FMS_WORK("nn.bn_fwd",
           obs::batchnorm_fwd_cost(sz(n), sz(c), sz(h), sz(w), train));
  const std::size_t m = static_cast<std::size_t>(n) * h * w;
  Tensor y(x.shape());
  if (train) {
    cached_x_ = x;
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_.assign(static_cast<std::size_t>(c), 0.0F);
    for (int ic = 0; ic < c; ++ic) {
      double mean = 0.0;
      for (int in = 0; in < n; ++in)
        for (int ih = 0; ih < h; ++ih)
          for (int iw = 0; iw < w; ++iw) mean += x.at4(in, ic, ih, iw);
      mean /= static_cast<double>(m);
      double var = 0.0;
      for (int in = 0; in < n; ++in)
        for (int ih = 0; ih < h; ++ih)
          for (int iw = 0; iw < w; ++iw) {
            const double d = x.at4(in, ic, ih, iw) - mean;
            var += d * d;
          }
      var /= static_cast<double>(m);
      const float inv_std = 1.0F / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[static_cast<std::size_t>(ic)] = inv_std;
      running_mean_[static_cast<std::size_t>(ic)] =
          (1.0F - momentum_) * running_mean_[static_cast<std::size_t>(ic)] +
          momentum_ * static_cast<float>(mean);
      running_var_[static_cast<std::size_t>(ic)] =
          (1.0F - momentum_) * running_var_[static_cast<std::size_t>(ic)] +
          momentum_ * static_cast<float>(var);
      const float g = gamma_.value[static_cast<std::size_t>(ic)];
      const float b = beta_.value[static_cast<std::size_t>(ic)];
      for (int in = 0; in < n; ++in)
        for (int ih = 0; ih < h; ++ih)
          for (int iw = 0; iw < w; ++iw) {
            const float xhat =
                (x.at4(in, ic, ih, iw) - static_cast<float>(mean)) * inv_std;
            cached_xhat_.at4(in, ic, ih, iw) = xhat;
            y.at4(in, ic, ih, iw) = g * xhat + b;
          }
    }
    has_cache_ = true;
  } else {
    has_cache_ = false;
    for (int ic = 0; ic < c; ++ic) {
      const float mean = running_mean_[static_cast<std::size_t>(ic)];
      const float inv_std =
          1.0F / std::sqrt(running_var_[static_cast<std::size_t>(ic)] + eps_);
      const float g = gamma_.value[static_cast<std::size_t>(ic)];
      const float b = beta_.value[static_cast<std::size_t>(ic)];
      for (int in = 0; in < n; ++in)
        for (int ih = 0; ih < h; ++ih)
          for (int iw = 0; iw < w; ++iw) {
            y.at4(in, ic, ih, iw) =
                g * (x.at4(in, ic, ih, iw) - mean) * inv_std + b;
          }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  FMS_PROFILE_ZONE("nn.bn_bwd");
  FMS_PROFILE_BYTES(grad_out.numel() * sizeof(float));
  FMS_CHECK_MSG(has_cache_, "BatchNorm2d::backward without train forward");
  const Tensor& x = cached_x_;
  const int n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  FMS_WORK("nn.bn_bwd", obs::batchnorm_bwd_cost(sz(n), sz(c), sz(h), sz(w)));
  const double m = static_cast<double>(n) * h * w;
  Tensor grad_x(x.shape());
  for (int ic = 0; ic < c; ++ic) {
    double sum_gy = 0.0, sum_gy_xhat = 0.0;
    for (int in = 0; in < n; ++in)
      for (int ih = 0; ih < h; ++ih)
        for (int iw = 0; iw < w; ++iw) {
          const double gy = grad_out.at4(in, ic, ih, iw);
          sum_gy += gy;
          sum_gy_xhat += gy * cached_xhat_.at4(in, ic, ih, iw);
        }
    gamma_.grad[static_cast<std::size_t>(ic)] +=
        static_cast<float>(sum_gy_xhat);
    beta_.grad[static_cast<std::size_t>(ic)] += static_cast<float>(sum_gy);
    const float g = gamma_.value[static_cast<std::size_t>(ic)];
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(ic)];
    const float mean_gy = static_cast<float>(sum_gy / m);
    const float mean_gy_xhat = static_cast<float>(sum_gy_xhat / m);
    for (int in = 0; in < n; ++in)
      for (int ih = 0; ih < h; ++ih)
        for (int iw = 0; iw < w; ++iw) {
          const float gy = grad_out.at4(in, ic, ih, iw);
          const float xhat = cached_xhat_.at4(in, ic, ih, iw);
          grad_x.at4(in, ic, ih, iw) =
              g * inv_std * (gy - mean_gy - xhat * mean_gy_xhat);
        }
  }
  return grad_x;
}

Tensor ReLU::forward(const Tensor& x, bool train) {
  FMS_PROFILE_ZONE("nn.relu_fwd");
  FMS_WORK("nn.relu_fwd", obs::relu_fwd_cost(x.numel()));
  if (train) {
    cached_x_ = x;
    has_cache_ = true;
  } else {
    has_cache_ = false;
  }
  return relu_forward(x);
}

Tensor ReLU::backward(const Tensor& grad_out) {
  FMS_PROFILE_ZONE("nn.relu_bwd");
  FMS_WORK("nn.relu_bwd", obs::relu_bwd_cost(grad_out.numel()));
  FMS_CHECK_MSG(has_cache_, "ReLU::backward without train-mode forward");
  return relu_backward(cached_x_, grad_out);
}

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  FMS_PROFILE_ZONE("nn.maxpool_fwd");
  MaxPoolResult res = maxpool2d_forward(x, kernel_, stride_, padding_);
  FMS_WORK("nn.maxpool_fwd",
           obs::maxpool_fwd_cost(x.numel(), res.y.numel(), sz(kernel_)));
  if (train) {
    cached_x_ = x;
    cached_ = res;
    has_cache_ = true;
  } else {
    has_cache_ = false;
  }
  return res.y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  FMS_PROFILE_ZONE("nn.maxpool_bwd");
  FMS_WORK("nn.maxpool_bwd",
           obs::maxpool_bwd_cost(cached_x_.numel(), grad_out.numel()));
  FMS_CHECK_MSG(has_cache_, "MaxPool2d::backward without train forward");
  return maxpool2d_backward(cached_x_, cached_, grad_out);
}

Tensor AvgPool2d::forward(const Tensor& x, bool train) {
  FMS_PROFILE_ZONE("nn.avgpool_fwd");
  if (train) {
    cached_x_ = x;
    has_cache_ = true;
  } else {
    has_cache_ = false;
  }
  Tensor y = avgpool2d_forward(x, kernel_, stride_, padding_);
  FMS_WORK("nn.avgpool_fwd",
           obs::avgpool_fwd_cost(x.numel(), y.numel(), sz(kernel_)));
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  FMS_PROFILE_ZONE("nn.avgpool_bwd");
  FMS_WORK("nn.avgpool_bwd",
           obs::avgpool_bwd_cost(cached_x_.numel(), grad_out.numel(),
                                 sz(kernel_)));
  FMS_CHECK_MSG(has_cache_, "AvgPool2d::backward without train forward");
  return avgpool2d_backward(cached_x_, grad_out, kernel_, stride_, padding_);
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  FMS_PROFILE_ZONE("nn.gap_fwd");
  FMS_WORK("nn.gap_fwd",
           obs::global_avgpool_fwd_cost(sz(x.dim(0)), sz(x.dim(1)),
                                        sz(x.dim(2)), sz(x.dim(3))));
  if (train) {
    cached_x_ = x;
    has_cache_ = true;
  } else {
    has_cache_ = false;
  }
  return global_avgpool_forward(x);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  FMS_PROFILE_ZONE("nn.gap_bwd");
  FMS_CHECK_MSG(has_cache_, "GlobalAvgPool::backward without train forward");
  FMS_WORK("nn.gap_bwd",
           obs::global_avgpool_bwd_cost(
               sz(cached_x_.dim(0)), sz(cached_x_.dim(1)),
               sz(cached_x_.dim(2)), sz(cached_x_.dim(3))));
  return global_avgpool_backward(cached_x_, grad_out);
}

Linear::Linear(int in_features, int out_features, Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(in_features));
  w_ = Param(Tensor::randn({out_features, in_features}, rng, stddev));
  b_ = Param(Tensor::zeros({out_features}));
}

Tensor Linear::forward(const Tensor& x, bool train) {
  FMS_PROFILE_ZONE("nn.linear_fwd");
  FMS_CHECK(x.ndim() == 2 && x.dim(1) == w_.value.dim(1));
  FMS_WORK("nn.linear_fwd",
           obs::linear_fwd_cost(sz(x.dim(0)), sz(x.dim(1)),
                                sz(w_.value.dim(0))));
  if (train) {
    cached_x_ = x;
    has_cache_ = true;
  } else {
    has_cache_ = false;
  }
  Tensor y = matmul_nt(x, w_.value);  // [N, out]
  const int n = y.dim(0), out = y.dim(1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < out; ++j)
      y.at2(i, j) += b_.value[static_cast<std::size_t>(j)];
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  FMS_PROFILE_ZONE("nn.linear_bwd");
  FMS_CHECK_MSG(has_cache_, "Linear::backward without train-mode forward");
  FMS_WORK("nn.linear_bwd",
           obs::linear_bwd_cost(sz(grad_out.dim(0)), sz(w_.value.dim(1)),
                                sz(w_.value.dim(0))));
  // grad_w = grad_out^T [N,out] x cached_x [N,in] -> [out,in]
  w_.grad += matmul_tn(grad_out, cached_x_);
  const int n = grad_out.dim(0), out = grad_out.dim(1);
  for (int j = 0; j < out; ++j) {
    float acc = 0.0F;
    for (int i = 0; i < n; ++i) acc += grad_out.at2(i, j);
    b_.grad[static_cast<std::size_t>(j)] += acc;
  }
  return matmul(grad_out, w_.value);  // [N, in]
}

std::unique_ptr<Module> make_relu_conv_bn(int cin, int cout, int kernel,
                                          int stride, int padding, Rng& rng) {
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Conv2d>(
      cin, cout, kernel, Conv2dSpec{stride, padding, 1, 1}, rng));
  seq->add(std::make_unique<BatchNorm2d>(cout));
  return seq;
}

std::unique_ptr<Module> make_sep_conv(int channels, int kernel, int stride,
                                      Rng& rng) {
  const int pad = kernel / 2;
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Conv2d>(channels, channels, kernel,
                                    Conv2dSpec{stride, pad, 1, channels}, rng));
  seq->add(std::make_unique<Conv2d>(channels, channels, 1,
                                    Conv2dSpec{1, 0, 1, 1}, rng));
  seq->add(std::make_unique<BatchNorm2d>(channels));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Conv2d>(channels, channels, kernel,
                                    Conv2dSpec{1, pad, 1, channels}, rng));
  seq->add(std::make_unique<Conv2d>(channels, channels, 1,
                                    Conv2dSpec{1, 0, 1, 1}, rng));
  seq->add(std::make_unique<BatchNorm2d>(channels));
  return seq;
}

std::unique_ptr<Module> make_dil_conv(int channels, int kernel, int stride,
                                      Rng& rng) {
  const int dilation = 2;
  const int pad = dilation * (kernel / 2);
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Conv2d>(
      channels, channels, kernel, Conv2dSpec{stride, pad, dilation, channels},
      rng));
  seq->add(std::make_unique<Conv2d>(channels, channels, 1,
                                    Conv2dSpec{1, 0, 1, 1}, rng));
  seq->add(std::make_unique<BatchNorm2d>(channels));
  return seq;
}

std::unique_ptr<Module> make_factorized_reduce(int cin, int cout, Rng& rng) {
  auto seq = std::make_unique<Sequential>();
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Conv2d>(cin, cout, 1, Conv2dSpec{2, 0, 1, 1}, rng));
  seq->add(std::make_unique<BatchNorm2d>(cout));
  return seq;
}

}  // namespace fms
