// Concrete layers. All follow the DARTS conventions: convolutions are
// bias-free (a BatchNorm follows every conv), pooling windows are 3x3.
#pragma once

#include <memory>

#include "src/nn/module.h"
#include "src/tensor/ops.h"

namespace fms {

class Conv2d : public Module {
 public:
  // He-normal initialized conv. groups == in_channels gives depthwise.
  Conv2d(int in_channels, int out_channels, int kernel, Conv2dSpec spec,
         Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override { out.push_back(&w_); }
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

  const Conv2dSpec& spec() const { return spec_; }

 private:
  Conv2dSpec spec_;
  Param w_;
  Tensor cached_x_;
  bool has_cache_ = false;
};

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int channels, float eps = 1e-5F, float momentum = 0.1F);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override {
    out.push_back(&gamma_);
    out.push_back(&beta_);
  }
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<BatchNorm2d>(*this);
  }

 private:
  int channels_;
  float eps_;
  float momentum_;
  Param gamma_;
  Param beta_;
  // Running statistics (not learnable, but part of the model state).
  Tensor running_mean_;
  Tensor running_var_;
  // Backward caches.
  Tensor cached_x_;
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  bool has_cache_ = false;
};

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<ReLU>(*this);
  }

 private:
  Tensor cached_x_;
  bool has_cache_ = false;
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(int kernel, int stride, int padding)
      : kernel_(kernel), stride_(stride), padding_(padding) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<MaxPool2d>(kernel_, stride_, padding_);
  }

 private:
  int kernel_, stride_, padding_;
  Tensor cached_x_;
  MaxPoolResult cached_;
  bool has_cache_ = false;
};

class AvgPool2d : public Module {
 public:
  AvgPool2d(int kernel, int stride, int padding)
      : kernel_(kernel), stride_(stride), padding_(padding) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<AvgPool2d>(kernel_, stride_, padding_);
  }

 private:
  int kernel_, stride_, padding_;
  Tensor cached_x_;
  bool has_cache_ = false;
};

class Identity : public Module {
 public:
  Tensor forward(const Tensor& x, bool /*train*/) override { return x; }
  Tensor backward(const Tensor& grad_out) override { return grad_out; }
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<Identity>();
  }
};

class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<GlobalAvgPool>(*this);
  }

 private:
  Tensor cached_x_;
  bool has_cache_ = false;
};

class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override {
    out.push_back(&w_);
    out.push_back(&b_);
  }
  std::unique_ptr<Module> clone() const override {
    return std::make_unique<Linear>(*this);
  }

 private:
  Param w_;  // [out, in]
  Param b_;  // [out]
  Tensor cached_x_;
  bool has_cache_ = false;
};

// --- DARTS composite operations (used by the NAS search space) ---

// ReLU -> 1x1 conv -> BN. Cell input preprocessing and part of ops.
std::unique_ptr<Module> make_relu_conv_bn(int cin, int cout, int kernel,
                                          int stride, int padding, Rng& rng);

// Depthwise-separable conv applied twice, DARTS-style:
// [ReLU, dw kxk stride s, pw 1x1, BN, ReLU, dw kxk stride 1, pw 1x1, BN].
std::unique_ptr<Module> make_sep_conv(int channels, int kernel, int stride,
                                      Rng& rng);

// Dilated separable conv: [ReLU, dw kxk dilation 2 stride s, pw 1x1, BN].
std::unique_ptr<Module> make_dil_conv(int channels, int kernel, int stride,
                                      Rng& rng);

// Spatial reduction preserving channel count: ReLU -> 1x1 conv stride 2 ->
// BN. Used where identity/skip needs a stride (DARTS FactorizedReduce).
std::unique_ptr<Module> make_factorized_reduce(int cin, int cout, Rng& rng);

}  // namespace fms
