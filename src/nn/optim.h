// SGD with momentum, weight decay, and global-norm gradient clipping —
// the optimizer the paper uses for supernet weights (Table I).
#pragma once

#include <vector>

#include "src/nn/module.h"

namespace fms {

// Scales all gradients so their global L2 norm is at most max_norm.
// Returns the pre-clip norm.
float clip_global_norm(const std::vector<Param*>& params, float max_norm);
float clip_global_norm(std::vector<float>& flat_grad, float max_norm);

class SGD {
 public:
  struct Options {
    float lr = 0.025F;
    float momentum = 0.9F;
    float weight_decay = 0.0003F;
    float clip = 5.0F;  // <= 0 disables clipping
  };

  explicit SGD(Options opts) : opts_(opts) {}

  // Applies one update. The param list must be identical (same pointers,
  // same order) across calls; velocity buffers are allocated lazily.
  void step(const std::vector<Param*>& params);

  void set_lr(float lr) { opts_.lr = lr; }
  float lr() const { return opts_.lr; }
  const Options& options() const { return opts_; }

  // Momentum-buffer snapshot/restore for crash-recovery; empty means "no
  // step taken yet" and step() re-allocates lazily as usual.
  const std::vector<std::vector<float>>& velocity() const { return velocity_; }
  void set_velocity(std::vector<std::vector<float>> v) {
    velocity_ = std::move(v);
  }

 private:
  Options opts_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace fms
