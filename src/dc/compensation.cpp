#include "src/dc/compensation.h"

#include "src/obs/profile.h"
#include "src/obs/span.h"
#include "src/obs/work.h"

namespace fms {

const char* stale_policy_name(StalePolicy p) {
  switch (p) {
    case StalePolicy::kHardSync: return "hard-sync";
    case StalePolicy::kCompensate: return "compensate";
    case StalePolicy::kUseStale: return "use";
    case StalePolicy::kDrop: return "throw";
  }
  return "unknown";
}

std::vector<float> compensate_weight_gradient(
    const std::vector<float>& stale_grad, const std::vector<float>& fresh_w,
    const std::vector<float>& stale_w, float lambda) {
  FMS_SPAN("dc.weight");
  FMS_CHECK(stale_grad.size() == fresh_w.size() &&
            stale_grad.size() == stale_w.size());
  FMS_WORK("dc.weight", obs::dc_compensate_cost(stale_grad.size()));
  std::vector<float> out(stale_grad.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float h = stale_grad[i];
    out[i] = h + lambda * h * h * (fresh_w[i] - stale_w[i]);
  }
  return out;
}

AlphaPair compensate_alpha_gradient(const AlphaPair& stale_grad,
                                    const AlphaPair& alpha_now,
                                    const AlphaPair& alpha_stale,
                                    float lambda) {
  FMS_SPAN("dc.alpha");
  FMS_CHECK(stale_grad.normal.size() == alpha_now.normal.size() &&
            stale_grad.normal.size() == alpha_stale.normal.size());
  FMS_WORK("dc.alpha",
           obs::dc_compensate_cost(
               (stale_grad.normal.size() + stale_grad.reduce.size()) *
               static_cast<std::size_t>(kNumOps)));
  AlphaPair out = stale_grad;
  auto apply = [lambda](AlphaTable& g, const AlphaTable& now,
                        const AlphaTable& stale) {
    for (std::size_t e = 0; e < g.size(); ++e) {
      for (int o = 0; o < kNumOps; ++o) {
        const std::size_t oi = static_cast<std::size_t>(o);
        const float h = g[e][oi];
        g[e][oi] = h + lambda * h * h * (now[e][oi] - stale[e][oi]);
      }
    }
  };
  apply(out.normal, alpha_now.normal, alpha_stale.normal);
  apply(out.reduce, alpha_now.reduce, alpha_stale.reduce);
  return out;
}

void MemoryPool::save(int round, RoundSnapshot snapshot) {
  FMS_PROFILE_ZONE("dc.pool_save");
  snapshots_[round] = std::move(snapshot);
}

const RoundSnapshot* MemoryPool::find(int round) const {
  auto it = snapshots_.find(round);
  return it == snapshots_.end() ? nullptr : &it->second;
}

void MemoryPool::evict(int current_round) {
  FMS_PROFILE_ZONE("dc.pool_evict");
  const int oldest_kept = current_round - threshold_;
  for (auto it = snapshots_.begin(); it != snapshots_.end();) {
    if (it->first < oldest_kept) {
      it = snapshots_.erase(it);
    } else {
      break;  // std::map is ordered
    }
  }
}

}  // namespace fms
