// Delay-compensated updates (paper §V, Eq. 13 and Eq. 15).
//
// A straggler's update computed at round t' arrives at round t = t' + tau.
// Following DC-ASGD, the fresh gradient is approximated from the stale one
// with a diagonal Gauss-Newton correction:
//
//   h_fresh ≈ h_stale + lambda * h_stale ⊙ h_stale ⊙ (w_now − w_stale)
//
// applied to both the sub-model weight gradients (Eq. 13) and the policy
// log-prob gradients (Eq. 15). The memory pool stores the per-round
// snapshots (theta, alpha, masks) needed to evaluate the correction.
#pragma once

#include <map>
#include <vector>

#include "src/nas/supernet.h"
#include "src/rl/policy.h"

namespace fms {

// Which treatment stale updates receive (paper Fig. 8 / Table II ablation).
enum class StalePolicy {
  kHardSync,     // wait for everyone: no staleness exists ("0% staleness")
  kCompensate,   // ours: Eq. 13 + Eq. 15
  kUseStale,     // "use": apply the stale update unmodified
  kDrop,         // "throw": discard every stale update
};

const char* stale_policy_name(StalePolicy p);

// Eq. 13 applied to a flat gradient over the masked parameter subset.
std::vector<float> compensate_weight_gradient(
    const std::vector<float>& stale_grad, const std::vector<float>& fresh_w,
    const std::vector<float>& stale_w, float lambda);

// Eq. 15 applied to an alpha-shaped log-prob gradient.
AlphaPair compensate_alpha_gradient(const AlphaPair& stale_grad,
                                    const AlphaPair& alpha_now,
                                    const AlphaPair& alpha_stale,
                                    float lambda);

// Per-round snapshots the server keeps while soft synchronization is
// active (Theta, A and G memories of Algorithm 1).
struct RoundSnapshot {
  std::vector<float> theta;   // full supernet flat values
  AlphaPair alpha;
  std::vector<Mask> masks;    // per participant
};

class MemoryPool {
 public:
  explicit MemoryPool(int staleness_threshold)
      : threshold_(staleness_threshold) {}

  void save(int round, RoundSnapshot snapshot);
  // nullptr when the round was never stored or already evicted.
  const RoundSnapshot* find(int round) const;
  // Drops snapshots older than (current_round - threshold), matching
  // Algorithm 1 lines 34-35.
  void evict(int current_round);

  int threshold() const { return threshold_; }
  std::size_t size() const { return snapshots_.size(); }

  // Full-pool snapshot/restore for crash-recovery: in-flight stale updates
  // reference these rounds, so a resumed search needs the identical pool.
  const std::map<int, RoundSnapshot>& snapshots() const { return snapshots_; }
  void restore(std::map<int, RoundSnapshot> snapshots) {
    snapshots_ = std::move(snapshots);
  }

 private:
  int threshold_;
  std::map<int, RoundSnapshot> snapshots_;
};

}  // namespace fms
