// Concurrency-contention tests (ctest label: tsan).
//
// These run in every build, but their real job is a -DFMS_SANITIZE=thread
// build: `ctest -L tsan` must come back with zero reported races. They
// hammer exactly the surfaces the repo promises are thread-safe — the
// ThreadPool, concurrent MetricsRegistry recording from many threads, and
// whole FederatedSearch rounds running in parallel against the shared
// global Telemetry context.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/obs/metrics.h"
#include "src/obs/sinks.h"
#include "src/obs/telemetry.h"

namespace fms {
namespace {

TEST(TsanThreadPool, ParallelForUnderContention) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 2000;
  std::vector<int> hits(kTasks, 0);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(kTasks, [&](std::size_t i) {
      hits[i] += 1;  // disjoint per index: must be race-free by design
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i], 5);
  EXPECT_EQ(sum.load(), 5ULL * (kTasks * (kTasks - 1) / 2));
}

TEST(TsanThreadPool, ExceptionUnderContentionStillJoins) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 20; ++attempt) {
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](std::size_t i) {
                            if (i % 16 == 3) throw CheckError("expected");
                          }),
        CheckError);
  }
}

TEST(TsanMetrics, ConcurrentRecordingIsExact) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  // Pre-create one shared histogram so every thread contends on the same
  // instrument as well as on registry name lookup.
  obs::Histogram& shared = reg.histogram("tsan.shared", {1.0, 10.0, 100.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &shared, t] {
      for (int i = 0; i < kOps; ++i) {
        reg.counter("tsan.counter." + std::to_string(t % 4)).add(1);
        reg.gauge("tsan.gauge").add(1.0);
        shared.observe(static_cast<double>(i % 128));
        reg.histogram("tsan.shared", {}).observe(0.5);
      }
    });
  }
  // Snapshots race against the writers on purpose; values they read are
  // transient but the calls must be safe.
  for (int s = 0; s < 50; ++s) (void)reg.snapshot();
  for (auto& th : threads) th.join();

  std::uint64_t counted = 0;
  for (int c = 0; c < 4; ++c) {
    counted += reg.counter("tsan.counter." + std::to_string(c)).value();
  }
  EXPECT_EQ(counted, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_DOUBLE_EQ(reg.gauge("tsan.gauge").value(),
                   static_cast<double>(kThreads) * kOps);
  EXPECT_EQ(shared.count(), 2ULL * kThreads * kOps);
}

SearchConfig tsan_config(std::uint64_t seed) {
  SearchConfig cfg;
  cfg.supernet.num_cells = 2;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 3;
  cfg.seed = seed;
  return cfg;
}

struct RunResult {
  std::vector<double> rewards;
  std::vector<std::size_t> bytes_down;
};

RunResult run_rounds(std::uint64_t seed) {
  Rng rng(seed);
  SynthSpec spec;
  spec.train_size = 96;
  spec.test_size = 24;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = tsan_config(seed);
  auto parts =
      iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(2);
  SearchOptions opts;
  auto records = search.run_search(4, opts);
  RunResult out;
  for (const auto& r : records) {
    out.rewards.push_back(r.mean_reward);
    out.bytes_down.push_back(r.bytes_down);
  }
  return out;
}

TEST(TsanSearch, ParallelRoundsOnSharedTelemetryStayDeterministic) {
  // Two full searches run simultaneously, both recording spans and
  // metrics into the shared global Telemetry registry. TSan checks the
  // registry/sink locking; the assertions check that concurrency cannot
  // leak between searches — each thread's trajectory must be bitwise
  // identical to the same search run serially.
  obs::set_telemetry_enabled(true);
  obs::Telemetry::instance().registry().reset();

  RunResult parallel_a;
  RunResult parallel_b;
  {
    std::thread ta([&] { parallel_a = run_rounds(11); });
    std::thread tb([&] { parallel_b = run_rounds(23); });
    ta.join();
    tb.join();
  }
  const RunResult serial_a = run_rounds(11);
  const RunResult serial_b = run_rounds(23);

  obs::set_telemetry_enabled(false);
  obs::Telemetry::instance().registry().reset();

  EXPECT_EQ(parallel_a.rewards, serial_a.rewards);
  EXPECT_EQ(parallel_a.bytes_down, serial_a.bytes_down);
  EXPECT_EQ(parallel_b.rewards, serial_b.rewards);
  EXPECT_EQ(parallel_b.bytes_down, serial_b.bytes_down);
}

TEST(TsanTrace, JsonlWriterIsLineAtomicUnderThreadPool) {
  // N pool workers blast interleaved span events at one JsonlTraceWriter.
  // The sink's contract is line atomicity: the file must hold exactly one
  // complete, parseable JSON object per line no matter how writes race.
  const std::string path = "fms_tsan_trace.jsonl";
  constexpr std::size_t kEvents = 2000;
  constexpr int kWorkers = 8;
  {
    obs::JsonlTraceWriter writer(path);
    ThreadPool pool(kWorkers);
    pool.parallel_for(kEvents, [&](std::size_t i) {
      obs::TraceEvent ev;
      ev.type = "span";
      ev.name = "tsan.zone." + std::to_string(i % 5);
      ev.round = static_cast<int>(i);
      ev.label = "tsan";
      ev.fields.emplace_back("dur_s", 1e-6 * static_cast<double>(i));
      ev.fields.emplace_back("worker", static_cast<double>(i % kWorkers));
      writer.write(ev);
    });
    writer.flush();
    EXPECT_EQ(writer.events_written(), kEvents);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line " << lines;
    // One balanced JSON object per line — a torn write would break the
    // brace balance or leave an unterminated string.
    ASSERT_EQ(line.front(), '{') << "line " << lines;
    ASSERT_EQ(line.back(), '}') << "line " << lines;
    ASSERT_NE(line.find("\"type\":\"span\""), std::string::npos)
        << "line " << lines;
    ASSERT_NE(line.find("\"dur_s\":"), std::string::npos) << "line " << lines;
    ++lines;
  }
  EXPECT_EQ(lines, kEvents);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fms
