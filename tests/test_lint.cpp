// Fixture-driven tests for tools/fms_lint: every rule must fire on its
// known-bad fixture at the exact expected line, stay silent on clean
// code, and honor the fms-lint: allow(...) escape hatch in both its
// same-line and comment-line-above forms.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "tools/fms_lint/lint.h"

namespace {

using fms::lint::Finding;
using fms::lint::lint_file;
using fms::lint::lint_source;
using fms::lint::lint_tree;

std::string fixture(const std::string& name) {
  return std::string(FMS_LINT_FIXTURE_DIR) + "/" + name;
}

// (rule, line) pairs in file order — what the assertions compare.
std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.rule, f.line);
  return out;
}

using RL = std::vector<std::pair<std::string, int>>;

TEST(FmsLint, UnseededRngFiresAtExactLines) {
  EXPECT_EQ(rule_lines(lint_file(fixture("bad_rng.cpp"))),
            (RL{{"unseeded-rng", 7},
                {"unseeded-rng", 12},
                {"unseeded-rng", 13}}));
}

TEST(FmsLint, WallClockFiresAtExactLines) {
  EXPECT_EQ(rule_lines(lint_file(fixture("bad_wallclock.cpp"))),
            (RL{{"wall-clock", 7}, {"wall-clock", 12}}));
}

TEST(FmsLint, WallClockFiresInTraceExportPath) {
  // Pins wall-clock coverage of the obs trace-export path: the Chrome
  // exporter's contract is sim-time ticks, so a host-clock "ts" or a
  // metadata time() stamp in an exporter must keep firing.
  EXPECT_EQ(rule_lines(lint_file(fixture("obs/bad_trace_export.cpp"))),
            (RL{{"wall-clock", 12}, {"wall-clock", 17}}));
}

TEST(FmsLint, UnorderedContainerFiresInOrderingSensitivePath) {
  EXPECT_EQ(rule_lines(lint_file(fixture("core/bad_unordered.cpp"))),
            (RL{{"unordered-container", 5}, {"unordered-container", 7}}));
}

TEST(FmsLint, UnorderedContainerFiresInAggPath) {
  EXPECT_EQ(rule_lines(lint_file(fixture("agg/bad_unordered.cpp"))),
            (RL{{"unordered-container", 6}, {"unordered-container", 8}}));
}

TEST(FmsLint, FloatEqFiresAtExactLines) {
  EXPECT_EQ(rule_lines(lint_file(fixture("bad_float_eq.cpp"))),
            (RL{{"float-eq", 4}, {"float-eq", 6}, {"float-eq", 8}}));
}

TEST(FmsLint, MissingPragmaOnceReportsLineOne) {
  EXPECT_EQ(rule_lines(lint_file(fixture("bad_header.h"))),
            (RL{{"pragma-once", 1}}));
}

TEST(FmsLint, BareThrowFiresAtExactLine) {
  EXPECT_EQ(rule_lines(lint_file(fixture("bad_throw.cpp"))),
            (RL{{"bare-throw", 6}}));
}

TEST(FmsLint, NarrowingAccumFiresAtExactLines) {
  EXPECT_EQ(rule_lines(lint_file(fixture("agg/bad_narrowing_accum.cpp"))),
            (RL{{"narrowing-accum", 7},
                {"narrowing-accum", 14},
                {"narrowing-accum", 21}}));
}

TEST(FmsLint, NarrowingAccumIsPathScoped) {
  // The same narrowing accumulation outside src/agg / src/tensor is not
  // a hot reduction kernel and stays legal.
  const std::string src =
      "float f(const std::vector<double>& v) {\n"
      "  float acc = 0.0F;\n"
      "  for (double x : v) acc += static_cast<float>(x);\n"
      "  return acc;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/nn/layers.cpp", src).empty());
  EXPECT_EQ(lint_source("src/agg/robust.cpp", src).size(), 1U);
  EXPECT_EQ(lint_source("src/tensor/ops.cpp", src).size(), 1U);
}

TEST(FmsLint, NarrowingOutsideLoopIsLegal) {
  // Narrowing once after the loop is exactly the recommended pattern.
  const std::string src =
      "float f(const std::vector<double>& v) {\n"
      "  double acc = 0.0;\n"
      "  for (double x : v) acc += x;\n"
      "  float out = 0.0F;\n"
      "  out += static_cast<float>(acc);\n"
      "  return out;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/agg/robust.cpp", src).empty());
}

TEST(FmsLint, WideAccumulationInLoopIsLegal) {
  // The idioms the hot paths already use: a double accumulator fed
  // widened elements, and a float accumulator fed plain float products.
  const std::string src =
      "double g(const std::vector<float>& v) {\n"
      "  double sq = 0.0;\n"
      "  for (const float x : v) sq += static_cast<double>(x) * x;\n"
      "  float acc = 0.0F;\n"
      "  for (const float x : v) acc += x * x;\n"
      "  return sq + acc;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/agg/robust.cpp", src).empty());
}

TEST(FmsLint, SuppressionsSilenceEveryRule) {
  EXPECT_TRUE(lint_file(fixture("suppressed.cpp")).empty());
  EXPECT_TRUE(lint_file(fixture("suppressed.h")).empty());
  EXPECT_TRUE(lint_file(fixture("core/suppressed_unordered.cpp")).empty());
  EXPECT_TRUE(lint_file(fixture("agg/suppressed_narrowing.cpp")).empty());
}

TEST(FmsLint, WallClockExemptionIsNarrow) {
  // The fms_bench timestamp idiom: an annotated metadata std::time read
  // passes, but the exemption does not bleed onto an unannotated read
  // elsewhere in the same file.
  EXPECT_EQ(rule_lines(lint_file(fixture("bench_timestamp.cpp"))),
            (RL{{"wall-clock", 13}}));
}

TEST(FmsLint, CleanFilesProduceNoFindings) {
  EXPECT_TRUE(lint_file(fixture("clean.cpp")).empty());
  EXPECT_TRUE(lint_file(fixture("clean.h")).empty());
}

TEST(FmsLint, CommentsAndStringsNeverFire) {
  const std::string src =
      "// rand() and std::random_device in a comment\n"
      "/* system_clock in a block comment,\n"
      "   spanning lines with time(nullptr) */\n"
      "const char* s = \"srand(1); x == 0.5F\";\n"
      "const char* r = R\"(rand() == 1.0)\";\n";
  EXPECT_TRUE(lint_source("x.cpp", src).empty());
}

TEST(FmsLint, SanctionedFilesAreExempt) {
  EXPECT_TRUE(
      lint_source("src/common/rng.h",
                  "#pragma once\n#include <random>\nstd::random_device rd;\n")
          .empty());
  EXPECT_TRUE(
      lint_source("src/common/stopwatch.h",
                  "#pragma once\nauto t = std::chrono::system_clock::now();\n")
          .empty());
  // The same content elsewhere fires.
  EXPECT_EQ(lint_source("src/sim/devices.h",
                        "#pragma once\n#include <random>\n"
                        "std::random_device rd;\n")
                .size(),
            1U);
}

TEST(FmsLint, UnorderedRuleIsPathScoped) {
  const std::string src = "#include <unordered_map>\n";
  EXPECT_TRUE(lint_source("src/nn/layers.cpp", src).empty());
  EXPECT_EQ(lint_source("src/fed/messages.cpp", src).size(), 1U);
  EXPECT_EQ(lint_source("src/agg/aggregator.cpp", src).size(), 1U);
  EXPECT_EQ(lint_source("src/common/serialize.h",
                        "#pragma once\n#include <unordered_set>\n")
                .size(),
            1U);
}

TEST(FmsLint, IntegerEqualityIsLegal) {
  EXPECT_TRUE(lint_source("x.cpp", "bool f(int n) { return n == 0; }\n")
                  .empty());
  EXPECT_TRUE(lint_source("x.cpp", "bool g(long n) { return 10 != n; }\n")
                  .empty());
}

TEST(FmsLint, AllowChainsAcrossCommentLines) {
  const std::string src =
      "// fms-lint: allow(float-eq) -- reason\n"
      "// more prose between the annotation and the code\n"
      "bool f(float x) { return x == 0.5F; }\n";
  EXPECT_TRUE(lint_source("x.cpp", src).empty());
  // ...but a code line in between breaks the chain.
  const std::string broken =
      "// fms-lint: allow(float-eq) -- reason\n"
      "int y = 1;\n"
      "bool f(float x) { return x == 0.5F; }\n";
  EXPECT_EQ(lint_source("x.cpp", broken).size(), 1U);
}

TEST(FmsLint, MultiRuleAllowOnOneLine) {
  const std::string src =
      "#include <ctime>\n"
      "// fms-lint: allow(wall-clock, float-eq) -- both at once\n"
      "bool f() { return time(nullptr) == 0.0; }\n";
  EXPECT_TRUE(lint_source("x.cpp", src).empty());
}

TEST(FmsLint, TreeScanSkipsFixturesAndAcceptsFiles) {
  // The fixture directory is excluded from recursive scans by design...
  EXPECT_TRUE(lint_tree({std::string(FMS_LINT_FIXTURE_DIR)}).empty());
  // ...but naming a fixture file directly is deliberate and lints it.
  EXPECT_EQ(lint_tree({fixture("bad_throw.cpp")}).size(), 1U);
  EXPECT_THROW(lint_tree({fixture("no_such_file.cpp")}), fms::CheckError);
}

TEST(FmsLint, RuleListIsStable) {
  std::vector<std::string> ids;
  for (const auto& r : fms::lint::rules()) ids.emplace_back(r.id);
  EXPECT_EQ(ids, (std::vector<std::string>{
                     "unseeded-rng", "wall-clock", "unordered-container",
                     "float-eq", "pragma-once", "bare-throw",
                     "narrowing-accum"}));
}

}  // namespace
