// Tests for the run-report generator and trace differ
// (src/obs/report.*): byte-exact golden HTML over committed fixture
// artifacts, graceful degradation on missing inputs, the
// self-containment contract (no scripts, no external references), and
// the --compare primitive pinpointing the first diverging round/field.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/report.h"

namespace fms {
namespace {

std::string golden_dir() { return std::string(FMS_TEST_GOLDEN_DIR) + "/report"; }

obs::ReportInputs fixture_inputs() {
  obs::ReportInputs inputs;
  inputs.trace_jsonl_path = golden_dir() + "/trace.jsonl";
  inputs.metrics_csv_path = golden_dir() + "/metrics.csv";
  inputs.health_json_path = golden_dir() + "/health.json";
  inputs.bench_json_path = golden_dir() + "/bench.json";
  inputs.history_jsonl_path = golden_dir() + "/history.jsonl";
  inputs.peak_json_path = golden_dir() + "/peak.json";
  return inputs;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

TEST(ReportTest, GoldenReportMatchesCommittedFixture) {
  // The report is a deterministic function of its inputs; any change to
  // the HTML (layout, numbers, section order) must show up as a diff of
  // the committed golden file. Regenerate with:
  //   fms_report --out tests/golden/report/report.html \
  //     --trace tests/golden/report/trace.jsonl \
  //     --metrics tests/golden/report/metrics.csv \
  //     --health tests/golden/report/health.json \
  //     --bench tests/golden/report/bench.json \
  //     --history tests/golden/report/history.jsonl \
  //     --peak tests/golden/report/peak.json
  const std::string golden = slurp(golden_dir() + "/report.html");
  ASSERT_FALSE(golden.empty()) << "missing golden fixture report.html";
  const std::string html = obs::generate_report_html(fixture_inputs());
  EXPECT_EQ(html, golden);
}

TEST(ReportTest, GenerationIsDeterministic) {
  const std::string a = obs::generate_report_html(fixture_inputs());
  const std::string b = obs::generate_report_html(fixture_inputs());
  EXPECT_EQ(a, b);
}

TEST(ReportTest, ReportIsSelfContained) {
  const std::string html = obs::generate_report_html(fixture_inputs());
  // No scripts, no external fetches, no file-system paths leaked.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find(golden_dir()), std::string::npos);
  // And the real content made it in.
  EXPECT_NE(html.find("Round timeline"), std::string::npos);
  EXPECT_NE(html.find("Op roofline"), std::string::npos);
  EXPECT_NE(html.find("nn.conv_fwd"), std::string::npos);
  EXPECT_NE(html.find("nn.conv3x3_fwd"), std::string::npos);
}

TEST(ReportTest, MissingInputsDegradeToPlaceholders) {
  obs::ReportInputs inputs;  // every path empty
  inputs.title = "empty run";
  const std::string html = obs::generate_report_html(inputs);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("empty run"), std::string::npos);
  EXPECT_NE(html.find("no trace data"), std::string::npos);
  EXPECT_NE(html.find("no health data"), std::string::npos);
  EXPECT_NE(html.find("no bench data"), std::string::npos);
  EXPECT_NE(html.find("no metrics data"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);

  obs::ReportInputs absent = fixture_inputs();
  absent.trace_jsonl_path = "definitely_not_a_file.jsonl";
  const std::string partial = obs::generate_report_html(absent);
  EXPECT_NE(partial.find("no trace data"), std::string::npos);
  EXPECT_NE(partial.find("Search health"), std::string::npos);
}

TEST(ReportTest, DiffReportsIdenticalRunsAsIdentical) {
  const std::string text =
      "{\"type\":\"round\",\"name\":\"round\",\"round\":0,"
      "\"mean_reward\":0.5,\"arrived\":4}\n"
      "{\"type\":\"round\",\"name\":\"round\",\"round\":1,"
      "\"mean_reward\":0.625,\"arrived\":4}\n";
  write_file("fms_test_diff_a.jsonl", text);
  write_file("fms_test_diff_b.jsonl", text);
  const obs::RunDiff diff =
      obs::diff_runs("fms_test_diff_a.jsonl", "fms_test_diff_b.jsonl");
  EXPECT_TRUE(diff.identical);
  EXPECT_EQ(diff.rounds_a, 2);
  EXPECT_EQ(diff.rounds_b, 2);
  EXPECT_EQ(diff.first_diverging_round, -1);
  EXPECT_NE(obs::diff_summary(diff).find("identical"), std::string::npos);
  EXPECT_NE(obs::generate_diff_html(diff, "a", "b").find("IDENTICAL"),
            std::string::npos);
  std::remove("fms_test_diff_a.jsonl");
  std::remove("fms_test_diff_b.jsonl");
}

TEST(ReportTest, DiffPinpointsFirstDivergingRoundAndField) {
  // Runs agree through round 1, then round 2's mean_reward drifts; the
  // differ must name exactly that round and field with both values.
  const std::string head =
      "{\"type\":\"round\",\"name\":\"round\",\"round\":0,"
      "\"mean_reward\":0.5,\"moving_avg\":0.5}\n"
      "{\"type\":\"round\",\"name\":\"round\",\"round\":1,"
      "\"mean_reward\":0.625,\"moving_avg\":0.5625}\n";
  write_file("fms_test_diff_a.jsonl",
             head +
                 "{\"type\":\"round\",\"name\":\"round\",\"round\":2,"
                 "\"mean_reward\":0.75,\"moving_avg\":0.65625}\n");
  write_file("fms_test_diff_b.jsonl",
             head +
                 "{\"type\":\"round\",\"name\":\"round\",\"round\":2,"
                 "\"mean_reward\":0.8125,\"moving_avg\":0.65625}\n");
  const obs::RunDiff diff =
      obs::diff_runs("fms_test_diff_a.jsonl", "fms_test_diff_b.jsonl");
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_diverging_round, 2);
  EXPECT_EQ(diff.first_diverging_field, "mean_reward");
  EXPECT_DOUBLE_EQ(diff.value_a, 0.75);
  EXPECT_DOUBLE_EQ(diff.value_b, 0.8125);
  const std::string summary = obs::diff_summary(diff);
  EXPECT_NE(summary.find("round 2"), std::string::npos);
  EXPECT_NE(summary.find("mean_reward"), std::string::npos);
  EXPECT_NE(obs::generate_diff_html(diff, "a", "b").find("DIVERGED"),
            std::string::npos);
  std::remove("fms_test_diff_a.jsonl");
  std::remove("fms_test_diff_b.jsonl");
}

TEST(ReportTest, DiffFlagsTruncatedRuns) {
  const std::string round0 =
      "{\"type\":\"round\",\"name\":\"round\",\"round\":0,"
      "\"mean_reward\":0.5}\n";
  write_file("fms_test_diff_a.jsonl",
             round0 +
                 "{\"type\":\"round\",\"name\":\"round\",\"round\":1,"
                 "\"mean_reward\":0.625}\n");
  write_file("fms_test_diff_b.jsonl", round0);
  const obs::RunDiff diff =
      obs::diff_runs("fms_test_diff_a.jsonl", "fms_test_diff_b.jsonl");
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_diverging_round, 1);
  EXPECT_EQ(diff.first_diverging_field, "(missing round)");
  ASSERT_EQ(diff.notes.size(), 1U);
  EXPECT_NE(diff.notes[0].find("round counts differ"), std::string::npos);
  std::remove("fms_test_diff_a.jsonl");
  std::remove("fms_test_diff_b.jsonl");
}

TEST(ReportTest, DiffReportsUnreadableInputs) {
  const obs::RunDiff diff =
      obs::diff_runs("no_such_trace_a.jsonl", "no_such_trace_b.jsonl");
  EXPECT_FALSE(diff.identical);
  ASSERT_FALSE(diff.notes.empty());
  EXPECT_NE(diff.notes[0].find("cannot read"), std::string::npos);
}

TEST(ReportTest, WriteReportHtmlWritesTheFile) {
  obs::ReportInputs inputs;
  inputs.title = "smoke";
  obs::write_report_html(inputs, "fms_test_report_out.html");
  const std::string html = slurp("fms_test_report_out.html");
  EXPECT_NE(html.find("smoke"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  std::remove("fms_test_report_out.html");
}

}  // namespace
}  // namespace fms
