// Causal round tracing (src/obs/trace_ctx) and the crash flight recorder
// (src/obs/flight): deterministic trace/span ids, sim-time clock
// semantics, the Chrome trace-event exporter pinned by a golden file,
// ring-buffer eviction and dump format, and — the load-bearing
// guarantee — bit-identical search results with tracing on versus off.
// Selected with `ctest -L health` alongside the monitor tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/obs/flight.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace_ctx.h"

namespace fms {
namespace {

// Every test drives the process-global trace context; start and end clean
// so ordering between tests (and other test files) is moot.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing_enabled(false);
    obs::set_telemetry_enabled(false);
    obs::TraceContext::instance().reset();
    obs::Telemetry::instance().clear_sinks();
    obs::Telemetry::instance().registry().reset();
  }
  void TearDown() override { SetUp(); }
};

struct TinyWorld {
  TrainTest data;
  std::vector<std::vector<int>> partition;
  SearchConfig cfg;
};

// Callers must keep the returned TinyWorld at a stable address before
// constructing a FederatedSearch from it: participants keep pointers
// into `data`.
TinyWorld make_tiny_world(std::uint64_t seed) {
  Rng rng(seed);
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = seed;
  auto partition =
      iid_partition(data.train.size(), cfg.schedule.num_participants, rng);
  return TinyWorld{std::move(data), std::move(partition), cfg};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- deterministic ids ---

TEST_F(TraceTest, TraceAndSpanIdsArePureFunctions) {
  EXPECT_EQ(obs::make_trace_id(7, 3), obs::make_trace_id(7, 3));
  EXPECT_NE(obs::make_trace_id(7, 3), obs::make_trace_id(7, 4));
  EXPECT_NE(obs::make_trace_id(7, 3), obs::make_trace_id(8, 3));
  // Round 0 must not degenerate to the seed-only hash.
  EXPECT_NE(obs::make_trace_id(7, 0), obs::make_trace_id(7, -1));

  const std::uint64_t t = obs::make_trace_id(7, 3);
  EXPECT_EQ(obs::make_span_id(t, 1, obs::Stage::kArrive),
            obs::make_span_id(t, 1, obs::Stage::kArrive));
  EXPECT_NE(obs::make_span_id(t, 1, obs::Stage::kArrive),
            obs::make_span_id(t, 2, obs::Stage::kArrive));
  EXPECT_NE(obs::make_span_id(t, 1, obs::Stage::kArrive),
            obs::make_span_id(t, 1, obs::Stage::kScreen));
  // The server (-1) gets its own id space.
  EXPECT_NE(obs::make_span_id(t, -1, obs::Stage::kQuorum),
            obs::make_span_id(t, 0, obs::Stage::kQuorum));
}

TEST_F(TraceTest, StageNamesAreStable) {
  EXPECT_STREQ(obs::stage_name(obs::Stage::kDispatch), "dispatch");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kLocalTrain), "local_train");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kQuorum), "quorum");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kDrop), "drop");
}

// --- TraceContext clock + id stamping ---

TEST_F(TraceTest, RecordStampsSimTimeAndCohortTraceIds) {
  obs::TraceContext& ctx = obs::TraceContext::instance();
  ctx.configure(/*enabled=*/true, /*seed=*/42,
                /*chrome_path=*/"fms_test_trace_buffer.json",
                /*flight_capacity=*/0, /*flight_dump_path=*/"");

  ctx.begin_round(0);
  ctx.record(0, obs::Stage::kDispatch, 0.0, 0.0);
  ctx.record(0, obs::Stage::kTransmit, 0.25, 0.5, 1024.0);
  ctx.end_round(2.0);
  ctx.begin_round(1);
  // A stale arrival in round 1 keyed to its round-0 dispatch cohort.
  ctx.record(0, obs::Stage::kArrive, 0.5, 0.0, /*value=*/1.0, "stale",
             /*origin_round=*/0);
  ctx.record(1, obs::Stage::kArrive, 0.5, 0.0, /*value=*/0.0, "fresh");
  ctx.end_round(1.0);

  const std::vector<obs::LifecycleEvent> evs = ctx.events_snapshot();
  ASSERT_EQ(evs.size(), 4U);
  // Round 1 events sit past round 0's committed duration.
  EXPECT_DOUBLE_EQ(evs[0].ts_s, 0.0);
  EXPECT_DOUBLE_EQ(evs[1].ts_s, 0.25);
  EXPECT_DOUBLE_EQ(evs[2].ts_s, 2.5);
  EXPECT_DOUBLE_EQ(evs[3].ts_s, 2.5);
  // The stale arrival shares the round-0 cohort trace with the dispatch.
  EXPECT_EQ(evs[2].origin_round, 0);
  EXPECT_EQ(evs[2].trace_id, evs[0].trace_id);
  EXPECT_EQ(evs[2].trace_id, obs::make_trace_id(42, 0));
  // The fresh arrival belongs to round 1's cohort.
  EXPECT_EQ(evs[3].origin_round, 1);
  EXPECT_EQ(evs[3].trace_id, obs::make_trace_id(42, 1));
  EXPECT_NE(evs[3].trace_id, evs[2].trace_id);
  EXPECT_EQ(evs[2].span_id,
            obs::make_span_id(evs[2].trace_id, 0, obs::Stage::kArrive));

  // Disabled: record() must be a no-op even with a buffer configured.
  obs::set_tracing_enabled(false);
  ctx.record(0, obs::Stage::kDrop, 0.0, 0.0);
  EXPECT_EQ(ctx.num_events(), 4U);
}

TEST_F(TraceTest, EmptyRoundStillAdvancesTheClock) {
  obs::TraceContext& ctx = obs::TraceContext::instance();
  ctx.configure(true, 1, "fms_test_trace_buffer.json", 0, "");
  ctx.begin_round(0);
  ctx.end_round(0.0);  // everyone offline: zero committed duration
  EXPECT_GT(ctx.round_base_s(), 0.0);
}

// --- Chrome trace-event exporter, pinned by a committed golden file ---

std::vector<obs::LifecycleEvent> golden_events() {
  std::vector<obs::LifecycleEvent> evs;
  auto make = [](int round, int origin, int participant, obs::Stage stage,
                 double ts, double dur, double value, std::string detail) {
    obs::LifecycleEvent ev;
    ev.round = round;
    ev.origin_round = origin;
    ev.participant = participant;
    ev.stage = stage;
    ev.ts_s = ts;
    ev.dur_s = dur;
    ev.value = value;
    ev.detail = std::move(detail);
    ev.trace_id = obs::make_trace_id(/*seed=*/7, origin);
    ev.span_id = obs::make_span_id(ev.trace_id, participant, stage);
    return ev;
  };
  evs.push_back(make(0, 0, -1, obs::Stage::kQuorum, 2.0, 0.0, 2.0, "full"));
  evs.push_back(make(0, 0, 0, obs::Stage::kDispatch, 0.0, 0.0, 4096.0, ""));
  evs.push_back(make(0, 0, 0, obs::Stage::kTransmit, 0.0, 0.5, 4096.0, ""));
  evs.push_back(make(0, 0, 0, obs::Stage::kLocalTrain, 0.5, 0.0, 0.25, ""));
  evs.push_back(make(1, 0, 0, obs::Stage::kArrive, 2.5, 0.0, 1.0, "stale"));
  evs.push_back(
      make(1, 0, 0, obs::Stage::kScreen, 2.5, 0.0, 0.0, "rejected:grad_norm"));
  evs.push_back(make(1, 1, 1, obs::Stage::kDrop, 2.0, 0.0, 0.0, "dead_link"));
  return evs;
}

TEST_F(TraceTest, ChromeExportMatchesGoldenFile) {
  const std::string actual = obs::chrome_trace_json(golden_events());
  const std::string golden_path =
      std::string(FMS_TEST_GOLDEN_DIR) + "/trace_chrome.json";
  const std::string expected = read_file(golden_path);
  if (actual != expected) {
    // Bootstrap / update aid: leave the actual next to the test binary so
    // a deliberate format change can be reviewed and committed.
    std::ofstream out("trace_chrome.actual.json");
    out << actual;
  }
  EXPECT_EQ(actual, expected)
      << "exporter output drifted from tests/golden/trace_chrome.json "
         "(actual written to trace_chrome.actual.json)";
}

TEST_F(TraceTest, ChromeExportStructureIsWellFormed) {
  const std::string json = obs::chrome_trace_json(golden_events());
  // Header + metadata.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"participant 0\""), std::string::npos);
  // The transmit span is a duration event; instants carry the scope tag.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  // Causal ids reach the args of every event.
  EXPECT_NE(json.find("\"trace_id\":\"0x"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":\"0x"), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"rejected:grad_norm\""),
            std::string::npos);
}

TEST_F(TraceTest, ExportChromeWritesConfiguredFile) {
  const std::string path = "fms_test_trace_export.json";
  obs::TraceContext& ctx = obs::TraceContext::instance();
  ctx.configure(true, 9, path, 0, "");
  ctx.begin_round(0);
  ctx.record(0, obs::Stage::kDispatch, 0.0, 0.0);
  ctx.end_round(1.0);
  ctx.export_chrome();
  const std::string written = read_file(path);
  EXPECT_NE(written.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(written.find("\"name\":\"dispatch\""), std::string::npos);
  std::remove(path.c_str());
}

// --- flight recorder ---

obs::LifecycleEvent flight_event(int participant, int round, double value) {
  obs::LifecycleEvent ev;
  ev.round = round;
  ev.origin_round = round;
  ev.participant = participant;
  ev.stage = obs::Stage::kArrive;
  ev.value = value;
  return ev;
}

TEST_F(TraceTest, FlightRingEvictsOldestFirst) {
  obs::FlightRecorder fr(/*capacity_per_participant=*/3);
  for (int r = 0; r < 5; ++r) fr.record(flight_event(0, r, r));
  fr.record(flight_event(1, 0, 100.0));

  const std::vector<obs::LifecycleEvent> p0 = fr.events_for(0);
  ASSERT_EQ(p0.size(), 3U);  // capacity bounds the ring
  EXPECT_EQ(p0[0].round, 2);  // rounds 0 and 1 were evicted
  EXPECT_EQ(p0[1].round, 3);
  EXPECT_EQ(p0[2].round, 4);
  // Rings are per participant: p1 kept its single event.
  ASSERT_EQ(fr.events_for(1).size(), 1U);
  EXPECT_DOUBLE_EQ(fr.events_for(1)[0].value, 100.0);
  EXPECT_TRUE(fr.events_for(7).empty());
}

TEST_F(TraceTest, FlightDumpWritesHeaderAndAllRings) {
  const std::string path = "fms_test_flight_dump.jsonl";
  obs::FlightRecorder fr(4);
  fr.record(flight_event(-1, 0, 1.0));  // server ring
  fr.record(flight_event(2, 0, 2.0));
  fr.record(flight_event(0, 1, 3.0));
  fr.dump(path, "quorum_failure");
  EXPECT_EQ(fr.num_dumps(), 1U);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4U);  // header + 3 events
  EXPECT_NE(lines[0].find("\"type\":\"flight_header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"reason\":\"quorum_failure\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"events\":3"), std::string::npos);
  // Participants in ascending order, server (-1) first.
  EXPECT_NE(lines[1].find("\"participant\":-1"), std::string::npos);
  EXPECT_NE(lines[2].find("\"participant\":0"), std::string::npos);
  EXPECT_NE(lines[3].find("\"participant\":2"), std::string::npos);

  // A later dump rewrites the file (latest state wins).
  fr.record(flight_event(3, 2, 4.0));
  fr.dump(path, "crash");
  EXPECT_EQ(fr.num_dumps(), 2U);
  const std::string redump = read_file(path);
  EXPECT_NE(redump.find("\"reason\":\"crash\""), std::string::npos);
  EXPECT_NE(redump.find("\"events\":4"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, ContextDumpFlightUsesConfiguredPath) {
  const std::string path = "fms_test_ctx_flight.jsonl";
  obs::TraceContext& ctx = obs::TraceContext::instance();
  ctx.configure(true, 3, /*chrome_path=*/"", /*flight_capacity=*/8, path);
  ASSERT_NE(ctx.flight(), nullptr);
  EXPECT_EQ(ctx.flight()->capacity(), 8);
  ctx.begin_round(0);
  ctx.record(1, obs::Stage::kDrop, 0.0, 0.0, 0.0, "crash");
  // No chrome path: events feed only the flight ring, not the buffer.
  EXPECT_EQ(ctx.num_events(), 0U);
  ctx.dump_flight("health_crit:quorum");
  const std::string dump = read_file(path);
  EXPECT_NE(dump.find("\"reason\":\"health_crit:quorum\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"detail\":\"crash\""), std::string::npos);
  std::remove(path.c_str());
}

// --- the load-bearing contract: tracing must not perturb the search ---

TEST_F(TraceTest, TracingOnVersusOffIsBitIdentical) {
  const std::string chrome = "fms_test_trace_identity.json";
  const std::string flight = "fms_test_trace_identity_flight.jsonl";
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::slight();
  opts.quorum = 0.75;
  opts.fault_plan = FaultPlan::parse("dropout=0.1,link=0.1,seed=5");
  auto run = [&](bool traced) {
    TinyWorld w = make_tiny_world(55);
    if (traced) {
      w.cfg.telemetry.enabled = true;
      w.cfg.telemetry.health = true;
      w.cfg.telemetry.trace_chrome_path = chrome;
      w.cfg.telemetry.flight_recorder = 8;
      w.cfg.telemetry.flight_dump_path = flight;
    }
    FederatedSearch search(w.cfg, w.data.train, w.partition);
    search.run_warmup(1);
    std::vector<RoundRecord> records = search.run_search(4, opts);
    const Genotype genotype = search.derive();
    if (traced) {
      EXPECT_GT(obs::TraceContext::instance().num_events(), 0U);
    }
    obs::Telemetry::instance().finish();
    obs::Telemetry::instance().clear_sinks();
    obs::set_telemetry_enabled(false);
    obs::set_tracing_enabled(false);
    obs::TraceContext::instance().reset();
    return std::make_pair(std::move(records), genotype.to_string());
  };
  const auto off = run(false);
  const auto on = run(true);

  ASSERT_EQ(off.first.size(), on.first.size());
  for (std::size_t i = 0; i < off.first.size(); ++i) {
    EXPECT_EQ(off.first[i].mean_reward, on.first[i].mean_reward);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].moving_avg, on.first[i].moving_avg);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].baseline, on.first[i].baseline);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].alpha_entropy, on.first[i].alpha_entropy);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].arrived, on.first[i].arrived);
    EXPECT_EQ(off.first[i].dropped, on.first[i].dropped);
    EXPECT_EQ(off.first[i].bytes_down, on.first[i].bytes_down);
    EXPECT_EQ(off.first[i].mean_tau, on.first[i].mean_tau);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].partial_quorum, on.first[i].partial_quorum);
    // The untraced run's records must stay at the health defaults.
    EXPECT_EQ(off.first[i].health, 0);
    EXPECT_TRUE(off.first[i].health_trips.empty());
  }
  EXPECT_EQ(off.second, on.second);
  std::remove(chrome.c_str());
  std::remove(flight.c_str());
}

TEST_F(TraceTest, SearchEmitsFullLifecycleWithSharedCohortTraces) {
  const std::string chrome = "fms_test_trace_lifecycle.json";
  TinyWorld w = make_tiny_world(21);
  w.cfg.telemetry.enabled = true;
  w.cfg.telemetry.trace_chrome_path = chrome;
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::severe();
  {
    FederatedSearch search(w.cfg, w.data.train, w.partition);
    search.run_warmup(1);
    search.run_search(6, opts);

    const std::vector<obs::LifecycleEvent> evs =
        obs::TraceContext::instance().events_snapshot();
    std::set<obs::Stage> stages;
    bool stale_cross_round = false;
    for (const obs::LifecycleEvent& ev : evs) {
      stages.insert(ev.stage);
      if (ev.stage == obs::Stage::kArrive && ev.origin_round < ev.round) {
        // A stale arrival must carry its dispatch cohort's trace id.
        EXPECT_EQ(ev.trace_id,
                  obs::make_trace_id(w.cfg.seed, ev.origin_round));
        stale_cross_round = true;
      }
    }
    EXPECT_TRUE(stages.count(obs::Stage::kDispatch));
    EXPECT_TRUE(stages.count(obs::Stage::kTransmit));
    EXPECT_TRUE(stages.count(obs::Stage::kLocalTrain));
    EXPECT_TRUE(stages.count(obs::Stage::kArrive));
    EXPECT_TRUE(stages.count(obs::Stage::kAggregate));
    EXPECT_TRUE(stages.count(obs::Stage::kQuorum));
    EXPECT_TRUE(stale_cross_round)
        << "severe staleness over 6 rounds must produce a cross-round "
           "arrival";
  }
  obs::Telemetry::instance().finish();
  // finish() exported the configured chrome trace.
  EXPECT_FALSE(read_file(chrome).empty());
  std::remove(chrome.c_str());
}

}  // namespace
}  // namespace fms
