// Tests for the telemetry subsystem (src/obs): histogram buckets and
// quantiles, counter/gauge concurrency under the thread pool, JSONL trace
// output, span recording, and the disabled-telemetry fast path.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/sinks.h"
#include "src/obs/span.h"
#include "src/obs/telemetry.h"

namespace fms::obs {
namespace {

// Each test drives the process-global Telemetry context; start from a
// clean slate so ordering does not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_telemetry_enabled(false);
    Telemetry::instance().clear_sinks();
    Telemetry::instance().registry().reset();
    Telemetry::instance().set_label("");
  }
  void TearDown() override { SetUp(); }
};

// Minimal structural validator for one JSON object per line: balanced
// braces outside strings, even number of unescaped quotes, object form.
bool looks_like_json_object(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : line) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST_F(ObsTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSetsAndAdds) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST_F(ObsTest, HistogramBucketsAndStats) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (double x : {0.5, 1.5, 1.7, 3.0, 9.0}) h.observe(x);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.7);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  // Buckets: (-inf,1], (1,2], (2,4], (4,8], (8,inf).
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[4], 1u);
}

TEST_F(ObsTest, HistogramQuantilesInterpolate) {
  // 100 observations spread one per unit across ten linear buckets: the
  // quantile estimate must land within one bucket width of the truth.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram h(bounds);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 10.0);
  // Quantiles are clamped to the observed range and ordered.
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
  // Empty histogram is defined and returns zero.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST_F(ObsTest, HistogramQuantileSingleBucketUsesMinMax) {
  Histogram h({1000.0});
  for (double x : {10.0, 20.0, 30.0, 40.0}) h.observe(x);
  // Everything lands in one bucket; interpolation is clamped to [10, 40].
  EXPECT_GE(h.quantile(0.5), 10.0);
  EXPECT_LE(h.quantile(0.5), 40.0);
}

TEST_F(ObsTest, RegistryReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  Counter& a2 = reg.counter("a");
  EXPECT_EQ(&a, &a2);
  a.add(3);
  EXPECT_EQ(reg.counter("a").value(), 3u);
  // Histogram bounds are fixed by the first creation.
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {5.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
  EXPECT_EQ(reg.find_histogram("h"), &h);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST_F(ObsTest, CountersAndHistogramsAreThreadSafeUnderPool) {
  MetricsRegistry reg;
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 256;
  constexpr int kPerTask = 50;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    // Mixed named lookups exercise the registry mutex; add/observe
    // exercise the lock-free instrument paths.
    Counter& c = reg.counter("pool.counter");
    Histogram& h = reg.histogram("pool.hist", {0.25, 0.5, 0.75, 1.0});
    Gauge& g = reg.gauge("pool.gauge");
    for (int j = 0; j < kPerTask; ++j) {
      c.add();
      h.observe(static_cast<double>((i + static_cast<std::size_t>(j)) % 100) /
                100.0);
      g.add(1.0);
    }
  });
  EXPECT_EQ(reg.counter("pool.counter").value(), kTasks * kPerTask);
  EXPECT_EQ(reg.histogram("pool.hist").count(), kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.gauge").value(),
                   static_cast<double>(kTasks * kPerTask));
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : reg.histogram("pool.hist").bucket_counts()) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
}

TEST_F(ObsTest, JsonlWriterEmitsOneParsableObjectPerLine) {
  const std::string path = "fms_test_trace.jsonl";
  set_telemetry_enabled(true);
  auto writer = std::make_shared<JsonlTraceWriter>(path);
  Telemetry::instance().add_sink(writer);
  Telemetry::instance().set_round(7);

  { FMS_SPAN("unit_phase"); }
  TraceEvent round_ev;
  round_ev.type = "round";
  round_ev.name = "round";
  round_ev.round = 7;
  round_ev.fields = {{"mean_reward", 0.5}, {"arrived", 10.0}};
  Telemetry::instance().emit(std::move(round_ev));
  TraceEvent meta;
  meta.type = "meta";
  meta.name = "needs \"escaping\"\n";
  Telemetry::instance().emit(std::move(meta));
  writer->flush();
  EXPECT_EQ(writer->events_written(), 3u);

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  int lines = 0;
  bool saw_span = false, saw_round = false;
  while (std::getline(f, line)) {
    ++lines;
    EXPECT_TRUE(looks_like_json_object(line)) << line;
    if (line.find("\"type\":\"span\"") != std::string::npos) saw_span = true;
    if (line.find("\"type\":\"round\"") != std::string::npos) saw_round = true;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_round);
  std::remove(path.c_str());
}

TEST_F(ObsTest, SpanRecordsDurationHistogramAndRoundTag) {
  set_telemetry_enabled(true);
  {
    FMS_SPAN("timed_phase");
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  const Histogram* h =
      Telemetry::instance().registry().find_histogram("span.timed_phase");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GT(h->sum(), 0.0);
  EXPECT_LT(h->sum(), 10.0);  // sanity: well under ten seconds
}

TEST_F(ObsTest, DisabledTelemetryProducesZeroEvents) {
  const std::string path = "fms_test_disabled_trace.jsonl";
  auto writer = std::make_shared<JsonlTraceWriter>(path);
  Telemetry::instance().add_sink(writer);
  ASSERT_FALSE(telemetry_enabled());

  { FMS_SPAN("dead_phase"); }
  TraceEvent ev;
  ev.type = "round";
  ev.name = "round";
  Telemetry::instance().emit(std::move(ev));

  EXPECT_EQ(writer->events_written(), 0u);
  EXPECT_EQ(Telemetry::instance().registry().find_histogram("span.dead_phase"),
            nullptr);
  std::remove(path.c_str());
}

TEST_F(ObsTest, ConfigureInstallsSinksAndFinishWritesCsv) {
  const std::string trace = "fms_test_cfg_trace.jsonl";
  const std::string csv = "fms_test_cfg_metrics.csv";
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.trace_jsonl_path = trace;
  cfg.metrics_csv_path = csv;
  Telemetry::instance().configure(cfg);
  EXPECT_TRUE(telemetry_enabled());
  EXPECT_EQ(Telemetry::instance().num_sinks(), 1u);

  Telemetry::instance().registry().counter("fms.updates.arrived").add(12);
  Telemetry::instance().registry().gauge("fms.policy.baseline").set(0.4);
  Telemetry::instance()
      .registry()
      .histogram("span.sample", {0.001, 0.01})
      .observe(0.002);
  Telemetry::instance().finish();

  std::ifstream f(csv);
  ASSERT_TRUE(f.good());
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "metric,type,value,count,sum,min,max,p50,p95,p99");
  int rows = 0;
  std::string line;
  bool saw_counter = false;
  while (std::getline(f, line)) {
    ++rows;
    if (line.rfind("fms.updates.arrived,counter,12", 0) == 0) {
      saw_counter = true;
    }
  }
  EXPECT_EQ(rows, 3);
  EXPECT_TRUE(saw_counter);
  std::remove(trace.c_str());
  std::remove(csv.c_str());
}

TEST_F(ObsTest, ConsoleRoundSinkHonorsCadence) {
  // Route the console sink to a temp FILE and count emitted lines.
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ConsoleRoundSink sink(10, tmp);
  for (int r = 0; r < 25; ++r) {
    TraceEvent ev;
    ev.type = "round";
    ev.name = "round";
    ev.round = r;
    ev.fields = {{"mean_reward", 0.1}, {"moving_avg", 0.2}, {"arrived", 4.0},
                 {"dropped", 0.0}};
    sink.write(ev);
  }
  sink.flush();
  std::rewind(tmp);
  int lines = 0;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), tmp) != nullptr) ++lines;
  std::fclose(tmp);
  EXPECT_EQ(lines, 3);  // rounds 0, 10, 20
}

TEST_F(ObsTest, SpanBucketsPinSubMillisecondQuantileError) {
  // FMS_SPAN histograms use the dense 12-per-decade grid: on the coarse
  // 1-2-5 grid every sub-millisecond zone collapses into one or two
  // buckets and interpolated p99 is off by up to ~60%. Pin the grid's
  // shape and its promised error bound on synthetic sub-ms durations.
  const std::vector<double> edges = default_span_buckets();
  ASSERT_GE(edges.size(), 100U);
  EXPECT_DOUBLE_EQ(edges.front(), 1e-7);
  EXPECT_NEAR(edges.back(), 100.0, 5.0);
  const double ratio = std::pow(10.0, 1.0 / 12.0);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_NEAR(edges[i] / edges[i - 1], ratio, 1e-9) << "edge " << i;
  }

  Histogram h(edges);
  constexpr int kN = 2000;
  std::vector<double> values;
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    // 50us .. 950us, uniform — the regime the old grid flattened.
    const double v = 50e-6 + (900e-6 * i) / (kN - 1);
    values.push_back(v);
    h.observe(v);
  }
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    const double exact = values[static_cast<std::size_t>(q * (kN - 1))];
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, 0.10 * exact) << "q = " << q;
  }
}

TEST_F(ObsTest, DefaultBucketHelpers) {
  const std::vector<double> t = default_time_buckets();
  ASSERT_FALSE(t.empty());
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i], t[i - 1]);
  EXPECT_DOUBLE_EQ(t.front(), 1e-6);
  EXPECT_DOUBLE_EQ(t.back(), 100.0);
  const std::vector<double> lin = linear_buckets(5);
  ASSERT_EQ(lin.size(), 6u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[5], 5.0);
}

}  // namespace
}  // namespace fms::obs
