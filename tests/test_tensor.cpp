// Unit tests for the tensor substrate: shapes, arithmetic, conv/pool
// forward results on hand-computed cases, and gradient checks against
// central finite differences.
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace fms {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.ndim(), 4);
  EXPECT_EQ(t.numel(), 120u);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_FLOAT_EQ(t.sum(), 0.0F);
}

TEST(Tensor, FillAndArithmetic) {
  Tensor a = Tensor::full({2, 2}, 1.5F);
  Tensor b = Tensor::full({2, 2}, 0.5F);
  Tensor c = a + b;
  EXPECT_FLOAT_EQ(c.sum(), 8.0F);
  c -= a;
  EXPECT_FLOAT_EQ(c.sum(), 2.0F);
  c *= 4.0F;
  EXPECT_FLOAT_EQ(c.sum(), 8.0F);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2});
  Tensor b({2, 3});
  EXPECT_THROW(a += b, CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Rng rng(1);
  Tensor a = Tensor::randn({2, 6}, rng);
  Tensor b = a.reshaped({3, 4});
  EXPECT_EQ(b.dim(0), 3);
  EXPECT_FLOAT_EQ(a.sum(), b.sum());
  EXPECT_THROW(a.reshaped({5, 5}), CheckError);
}

TEST(Tensor, L2Norm) {
  Tensor a({2}, std::vector<float>{3.0F, 4.0F});
  EXPECT_FLOAT_EQ(a.l2_norm(), 5.0F);
}

TEST(Ops, ConvOutSize) {
  EXPECT_EQ(conv_out_size(16, 3, 1, 1, 1), 16);
  EXPECT_EQ(conv_out_size(16, 3, 2, 1, 1), 8);
  EXPECT_EQ(conv_out_size(16, 3, 1, 2, 2), 16);  // dilated, same-pad
  EXPECT_EQ(conv_out_size(16, 1, 2, 0, 1), 8);
}

TEST(Ops, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1.0 copies the input.
  Rng rng(2);
  Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  Tensor w = Tensor::full({1, 1, 1, 1}, 1.0F);
  Tensor y = conv2d_forward(x, w, Conv2dSpec{});
  ASSERT_EQ(y.numel(), x.numel());
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Ops, Conv2dHandComputed3x3) {
  // All-ones 2x2 input, all-ones 3x3 kernel, padding 1: each output counts
  // how many input pixels its window covers.
  Tensor x = Tensor::full({1, 1, 2, 2}, 1.0F);
  Tensor w = Tensor::full({1, 1, 3, 3}, 1.0F);
  Tensor y = conv2d_forward(x, w, Conv2dSpec{1, 1, 1, 1});
  ASSERT_EQ(y.dim(2), 2);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 4.0F);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 4.0F);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 4.0F);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 4.0F);
}

TEST(Ops, Conv2dGroupsDepthwise) {
  // Depthwise conv: each channel convolved independently.
  Tensor x({1, 2, 1, 1}, std::vector<float>{2.0F, 3.0F});
  Tensor w({2, 1, 1, 1}, std::vector<float>{10.0F, 100.0F});
  Tensor y = conv2d_forward(x, w, Conv2dSpec{1, 0, 1, 2});
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 20.0F);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 300.0F);
}

// Central finite-difference gradient check for conv2d.
void check_conv_grads(const Conv2dSpec& spec, int cin, int cout, int k,
                      int hw) {
  Rng rng(7);
  Tensor x = Tensor::randn({2, cin, hw, hw}, rng);
  Tensor w = Tensor::randn({cout, cin / spec.groups, k, k}, rng, 0.5F);
  Tensor y = conv2d_forward(x, w, spec);
  // Scalar objective: sum of conv output weighted by a fixed random tensor.
  Tensor gy = Tensor::randn(y.shape(), rng);
  Conv2dGrads grads = conv2d_backward(x, w, gy, spec);

  auto objective = [&](const Tensor& xx, const Tensor& ww) {
    Tensor yy = conv2d_forward(xx, ww, spec);
    double s = 0.0;
    for (std::size_t i = 0; i < yy.numel(); ++i) s += yy[i] * gy[i];
    return s;
  };

  const float eps = 1e-3F;
  for (std::size_t i = 0; i < std::min<std::size_t>(x.numel(), 20); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double fd = (objective(xp, w) - objective(xm, w)) / (2.0 * eps);
    EXPECT_NEAR(grads.grad_x[i], fd, 2e-2) << "grad_x at " << i;
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(w.numel(), 20); ++i) {
    Tensor wp = w, wm = w;
    wp[i] += eps;
    wm[i] -= eps;
    const double fd = (objective(x, wp) - objective(x, wm)) / (2.0 * eps);
    EXPECT_NEAR(grads.grad_w[i], fd, 2e-2) << "grad_w at " << i;
  }
}

TEST(Ops, Conv2dGradCheckPlain) {
  check_conv_grads(Conv2dSpec{1, 1, 1, 1}, 2, 3, 3, 5);
}

TEST(Ops, Conv2dGradCheckStride2) {
  check_conv_grads(Conv2dSpec{2, 1, 1, 1}, 2, 2, 3, 6);
}

TEST(Ops, Conv2dGradCheckDilated) {
  check_conv_grads(Conv2dSpec{1, 2, 2, 1}, 2, 2, 3, 6);
}

TEST(Ops, Conv2dGradCheckDepthwise) {
  check_conv_grads(Conv2dSpec{1, 1, 1, 3}, 3, 3, 3, 5);
}

TEST(Ops, MaxPoolForwardBackward) {
  Tensor x({1, 1, 2, 2}, std::vector<float>{1.0F, 5.0F, 3.0F, 2.0F});
  MaxPoolResult res = maxpool2d_forward(x, 2, 2, 0);
  ASSERT_EQ(res.y.numel(), 1u);
  EXPECT_FLOAT_EQ(res.y[0], 5.0F);
  Tensor gy({1, 1, 1, 1}, std::vector<float>{2.0F});
  Tensor gx = maxpool2d_backward(x, res, gy);
  EXPECT_FLOAT_EQ(gx[1], 2.0F);  // gradient routed to the max element
  EXPECT_FLOAT_EQ(gx[0], 0.0F);
}

TEST(Ops, AvgPoolForward) {
  Tensor x({1, 1, 2, 2}, std::vector<float>{1.0F, 5.0F, 3.0F, 2.0F});
  Tensor y = avgpool2d_forward(x, 2, 2, 0);
  EXPECT_FLOAT_EQ(y[0], 2.75F);
}

TEST(Ops, AvgPoolGradCheck) {
  Rng rng(11);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor y = avgpool2d_forward(x, 3, 1, 1);
  Tensor gy = Tensor::randn(y.shape(), rng);
  Tensor gx = avgpool2d_backward(x, gy, 3, 1, 1);
  const float eps = 1e-3F;
  auto objective = [&](const Tensor& xx) {
    Tensor yy = avgpool2d_forward(xx, 3, 1, 1);
    double s = 0.0;
    for (std::size_t i = 0; i < yy.numel(); ++i) s += yy[i] * gy[i];
    return s;
  };
  for (std::size_t i = 0; i < 16; ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(gx[i], (objective(xp) - objective(xm)) / (2.0 * eps), 1e-2);
  }
}

TEST(Ops, GlobalAvgPool) {
  Tensor x({1, 2, 2, 2},
           std::vector<float>{1.0F, 2.0F, 3.0F, 4.0F, 10.0F, 10.0F, 10.0F, 10.0F});
  Tensor y = global_avgpool_forward(x);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 2.5F);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 10.0F);
  Tensor gy({1, 2}, std::vector<float>{4.0F, 8.0F});
  Tensor gx = global_avgpool_backward(x, gy);
  EXPECT_FLOAT_EQ(gx.at4(0, 0, 0, 0), 1.0F);
  EXPECT_FLOAT_EQ(gx.at4(0, 1, 1, 1), 2.0F);
}

TEST(Ops, ReLU) {
  Tensor x({4}, std::vector<float>{-1.0F, 0.0F, 2.0F, -3.0F});
  Tensor y = relu_forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_FLOAT_EQ(y[2], 2.0F);
  Tensor gy = Tensor::full({4}, 1.0F);
  Tensor gx = relu_backward(x, gy);
  EXPECT_FLOAT_EQ(gx[0], 0.0F);
  EXPECT_FLOAT_EQ(gx[2], 1.0F);
}

TEST(Ops, MatmulVariants) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0F);

  // a^T stored as [3,2]: matmul_tn(a_T, b) should equal matmul(a, b).
  Tensor a_t({3, 2}, std::vector<float>{1, 4, 2, 5, 3, 6});
  Tensor c2 = matmul_tn(a_t, b);
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c2[i], c[i]);

  // b^T stored as [2,3]: matmul_nt(a, b_T) should equal matmul(a, b).
  Tensor b_t({2, 3}, std::vector<float>{7, 9, 11, 8, 10, 12});
  Tensor c3 = matmul_nt(a, b_t);
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_FLOAT_EQ(c3[i], c[i]);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor logits = Tensor::randn({4, 7}, rng, 3.0F);
  Tensor p = softmax(logits);
  for (int i = 0; i < 4; ++i) {
    float s = 0.0F;
    for (int j = 0; j < 7; ++j) {
      EXPECT_GT(p.at2(i, j), 0.0F);
      s += p.at2(i, j);
    }
    EXPECT_NEAR(s, 1.0F, 1e-5F);
  }
}

TEST(Ops, SoftmaxNumericalStability) {
  Tensor logits({1, 3}, std::vector<float>{1000.0F, 1000.0F, 1000.0F});
  Tensor p = softmax(logits);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(p.at2(0, j), 1.0F / 3.0F, 1e-5F);
}

TEST(Ops, CrossEntropyPerfectPrediction) {
  Tensor logits({2, 3}, std::vector<float>{100, 0, 0, 0, 100, 0});
  CrossEntropyResult res = cross_entropy(logits, {0, 1});
  EXPECT_NEAR(res.loss, 0.0F, 1e-4F);
  EXPECT_FLOAT_EQ(res.accuracy, 1.0F);
}

TEST(Ops, CrossEntropyGradCheck) {
  Rng rng(5);
  Tensor logits = Tensor::randn({3, 4}, rng);
  std::vector<int> labels{1, 3, 0};
  CrossEntropyResult res = cross_entropy(logits, labels);
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const double fd = (cross_entropy(lp, labels).loss -
                       cross_entropy(lm, labels).loss) /
                      (2.0 * eps);
    EXPECT_NEAR(res.grad_logits[i], fd, 1e-3) << "logit grad at " << i;
  }
}

TEST(Ops, CrossEntropyUniformLoss) {
  // Uniform logits: loss = log(C).
  Tensor logits = Tensor::zeros({4, 10});
  CrossEntropyResult res = cross_entropy(logits, {0, 1, 2, 3});
  EXPECT_NEAR(res.loss, std::log(10.0F), 1e-4F);
}

TEST(Ops, CrossEntropyBadLabelThrows) {
  Tensor logits = Tensor::zeros({1, 3});
  EXPECT_THROW(cross_entropy(logits, {5}), CheckError);
}

}  // namespace
}  // namespace fms
