// Edge cases and failure injection for the core orchestrator: total
// update loss, staleness beyond the memory-pool threshold, single
// participant, empty rounds, and retraining corner cases.
#include "gtest/gtest.h"
#include "src/core/retrain.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"

namespace fms {
namespace {

SearchConfig tiny_config() {
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.seed = 99;
  return cfg;
}

TrainTest tiny_data(Rng& rng) {
  SynthSpec spec;
  spec.train_size = 120;
  spec.test_size = 30;
  spec.image_size = 8;
  return make_synth_c10(spec, rng);
}

TEST(CoreEdge, AllUpdatesLostStillRuns) {
  // A staleness distribution with zero mass anywhere: every update
  // exceeds the threshold. The search must survive rounds with no
  // arrivals and leave alpha untouched.
  Rng rng(1);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), 3, rng);
  FederatedSearch search(cfg, tt.train, parts);
  const float alpha_before = search.policy().alpha().l2_norm();
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution(std::vector<double>{});
  auto records = search.run_search(5, opts);
  for (const auto& r : records) {
    EXPECT_EQ(r.arrived, 0);
    EXPECT_EQ(r.dropped, 3);
  }
  EXPECT_FLOAT_EQ(search.policy().alpha().l2_norm(), alpha_before);
}

TEST(CoreEdge, StalenessBeyondPoolThresholdIsDropped) {
  // Delays of 7 rounds exceed the pool threshold (5): those updates must
  // be counted as dropped, not applied.
  Rng rng(2);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), 3, rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  std::vector<double> p(8, 0.0);
  p[0] = 0.5;
  p[7] = 0.5;  // half fresh, half 7 rounds late
  opts.staleness = StalenessDistribution(p);
  auto records = search.run_search(10, opts);
  int dropped = 0, arrived = 0;
  for (const auto& r : records) {
    dropped += r.dropped;
    arrived += r.arrived;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(arrived, 0);
}

TEST(CoreEdge, SingleParticipantSearchWorks) {
  Rng rng(3);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  std::vector<std::vector<int>> parts(1);
  for (int i = 0; i < tt.train.size(); ++i) parts[0].push_back(i);
  FederatedSearch search(cfg, tt.train, parts);
  auto records = search.run_search(4, SearchOptions{});
  for (const auto& r : records) EXPECT_EQ(r.arrived, 1);
  EXPECT_EQ(search.derive().normal.size(), 4u);
}

TEST(CoreEdge, EmptyPartitionThrows) {
  Rng rng(4);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  std::vector<std::vector<int>> parts;
  EXPECT_THROW(FederatedSearch(cfg, tt.train, parts), CheckError);
}

TEST(CoreEdge, CompensatedSearchMatchesHardSyncWhenAllFresh) {
  // With a 100%-fresh distribution, the soft-sync path must follow the
  // exact same update trajectory as hard sync.
  Rng rng(5);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), 3, rng);
  auto run = [&](StalePolicy policy) {
    FederatedSearch search(cfg, tt.train, parts);
    SearchOptions opts;
    opts.stale_policy = policy;
    opts.staleness = StalenessDistribution::none();
    search.run_search(5, opts);
    return search.policy().alpha().flatten();
  };
  EXPECT_EQ(run(StalePolicy::kHardSync), run(StalePolicy::kCompensate));
}

TEST(CoreEdge, EvaluateHandlesPartialLastBatch) {
  Rng rng(6);
  TrainTest tt = tiny_data(rng);  // 30 test samples
  SupernetConfig scfg = tiny_config().supernet;
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a) row.fill(0.0F);
  Genotype g = discretize(a, a, 2);
  Rng net_rng(7);
  DiscreteNet net(g, scfg, net_rng);
  const double acc = evaluate(net, tt.test, 16);  // 16 + 14 split
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(CoreEdge, CentralizedTrainEvalEveryLargerThanEpochs) {
  Rng rng(8);
  TrainTest tt = tiny_data(rng);
  SupernetConfig scfg = tiny_config().supernet;
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a) row.fill(0.0F);
  Genotype g = discretize(a, a, 2);
  Rng net_rng(9);
  DiscreteNet net(g, scfg, net_rng);
  Rng train_rng(10);
  RetrainResult res = centralized_train(net, tt.train, tt.test, 2, 16,
                                        SGD::Options{}, nullptr, train_rng,
                                        /*eval_every=*/100);
  // The final epoch always evaluates; best/final must be populated.
  EXPECT_GT(res.final_test_accuracy, 0.0);
  EXPECT_GE(res.best_test_accuracy, res.final_test_accuracy - 1e-9);
}

TEST(CoreEdge, DiscreteNetDeterministicGivenSeed) {
  SupernetConfig scfg = tiny_config().supernet;
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a) row.fill(0.25F);
  Genotype g = discretize(a, a, 2);
  Rng r1(11), r2(11);
  DiscreteNet n1(g, scfg, r1), n2(g, scfg, r2);
  ASSERT_EQ(n1.params().size(), n2.params().size());
  for (std::size_t i = 0; i < n1.params().size(); ++i) {
    EXPECT_EQ(n1.params()[i]->value.vec(), n2.params()[i]->value.vec());
  }
}

TEST(CoreEdge, GenotypeToStringNamesOps) {
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a) {
    row.fill(0.0F);
    row[static_cast<std::size_t>(OpType::kMaxPool3)] = 5.0F;
  }
  Genotype g = discretize(a, a, 2);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("max_pool_3x3"), std::string::npos);
  EXPECT_NE(s.find("normal"), std::string::npos);
  EXPECT_NE(s.find("reduce"), std::string::npos);
}

// Fixed-logits stub to test the evaluation loop in isolation.
class StubNet : public TrainableNet {
 public:
  explicit StubNet(int predicted_class) : predicted_(predicted_class) {}

  Tensor forward(const Tensor& x, bool /*train*/) override {
    Tensor logits({x.dim(0), 10});
    for (int i = 0; i < x.dim(0); ++i) logits.at2(i, predicted_) = 10.0F;
    return logits;
  }
  void backward(const Tensor&) override {}
  const std::vector<Param*>& params() override { return params_; }
  void zero_grad() override {}
  std::size_t param_count() const override { return 0; }

 private:
  int predicted_;
  std::vector<Param*> params_;
};

TEST(CoreEdge, EvaluateCountsExactly) {
  // A stub that always predicts class 3 must score exactly the fraction
  // of class-3 samples, independent of batch boundaries.
  Dataset data(10, 1, 2, 2);
  for (int i = 0; i < 23; ++i) {
    data.add(std::vector<float>(4, 0.0F), i % 10);
  }
  StubNet net(3);
  // 23 samples: labels 0..9,0..9,0,1,2 -> class 3 appears twice.
  const double acc = evaluate(net, data, 7);  // uneven batches on purpose
  EXPECT_NEAR(acc, 2.0 / 23.0, 1e-9);
}

TEST(CoreEdge, SynthDatasetsDeterministicGivenSeed) {
  SynthSpec spec;
  spec.train_size = 30;
  spec.test_size = 10;
  spec.image_size = 8;
  Rng a(77), b(77);
  TrainTest ta = make_synth_c10(spec, a);
  TrainTest tb = make_synth_c10(spec, b);
  ASSERT_EQ(ta.train.size(), tb.train.size());
  for (int i = 0; i < ta.train.size(); ++i) {
    EXPECT_EQ(ta.train.label(i), tb.train.label(i));
    auto ia = ta.train.image(i);
    auto ib = tb.train.image(i);
    for (std::size_t p = 0; p < ia.size(); ++p) {
      ASSERT_FLOAT_EQ(ia[p], ib[p]);
    }
  }
}

TEST(CoreEdge, FederatedTrainCurveStructure) {
  Rng rng(21);
  TrainTest tt = tiny_data(rng);
  SupernetConfig scfg = tiny_config().supernet;
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a) row.fill(0.0F);
  Genotype g = discretize(a, a, 2);
  Rng net_rng(22);
  DiscreteNet net(g, scfg, net_rng);
  auto parts = iid_partition(tt.train.size(), 3, rng);
  Rng train_rng(23);
  RetrainResult res = federated_train(net, tt.train, parts, tt.test, 7, 8,
                                      SGD::Options{}, nullptr, train_rng,
                                      /*eval_every=*/3);
  ASSERT_EQ(res.curve.size(), 7u);
  // Evaluations land on rounds 2, 5 (1-indexed 3, 6) and the final round.
  EXPECT_GT(res.curve[2].val_acc, 0.0);
  EXPECT_GT(res.curve[5].val_acc, 0.0);
  EXPECT_GT(res.curve[6].val_acc, 0.0);
  EXPECT_DOUBLE_EQ(res.curve[0].val_acc, 0.0);  // not an eval round
}

TEST(CoreEdge, SearchBytesAccountingIsMonotonic) {
  Rng rng(12);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), 2, rng);
  FederatedSearch search(cfg, tt.train, parts);
  search.run_search(2, SearchOptions{});
  const std::size_t down1 = search.total_bytes_down();
  const std::size_t up1 = search.total_bytes_up();
  EXPECT_GT(down1, 0u);
  EXPECT_GT(up1, 0u);
  search.run_search(2, SearchOptions{});
  EXPECT_GT(search.total_bytes_down(), down1);
  EXPECT_GT(search.total_bytes_up(), up1);
}

}  // namespace
}  // namespace fms
