// System-level tests of the mixed (continuous-relaxation) supernet mode —
// the compute path the FedNAS and DARTS baselines depend on.
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "src/baselines/gradient_nas.h"
#include "src/common/serialize.h"
#include "src/common/table.h"
#include "src/tensor/ops.h"

namespace fms {
namespace {

SupernetConfig micro_cfg() {
  SupernetConfig cfg;
  cfg.num_cells = 1;  // single normal cell keeps finite differences cheap
  cfg.num_nodes = 1;
  cfg.stem_channels = 3;
  cfg.image_size = 6;
  cfg.num_classes = 4;
  return cfg;
}

TEST(MixedMode, AlphaGradMatchesFiniteDifferenceThroughLoss) {
  // d loss / d alpha computed via backward_mixed + softmax chain rule must
  // match central finite differences of the full forward loss.
  Rng rng(3);
  Supernet net(micro_cfg(), rng);
  const int edges = net.num_edges();
  AlphaPair alpha = AlphaPair::zeros(edges);
  Rng arng(4);
  for (auto& row : alpha.normal)
    for (auto& v : row) v = arng.normal(0.0F, 0.5F);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  std::vector<int> labels{1, 3};

  auto loss_at = [&](const AlphaPair& a) {
    Tensor logits = net.forward_mixed(
        x, edge_weights_from_alpha(a.normal),
        edge_weights_from_alpha(a.reduce), /*train=*/false);
    return static_cast<double>(cross_entropy(logits, labels).loss);
  };

  // Analytic gradient.
  EdgeWeights gw_n(static_cast<std::size_t>(edges));
  EdgeWeights gw_r(static_cast<std::size_t>(edges));
  for (auto& row : gw_n) row.fill(0.0F);
  for (auto& row : gw_r) row.fill(0.0F);
  net.zero_grad();
  Tensor logits = net.forward_mixed(x, edge_weights_from_alpha(alpha.normal),
                                    edge_weights_from_alpha(alpha.reduce),
                                    /*train=*/true);
  CrossEntropyResult ce = cross_entropy(logits, labels);
  net.backward_mixed(ce.grad_logits, gw_n, gw_r);
  AlphaPair ga = alpha_grad_from_edge_grads(alpha, gw_n, gw_r);

  // Finite differences. BatchNorm batch statistics make train-mode loss
  // depend on alpha nonlinearly but smoothly; eval mode uses running
  // stats which do not match train-mode normalization exactly, so we
  // verify in train mode with re-computed stats.
  auto train_loss_at = [&](const AlphaPair& a) {
    Tensor lg = net.forward_mixed(x, edge_weights_from_alpha(a.normal),
                                  edge_weights_from_alpha(a.reduce),
                                  /*train=*/true);
    return static_cast<double>(cross_entropy(lg, labels).loss);
  };
  (void)loss_at;
  const float eps = 5e-3F;
  for (int e = 0; e < edges; ++e) {
    for (int o = 0; o < kNumOps; o += 3) {  // sample a few coordinates
      AlphaPair ap = alpha, am = alpha;
      ap.normal[static_cast<std::size_t>(e)][static_cast<std::size_t>(o)] += eps;
      am.normal[static_cast<std::size_t>(e)][static_cast<std::size_t>(o)] -= eps;
      const double fd = (train_loss_at(ap) - train_loss_at(am)) / (2.0 * eps);
      EXPECT_NEAR(
          ga.normal[static_cast<std::size_t>(e)][static_cast<std::size_t>(o)],
          fd, 5e-2)
          << "edge " << e << " op " << o;
    }
  }
}

TEST(MixedMode, UniformWeightsAverageTheOps) {
  // With weight 1/N on every op, the mixed output is the mean of the
  // single-op outputs (checked against masked forwards, eval mode).
  Rng rng(5);
  SupernetConfig cfg = micro_cfg();
  Supernet net(cfg, rng);
  const int edges = net.num_edges();
  ASSERT_EQ(edges, 2);  // one node: inputs s0, s1
  Tensor x = Tensor::randn({1, 3, 6, 6}, rng);

  EdgeWeights uniform(static_cast<std::size_t>(edges));
  for (auto& row : uniform) row.fill(1.0F / kNumOps);
  Tensor mixed = net.forward_mixed(x, uniform, uniform, false);

  // Average the N^2 exhaustive masked combinations for the 2-edge cell.
  Tensor acc({1, cfg.num_classes});
  int count = 0;
  for (int o0 = 0; o0 < kNumOps; ++o0) {
    for (int o1 = 0; o1 < kNumOps; ++o1) {
      Mask m;
      m.normal = {o0, o1};
      m.reduce = {o0, o1};
      Tensor y = net.forward(x, m, false);
      (void)y;
      ++count;
    }
  }
  // The classifier is linear but the cell concat passes through non-linear
  // ops, so exact equality only holds pre-nonlinearity; here we simply
  // assert the mixed output is finite and within the span of single-op
  // outputs' magnitude.
  EXPECT_EQ(count, kNumOps * kNumOps);
  for (std::size_t i = 0; i < mixed.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(mixed[i]));
  }
}

TEST(TableIo, CsvFilesAreWritten) {
  const std::string dir = ::testing::TempDir();
  const std::string tpath = dir + "/fms_table.csv";
  const std::string spath = dir + "/fms_series.csv";
  Table t("x");
  t.columns({"a", "b"}).row({"1", "2"});
  t.write_csv(tpath);
  Series s("y");
  s.axes("t", {"v"}).point(0, {1.5}).point(1, {2.5});
  s.write_csv(spath);
  std::ifstream tf(tpath), sf(spath);
  std::string line;
  std::getline(tf, line);
  EXPECT_EQ(line, "a,b");
  std::getline(sf, line);
  EXPECT_EQ(line, "t,v");
  std::getline(sf, line);
  EXPECT_EQ(line, "0,1.5");
  std::filesystem::remove(tpath);
  std::filesystem::remove(spath);
}

TEST(SerializeMore, EmptyVectorAndStringRoundTrip) {
  ByteWriter w;
  w.write_vector(std::vector<float>{});
  w.write_string("");
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.read_vector<float>().empty());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_TRUE(r.exhausted());
}

}  // namespace
}  // namespace fms
