// Tests for the in-process profiler and the tensor allocation ledger
// (src/obs/profile.*, src/obs/alloc.h): zone-tree structure and
// exclusive/inclusive time bookkeeping, exact and deterministic
// allocation accounting across federated rounds (including a checkpoint
// resume), the telemetry emission path, and — the load-bearing guarantee
// — bit-identical search results with profiling on versus off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/obs/alloc.h"
#include "src/obs/profile.h"
#include "src/obs/sinks.h"
#include "src/obs/telemetry.h"
#include "src/tensor/tensor.h"

namespace fms {
namespace {

// Every test drives the process-global profiler/ledger flags; start and
// end clean so ordering between tests (and other test files) is moot.
class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_telemetry_enabled(false);
    obs::set_profiling_enabled(false);
    obs::set_alloc_tracking_enabled(false);
    obs::reset_profiler();
    obs::reset_alloc_stats();
    obs::Telemetry::instance().clear_sinks();
    obs::Telemetry::instance().registry().reset();
  }
  void TearDown() override { SetUp(); }
};

struct TinyWorld {
  TrainTest data;
  std::vector<std::vector<int>> partition;
  SearchConfig cfg;
};

// Callers must keep the returned TinyWorld at a stable address before
// constructing a FederatedSearch from it: participants keep pointers
// into `data`.
TinyWorld make_tiny_world(std::uint64_t seed) {
  Rng rng(seed);
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = seed;
  auto partition =
      iid_partition(data.train.size(), cfg.schedule.num_participants, rng);
  return TinyWorld{std::move(data), std::move(partition), cfg};
}

const obs::ZoneStats* find_zone(const obs::ProfileReport& report,
                                const std::string& path) {
  for (const obs::ZoneStats& z : report.zones) {
    if (z.path == path) return &z;
  }
  return nullptr;
}

TEST_F(ProfileTest, ZoneTreeTracksNestingCallsAndExclusiveTime) {
  obs::set_profiling_enabled(true);
  obs::reset_profiler();
  for (int i = 0; i < 3; ++i) {
    FMS_PROFILE_ZONE("outer");
    FMS_PROFILE_BYTES(100);
    {
      FMS_PROFILE_ZONE("inner");
      FMS_PROFILE_BYTES(10);
    }
    {
      FMS_PROFILE_ZONE("inner");
    }
  }
  const obs::ProfileReport report = obs::collect_profile();
  obs::set_profiling_enabled(false);

  const obs::ZoneStats* outer = find_zone(report, "outer");
  const obs::ZoneStats* inner = find_zone(report, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 3U);
  EXPECT_EQ(inner->calls, 6U);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->bytes, 300U);
  EXPECT_EQ(inner->bytes, 30U);  // only the first inner block adds bytes
  // Exclusive time is inclusive minus the children's inclusive, exactly.
  EXPECT_GE(outer->incl_ns, inner->incl_ns);
  EXPECT_EQ(outer->excl_ns, outer->incl_ns - inner->incl_ns);
  EXPECT_EQ(inner->excl_ns, inner->incl_ns);
}

TEST_F(ProfileTest, CollectIsDeterministicAndSelfTimeTableRenders) {
  obs::set_profiling_enabled(true);
  obs::reset_profiler();
  {
    FMS_PROFILE_ZONE("b_zone");
    { FMS_PROFILE_ZONE("child"); }
  }
  { FMS_PROFILE_ZONE("a_zone"); }
  const obs::ProfileReport first = obs::collect_profile();
  const obs::ProfileReport second = obs::collect_profile();
  obs::set_profiling_enabled(false);

  ASSERT_EQ(first.zones.size(), second.zones.size());
  for (std::size_t i = 0; i < first.zones.size(); ++i) {
    EXPECT_EQ(first.zones[i].path, second.zones[i].path);
    EXPECT_EQ(first.zones[i].calls, second.zones[i].calls);
    EXPECT_EQ(first.zones[i].incl_ns, second.zones[i].incl_ns);
  }
  // DFS order with lexicographic siblings: a_zone before b_zone, the
  // child right after its parent.
  std::vector<std::string> paths;
  for (const obs::ZoneStats& z : first.zones) paths.push_back(z.path);
  EXPECT_EQ(paths, (std::vector<std::string>{"a_zone", "b_zone",
                                             "b_zone/child"}));

  const std::string table = obs::self_time_table(first);
  EXPECT_NE(table.find("self_ms"), std::string::npos);
  EXPECT_NE(table.find("b_zone/child"), std::string::npos);
}

TEST_F(ProfileTest, LedgerCountsTensorLifecyclesExactly) {
  obs::set_alloc_tracking_enabled(true);
  obs::reset_alloc_stats();
  {
    Tensor a({64}, 1.0F);            // 256 B
    Tensor b = a;                    // copy: +256 B
    Tensor c = std::move(b);         // move: no new storage
    Tensor d({32}, 0.0F);            // 128 B
    d = a;                           // frees 128 B, allocates 256 B
    (void)c;
  }
  const obs::AllocStats s = obs::alloc_stats();
  obs::set_alloc_tracking_enabled(false);

  EXPECT_EQ(s.allocs, 4U);  // a, copy, d, d=a
  EXPECT_EQ(s.frees, 4U);   // d's old storage + 3 live tensors at scope end
  EXPECT_EQ(s.total_bytes, 256U + 256U + 128U + 256U);
  EXPECT_EQ(s.live_bytes, 0);
  // Peak hits inside d = a: a (256) + c (256, via b) + d's new copy (256).
  EXPECT_EQ(s.peak_live_bytes, 3 * 256);
}

TEST_F(ProfileTest, SearchAllocCountsAreExactReproducibleAndLeakFree) {
  // Two identical searches must produce identical ledgers (the counters
  // are part of the deterministic surface), and once every op's
  // activation cache has been exercised, live bytes after each round
  // must be exactly flat — a per-round leak would grow them. A 1-cell,
  // 1-node space makes cache warm-up finish within the warm phase
  // (layers allocate their caches lazily, on the first round whose
  // sampled mask selects them).
  SearchOptions opts;
  std::vector<obs::AllocStats> per_run;
  std::vector<std::vector<std::int64_t>> per_round_live;
  for (int run = 0; run < 2; ++run) {
    TinyWorld w = make_tiny_world(77);
    w.cfg.supernet.num_cells = 1;
    w.cfg.supernet.num_nodes = 1;
    FederatedSearch search(w.cfg, w.data.train, w.partition);
    obs::set_alloc_tracking_enabled(true);
    obs::reset_alloc_stats();
    search.run_warmup(1);
    search.run_search(25, opts);  // warm phase: saturates every op cache
    std::vector<std::int64_t> live;
    for (int r = 0; r < 5; ++r) {
      search.run_search(1, opts);
      live.push_back(obs::alloc_stats().live_bytes);
    }
    per_run.push_back(obs::alloc_stats());
    per_round_live.push_back(live);
    obs::set_alloc_tracking_enabled(false);
    obs::reset_alloc_stats();
  }

  EXPECT_GT(per_run[0].allocs, 0U);
  EXPECT_EQ(per_run[0].allocs, per_run[1].allocs);
  EXPECT_EQ(per_run[0].frees, per_run[1].frees);
  EXPECT_EQ(per_run[0].total_bytes, per_run[1].total_bytes);
  EXPECT_EQ(per_run[0].peak_live_bytes, per_run[1].peak_live_bytes);
  for (std::size_t r = 1; r < per_round_live[0].size(); ++r) {
    EXPECT_EQ(per_round_live[0][r], per_round_live[0][0])
        << "live bytes drifted at steady-state round " << r;
  }
  EXPECT_EQ(per_round_live[0], per_round_live[1]);
}

TEST_F(ProfileTest, ResumedSearchMatchesOriginalAllocCounters) {
  // The ledger delta of rounds replayed after a checkpoint restore must
  // equal the original run's delta for the same rounds: restore rebuilds
  // the exact tensor traffic, not an approximation of it.
  SearchOptions opts;
  TinyWorld w = make_tiny_world(91);
  FederatedSearch original(w.cfg, w.data.train, w.partition);
  original.run_warmup(1);
  original.run_search(1, opts);
  const SearchCheckpoint ckpt = original.checkpoint();

  obs::set_alloc_tracking_enabled(true);
  obs::reset_alloc_stats();
  const std::vector<RoundRecord> tail = original.run_search(2, opts);
  const obs::AllocStats original_delta = obs::alloc_stats();
  obs::set_alloc_tracking_enabled(false);
  obs::reset_alloc_stats();

  TinyWorld w2 = make_tiny_world(91);
  FederatedSearch resumed(w2.cfg, w2.data.train, w2.partition);
  resumed.restore(ckpt);
  obs::set_alloc_tracking_enabled(true);
  obs::reset_alloc_stats();
  const std::vector<RoundRecord> replay = resumed.run_search(2, opts);
  const obs::AllocStats resumed_delta = obs::alloc_stats();
  obs::set_alloc_tracking_enabled(false);
  obs::reset_alloc_stats();

  // Allocation traffic (new tensors, bytes) must match the original
  // exactly. Frees are excluded from the cross-run comparison: the
  // original releases activation caches filled before the measurement
  // window, while the restored search's caches start empty (freeing an
  // empty tensor is a no-op in the ledger).
  EXPECT_EQ(original_delta.allocs, resumed_delta.allocs);
  EXPECT_EQ(original_delta.total_bytes, resumed_delta.total_bytes);

  // A second restore from the same checkpoint must reproduce the first
  // resumed run's ledger bit for bit — frees and peak included.
  TinyWorld w3 = make_tiny_world(91);
  FederatedSearch resumed2(w3.cfg, w3.data.train, w3.partition);
  resumed2.restore(ckpt);
  obs::set_alloc_tracking_enabled(true);
  obs::reset_alloc_stats();
  resumed2.run_search(2, opts);
  const obs::AllocStats resumed2_delta = obs::alloc_stats();
  obs::set_alloc_tracking_enabled(false);
  obs::reset_alloc_stats();
  EXPECT_EQ(resumed_delta.allocs, resumed2_delta.allocs);
  EXPECT_EQ(resumed_delta.frees, resumed2_delta.frees);
  EXPECT_EQ(resumed_delta.total_bytes, resumed2_delta.total_bytes);
  EXPECT_EQ(resumed_delta.peak_live_bytes, resumed2_delta.peak_live_bytes);

  ASSERT_EQ(tail.size(), replay.size());
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].mean_reward, replay[i].mean_reward);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(tail[i].arrived, replay[i].arrived);
  }
}

TEST_F(ProfileTest, ProfilingOnVersusOffIsBitIdentical) {
  // The disabled-path guarantee cuts both ways: turning the profiler and
  // the ledger ON must not perturb a single bit of the search trajectory
  // (they only observe — no RNG draws, no float reordering).
  SearchOptions opts;
  auto run = [&](bool profiled) {
    TinyWorld w = make_tiny_world(55);
    FederatedSearch search(w.cfg, w.data.train, w.partition);
    obs::set_profiling_enabled(profiled);
    obs::set_alloc_tracking_enabled(profiled);
    obs::reset_profiler();
    obs::reset_alloc_stats();
    search.run_warmup(1);
    std::vector<RoundRecord> records = search.run_search(3, opts);
    const Genotype genotype = search.derive();
    obs::set_profiling_enabled(false);
    obs::set_alloc_tracking_enabled(false);
    return std::make_pair(std::move(records), genotype.to_string());
  };
  const auto off = run(false);
  const auto on = run(true);

  ASSERT_EQ(off.first.size(), on.first.size());
  for (std::size_t i = 0; i < off.first.size(); ++i) {
    EXPECT_EQ(off.first[i].mean_reward, on.first[i].mean_reward);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].moving_avg, on.first[i].moving_avg);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].baseline, on.first[i].baseline);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].arrived, on.first[i].arrived);
    EXPECT_EQ(off.first[i].bytes_down, on.first[i].bytes_down);
  }
  EXPECT_EQ(off.second, on.second);
}

TEST_F(ProfileTest, SearchZonesShowUpInProfileAndTelemetry) {
  const std::string trace = "fms_test_profile_trace.jsonl";
  SearchOptions opts;
  TinyWorld w = make_tiny_world(33);
  w.cfg.telemetry.enabled = true;
  w.cfg.telemetry.profile = true;
  w.cfg.telemetry.trace_jsonl_path = trace;
  obs::Telemetry::instance().configure(w.cfg.telemetry);
  obs::reset_profiler();
  obs::reset_alloc_stats();

  FederatedSearch search(w.cfg, w.data.train, w.partition);
  search.run_warmup(1);
  search.run_search(1, opts);

  const obs::ProfileReport report = obs::collect_profile();
  EXPECT_NE(find_zone(report, "round"), nullptr);
  EXPECT_NE(find_zone(report, "round/local_train/nas.forward/nn.conv_fwd"),
            nullptr);
  EXPECT_NE(find_zone(report, "round/aggregate"), nullptr);
  const obs::ZoneStats* fwd =
      find_zone(report, "round/local_train/nas.forward");
  ASSERT_NE(fwd, nullptr);
  EXPECT_GT(fwd->alloc_bytes, 0U);

  obs::Telemetry::instance().finish();
  obs::Telemetry::instance().clear_sinks();
  obs::set_telemetry_enabled(false);

  std::ifstream in(trace);
  ASSERT_TRUE(in.good());
  bool saw_profile_event = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"profile\"") != std::string::npos &&
        line.find("excl_ns") != std::string::npos) {
      saw_profile_event = true;
    }
  }
  EXPECT_TRUE(saw_profile_event);
  const double prof_gauge = obs::Telemetry::instance()
                                .registry()
                                .gauge("fms.prof.round.calls")
                                .value();
  EXPECT_GT(prof_gauge, 0.0);
  const double alloc_gauge = obs::Telemetry::instance()
                                 .registry()
                                 .gauge("fms.alloc.allocs")
                                 .value();
  EXPECT_GT(alloc_gauge, 0.0);
  std::remove(trace.c_str());
}

TEST_F(ProfileTest, PeakRssGaugeIsPositive) {
  EXPECT_GT(obs::peak_rss_bytes(), 0U);
}

}  // namespace
}  // namespace fms
