// Tests for the fms_bench harness core: the BENCH_perf.json codec must
// round-trip exactly, the --compare regression gate must fail on an
// injected slowdown past the gate and pass within it, and the harness
// itself must produce deterministic allocation accounting for a
// synthetic benchmark with known tensor traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/tensor/tensor.h"
#include "tools/fms_bench/bench.h"

namespace {

using fms::bench::BenchFile;
using fms::bench::Benchmark;
using fms::bench::BenchResult;
using fms::bench::compare_bench_files;
using fms::bench::CompareOutcome;
using fms::bench::parse_bench_json;
using fms::bench::run_benchmarks;
using fms::bench::RunOptions;
using fms::bench::to_json;
using fms::bench::ZoneSummary;

BenchResult make_result(const std::string& name, double median_ns) {
  BenchResult r;
  r.name = name;
  r.median_ns = median_ns;
  r.p10_ns = median_ns * 0.9;
  r.p90_ns = median_ns * 1.3;
  r.bytes_alloc = 4096;
  r.allocs = 7;
  r.iters = 20;
  r.repeats = 9;
  r.zones["agg.estimate"] = ZoneSummary{20, 123456};
  r.zones["agg.estimate/agg.mean"] = ZoneSummary{20, 100000};
  return r;
}

BenchFile make_file(const std::vector<BenchResult>& results,
                    long long stamp) {
  return parse_bench_json(to_json(results, stamp));
}

TEST(BenchJson, RoundTripPreservesEveryField) {
  const std::vector<BenchResult> results = {make_result("agg.mean_m10", 52341.5),
                                            make_result("nn.conv3x3_fwd", 987.25)};
  const BenchFile file = parse_bench_json(to_json(results, 1754400000LL));

  EXPECT_EQ(file.schema, 1);
  EXPECT_EQ(file.timestamp_unix, 1754400000LL);
  ASSERT_EQ(file.benchmarks.size(), 2U);

  const BenchResult& r = file.benchmarks.at("agg.mean_m10");
  EXPECT_DOUBLE_EQ(r.median_ns, 52341.5);
  EXPECT_DOUBLE_EQ(r.p10_ns, 52341.5 * 0.9);
  EXPECT_DOUBLE_EQ(r.p90_ns, 52341.5 * 1.3);
  EXPECT_EQ(r.bytes_alloc, 4096U);
  EXPECT_EQ(r.allocs, 7U);
  EXPECT_EQ(r.iters, 20);
  EXPECT_EQ(r.repeats, 9);
  ASSERT_EQ(r.zones.size(), 2U);
  EXPECT_EQ(r.zones.at("agg.estimate").calls, 20U);
  EXPECT_EQ(r.zones.at("agg.estimate").incl_ns, 123456U);
  EXPECT_EQ(r.zones.at("agg.estimate/agg.mean").incl_ns, 100000U);
}

TEST(BenchJson, ReparseIsIdempotent) {
  const std::vector<BenchResult> results = {make_result("ckpt.serialize", 3.5e6)};
  const std::string once = to_json(results, 42);
  const BenchFile parsed = parse_bench_json(once);
  std::vector<BenchResult> again;
  for (const auto& [name, r] : parsed.benchmarks) again.push_back(r);
  EXPECT_EQ(to_json(again, parsed.timestamp_unix), once);
}

TEST(BenchJson, MalformedInputThrows) {
  EXPECT_THROW(parse_bench_json("{ not json"), fms::CheckError);
  EXPECT_THROW(parse_bench_json(""), fms::CheckError);
  EXPECT_THROW(parse_bench_json("{\"schema\": 99, \"benchmarks\": {}}"),
               fms::CheckError);
  // Trailing garbage after a valid document must not be silently ignored.
  const std::string valid = to_json({make_result("x", 1.0)}, 0);
  EXPECT_THROW(parse_bench_json(valid + "}"), fms::CheckError);
}

TEST(BenchCompare, InjectedTwentyPercentSlowdownFailsTenPercentGate) {
  const BenchFile oldf = make_file({make_result("agg.mean_m10", 50000.0),
                                    make_result("nn.bn_fwd", 900.0)},
                                   1);
  // Inject a 20% regression on one benchmark; leave the other flat.
  const BenchFile newf = make_file({make_result("agg.mean_m10", 60000.0),
                                    make_result("nn.bn_fwd", 900.0)},
                                   2);
  const CompareOutcome out = compare_bench_files(oldf, newf, 10.0);
  EXPECT_FALSE(out.ok);
  ASSERT_EQ(out.rows.size(), 2U);
  const auto& row = out.rows[0];
  EXPECT_EQ(row.name, "agg.mean_m10");
  EXPECT_TRUE(row.regressed);
  EXPECT_NEAR(row.delta_pct, 20.0, 1e-9);
  EXPECT_FALSE(out.rows[1].regressed);
  EXPECT_NE(fms::bench::format_compare(out).find("FAIL"), std::string::npos);
}

TEST(BenchCompare, WithinGateAndSpeedupsPass) {
  const BenchFile oldf = make_file({make_result("a", 1000.0),
                                    make_result("b", 1000.0)},
                                   1);
  // +5% is inside a 10% gate; -40% is a speedup and never gates.
  const BenchFile newf = make_file({make_result("a", 1050.0),
                                    make_result("b", 600.0)},
                                   2);
  const CompareOutcome out = compare_bench_files(oldf, newf, 10.0);
  EXPECT_TRUE(out.ok);
  EXPECT_NE(fms::bench::format_compare(out).find("PASS"), std::string::npos);
}

TEST(BenchCompare, TracksAppearingAndDisappearingBenchmarks) {
  const BenchFile oldf = make_file({make_result("kept", 100.0),
                                    make_result("removed", 100.0)},
                                   1);
  const BenchFile newf = make_file({make_result("kept", 100.0),
                                    make_result("added", 100.0)},
                                   2);
  const CompareOutcome out = compare_bench_files(oldf, newf, 10.0);
  EXPECT_TRUE(out.ok);  // membership changes inform, they do not gate
  ASSERT_EQ(out.rows.size(), 1U);
  EXPECT_EQ(out.rows[0].name, "kept");
  EXPECT_EQ(out.only_old, std::vector<std::string>{"removed"});
  EXPECT_EQ(out.only_new, std::vector<std::string>{"added"});
}

TEST(BenchHarness, FilterSelectsSubsetAndRunsIt) {
  std::vector<Benchmark> list;
  list.push_back({"alpha.one", 4, []() -> std::function<void()> {
                    return [] {};
                  }});
  list.push_back({"beta.two", 4, []() -> std::function<void()> {
                    return [] {};
                  }});
  RunOptions opts;
  opts.repeats = 3;
  opts.warmup = 1;
  opts.filter = "beta";
  const std::vector<BenchResult> results = run_benchmarks(list, opts);
  ASSERT_EQ(results.size(), 1U);
  EXPECT_EQ(results[0].name, "beta.two");
  EXPECT_EQ(results[0].repeats, 3);
  EXPECT_GE(results[0].median_ns, 0.0);
  EXPECT_LE(results[0].p10_ns, results[0].p90_ns);
}

TEST(BenchHarness, AccountingPassReportsExactTensorTraffic) {
  // Each iteration allocates (and frees) one 256-float tensor, so the
  // single accounting repetition of `iters` iterations must see exactly
  // iters allocations of 1 KiB each — independent of repeats/warmup,
  // which run with the ledger off.
  std::vector<Benchmark> list;
  list.push_back({"synthetic.alloc", 6, []() -> std::function<void()> {
                    return [] {
                      fms::Tensor t({256}, 1.0F);
                      (void)t;
                    };
                  }});
  RunOptions opts;
  opts.repeats = 2;
  opts.warmup = 1;
  const std::vector<BenchResult> results = run_benchmarks(list, opts);
  ASSERT_EQ(results.size(), 1U);
  EXPECT_EQ(results[0].allocs, 6U);
  EXPECT_EQ(results[0].bytes_alloc, 6U * 256U * sizeof(float));
}

TEST(BenchHarness, DefaultSuiteHasAtLeastTwelveUniqueBenchmarks) {
  const std::vector<Benchmark> suite = fms::bench::default_benchmarks();
  EXPECT_GE(suite.size(), 12U);
  std::vector<std::string> names;
  for (const Benchmark& b : suite) names.push_back(b.name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
