// Robustness surface: deterministic fault injection, the server-side
// defenses (screening, quorum commit, retransmit), checkpoint corruption
// handling, and kill-and-resume crash-recovery. Selected with
// `ctest -L fault`.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/checkpoint.h"
#include "src/core/deadline.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/fault/fault.h"
#include "src/net/transmission.h"
#include "src/sim/staleness.h"

namespace fms {
namespace {

SearchConfig tiny_config() {
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = 7;
  return cfg;
}

TrainTest tiny_data(Rng& rng) {
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  return make_synth_c10(spec, rng);
}

UpdateMsg clean_update() {
  UpdateMsg upd;
  upd.round = 3;
  upd.participant = 1;
  upd.reward = 0.4F;
  upd.loss = 1.7F;
  upd.grads = {0.1F, -0.2F, 0.05F};
  return upd;
}

// --- FaultInjector: determinism and schedule semantics ---

TEST(FaultInjector, DeterministicAndQueryOrderIndependent) {
  FaultPlan plan = FaultPlan::severe(/*seed=*/11);
  plan.dropout_p = 0.1;
  plan.link_failure_p = 0.2;
  const FaultInjector a(plan, 20);
  const FaultInjector b(plan, 20);
  // Query b in reverse order: pure functions must not care.
  for (int p = 0; p < 20; ++p) {
    for (int r = 0; r < 30; ++r) {
      const int rp = 19 - p;
      const int rr = 29 - r;
      EXPECT_EQ(a.is_offline(rp, rr), b.is_offline(rp, rr));
      EXPECT_EQ(a.payload_fault(rp, rr), b.payload_fault(rp, rr));
      const LinkOutcome la = a.link_outcome(rp, rr, 2, 0.5);
      const LinkOutcome lb = b.link_outcome(rp, rr, 2, 0.5);
      EXPECT_EQ(la.delivered, lb.delivered);
      EXPECT_EQ(la.retransmits, lb.retransmits);
      EXPECT_DOUBLE_EQ(la.extra_seconds, lb.extra_seconds);
      EXPECT_DOUBLE_EQ(la.bandwidth_scale, lb.bandwidth_scale);
    }
  }
  // A different seed reshuffles the schedule.
  FaultPlan other = plan;
  other.seed = 12;
  const FaultInjector c(other, 20);
  int differing = 0;
  for (int p = 0; p < 20; ++p) {
    for (int r = 0; r < 30; ++r) {
      if (a.is_offline(p, r) != c.is_offline(p, r)) ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, CrashesArePermanentAndRoughlyMatchFraction) {
  FaultPlan plan;
  plan.crash_fraction = 0.3;
  plan.crash_round = 2;
  plan.crash_spread = 5;
  const FaultInjector inj(plan, 100);
  int crashed = 0;
  for (int p = 0; p < 100; ++p) {
    if (inj.is_crashed(p, 50)) {
      ++crashed;
      // Once dark, always dark.
      for (int r = 51; r < 60; ++r) EXPECT_TRUE(inj.is_crashed(p, r));
    }
    // Nobody crashes before the window opens.
    EXPECT_FALSE(inj.is_crashed(p, 1));
  }
  EXPECT_GT(crashed, 15);
  EXPECT_LT(crashed, 45);
}

TEST(FaultInjector, DropoutsRecoverAfterConfiguredRounds) {
  FaultPlan plan;
  plan.dropout_p = 0.3;
  plan.dropout_rounds = 2;
  const FaultInjector inj(plan, 10);
  int observed_dropouts = 0;
  int observed_recoveries = 0;
  for (int p = 0; p < 10; ++p) {
    for (int r = 0; r < 40; ++r) {
      if (!inj.is_dropped_out(p, r)) continue;
      ++observed_dropouts;
      // A transient dropout must end within dropout_rounds of any start.
      for (int ahead = 1; ahead <= plan.dropout_rounds + 1; ++ahead) {
        if (!inj.is_dropped_out(p, r + ahead)) {
          ++observed_recoveries;
          break;
        }
      }
    }
  }
  EXPECT_GT(observed_dropouts, 0);
  EXPECT_GT(observed_recoveries, 0);
}

TEST(FaultInjector, LinkOutcomesRespectRetransmitBudget) {
  FaultPlan always;
  always.link_failure_p = 1.0;
  const FaultInjector dead(always, 4);
  const LinkOutcome out = dead.link_outcome(0, 0, 3, 0.5);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.retransmits, 3);
  EXPECT_TRUE(out.faulted());

  FaultPlan never;
  never.link_failure_p = 0.0;
  never.corrupt_p = 0.001;  // keep the plan non-empty
  const FaultInjector fine(never, 4);
  const LinkOutcome ok = fine.link_outcome(0, 0, 3, 0.5);
  EXPECT_TRUE(ok.delivered);
  EXPECT_EQ(ok.retransmits, 0);
  EXPECT_FALSE(ok.faulted());

  FaultPlan flaky;
  flaky.link_failure_p = 0.5;
  const FaultInjector some(flaky, 32);
  bool saw_recovered_retry = false;
  for (int p = 0; p < 32 && !saw_recovered_retry; ++p) {
    for (int r = 0; r < 32 && !saw_recovered_retry; ++r) {
      const LinkOutcome o = some.link_outcome(p, r, 4, 0.25);
      if (o.delivered && o.retransmits > 0) {
        EXPECT_GT(o.extra_seconds, 0.0);  // backoff was paid
        saw_recovered_retry = true;
      }
    }
  }
  EXPECT_TRUE(saw_recovered_retry);
}

TEST(FaultInjector, DivergentWinsOverCorruptPayload) {
  FaultPlan plan;
  plan.corrupt_p = 1.0;
  plan.divergent_fraction = 1.0;
  plan.divergent_p = 1.0;
  const FaultInjector inj(plan, 3);
  for (int p = 0; p < 3; ++p) {
    const auto pf = inj.payload_fault(p, 0);
    ASSERT_TRUE(pf.has_value());
    EXPECT_EQ(*pf, FaultKind::kDivergent);
  }
}

TEST(FaultInjector, CorruptFlipsBitsDeterministically) {
  FaultPlan plan;
  plan.corrupt_p = 1.0;
  plan.corrupt_bits = 4;
  const FaultInjector inj(plan, 2);
  const std::vector<float> original(32, 1.5F);
  std::vector<float> a = original;
  std::vector<float> b = original;
  inj.corrupt(a, 1, 7);
  inj.corrupt(b, 1, 7);
  EXPECT_EQ(a, b);        // deterministic per (participant, round)
  EXPECT_NE(a, original); // and actually destructive
  std::vector<float> c = original;
  inj.corrupt(c, 1, 8);
  EXPECT_NE(a, c);        // different round, different flips
}

TEST(FaultInjector, PoisonedUpdatesAreCaughtByScreening) {
  FaultPlan plan;
  plan.divergent_fraction = 1.0;
  plan.divergent_p = 1.0;
  const FaultInjector inj(plan, 8);
  for (int p = 0; p < 8; ++p) {
    for (int r = 0; r < 4; ++r) {
      UpdateMsg upd = clean_update();
      upd.participant = p;
      upd.grads.assign(64, 0.01F);
      inj.poison(upd, p, r);
      EXPECT_NE(screen_update(upd, 1e4F), nullptr)
          << "participant " << p << " round " << r;
    }
  }
}

// --- FaultPlan parsing ---

TEST(FaultPlan, ParsesSpecAndRoundTripsThroughToString) {
  const FaultPlan plan = FaultPlan::parse(
      "crash=0.3,crash_round=5,crash_spread=10,dropout=0.1,dropout_rounds=3,"
      "link=0.2,collapse=0.05,collapse_factor=0.1,corrupt=0.15,"
      "corrupt_bits=4,divergent=0.25,divergent_p=0.6,seed=99");
  EXPECT_DOUBLE_EQ(plan.crash_fraction, 0.3);
  EXPECT_EQ(plan.crash_round, 5);
  EXPECT_EQ(plan.crash_spread, 10);
  EXPECT_DOUBLE_EQ(plan.dropout_p, 0.1);
  EXPECT_EQ(plan.dropout_rounds, 3);
  EXPECT_DOUBLE_EQ(plan.link_failure_p, 0.2);
  EXPECT_DOUBLE_EQ(plan.collapse_p, 0.05);
  EXPECT_DOUBLE_EQ(plan.collapse_factor, 0.1);
  EXPECT_DOUBLE_EQ(plan.corrupt_p, 0.15);
  EXPECT_EQ(plan.corrupt_bits, 4);
  EXPECT_DOUBLE_EQ(plan.divergent_fraction, 0.25);
  EXPECT_DOUBLE_EQ(plan.divergent_p, 0.6);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_FALSE(plan.empty());

  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_DOUBLE_EQ(again.crash_fraction, plan.crash_fraction);
  EXPECT_DOUBLE_EQ(again.corrupt_p, plan.corrupt_p);
  EXPECT_EQ(again.seed, plan.seed);
}

TEST(FaultPlan, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(FaultPlan::parse("nope=1"), CheckError);
  EXPECT_THROW(FaultPlan::parse("crash=1.5"), CheckError);   // not a prob
  EXPECT_THROW(FaultPlan::parse("crash=-0.1"), CheckError);
  EXPECT_THROW(FaultPlan::parse("crash=abc"), CheckError);
  EXPECT_THROW(FaultPlan::parse("crash"), CheckError);       // missing '='
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

// --- update screening ---

TEST(ScreenUpdate, AcceptsCleanRejectsPoisoned) {
  EXPECT_EQ(screen_update(clean_update(), 1e4F), nullptr);

  UpdateMsg nan_reward = clean_update();
  nan_reward.reward = std::numeric_limits<float>::quiet_NaN();
  EXPECT_STREQ(screen_update(nan_reward, 1e4F), "reward_out_of_range");

  UpdateMsg big_reward = clean_update();
  big_reward.reward = 1e6F;
  EXPECT_STREQ(screen_update(big_reward, 1e4F), "reward_out_of_range");

  UpdateMsg inf_loss = clean_update();
  inf_loss.loss = std::numeric_limits<float>::infinity();
  EXPECT_STREQ(screen_update(inf_loss, 1e4F), "loss_not_finite");

  UpdateMsg nan_grad = clean_update();
  nan_grad.grads[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_STREQ(screen_update(nan_grad, 1e4F), "grad_not_finite");

  UpdateMsg exploding = clean_update();
  exploding.grads.assign(16, 1e10F);
  EXPECT_STREQ(screen_update(exploding, 1e4F), "grad_norm_outlier");
  // A non-positive bound disables only the norm check.
  EXPECT_EQ(screen_update(exploding, 0.0F), nullptr);
  EXPECT_STREQ(screen_update(nan_grad, 0.0F), "grad_not_finite");
}

// --- satellite: dead links in the latency model ---

TEST(Transmission, ZeroBandwidthIsAFailedLinkNotANaN) {
  const std::vector<std::size_t> bytes = {1000, 1000, 1000};
  const std::vector<double> bw = {8000.0, 0.0, -5.0};
  const std::vector<int> assign = {0, 1, 2};
  const LatencyStats stats = transmission_latency(bytes, bw, assign, false);
  EXPECT_EQ(stats.failed_links, 2);
  ASSERT_EQ(stats.per_participant.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.per_participant[0], 1.0);
  EXPECT_TRUE(std::isinf(stats.per_participant[1]));
  EXPECT_TRUE(std::isinf(stats.per_participant[2]));
  // Aggregates cover working links only and stay finite.
  EXPECT_DOUBLE_EQ(stats.max_seconds, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_seconds, 1.0);
}

// --- satellite: staleness distribution validation ---

TEST(Staleness, ConstructorRejectsInvalidDistributions) {
  EXPECT_THROW(StalenessDistribution({0.5, -0.1}), CheckError);
  EXPECT_THROW(StalenessDistribution({0.8, 0.4}), CheckError);  // sum > 1
  EXPECT_THROW(
      StalenessDistribution({std::numeric_limits<double>::quiet_NaN()}),
      CheckError);
  EXPECT_THROW(
      StalenessDistribution({std::numeric_limits<double>::infinity()}),
      CheckError);
  // Empty stays legal: "every update exceeds the threshold" (total loss).
  EXPECT_NO_THROW(StalenessDistribution(std::vector<double>{}));
  EXPECT_NO_THROW(StalenessDistribution({0.3, 0.3, 0.3}));
}

// --- satellite: checkpoint corruption coverage ---

SearchCheckpoint sample_checkpoint(Rng& rng, std::uint32_t version) {
  SearchCheckpoint ckpt;
  ckpt.version = version;
  ckpt.num_edges = 4;
  ckpt.num_nodes = 2;
  ckpt.round = 17;
  ckpt.baseline = 0.42;
  ckpt.baseline_initialized = true;
  ckpt.theta.resize(64);
  for (float& v : ckpt.theta) v = rng.uniform(-1.0F, 1.0F);
  std::vector<float> alpha_flat(
      static_cast<std::size_t>(2 * ckpt.num_edges * kNumOps));
  for (float& v : alpha_flat) v = rng.uniform(-1.0F, 1.0F);
  ckpt.alpha = AlphaPair::unflatten(alpha_flat, ckpt.num_edges);
  if (version >= 2) {
    ckpt.runtime_state.resize(37);
    for (auto& b : ckpt.runtime_state) {
      b = static_cast<std::uint8_t>(rng.randint(0, 255));
    }
  }
  return ckpt;
}

TEST(CheckpointCorruption, RandomizedRoundTripPreservesEverything) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const SearchCheckpoint ckpt = sample_checkpoint(rng, kCheckpointVersion);
    const SearchCheckpoint back =
        SearchCheckpoint::deserialize(ckpt.serialize());
    EXPECT_EQ(back.version, ckpt.version);
    EXPECT_EQ(back.num_edges, ckpt.num_edges);
    EXPECT_EQ(back.num_nodes, ckpt.num_nodes);
    EXPECT_EQ(back.round, ckpt.round);
    EXPECT_DOUBLE_EQ(back.baseline, ckpt.baseline);
    EXPECT_EQ(back.baseline_initialized, ckpt.baseline_initialized);
    EXPECT_EQ(back.theta, ckpt.theta);
    EXPECT_EQ(back.alpha.flatten(), ckpt.alpha.flatten());
    EXPECT_EQ(back.runtime_state, ckpt.runtime_state);
  }
}

TEST(CheckpointCorruption, Version1FilesStillLoad) {
  Rng rng(22);
  SearchCheckpoint v1 = sample_checkpoint(rng, 1);
  const SearchCheckpoint back = SearchCheckpoint::deserialize(v1.serialize());
  EXPECT_EQ(back.version, 1u);
  EXPECT_EQ(back.theta, v1.theta);
  EXPECT_TRUE(back.baseline_initialized);  // inferred from baseline != 0
  EXPECT_FALSE(back.has_runtime_state());
}

TEST(CheckpointCorruption, TruncatedFileRaisesCleanError) {
  Rng rng(23);
  const std::vector<std::uint8_t> good =
      sample_checkpoint(rng, kCheckpointVersion).serialize();
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{10},
                          good.size() / 2, good.size() - 1}) {
    const std::vector<std::uint8_t> bad(good.begin(),
                                        good.begin() + static_cast<long>(cut));
    EXPECT_THROW(SearchCheckpoint::deserialize(bad), CheckError)
        << "cut at " << cut;
  }
}

TEST(CheckpointCorruption, FlippedVersionFieldIsRejected) {
  Rng rng(24);
  std::vector<std::uint8_t> bytes =
      sample_checkpoint(rng, kCheckpointVersion).serialize();
  bytes[4] = 0xFF;  // version is the u32 right after the magic
  EXPECT_THROW(SearchCheckpoint::deserialize(bytes), CheckError);
  bytes[4] = 0;  // version 0 predates the format
  EXPECT_THROW(SearchCheckpoint::deserialize(bytes), CheckError);
}

TEST(CheckpointCorruption, WrongShapePayloadsAreRejected) {
  Rng rng(25);
  // Negative edge count.
  std::vector<std::uint8_t> bytes =
      sample_checkpoint(rng, kCheckpointVersion).serialize();
  for (int i = 0; i < 4; ++i) bytes[8 + static_cast<std::size_t>(i)] = 0xFF;
  EXPECT_THROW(SearchCheckpoint::deserialize(bytes), CheckError);

  // Alpha payload whose length disagrees with num_edges.
  SearchCheckpoint ckpt = sample_checkpoint(rng, kCheckpointVersion);
  ckpt.num_edges = 7;  // alpha still sized for 4 edges
  EXPECT_THROW(SearchCheckpoint::deserialize(ckpt.serialize()), CheckError);
}

TEST(CheckpointCorruption, GarbageRuntimeStateIsRejectedOnRestore) {
  Rng rng(26);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(2);
  SearchCheckpoint ckpt = search.checkpoint();
  ckpt.runtime_state.assign(64, 0xAB);  // bad magic
  EXPECT_THROW(search.restore(ckpt), CheckError);
  SearchCheckpoint truncated = search.checkpoint();
  truncated.runtime_state.resize(truncated.runtime_state.size() / 2);
  EXPECT_THROW(search.restore(truncated), CheckError);
}

// --- quorum commit ---

TEST(Quorum, TimeoutDropsEveryoneUnderHardSync) {
  Rng rng(31);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.quorum = 0.5;
  opts.round_timeout_s = 1e-9;  // nobody makes the deadline
  auto records = search.run_search(3, opts);
  for (const auto& r : records) {
    EXPECT_EQ(r.arrived, 0);
    EXPECT_EQ(r.late, cfg.schedule.num_participants);
    EXPECT_EQ(r.dropped, cfg.schedule.num_participants);
    EXPECT_TRUE(r.partial_quorum);
    EXPECT_DOUBLE_EQ(r.commit_latency_s, 1e-9);
  }
}

TEST(Quorum, LatecomersFoldIntoSoftSyncPath) {
  Rng rng(32);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 6;
  auto parts = iid_partition(tt.train.size(), 6, rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::none();  // all fresh...
  opts.quorum = 0.5;  // ...except the slowest half each round
  auto records = search.run_search(12, opts);
  int late = 0, stale = 0, arrived = 0;
  for (const auto& r : records) {
    late += r.late;
    stale += r.stale_arrived;
    arrived += r.arrived;
    EXPECT_FALSE(r.partial_quorum);  // quorum met, just with stragglers
  }
  EXPECT_GT(late, 0);
  EXPECT_GT(stale, 0);   // folded-in latecomers arrive one round stale
  EXPECT_GT(arrived, 0);
  // Nothing was lost outright: updates are delayed, not discarded.
  EXPECT_EQ(search.fault_stats().injected_total(), 0u);
}

TEST(Quorum, FullQuorumNoTimeoutMatchesLegacyBehavior) {
  Rng rng(33);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  auto run = [&](double quorum) {
    FederatedSearch search(cfg, tt.train, parts);
    SearchOptions opts;
    opts.quorum = quorum;
    auto recs = search.run_search(5, opts);
    return recs.back().mean_reward;
  };
  EXPECT_DOUBLE_EQ(run(1.0), run(1.0));
  for (const auto& r : [&] {
         FederatedSearch search(cfg, tt.train, parts);
         return search.run_search(5, SearchOptions{});
       }()) {
    EXPECT_EQ(r.late, 0);
    EXPECT_FALSE(r.partial_quorum);
  }
}

// --- quorum close rule: edge cases at the deadline boundary ---

TEST(QuorumCommit, TimeoutAtTheExactQuorumArrivalTickStillCommits) {
  // The q_need-th arrival lands exactly on the timeout: the commit rule
  // counts arrivals at or before the deadline, so the round is full.
  const QuorumOutcome at =
      quorum_commit({1.0, 2.0, 3.0, 4.0}, 0.5, 4, /*timeout_s=*/2.0);
  EXPECT_EQ(at.q_need, 2u);
  EXPECT_DOUBLE_EQ(at.deadline, 2.0);
  EXPECT_EQ(at.on_time, 2u);
  EXPECT_FALSE(at.partial);
  EXPECT_DOUBLE_EQ(at.commit_latency_s, 2.0);

  // A hair earlier and the second arrival misses: partial quorum.
  const QuorumOutcome early =
      quorum_commit({1.0, 2.0, 3.0, 4.0}, 0.5, 4, 2.0 - 1e-6);
  EXPECT_EQ(early.on_time, 1u);
  EXPECT_TRUE(early.partial);
}

TEST(QuorumCommit, FullQuorumWithZeroTimeoutWaitsForTheLastArrival) {
  // quorum = 1.0 with timeout 0 (disabled) reproduces classic full sync:
  // the round closes at the slowest client, nobody is late.
  const QuorumOutcome out =
      quorum_commit({3.0, 1.0, 2.0, 4.0}, 1.0, 4, /*timeout_s=*/0.0);
  EXPECT_EQ(out.q_need, 4u);
  EXPECT_DOUBLE_EQ(out.deadline, 4.0);
  EXPECT_EQ(out.on_time, 4u);
  EXPECT_FALSE(out.partial);
  EXPECT_DOUBLE_EQ(out.commit_latency_s, 4.0);
}

TEST(QuorumCommit, StarvedRoundsCloseAtTheTimeoutOrLastArrival) {
  // Nobody shows up: a positive timeout still bounds the round.
  const QuorumOutcome empty = quorum_commit({}, 0.5, 4, 1.5);
  EXPECT_EQ(empty.q_need, 2u);
  EXPECT_EQ(empty.on_time, 0u);
  EXPECT_TRUE(empty.partial);
  EXPECT_DOUBLE_EQ(empty.commit_latency_s, 1.5);

  // Fewer candidates than the quorum needs, no timeout: the round closes
  // at the last arrival and reports partial.
  const QuorumOutcome few = quorum_commit({2.5}, 0.75, 4, 0.0);
  EXPECT_EQ(few.q_need, 3u);
  EXPECT_EQ(few.on_time, 1u);
  EXPECT_TRUE(few.partial);
  EXPECT_DOUBLE_EQ(few.commit_latency_s, 2.5);
}

TEST(Quorum, PartialQuorumLateArrivalsFoldIntoDelayCompensation) {
  // A timeout tight enough that the quorum misses: rounds commit partial,
  // and the stragglers are not discarded — they fold into the soft-sync
  // path one round late and go through DC compensation.
  Rng rng(34);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 6;
  auto parts = iid_partition(tt.train.size(), 6, rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::none();
  opts.quorum = 0.9;
  // Probe latencies once, then pick a timeout between the fastest and the
  // q_need-th arrival so every round commits partial with live stragglers.
  {
    FederatedSearch probe(cfg, tt.train, parts);
    SearchOptions unbounded = opts;
    const auto rec = probe.run_search(1, unbounded);
    opts.round_timeout_s = rec.front().mean_latency_s;
  }
  const auto records = search.run_search(10, opts);
  int partial = 0, late = 0, stale = 0, compensated = 0, arrived = 0;
  for (const auto& r : records) {
    partial += r.partial_quorum ? 1 : 0;
    late += r.late;
    stale += r.stale_arrived;
    compensated += r.compensated;
    arrived += r.arrived;
  }
  EXPECT_GT(partial, 0);
  EXPECT_GT(late, 0);
  EXPECT_GT(stale, 0);        // the late half arrives one round stale...
  EXPECT_GT(compensated, 0);  // ...and is delay-compensated, not dropped
  EXPECT_GT(arrived, 0);
  EXPECT_EQ(search.fault_stats().injected_total(), 0u);
}

// --- upload-link retransmit with seeded jitter ---

TEST(FaultInjector, UploadOutcomesAreDeterministicWithJitteredBackoff) {
  FaultPlan plan;
  plan.uplink_failure_p = 0.5;
  plan.backoff_jitter = 0.5;
  const FaultInjector a(plan, 16);
  const FaultInjector b(plan, 16);
  bool saw_recovered = false;
  bool saw_dead = false;
  for (int p = 0; p < 16; ++p) {
    for (int r = 0; r < 32; ++r) {
      const LinkOutcome oa = a.upload_outcome(p, r, 2, 0.5);
      const LinkOutcome ob = b.upload_outcome(p, r, 2, 0.5);
      EXPECT_EQ(oa.delivered, ob.delivered);
      EXPECT_EQ(oa.retransmits, ob.retransmits);
      EXPECT_DOUBLE_EQ(oa.extra_seconds, ob.extra_seconds);
      if (oa.delivered && oa.retransmits > 0) {
        saw_recovered = true;
        // Jitter stretches the backoff, never shrinks it: the n-th retry
        // pays at least backoff * 2^n.
        double base = 0.0, step = 0.5;
        for (int n = 0; n < oa.retransmits; ++n, step *= 2.0) base += step;
        EXPECT_GE(oa.extra_seconds, base);
        EXPECT_LE(oa.extra_seconds, base * (1.0 + plan.backoff_jitter));
      }
      if (!oa.delivered) saw_dead = true;
    }
  }
  EXPECT_TRUE(saw_recovered);
  EXPECT_TRUE(saw_dead);

  // The upload stream is independent of the download stream: same plan
  // probabilities, different schedules.
  FaultPlan both = plan;
  both.link_failure_p = 0.5;
  const FaultInjector c(both, 16);
  int differing = 0;
  for (int p = 0; p < 16; ++p) {
    for (int r = 0; r < 32; ++r) {
      if (c.upload_outcome(p, r, 2, 0.5).delivered !=
          c.link_outcome(p, r, 2, 0.5).delivered) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, UplinkPlanParsesAndRoundTrips) {
  const FaultPlan plan =
      FaultPlan::parse("uplink=0.3,backoff_jitter=0.25,seed=13");
  EXPECT_DOUBLE_EQ(plan.uplink_failure_p, 0.3);
  EXPECT_DOUBLE_EQ(plan.backoff_jitter, 0.25);
  EXPECT_FALSE(plan.empty());
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_DOUBLE_EQ(again.uplink_failure_p, plan.uplink_failure_p);
  EXPECT_DOUBLE_EQ(again.backoff_jitter, plan.backoff_jitter);
  EXPECT_THROW(FaultPlan::parse("uplink=1.5"), CheckError);
  EXPECT_THROW(FaultPlan::parse("backoff_jitter=-0.1"), CheckError);
}

TEST(FaultCampaign, UplinkFaultsStayExactlyOnceInTheLedger) {
  Rng rng(43);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 8;
  auto parts = iid_partition(tt.train.size(), 8, rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.quorum = 0.5;
  opts.fault_plan = FaultPlan::parse("uplink=0.5,backoff_jitter=0.5,seed=14");
  const auto records = search.run_search(12, opts);
  const FaultStats& stats = search.fault_stats();
  EXPECT_GT(stats.injected_uplink, 0u);
  // Every uplink fault resolved exactly once: recovered by a retry or
  // dropped after the budget, never both, never neither.
  EXPECT_EQ(stats.injected_total(), stats.accounted());
  EXPECT_GT(stats.recovered, 0u);
  EXPECT_GT(stats.dropped, 0u);
  int retransmits = 0, dropped = 0;
  for (const auto& r : records) {
    retransmits += r.retransmits;
    dropped += r.dropped;
  }
  EXPECT_GT(retransmits, 0);
  EXPECT_GT(dropped, 0);
}

// --- the acceptance campaign: severe faults, search still converges ---

TEST(FaultCampaign, SevereCampaignCompletesAndStaysAccounted) {
  Rng rng(41);
  SynthSpec spec;
  spec.train_size = 400;
  spec.test_size = 40;
  spec.image_size = 8;
  spec.noise_std = 0.05F;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 10;
  cfg.schedule.batch_size = 16;
  auto parts = iid_partition(tt.train.size(), 10, rng);

  auto run = [&](const FaultPlan& plan) {
    FederatedSearch search(cfg, tt.train, parts);
    search.run_warmup(8);
    SearchOptions opts;
    opts.stale_policy = StalePolicy::kCompensate;
    opts.staleness = StalenessDistribution::slight();
    opts.fault_plan = plan;
    opts.quorum = 0.7;
    auto records = search.run_search(60, opts);
    // The search must end with finite, usable parameters.
    for (float v : search.supernet().flat_values()) {
      EXPECT_TRUE(std::isfinite(v));
    }
    for (float v : search.policy().alpha().flatten()) {
      EXPECT_TRUE(std::isfinite(v));
    }
    EXPECT_TRUE(std::isfinite(search.policy().baseline()));
    struct Result {
      double final_moving_avg;
      FaultStats stats;
    };
    return Result{records.back().moving_avg, search.fault_stats()};
  };

  const auto clean = run(FaultPlan{});
  EXPECT_EQ(clean.stats.injected_total(), 0u);

  // 30% crashed fleet + corrupted payloads + NaN/exploding clients.
  FaultPlan severe = FaultPlan::severe(/*seed=*/5);
  const auto faulty = run(severe);
  EXPECT_GT(faulty.stats.injected_crash, 0u);
  EXPECT_GT(faulty.stats.injected_corrupt, 0u);
  EXPECT_GT(faulty.stats.injected_divergent, 0u);
  EXPECT_GT(faulty.stats.rejected, 0u);  // screening earned its keep
  // Every injected fault resolved exactly once.
  EXPECT_EQ(faulty.stats.injected_total(), faulty.stats.accounted());
  // Defenses hold the search trajectory: final moving-average reward
  // within 5% of the fault-free run.
  EXPECT_GT(clean.final_moving_avg, 0.0);
  EXPECT_LE(std::abs(faulty.final_moving_avg - clean.final_moving_avg),
            0.05 * clean.final_moving_avg)
      << "clean " << clean.final_moving_avg << " vs faulty "
      << faulty.final_moving_avg;
}

TEST(FaultCampaign, ScreeningShieldsBaselineFromDivergentClients) {
  Rng rng(42);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  FaultPlan plan;
  plan.divergent_fraction = 0.5;
  plan.divergent_p = 1.0;

  // With screening the baseline stays a valid reward average.
  FederatedSearch screened(cfg, tt.train, parts);
  SearchOptions opts;
  opts.fault_plan = plan;
  auto records = screened.run_search(8, opts);
  EXPECT_GE(screened.policy().baseline(), 0.0);
  EXPECT_LE(screened.policy().baseline(), 1.0);
  int rejected = 0;
  for (const auto& r : records) rejected += r.rejected;
  EXPECT_GT(rejected, 0);
  for (float v : screened.supernet().flat_values()) {
    ASSERT_TRUE(std::isfinite(v));
  }

  // Without screening the poison reaches the baseline — the defense is
  // doing real work, not shadowing an impossible input.
  FederatedSearch unscreened(cfg, tt.train, parts);
  SearchOptions off = opts;
  off.screen_updates = false;
  unscreened.run_search(8, off);
  EXPECT_FALSE(unscreened.policy().baseline() >= 0.0 &&
               unscreened.policy().baseline() <= 1.0);
}

// --- kill-and-resume determinism ---

std::vector<RoundRecord> run_rounds(FederatedSearch& search, int n,
                                    const SearchOptions& opts) {
  return search.run_search(n, opts);
}

void expect_identical(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward);
  EXPECT_DOUBLE_EQ(a.moving_avg, b.moving_avg);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_DOUBLE_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.stale_arrived, b.stale_arrived);
  EXPECT_EQ(a.compensated, b.compensated);
  EXPECT_DOUBLE_EQ(a.mean_tau, b.mean_tau);
  EXPECT_EQ(a.max_tau, b.max_tau);
  EXPECT_DOUBLE_EQ(a.alpha_entropy, b.alpha_entropy);
  EXPECT_DOUBLE_EQ(a.baseline, b.baseline);
  EXPECT_EQ(a.offline, b.offline);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.late, b.late);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.partial_quorum, b.partial_quorum);
  EXPECT_DOUBLE_EQ(a.commit_latency_s, b.commit_latency_s);
}

TEST(CrashRecovery, KillAndResumeReproducesTheRoundStream) {
  Rng rng(51);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::severe();
  opts.fault_plan = FaultPlan::parse("corrupt=0.1,divergent=0.2,link=0.1");
  opts.quorum = 0.75;

  // Uninterrupted reference run.
  FederatedSearch reference(cfg, tt.train, parts);
  reference.run_warmup(3);
  const auto full = run_rounds(reference, 12, opts);

  // Interrupted run: checkpoint mid-stream, destroy, resume in a fresh
  // instance, continue. The checkpoint travels through real bytes.
  std::vector<std::uint8_t> frozen;
  {
    FederatedSearch first(cfg, tt.train, parts);
    first.run_warmup(3);
    const auto head = run_rounds(first, 5, opts);
    for (std::size_t i = 0; i < head.size(); ++i) {
      SCOPED_TRACE("head round " + std::to_string(i));
      expect_identical(full[i], head[i]);
    }
    frozen = first.checkpoint().serialize();
  }  // `first` is destroyed here — the crash
  FederatedSearch resumed(cfg, tt.train, parts);
  resumed.restore(SearchCheckpoint::deserialize(frozen));
  const auto tail = run_rounds(resumed, 7, opts);
  ASSERT_EQ(tail.size(), 7u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    SCOPED_TRACE("tail round " + std::to_string(i));
    expect_identical(full[5 + i], tail[i]);
  }
  // Terminal state matches bit for bit, not just the records.
  EXPECT_EQ(reference.supernet().flat_values(),
            resumed.supernet().flat_values());
  EXPECT_EQ(reference.policy().alpha().flatten(),
            resumed.policy().alpha().flatten());
  EXPECT_EQ(reference.fault_stats().injected_total(),
            resumed.fault_stats().injected_total());
  EXPECT_EQ(reference.fault_stats().accounted(),
            resumed.fault_stats().accounted());
  EXPECT_EQ(reference.total_bytes_down(), resumed.total_bytes_down());
  EXPECT_EQ(reference.total_bytes_up(), resumed.total_bytes_up());
}

TEST(CrashRecovery, AutoCheckpointWritesAtTheConfiguredCadence) {
  Rng rng(52);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  const std::string path = ::testing::TempDir() + "/fms_auto.ckpt";

  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.checkpoint_every = 3;
  opts.checkpoint_path = path;
  search.run_search(7, opts);
  // Rounds 0..6 ran; the last write happened after round 5 (counter 6).
  const SearchCheckpoint ckpt = read_checkpoint_file(path);
  EXPECT_EQ(ckpt.round, 6);
  EXPECT_TRUE(ckpt.has_runtime_state());

  FederatedSearch resumed(cfg, tt.train, parts);
  resumed.restore(ckpt);
  const auto more = resumed.run_search(1, opts);
  EXPECT_EQ(more.front().round, 6);
}

}  // namespace
}  // namespace fms
