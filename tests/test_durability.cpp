// Durability surface: the write-ahead round journal, crash-atomic
// checkpoint rotation, the seeded disk-fault channel, and kill-anywhere
// deterministic recovery. Selected with `ctest -L durability`.
//
// The kill model: every journal append is flushed before the round loop
// continues, so destroying the process after round j is byte-equivalent
// to SIGKILL anywhere between rounds j and j+1. Mid-frame kills (SIGKILL
// *during* an append) are covered by chopping bytes off the journal tail
// and by the disk_short fault channel, which leave exactly the torn
// files a real mid-write kill would.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/serialize.h"
#include "src/core/checkpoint.h"
#include "src/core/journal.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/fault/fault.h"

namespace fms {
namespace {

constexpr int kWarmup = 2;
constexpr int kSearch = 6;
constexpr int kTotal = kWarmup + kSearch;

SearchConfig tiny_config() {
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = 7;
  return cfg;
}

TrainTest tiny_data(Rng& rng) {
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  return make_synth_c10(spec, rng);
}

struct Scenario {
  SearchConfig cfg;
  TrainTest tt;
  std::vector<std::vector<int>> parts;
};

Scenario make_scenario() {
  Rng rng(51);
  Scenario s{tiny_config(), tiny_data(rng), {}};
  s.parts =
      iid_partition(s.tt.train.size(), s.cfg.schedule.num_participants, rng);
  return s;
}

// Fresh per-test scratch dir (tests in one binary share TempDir()).
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/fms_dur_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SearchOptions ckpt_opts(const std::string& dir) {
  SearchOptions opts;
  opts.checkpoint_every = 3;
  opts.checkpoint_path = dir + "/ck.bin";
  return opts;
}

// Terminal-state fingerprint for bitwise comparison across runs.
struct FinalState {
  std::vector<float> theta;
  std::vector<float> alpha;
  std::vector<std::uint8_t> genotype;
  std::uint64_t faults_injected = 0;
  std::uint64_t faults_accounted = 0;
  std::size_t bytes_down = 0;
  std::size_t bytes_up = 0;
};

FinalState fingerprint(FederatedSearch& s) {
  FinalState f;
  f.theta = s.supernet().flat_values();
  f.alpha = s.policy().alpha().flatten();
  f.genotype = serialize_genotype(s.derive());
  f.faults_injected = s.fault_stats().injected_total();
  f.faults_accounted = s.fault_stats().accounted();
  f.bytes_down = s.total_bytes_down();
  f.bytes_up = s.total_bytes_up();
  return f;
}

void expect_identical(const FinalState& a, const FinalState& b) {
  EXPECT_EQ(a.theta, b.theta);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.genotype, b.genotype);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faults_accounted, b.faults_accounted);
  EXPECT_EQ(a.bytes_down, b.bytes_down);
  EXPECT_EQ(a.bytes_up, b.bytes_up);
}

// The uninterrupted reference: same trajectory, no durability machinery
// (journaling is observational — pinned by JournalingIsPurelyObservational).
FinalState reference_run(const Scenario& s, const SearchOptions& opts) {
  FederatedSearch search(s.cfg, s.tt.train, s.parts);
  search.run_warmup(kWarmup);
  SearchOptions ref = opts;
  ref.checkpoint_every = 0;
  ref.checkpoint_path.clear();
  search.run_search(kSearch, ref);
  return fingerprint(search);
}

// Runs the journaled search for exactly `kill_after` committed rounds,
// then stops — the kill (see the kill model in the file header).
void run_until_kill(const Scenario& s, const std::string& dir, int kill_after,
                    const SearchOptions& opts) {
  FederatedSearch search(s.cfg, s.tt.train, s.parts);
  search.enable_journal(dir + "/wal.bin", opts.fault_plan);
  search.run_warmup(std::min(kill_after, kWarmup));
  if (kill_after > kWarmup) search.run_search(kill_after - kWarmup, opts);
}

// Recovers in a fresh instance, finishes the campaign, and returns the
// terminal fingerprint plus the recovery report via out-param.
FinalState recover_and_finish(const Scenario& s, const std::string& dir,
                              const SearchOptions& opts,
                              FederatedSearch::RecoveryReport* report) {
  FederatedSearch search(s.cfg, s.tt.train, s.parts);
  FederatedSearch::RecoverConfig rc;
  rc.checkpoint_path = dir + "/ck.bin";
  rc.journal_path = dir + "/wal.bin";
  rc.warmup_rounds = kWarmup;
  rc.search = opts;
  const FederatedSearch::RecoveryReport rep = search.recover(rc);
  if (report != nullptr) *report = rep;
  const int done = rep.start_round + rep.replayed_rounds;
  search.run_warmup(std::max(0, kWarmup - done));
  search.run_search(kTotal - std::max(done, kWarmup), opts);
  return fingerprint(search);
}

// --- frame + file format units ---

JournalFrame sample_frame(int round) {
  JournalFrame f;
  f.phase = round < kWarmup ? 0 : 1;
  f.round = round;
  f.record.round = round;
  f.record.mean_reward = 0.25 + 0.01 * round;
  f.record.bytes_down = 12345;
  f.record.degrade_transition = "0->1";
  f.rng_cursor = "rng-" + std::to_string(round);
  f.staleness_cursor = "stale-" + std::to_string(round);
  f.degrade_mode = 1;
  f.degrade_transitions = round;
  return f;
}

TEST(Journal, FrameRoundTripIsExact) {
  const JournalFrame f = sample_frame(5);
  const JournalFrame back = JournalFrame::deserialize(f.serialize());
  EXPECT_EQ(back.phase, f.phase);
  EXPECT_EQ(back.round, f.round);
  EXPECT_EQ(back.rng_cursor, f.rng_cursor);
  EXPECT_EQ(back.staleness_cursor, f.staleness_cursor);
  EXPECT_EQ(back.degrade_mode, f.degrade_mode);
  EXPECT_EQ(back.degrade_transitions, f.degrade_transitions);
  EXPECT_EQ(back.serialize(), f.serialize());
  // Trailing garbage is rejected, not ignored.
  std::vector<std::uint8_t> padded = f.serialize();
  padded.push_back(0);
  EXPECT_THROW(JournalFrame::deserialize(padded), CheckError);
}

TEST(Journal, CrcFramingDetectsTornAndCorruptTails) {
  std::vector<std::uint8_t> buf;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  append_crc_frame(buf, payload);
  append_crc_frame(buf, payload);
  std::size_t pos = 0;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(next_crc_frame(buf, pos, &out));
  EXPECT_EQ(out, payload);
  // Chop the second frame short: the reader stops exactly at the torn
  // frame and leaves pos on the truncation point.
  std::vector<std::uint8_t> torn(buf.begin(), buf.end() - 2);
  std::size_t tpos = 0;
  ASSERT_TRUE(next_crc_frame(torn, tpos, &out));
  const std::size_t boundary = tpos;
  EXPECT_FALSE(next_crc_frame(torn, tpos, &out));
  EXPECT_EQ(tpos, boundary);
  // Flip a payload byte: CRC mismatch, same signal.
  std::vector<std::uint8_t> flipped = buf;
  flipped[kFrameHeaderBytes + 2] ^= 0x40U;
  std::size_t fpos = 0;
  EXPECT_FALSE(next_crc_frame(flipped, fpos, &out));
}

TEST(Journal, AppendLoadTruncateRoundTrip) {
  const std::string dir = scratch_dir("append_load");
  const std::string path = dir + "/wal.bin";
  {
    RoundJournal wal(path, FaultPlan{});
    for (int t = 0; t < 3; ++t) wal.append(sample_frame(t));
    EXPECT_EQ(wal.stats().frames_written, 3u);
  }
  RoundJournal::LoadResult full = RoundJournal::load(path);
  ASSERT_TRUE(full.header_valid);
  ASSERT_EQ(full.frames.size(), 3u);
  EXPECT_EQ(full.torn_bytes, 0u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(full.frames[static_cast<std::size_t>(t)].round, t);
  }
  // Chop 5 bytes off the tail — a mid-frame kill. The loader reports the
  // torn tail; truncation repairs it; a reopened writer appends cleanly.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);
  RoundJournal::LoadResult torn = RoundJournal::load(path);
  ASSERT_EQ(torn.frames.size(), 2u);
  EXPECT_GT(torn.torn_bytes, 0u);
  RoundJournal::truncate_to(path, torn.valid_bytes);
  {
    RoundJournal wal(path, FaultPlan{});
    wal.append(sample_frame(2));
  }
  RoundJournal::LoadResult repaired = RoundJournal::load(path);
  ASSERT_EQ(repaired.frames.size(), 3u);
  EXPECT_EQ(repaired.torn_bytes, 0u);
  // A garbage header is flagged, not parsed.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << "not a journal";
  EXPECT_FALSE(RoundJournal::load(path).header_valid);
}

TEST(Journal, RotationKeepsThePreviousGeneration) {
  const std::string dir = scratch_dir("rotation");
  const std::string path = dir + "/wal.bin";
  RoundJournal wal(path, FaultPlan{});
  wal.append(sample_frame(0));
  wal.append(sample_frame(1));
  wal.rotate();
  wal.append(sample_frame(2));
  EXPECT_EQ(wal.stats().rotations, 1u);
  const RoundJournal::LoadResult prev = RoundJournal::load(path + ".prev");
  const RoundJournal::LoadResult live = RoundJournal::load(path);
  ASSERT_EQ(prev.frames.size(), 2u);
  ASSERT_EQ(live.frames.size(), 1u);
  EXPECT_EQ(prev.frames[1].round, 1);
  EXPECT_EQ(live.frames[0].round, 2);
}

// --- disk-fault channel ---

TEST(DiskFaults, OutcomesAreDeterministicAndPlanGated) {
  FaultPlan plan;
  plan.disk_eio_p = 0.3;
  plan.disk_short_p = 0.3;
  plan.disk_corrupt_p = 0.3;
  plan.seed = 77;
  const FaultInjector a(plan, 1);
  const FaultInjector b(plan, 1);
  int faulted = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const DiskOutcome oa = a.disk_outcome(DiskOp::kJournalAppend, id);
    const DiskOutcome ob = b.disk_outcome(DiskOp::kJournalAppend, id);
    EXPECT_EQ(oa.eio, ob.eio);
    EXPECT_EQ(oa.short_write, ob.short_write);
    EXPECT_DOUBLE_EQ(oa.keep_fraction, ob.keep_fraction);
    EXPECT_EQ(oa.corrupt, ob.corrupt);
    if (oa.faulted()) ++faulted;
    // Distinct ops draw from distinct streams: the same op_id must not
    // force the same fate onto the checkpoint write.
    if (oa.short_write &&
        !a.disk_outcome(DiskOp::kCheckpointWrite, id).short_write) {
      SUCCEED();
    }
  }
  EXPECT_GT(faulted, 50);
  // A disk-only plan keeps the round loop's fault-free fast path: the
  // trajectory never sees disk faults.
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.has_disk());
  // And the spec round-trips through parse/to_string.
  const FaultPlan round_trip = FaultPlan::parse(plan.to_string());
  EXPECT_DOUBLE_EQ(round_trip.disk_eio_p, plan.disk_eio_p);
  EXPECT_DOUBLE_EQ(round_trip.disk_short_p, plan.disk_short_p);
  EXPECT_DOUBLE_EQ(round_trip.disk_corrupt_p, plan.disk_corrupt_p);
  EXPECT_EQ(round_trip.disk_corrupt_bits, plan.disk_corrupt_bits);
}

// --- atomic checkpoint rotation ---

TEST(AtomicCheckpoint, RotationRetainsPrevAndFallsBackOnCorruption) {
  const std::string dir = scratch_dir("atomic_ckpt");
  const std::string path = dir + "/ck.bin";
  SearchCheckpoint first;
  first.num_edges = 2;
  first.num_nodes = 1;
  first.round = 3;
  first.theta = {1.0F};
  first.alpha = AlphaPair::zeros(2);
  SearchCheckpoint second = first;
  second.round = 6;
  second.theta = {2.0F};
  write_checkpoint_file(path, first);
  EXPECT_FALSE(std::filesystem::exists(path + ".prev"));
  write_checkpoint_file(path, second);
  // Both generations readable, `.prev` holding the older one; no torn
  // tmp file left behind.
  EXPECT_EQ(read_checkpoint_file(path).round, 6);
  EXPECT_EQ(read_checkpoint_file(path + ".prev").round, 3);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Poison the primary mid-file: the fallback reader flags it and serves
  // the previous generation instead.
  auto bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }();
  bytes[bytes.size() / 2] ^= 0x10;
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_THROW(read_checkpoint_file(path), CheckError);
  const CheckpointLoad load = read_checkpoint_file_with_fallback(path);
  EXPECT_TRUE(load.used_prev);
  EXPECT_FALSE(load.primary_error.empty());
  EXPECT_EQ(load.ckpt.round, 3);
}

// --- the bit-identity contract ---

TEST(Durability, JournalingIsPurelyObservational) {
  const Scenario s = make_scenario();
  const std::string dir = scratch_dir("observational");
  const SearchOptions opts = ckpt_opts(dir);
  const FinalState plain = reference_run(s, opts);
  FederatedSearch journaled(s.cfg, s.tt.train, s.parts);
  journaled.enable_journal(dir + "/wal.bin", opts.fault_plan);
  journaled.run_warmup(kWarmup);
  journaled.run_search(kSearch, opts);
  FinalState with_journal = fingerprint(journaled);
  expect_identical(plain, with_journal);
  EXPECT_GT(journaled.journal()->stats().frames_written, 0u);
}

// The tentpole guarantee: recovery from EVERY kill point — including
// before the first checkpoint and right at the end — reproduces the
// uninterrupted terminal state bit for bit.
TEST(Durability, KillMatrixEveryRoundBoundaryRecoversBitIdentical) {
  const Scenario s = make_scenario();
  SearchOptions opts;  // per-kill-point dirs get their own checkpoint path
  const FinalState ref = reference_run(s, ckpt_opts("/unused"));
  for (int kill = 0; kill <= kTotal; ++kill) {
    SCOPED_TRACE("kill after round " + std::to_string(kill));
    const std::string dir = scratch_dir("kill_" + std::to_string(kill));
    opts = ckpt_opts(dir);
    run_until_kill(s, dir, kill, opts);
    FederatedSearch::RecoveryReport rep;
    const FinalState got = recover_and_finish(s, dir, opts, &rep);
    expect_identical(ref, got);
    // Checkpoint + replay together must account for every killed round.
    EXPECT_EQ(rep.start_round + rep.replayed_rounds, kill);
  }
}

// Mid-frame kill: SIGKILL *during* an append leaves a torn tail frame.
// Recovery truncates it and re-executes the lost round.
TEST(Durability, MidFrameKillTruncatesTornTailAndRecovers) {
  const Scenario s = make_scenario();
  const FinalState ref = reference_run(s, ckpt_opts("/unused"));
  for (const int chop : {1, 5}) {
    SCOPED_TRACE("chopping " + std::to_string(chop) + " tail bytes");
    const std::string dir = scratch_dir("midframe_" + std::to_string(chop));
    const SearchOptions opts = ckpt_opts(dir);
    run_until_kill(s, dir, 5, opts);
    const std::string wal = dir + "/wal.bin";
    const auto size = std::filesystem::file_size(wal);
    std::filesystem::resize_file(wal, size - static_cast<unsigned>(chop));
    FederatedSearch::RecoveryReport rep;
    const FinalState got = recover_and_finish(s, dir, opts, &rep);
    expect_identical(ref, got);
    EXPECT_GT(rep.torn_bytes, 0u);
    // The torn frame's round is genuinely lost: replay stops one round
    // short, and recover_and_finish re-executes it as fresh progress —
    // deterministically, hence the bit-identical terminal state above.
    EXPECT_EQ(rep.start_round + rep.replayed_rounds, 4);
  }
}

// The disk-fault channel end to end: short writes and EIOs during the
// journaled run leave gaps and torn tails, and recovery still lands on
// the uninterrupted terminal state (the trajectory is disk-independent).
TEST(Durability, RecoversUnderActiveDiskFaultPlan) {
  const Scenario s = make_scenario();
  const std::string dir = scratch_dir("disk_faults");
  SearchOptions opts = ckpt_opts(dir);
  opts.fault_plan.disk_eio_p = 0.4;
  opts.fault_plan.disk_short_p = 0.4;
  opts.fault_plan.seed = 99;
  const FinalState ref = reference_run(s, opts);
  JournalStats js;
  {
    FederatedSearch search(s.cfg, s.tt.train, s.parts);
    search.enable_journal(dir + "/wal.bin", opts.fault_plan);
    search.run_warmup(kWarmup);
    search.run_search(kSearch - 1, opts);  // kill one round short
    js = search.journal()->stats();
  }
  // The plan actually bit: some appends were shorted or EIO'd.
  EXPECT_GT(js.short_writes + js.eio_retries, 0u);
  FederatedSearch::RecoveryReport rep;
  const FinalState got = recover_and_finish(s, dir, opts, &rep);
  expect_identical(ref, got);
}

// `.prev` checkpoint fallback inside full recovery: a poisoned primary
// checkpoint silently costs one generation of replay distance, nothing
// else.
TEST(Durability, PrevCheckpointFallbackDuringRecovery) {
  const Scenario s = make_scenario();
  const std::string dir = scratch_dir("prev_fallback");
  const SearchOptions opts = ckpt_opts(dir);
  const FinalState ref = reference_run(s, opts);
  run_until_kill(s, dir, 7, opts);  // checkpoints at rounds 3 and 6 exist
  ASSERT_TRUE(std::filesystem::exists(dir + "/ck.bin.prev"));
  // Poison the primary.
  const std::string ck = dir + "/ck.bin";
  auto bytes = [&] {
    std::ifstream in(ck, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }();
  bytes[bytes.size() / 3] ^= 0x04;
  std::ofstream(ck, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  FederatedSearch::RecoveryReport rep;
  const FinalState got = recover_and_finish(s, dir, opts, &rep);
  expect_identical(ref, got);
  EXPECT_TRUE(rep.used_prev_checkpoint);
  EXPECT_EQ(rep.start_round, 3);  // fell back one generation...
  EXPECT_EQ(rep.start_round + rep.replayed_rounds, 7);  // ...and replayed it
}

// Acceptance bar: kill-anywhere recovery under an active fault + churn +
// Byzantine plan with partial quorum — the hardest trajectory the
// substrate can produce must replay just as deterministically.
TEST(Durability, KillMatrixUnderFaultChurnByzantinePlan) {
  const Scenario s = make_scenario();
  SearchOptions base;
  base.fault_plan.crash_fraction = 0.25;
  base.fault_plan.crash_round = 2;
  base.fault_plan.corrupt_p = 0.1;
  base.fault_plan.divergent_fraction = 0.25;
  base.fault_plan.sign_flip_fraction = 0.25;
  base.fault_plan.seed = 13;
  base.churn_plan.leave_p = 0.1;
  base.churn_plan.away_min = 1;
  base.churn_plan.away_max = 3;
  base.churn_plan.seed = 14;
  base.quorum = 0.75;
  base.winsorize_rewards_k = 1.5;
  const FinalState ref = reference_run(s, base);
  for (const int kill : {1, 4, 7}) {
    SCOPED_TRACE("kill after round " + std::to_string(kill));
    const std::string dir = scratch_dir("hostile_" + std::to_string(kill));
    SearchOptions opts = base;
    opts.checkpoint_every = 3;
    opts.checkpoint_path = dir + "/ck.bin";
    run_until_kill(s, dir, kill, opts);
    FederatedSearch::RecoveryReport rep;
    const FinalState got = recover_and_finish(s, dir, opts, &rep);
    expect_identical(ref, got);
    EXPECT_EQ(rep.start_round + rep.replayed_rounds, kill);
  }
}

}  // namespace
}  // namespace fms
