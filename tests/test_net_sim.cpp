// Tests for the network simulation (traces, adaptive transmission),
// staleness distributions, device cost model, and delay compensation.
#include <algorithm>

#include "gtest/gtest.h"
#include "src/dc/compensation.h"
#include "src/net/trace.h"
#include "src/net/transmission.h"
#include "src/sim/devices.h"
#include "src/sim/staleness.h"

namespace fms {
namespace {

TEST(Trace, StaysAboveFloorAndNearMean) {
  for (int e = 0; e < kNumNetEnvironments; ++e) {
    const auto env = static_cast<NetEnvironment>(e);
    const TraceParams params = trace_params(env);
    BandwidthTrace trace(env, Rng(17 + e));
    double sum = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      const double bps = trace.next_bps();
      EXPECT_GE(bps, params.floor_mbps * 1e6);
      sum += bps / 1e6;
    }
    const double mean = sum / n;
    // Truncation at the floor lifts the mean slightly; wide tolerance.
    EXPECT_NEAR(mean, params.mean_mbps, params.mean_mbps * 0.35)
        << net_environment_name(env);
  }
}

TEST(Trace, TrainIsSlowerThanFoot) {
  BandwidthTrace foot(NetEnvironment::kFoot, Rng(1));
  BandwidthTrace train(NetEnvironment::kTrain, Rng(2));
  double foot_sum = 0.0, train_sum = 0.0;
  for (int i = 0; i < 3000; ++i) {
    foot_sum += foot.next_bps();
    train_sum += train.next_bps();
  }
  EXPECT_GT(foot_sum, train_sum);
}

TEST(Transmission, AdaptiveMatchesLargestToFastest) {
  std::vector<std::size_t> sizes{100, 400, 200, 300};
  std::vector<double> bw{1.0, 4.0, 2.0, 3.0};
  Rng rng(3);
  auto assign = assign_models(sizes, bw, AssignStrategy::kAdaptive, rng);
  // Participant 1 (fastest) gets model 1 (largest), participant 0
  // (slowest) gets model 0 (smallest).
  EXPECT_EQ(assign[1], 1);
  EXPECT_EQ(assign[0], 0);
  EXPECT_EQ(assign[3], 3);
  EXPECT_EQ(assign[2], 2);
}

TEST(Transmission, AdaptiveMinimizesMaxLatency) {
  Rng rng(4);
  Rng trace_rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> sizes;
    std::vector<double> bw;
    for (int i = 0; i < 8; ++i) {
      sizes.push_back(static_cast<std::size_t>(trace_rng.randint(1000, 100000)));
      bw.push_back(trace_rng.uniform(1e5F, 1e7F));
    }
    auto adaptive = assign_models(sizes, bw, AssignStrategy::kAdaptive, rng);
    auto random = assign_models(sizes, bw, AssignStrategy::kRandom, rng);
    const double la =
        transmission_latency(sizes, bw, adaptive, false).max_seconds;
    const double lr =
        transmission_latency(sizes, bw, random, false).max_seconds;
    EXPECT_LE(la, lr + 1e-12);
  }
}

TEST(Transmission, AssignmentIsAPermutation) {
  Rng rng(6);
  std::vector<std::size_t> sizes{5, 1, 3, 2, 4};
  std::vector<double> bw{1, 2, 3, 4, 5};
  for (auto strategy : {AssignStrategy::kAdaptive, AssignStrategy::kRandom,
                        AssignStrategy::kAverageSize}) {
    auto assign = assign_models(sizes, bw, strategy, rng);
    std::vector<int> sorted = assign;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 5; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(Transmission, AverageSizeUsesMeanBytes) {
  std::vector<std::size_t> sizes{0, 2000};  // mean 1000
  std::vector<double> bw{8000.0, 8000.0};   // 1000 bytes/s
  Rng rng(7);
  auto assign = assign_models(sizes, bw, AssignStrategy::kAverageSize, rng);
  LatencyStats s = transmission_latency(sizes, bw, assign, true);
  EXPECT_NEAR(s.max_seconds, 1.0, 1e-9);
  EXPECT_NEAR(s.mean_seconds, 1.0, 1e-9);
}

TEST(Staleness, DistributionsNormalizeAndSample) {
  Rng rng(8);
  auto severe = StalenessDistribution::severe();
  EXPECT_NEAR(severe.drop_probability(), 0.1, 1e-9);
  EXPECT_NEAR(severe.fresh_fraction(), 0.3, 1e-9);
  int counts[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int tau = severe.sample(rng);
    if (tau == kExceedsThreshold) {
      ++counts[3];
    } else {
      ASSERT_LE(tau, 2);
      ++counts[tau];
    }
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.4, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.1, 0.02);
}

TEST(Staleness, NoneIsAlwaysFresh) {
  Rng rng(9);
  auto none = StalenessDistribution::none();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(none.sample(rng), 0);
}

TEST(Staleness, InvalidDistributionThrows) {
  EXPECT_THROW(StalenessDistribution({0.9, 0.9}), CheckError);
  EXPECT_THROW(StalenessDistribution({-0.1}), CheckError);
}

TEST(Devices, Tx2SlowerThan1080Ti) {
  const double flops = training_step_flops(100000, 64, 256);
  EXPECT_GT(compute_seconds(jetson_tx2(), flops),
            3.0 * compute_seconds(gtx_1080ti(), flops));
}

TEST(DelayComp, WeightCompensationFormula) {
  // Eq. 13: out = h + lambda * h*h * (fresh - stale).
  std::vector<float> h{1.0F, -2.0F};
  std::vector<float> fresh{3.0F, 1.0F};
  std::vector<float> stale{1.0F, 2.0F};
  auto out = compensate_weight_gradient(h, fresh, stale, 0.5F);
  EXPECT_FLOAT_EQ(out[0], 1.0F + 0.5F * 1.0F * 2.0F);
  EXPECT_FLOAT_EQ(out[1], -2.0F + 0.5F * 4.0F * -1.0F);
}

TEST(DelayComp, NoDriftMeansNoChange) {
  std::vector<float> h{0.3F, -0.7F, 2.0F};
  auto out = compensate_weight_gradient(h, h, h, 0.5F);
  // fresh == stale here refers to weights; passing h for both gives zero
  // drift, so the gradient is unchanged.
  EXPECT_EQ(out, h);
}

TEST(DelayComp, AlphaCompensationFormula) {
  AlphaPair g = AlphaPair::zeros(1);
  g.normal[0][0] = 2.0F;
  AlphaPair now = AlphaPair::zeros(1);
  now.normal[0][0] = 1.0F;
  AlphaPair stale = AlphaPair::zeros(1);
  auto out = compensate_alpha_gradient(g, now, stale, 0.25F);
  EXPECT_FLOAT_EQ(out.normal[0][0], 2.0F + 0.25F * 4.0F * 1.0F);
}

TEST(DelayComp, MemoryPoolSaveFindEvict) {
  MemoryPool pool(2);
  for (int r = 0; r < 5; ++r) {
    RoundSnapshot snap;
    snap.theta = {static_cast<float>(r)};
    pool.save(r, std::move(snap));
  }
  EXPECT_EQ(pool.size(), 5u);
  ASSERT_NE(pool.find(3), nullptr);
  EXPECT_FLOAT_EQ(pool.find(3)->theta[0], 3.0F);
  pool.evict(5);  // keeps rounds >= 3
  EXPECT_EQ(pool.find(2), nullptr);
  EXPECT_NE(pool.find(3), nullptr);
  EXPECT_EQ(pool.size(), 2u);
}

}  // namespace
}  // namespace fms
