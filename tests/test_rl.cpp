// Tests for the RL controller: softmax sampling, analytic log-prob
// gradient vs finite differences, REINFORCE ascent direction, baseline.
#include <cmath>

#include "gtest/gtest.h"
#include "src/rl/policy.h"

namespace fms {
namespace {

AlphaOptConfig fast_cfg() {
  AlphaOptConfig cfg;
  cfg.learning_rate = 0.1F;
  cfg.weight_decay = 0.0F;
  cfg.gradient_clip = 100.0F;
  cfg.baseline_decay = 0.5F;
  return cfg;
}

TEST(AlphaPair, ZerosAndArithmetic) {
  AlphaPair a = AlphaPair::zeros(3);
  EXPECT_EQ(a.normal.size(), 3u);
  EXPECT_FLOAT_EQ(a.l2_norm(), 0.0F);
  AlphaPair b = AlphaPair::zeros(3);
  b.normal[0][0] = 3.0F;
  b.reduce[1][2] = 4.0F;
  a.add_scaled(b, 2.0F);
  EXPECT_FLOAT_EQ(a.normal[0][0], 6.0F);
  EXPECT_FLOAT_EQ(a.l2_norm(), 10.0F);
  a.scale(0.5F);
  EXPECT_FLOAT_EQ(a.l2_norm(), 5.0F);
}

TEST(AlphaPair, ClipBoundsNorm) {
  AlphaPair a = AlphaPair::zeros(2);
  a.normal[0][0] = 30.0F;
  a.reduce[0][0] = 40.0F;  // norm 50
  const float pre = a.clip(5.0F);
  EXPECT_FLOAT_EQ(pre, 50.0F);
  EXPECT_NEAR(a.l2_norm(), 5.0F, 1e-3F);
}

TEST(AlphaPair, FlattenRoundTrip) {
  Rng rng(1);
  AlphaPair a = AlphaPair::zeros(4);
  for (auto& row : a.normal)
    for (auto& v : row) v = rng.normal();
  for (auto& row : a.reduce)
    for (auto& v : row) v = rng.normal();
  AlphaPair b = AlphaPair::unflatten(a.flatten(), 4);
  EXPECT_EQ(a.flatten(), b.flatten());
}

TEST(Policy, InitialPolicyIsUniform) {
  ArchPolicy policy(5, fast_cfg());
  Rng rng(2);
  // With alpha = 0 every op has probability 1/8; check empirically.
  std::vector<int> counts(kNumOps, 0);
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    Mask m = policy.sample(rng);
    ++counts[static_cast<std::size_t>(m.normal[0])];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / kNumOps, 0.03);
  }
}

TEST(Policy, SampleRespectsSkewedAlpha) {
  ArchPolicy policy(2, fast_cfg());
  AlphaPair a = AlphaPair::zeros(2);
  a.normal[0][3] = 10.0F;  // op 3 overwhelmingly likely on edge 0
  policy.set_alpha(a);
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    if (policy.sample(rng).normal[0] == 3) ++hits;
  }
  EXPECT_GT(hits, 195);
}

TEST(Policy, LogProbGradMatchesFiniteDifference) {
  // The analytic gradient (Eq. 12) must match d log p / d alpha.
  ArchPolicy policy(2, fast_cfg());
  Rng rng(4);
  AlphaPair a = AlphaPair::zeros(2);
  for (auto& row : a.normal)
    for (auto& v : row) v = rng.normal();
  for (auto& row : a.reduce)
    for (auto& v : row) v = rng.normal();
  policy.set_alpha(a);
  Mask mask = policy.sample(rng);
  AlphaPair grad = policy.log_prob_grad(mask);

  const float eps = 1e-3F;
  for (int e = 0; e < 2; ++e) {
    for (int o = 0; o < kNumOps; ++o) {
      AlphaPair ap = a, am = a;
      ap.normal[static_cast<std::size_t>(e)][static_cast<std::size_t>(o)] += eps;
      am.normal[static_cast<std::size_t>(e)][static_cast<std::size_t>(o)] -= eps;
      ArchPolicy pp(2, fast_cfg()), pm(2, fast_cfg());
      pp.set_alpha(ap);
      pm.set_alpha(am);
      const double fd =
          (pp.log_prob(mask) - pm.log_prob(mask)) / (2.0 * eps);
      EXPECT_NEAR(
          grad.normal[static_cast<std::size_t>(e)][static_cast<std::size_t>(o)],
          fd, 1e-3)
          << "edge " << e << " op " << o;
    }
  }
}

TEST(Policy, LogProbGradRowsSumToZero) {
  // Each row of (delta - p) sums to zero: a REINFORCE invariant that keeps
  // alpha's per-edge mean fixed.
  ArchPolicy policy(3, fast_cfg());
  Rng rng(5);
  AlphaPair a = AlphaPair::zeros(3);
  for (auto& row : a.normal)
    for (auto& v : row) v = rng.normal();
  policy.set_alpha(a);
  Mask mask = policy.sample(rng);
  AlphaPair grad = policy.log_prob_grad(mask);
  for (const auto& row : grad.normal) {
    float sum = 0.0F;
    for (float v : row) sum += v;
    EXPECT_NEAR(sum, 0.0F, 1e-5F);
  }
}

TEST(Policy, BaselineFollowsEq9) {
  AlphaOptConfig cfg = fast_cfg();
  cfg.baseline_decay = 0.25F;
  ArchPolicy policy(1, cfg);
  // First update initializes the EMA to the observation.
  EXPECT_NEAR(policy.update_baseline(0.8), 0.8, 1e-9);
  // b = 0.25*0.4 + 0.75*0.8 = 0.7
  EXPECT_NEAR(policy.update_baseline(0.4), 0.7, 1e-9);
}

TEST(Policy, ReinforceIncreasesProbabilityOfRewardedOp) {
  // Repeatedly rewarding op 2 on every edge must raise its probability —
  // the core REINFORCE behaviour of the whole search.
  ArchPolicy policy(3, fast_cfg());
  Rng rng(6);
  for (int step = 0; step < 200; ++step) {
    Mask m = policy.sample(rng);
    // Reward 1 when edge 0 chose op 2, else 0.
    const double reward = m.normal[0] == 2 ? 1.0 : 0.0;
    const double b = policy.update_baseline(reward);
    AlphaPair g = policy.log_prob_grad(m);
    g.scale(static_cast<float>(reward - b));
    policy.apply_gradient(g);
  }
  const auto p = alpha_softmax(policy.alpha().normal[0]);
  EXPECT_GT(p[2], 0.5F);
}

TEST(Policy, DeriveGenotypeUsesAlpha) {
  ArchPolicy policy(Cell::num_edges(2), fast_cfg());
  AlphaPair a = AlphaPair::zeros(Cell::num_edges(2));
  for (auto& row : a.normal) row[static_cast<std::size_t>(4)] = 8.0F;
  for (auto& row : a.reduce) row[static_cast<std::size_t>(2)] = 8.0F;
  policy.set_alpha(a);
  Genotype g = policy.derive_genotype(2);
  for (const auto& e : g.normal) EXPECT_EQ(e.op, OpType::kSepConv3);
  for (const auto& e : g.reduce) EXPECT_EQ(e.op, OpType::kMaxPool3);
}

TEST(Policy, EntropyIsMaximalAtUniformAndShrinksWhenPeaked) {
  ArchPolicy policy(3, fast_cfg());
  // Zero alpha = uniform softmax over kNumOps: entropy is exactly ln(N)
  // on every edge (normal and reduce).
  const std::vector<double> h = policy.edge_entropies();
  ASSERT_EQ(h.size(), 6u);  // 3 normal + 3 reduce edges
  for (double v : h) EXPECT_NEAR(v, std::log(static_cast<double>(kNumOps)), 1e-6);
  EXPECT_NEAR(policy.mean_entropy(), std::log(static_cast<double>(kNumOps)),
              1e-6);

  // Peaking one edge lowers its entropy and leaves the rest at maximum.
  AlphaPair a = AlphaPair::zeros(3);
  a.normal[0][1] = 12.0F;
  policy.set_alpha(a);
  const std::vector<double> h2 = policy.edge_entropies();
  EXPECT_LT(h2[0], 0.01);
  EXPECT_NEAR(h2[1], std::log(static_cast<double>(kNumOps)), 1e-6);
  EXPECT_LT(policy.mean_entropy(), std::log(static_cast<double>(kNumOps)));
}

TEST(Policy, WeightDecayPullsTowardUniform) {
  AlphaOptConfig cfg = fast_cfg();
  cfg.weight_decay = 0.5F;
  ArchPolicy policy(1, cfg);
  AlphaPair a = AlphaPair::zeros(1);
  a.normal[0][0] = 10.0F;
  policy.set_alpha(a);
  // Zero reward gradient: only decay acts.
  AlphaPair zero = AlphaPair::zeros(1);
  policy.apply_gradient(zero);
  EXPECT_LT(policy.alpha().normal[0][0], 10.0F);
}

}  // namespace
}  // namespace fms
