// Tests for the common runtime: RNG determinism, statistics helpers,
// tables, thread pool, config scaling.
#include <cstdlib>
#include <set>
#include <sstream>

#include "gtest/gtest.h"
#include "src/common/config.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"

namespace fms {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng a(1);
  Rng fork1 = a.fork();
  Rng fork2 = a.fork();
  // Forks differ from each other.
  EXPECT_NE(fork1.next_u64(), fork2.next_u64());
}

TEST(Rng, RandintBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.randint(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
  EXPECT_THROW(rng.randint(5, 3), CheckError);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(3);
  for (double alpha : {0.1, 0.5, 1.0, 10.0}) {
    auto p = rng.dirichlet(alpha, 8);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(4);
  std::vector<float> w{0.0F, 1.0F, 0.0F};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.categorical(w), 1);
}

TEST(Stats, ExpMovingAverageMatchesEq9) {
  // b_{t+1} = beta * x + (1-beta) * b_t after initialization.
  ExpMovingAverage ema(0.2);
  EXPECT_FALSE(ema.initialized());
  EXPECT_DOUBLE_EQ(ema.update(1.0), 1.0);
  EXPECT_DOUBLE_EQ(ema.update(0.0), 0.8);
  EXPECT_NEAR(ema.update(0.5), 0.2 * 0.5 + 0.8 * 0.8, 1e-12);
}

TEST(Stats, WindowAverage) {
  WindowAverage w(3);
  w.update(1.0);
  w.update(2.0);
  EXPECT_DOUBLE_EQ(w.value(), 1.5);
  w.update(3.0);
  w.update(4.0);  // 1.0 falls out of the window
  EXPECT_DOUBLE_EQ(w.value(), 3.0);
}

TEST(Stats, WindowAverageResistsFloatingPointDrift) {
  // Regression: the rolling sum used to accumulate cancellation error when
  // a huge value passed through the window — subtracting it back out loses
  // the low-order bits of its small neighbors. The window recomputes its
  // sum from the stored values once per window turnover, so after the
  // poison value has aged out the average must be *exact* again.
  WindowAverage w(4);
  w.update(1e16);  // swamps the mantissa of subsequent small values
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) w.update(x);
  // Window now holds exactly {5, 6, 7, 8}.
  EXPECT_DOUBLE_EQ(w.value(), 6.5);
}

TEST(Stats, WindowAverageLongRunStaysExact) {
  // Repeated large/small churn over many windows; periodic rebuilds keep
  // the sum anchored to the stored values instead of drifting.
  WindowAverage w(8);
  const double big = 1099511627776.0;  // 2^40: sums with 0.25 stay exact
  for (int i = 0; i < 10000; ++i) {
    w.update(i % 2 == 0 ? big : 0.25);
  }
  EXPECT_DOUBLE_EQ(w.value(), (4.0 * big + 4.0 * 0.25) / 8.0);
}

TEST(Stats, OnlineMeanVar) {
  OnlineMeanVar mv;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) mv.update(x);
  EXPECT_NEAR(mv.mean(), 5.0, 1e-12);
  EXPECT_NEAR(mv.variance(), 32.0 / 7.0, 1e-9);  // sample variance
}

TEST(Stats, VectorHelpers) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_NEAR(stddev_of(v), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Table, PrintsAlignedRowsAndCsv) {
  Table t("demo");
  t.columns({"a", "bb"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_THROW(t.row({"only-one"}), CheckError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Series, StoresPointsAndEnforcesWidth) {
  Series s("curve");
  s.axes("x", {"y1", "y2"});
  s.point(0.0, {1.0, 2.0});
  s.point(1.0, {3.0, 4.0});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_THROW(s.point(2.0, {1.0}), CheckError);
}

TEST(ThreadPool, ParallelForRunsAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          // fms-lint: allow(bare-throw) -- tests that a
                          // non-CheckError exception still propagates
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SingleWorkerDegradesToSerial) {
  ThreadPool pool(1);
  int counter = 0;
  pool.parallel_for(10, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter, 10);
}

TEST(Config, DefaultsMatchPaperTable1) {
  SearchConfig cfg;  // unscaled defaults
  EXPECT_FLOAT_EQ(cfg.theta.learning_rate, 0.025F);
  EXPECT_FLOAT_EQ(cfg.theta.momentum, 0.9F);
  EXPECT_FLOAT_EQ(cfg.theta.weight_decay, 0.0003F);
  EXPECT_FLOAT_EQ(cfg.alpha.learning_rate, 0.003F);
  EXPECT_FLOAT_EQ(cfg.alpha.baseline_decay, 0.99F);
  EXPECT_EQ(cfg.schedule.num_participants, 10);
  EXPECT_FLOAT_EQ(cfg.retrain.lr_federated, 0.1F);
  EXPECT_FLOAT_EQ(cfg.retrain.momentum_federated, 0.5F);
}

TEST(Config, EnvScaleLengthensSchedules) {
  setenv("FMS_SCALE", "2", 1);
  SearchConfig scaled = default_config();
  unsetenv("FMS_SCALE");
  SearchConfig base = default_config();
  EXPECT_EQ(scaled.schedule.search_steps, 2 * base.schedule.search_steps);
  EXPECT_EQ(scaled.schedule.warmup_steps, 2 * base.schedule.warmup_steps);
}

TEST(Config, BadEnvScaleFallsBackToOne) {
  setenv("FMS_SCALE", "not-a-number", 1);
  SearchConfig cfg = default_config();
  unsetenv("FMS_SCALE");
  SearchConfig base = default_config();
  EXPECT_EQ(cfg.schedule.search_steps, base.schedule.search_steps);
}

}  // namespace
}  // namespace fms
